"""Unit and property tests for the fluid-flow max-min allocator."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import FluidLink, FlowNetwork, SimulationError, Simulator


def make_net():
    sim = Simulator()
    return sim, FlowNetwork(sim)


def test_single_flow_time_is_bytes_over_bandwidth():
    sim, net = make_net()
    link = FluidLink(100.0, "pipe")
    flow = net.start_flow(500.0, [link])
    sim.run(until=flow.done)
    assert sim.now == pytest.approx(5.0)
    assert flow.elapsed == pytest.approx(5.0)


def test_two_equal_flows_share_evenly():
    sim, net = make_net()
    link = FluidLink(100.0, "pipe")
    f1 = net.start_flow(500.0, [link])
    f2 = net.start_flow(500.0, [link])
    sim.run()
    # Each gets 50 B/s -> both finish at t=10.
    assert f1.finish_time == pytest.approx(10.0)
    assert f2.finish_time == pytest.approx(10.0)


def test_weighted_sharing():
    sim, net = make_net()
    link = FluidLink(100.0, "pipe")
    heavy = net.start_flow(300.0, [link], weight=3.0)
    light = net.start_flow(100.0, [link], weight=1.0)
    sim.run()
    # heavy: 75 B/s, light: 25 B/s -> both end at t=4.
    assert heavy.finish_time == pytest.approx(4.0)
    assert light.finish_time == pytest.approx(4.0)


def test_late_arrival_reallocates():
    """First flow runs alone, then shares: classic Δ-graph physics."""
    sim, net = make_net()
    link = FluidLink(100.0, "pipe")
    first = net.start_flow(1000.0, [link])

    second_holder = {}

    def start_second():
        yield sim.timeout(5.0)
        second_holder["flow"] = net.start_flow(1000.0, [link])

    sim.process(start_second())
    sim.run()
    # First: 500 B alone (5 s), then 500 B at 50 B/s (10 s) -> t=15.
    assert first.finish_time == pytest.approx(15.0)
    # Second: 500 B at 50 B/s while sharing (t=5..15), then 500 B alone
    # at 100 B/s (5 s) -> t=20.
    assert second_holder["flow"].finish_time == pytest.approx(20.0)


def test_flow_cap_limits_rate():
    sim, net = make_net()
    link = FluidLink(100.0, "pipe")
    capped = net.start_flow(100.0, [link], cap=10.0)
    sim.run()
    assert capped.finish_time == pytest.approx(10.0)


def test_cap_leftover_goes_to_uncapped_flow():
    sim, net = make_net()
    link = FluidLink(100.0, "pipe")
    capped = net.start_flow(1000.0, [link], cap=20.0)
    free = net.start_flow(160.0, [link])
    sim.run(until=free.done)
    # free gets 100-20=80 B/s -> 2 s.
    assert sim.now == pytest.approx(2.0)
    assert capped.remaining == pytest.approx(1000.0 - 40.0)


def test_two_stage_bottleneck_is_binding():
    """Flow crossing NIC (50 B/s) and server (100 B/s) runs at 50."""
    sim, net = make_net()
    nic = FluidLink(50.0, "nic")
    server = FluidLink(100.0, "server")
    flow = net.start_flow(100.0, [nic, server])
    sim.run()
    assert flow.finish_time == pytest.approx(2.0)


def test_multi_resource_max_min():
    """Textbook progressive-filling example.

    Flows: A over link1 only, B over link1+link2, C over link2 only.
    link1 cap 100, link2 cap 30.  link2 is the bottleneck: B=C=15.
    A then gets the rest of link1: 85.
    """
    sim, net = make_net()
    l1 = FluidLink(100.0, "l1")
    l2 = FluidLink(30.0, "l2")
    a = net.start_flow(1e9, [l1])
    b = net.start_flow(1e9, [l1, l2])
    c = net.start_flow(1e9, [l2])
    assert b.rate == pytest.approx(15.0)
    assert c.rate == pytest.approx(15.0)
    assert a.rate == pytest.approx(85.0)
    net.cancel_flow(a)
    net.cancel_flow(b)
    net.cancel_flow(c)


def test_zero_byte_flow_completes_immediately():
    sim, net = make_net()
    link = FluidLink(100.0)
    flow = net.start_flow(0.0, [link])
    assert flow.done.triggered
    assert flow.finish_time == sim.now


def test_pause_and_resume_freezes_progress():
    sim, net = make_net()
    link = FluidLink(100.0)
    flow = net.start_flow(1000.0, [link])

    def controller():
        yield sim.timeout(2.0)   # 200 B transferred
        net.pause_flow(flow)
        yield sim.timeout(50.0)  # frozen
        net.resume_flow(flow)

    sim.process(controller())
    sim.run()
    # 2 s + 50 s pause + 8 s remaining = 60 s.
    assert flow.finish_time == pytest.approx(60.0)


def test_paused_flow_releases_bandwidth_to_others():
    sim, net = make_net()
    link = FluidLink(100.0)
    f1 = net.start_flow(1000.0, [link])
    f2 = net.start_flow(300.0, [link])

    def controller():
        yield sim.timeout(1.0)
        net.pause_flow(f1)

    sim.process(controller())
    sim.run(until=f2.done)
    # f2: 50 B in the first second, then full 100 B/s for 250 B -> t=3.5.
    assert sim.now == pytest.approx(3.5)


def test_capacity_change_reallocates():
    sim, net = make_net()
    link = FluidLink(100.0)
    flow = net.start_flow(1000.0, [link])

    def controller():
        yield sim.timeout(5.0)  # 500 B done
        link.set_capacity(25.0)

    sim.process(controller())
    sim.run()
    assert flow.finish_time == pytest.approx(5.0 + 500.0 / 25.0)


def test_cancel_flow_fails_done_event():
    sim, net = make_net()
    link = FluidLink(100.0)
    flow = net.start_flow(1000.0, [link])

    def canceller():
        yield sim.timeout(1.0)
        net.cancel_flow(flow, RuntimeError("aborted"))

    def waiter():
        try:
            yield flow.done
        except RuntimeError as exc:
            return str(exc)

    p = sim.process(waiter())
    sim.process(canceller())
    assert sim.run(until=p) == "aborted"


def test_invalid_parameters_rejected():
    sim, net = make_net()
    link = FluidLink(100.0)
    with pytest.raises(SimulationError):
        net.start_flow(-1.0, [link])
    with pytest.raises(SimulationError):
        net.start_flow(1.0, [link], weight=0.0)
    with pytest.raises(SimulationError):
        net.start_flow(1.0, [link], cap=0.0)
    with pytest.raises(SimulationError):
        FluidLink(0.0)


def test_link_rate_reports_aggregate():
    sim, net = make_net()
    link = FluidLink(100.0)
    net.start_flow(1e6, [link])
    net.start_flow(1e6, [link])
    assert net.link_rate(link) == pytest.approx(100.0)


def test_links_cannot_span_networks():
    sim = Simulator()
    net1, net2 = FlowNetwork(sim), FlowNetwork(sim)
    link = FluidLink(10.0)
    net1.start_flow(1.0, [link])
    with pytest.raises(SimulationError):
        net2.start_flow(1.0, [link])


# ---------------------------------------------------------------------------
# Property-based invariants
# ---------------------------------------------------------------------------

flow_spec = st.tuples(
    st.floats(min_value=1.0, max_value=1e6),      # size
    st.floats(min_value=0.1, max_value=50.0),     # weight
    st.one_of(st.none(), st.floats(min_value=1.0, max_value=500.0)),  # cap
)


@settings(max_examples=60, deadline=None)
@given(st.lists(flow_spec, min_size=1, max_size=8),
       st.floats(min_value=10.0, max_value=1000.0))
def test_rates_conserve_capacity_and_respect_caps(specs, capacity):
    """Σ rates ≤ capacity; every capped flow obeys its cap; no negative rate."""
    sim = Simulator()
    net = FlowNetwork(sim)
    link = FluidLink(capacity)
    flows = [net.start_flow(s, [link], weight=w, cap=c) for s, w, c in specs]
    total = sum(f.rate for f in flows)
    assert total <= capacity * (1 + 1e-9)
    for f in flows:
        assert f.rate >= 0
        if f.cap is not None:
            assert f.rate <= f.cap * (1 + 1e-9)


@settings(max_examples=60, deadline=None)
@given(st.lists(flow_spec, min_size=1, max_size=8),
       st.floats(min_value=10.0, max_value=1000.0))
def test_allocation_is_max_min_optimal(specs, capacity):
    """Work conservation: either the link is saturated or every flow is capped."""
    sim = Simulator()
    net = FlowNetwork(sim)
    link = FluidLink(capacity)
    flows = [net.start_flow(s, [link], weight=w, cap=c) for s, w, c in specs]
    total = sum(f.rate for f in flows)
    saturated = total >= capacity * (1 - 1e-9)
    all_capped = all(
        f.cap is not None and f.rate >= f.cap * (1 - 1e-9) for f in flows
    )
    assert saturated or all_capped


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=1.0, max_value=1e5), min_size=1, max_size=6),
       st.floats(min_value=10.0, max_value=1000.0))
def test_equal_flows_finish_simultaneously_scaled(sizes, capacity):
    """Weights proportional to size -> all flows finish at the same instant."""
    sim = Simulator()
    net = FlowNetwork(sim)
    link = FluidLink(capacity)
    flows = [net.start_flow(s, [link], weight=s) for s in sizes]
    sim.run()
    expected = sum(sizes) / capacity
    for f in flows:
        assert f.finish_time == pytest.approx(expected, rel=1e-6)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=1.0, max_value=1e5), min_size=1, max_size=6),
       st.floats(min_value=10.0, max_value=1000.0))
def test_total_bytes_conserved(sizes, capacity):
    """Makespan x capacity is at least the total data (work conservation)."""
    sim = Simulator()
    net = FlowNetwork(sim)
    link = FluidLink(capacity)
    flows = [net.start_flow(s, [link]) for s in sizes]
    sim.run()
    makespan = max(f.finish_time for f in flows)
    assert makespan * capacity >= sum(sizes) * (1 - 1e-9)
    # And with a single shared link the link never idles before the end:
    assert makespan == pytest.approx(sum(sizes) / capacity, rel=1e-6)


def test_sub_ulp_completion_horizon_terminates():
    """Regression: a nearly-finished flow whose completion horizon is below
    float resolution at a large clock value must complete, not spin."""
    sim = Simulator(start_time=1e9)
    net = FlowNetwork(sim)
    link = FluidLink(1e9)
    # remaining just above the completion epsilon; horizon ~2e-15 s << ulp(1e9).
    flow = net.start_flow(2e-6, [link])
    sim.run(until=flow.done)
    assert flow.remaining == 0.0
    assert sim.now >= 1e9


def test_many_flows_with_epsilon_tails_terminate():
    """Stress the ulp guard with staggered arrivals creating tiny residues."""
    sim = Simulator(start_time=12345.0)
    net = FlowNetwork(sim)
    link = FluidLink(1995000000.0)

    def producer():
        for i in range(30):
            flow = net.start_flow(56_000_000.0, [link])
            yield flow.done

    p = sim.process(producer())
    sim.run(until=p)
    assert not net.active_flows
