"""Cross-checks of the incremental allocator against the global oracle.

The incremental (dirty-component) kernel must be a pure optimization:
identical rates, identical completion times, for any topology and any
event sequence.  These tests script randomized workloads — random link
graphs, weights, caps, pauses, cancellations and capacity changes — and
run the *same* script through both allocators, comparing the full
observable state within 1e-9.
"""

import math

import numpy as np
import pytest

from repro.experiments import ExperimentEngine, build_scenario
from repro.simcore import FluidLink, FlowNetwork, Simulator

HORIZON = 500.0


def _random_script(seed: int, nlinks: int = 8, nflows: int = 24,
                   nevents: int = 18):
    """A reproducible event script: flow starts plus mid-flight mutations."""
    rng = np.random.default_rng(seed)
    capacities = rng.uniform(50.0, 500.0, size=nlinks)
    starts = []
    for i in range(nflows):
        npath = int(rng.integers(1, min(4, nlinks) + 1))
        path = sorted(rng.choice(nlinks, size=npath, replace=False).tolist())
        starts.append({
            "time": float(rng.uniform(0.0, 30.0)),
            "size": float(rng.uniform(100.0, 20000.0)),
            "path": path,
            "weight": float(rng.uniform(0.5, 8.0)),
            "cap": (float(rng.uniform(20.0, 200.0))
                    if rng.random() < 0.3 else None),
        })
    events = []
    for _ in range(nevents):
        kind = rng.choice(["pause", "resume", "cancel", "capacity"])
        events.append({
            "time": float(rng.uniform(1.0, 60.0)),
            "kind": str(kind),
            "flow": int(rng.integers(0, nflows)),
            "link": int(rng.integers(0, nlinks)),
            "capacity": float(rng.uniform(30.0, 600.0)),
        })
    return capacities, starts, events


def _run_script(incremental: bool, capacities, starts, events):
    """Execute one script; returns per-flow (finish, remaining, rate)."""
    sim = Simulator()
    net = FlowNetwork(sim, incremental=incremental)
    links = [FluidLink(float(c), f"l{j}") for j, c in enumerate(capacities)]
    flows = {}

    def starter(idx, spec):
        yield sim.timeout(spec["time"])
        flows[idx] = net.start_flow(
            spec["size"], [links[j] for j in spec["path"]],
            weight=spec["weight"], cap=spec["cap"], label=f"f{idx}")

    def mutator(ev):
        yield sim.timeout(ev["time"])
        flow = flows.get(ev["flow"])
        if ev["kind"] == "pause" and flow is not None:
            net.pause_flow(flow)
        elif ev["kind"] == "resume" and flow is not None:
            net.resume_flow(flow)
        elif ev["kind"] == "cancel" and flow is not None:
            net.cancel_flow(flow)
        elif ev["kind"] == "capacity":
            links[ev["link"]].set_capacity(ev["capacity"])

    for idx, spec in enumerate(starts):
        sim.process(starter(idx, spec))
    for ev in events:
        sim.process(mutator(ev))
    sim.run(until=HORIZON)
    out = {}
    for idx in range(len(starts)):
        f = flows.get(idx)
        if f is None:
            out[idx] = None
        else:
            out[idx] = (f.finish_time, f.remaining, f.rate)
    return out


@pytest.mark.parametrize("seed", range(12))
def test_incremental_matches_global_on_random_topologies(seed):
    """Same script, both allocators: identical state within 1e-9."""
    script = _random_script(seed)
    state_inc = _run_script(True, *script)
    state_glob = _run_script(False, *script)
    assert state_inc.keys() == state_glob.keys()
    for idx in state_inc:
        a, b = state_inc[idx], state_glob[idx]
        if a is None or b is None:
            assert a == b
            continue
        for x, y, what in zip(a, b, ("finish_time", "remaining", "rate")):
            if math.isnan(x) or math.isnan(y):
                assert math.isnan(x) and math.isnan(y), (idx, what, x, y)
            elif math.isinf(x) or math.isinf(y):
                assert x == y, (idx, what, x, y)
            else:
                assert x == pytest.approx(y, rel=1e-9, abs=1e-9), (
                    f"flow {idx} {what}: incremental={x} global={y}")


@pytest.mark.parametrize("strategy", [None, "fcfs"])
def test_incremental_matches_global_end_to_end(strategy):
    """Full-stack cross-check: the many-writers scenario under both
    allocators yields identical per-application records."""
    engine = ExperimentEngine()
    results = {}
    for allocator in ("incremental", "global"):
        spec = build_scenario("many-writers", napps=24, nservers=8,
                              strategy=strategy, allocator=allocator,
                              seed=11)[0]
        results[allocator] = engine.run(spec)
    rec_inc = results["incremental"].records
    rec_glob = results["global"].records
    assert rec_inc.keys() == rec_glob.keys()
    for name in rec_inc:
        assert rec_inc[name].write_times == pytest.approx(
            rec_glob[name].write_times, rel=1e-9), name
    assert results["incremental"].makespan == pytest.approx(
        results["global"].makespan, rel=1e-9)


# ---------------------------------------------------------------------------
# cancel_flow regression (the silently-dropped done event)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("incremental", [True, False])
def test_cancel_flow_without_exc_releases_waiters(incremental):
    """Regression: cancelling with exc=None succeeds `done` with None so a
    process yielding on it resumes instead of being parked forever."""
    sim = Simulator()
    net = FlowNetwork(sim, incremental=incremental)
    link = FluidLink(100.0)
    flow = net.start_flow(1000.0, [link])

    def canceller():
        yield sim.timeout(1.0)
        net.cancel_flow(flow)

    def waiter():
        value = yield flow.done
        return ("released", value, sim.now)

    p = sim.process(waiter())
    sim.process(canceller())
    sim.run()
    assert p.value == ("released", None, 1.0)
    assert math.isnan(flow.finish_time)  # cancelled, not completed
    assert flow.remaining == pytest.approx(900.0)


def test_cancel_flow_none_value_distinguishes_from_completion():
    sim = Simulator()
    net = FlowNetwork(sim)
    link = FluidLink(100.0)
    cancelled = net.start_flow(500.0, [link], label="cancelled")
    completed = net.start_flow(500.0, [link], label="completed")
    net.cancel_flow(cancelled)
    sim.run()
    assert cancelled.done.value is None
    assert completed.done.value is completed


# ---------------------------------------------------------------------------
# Fairshare edge cases (satellite coverage)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("incremental", [True, False])
def test_set_capacity_integrates_before_changing(incremental):
    """Progress under the old capacity must be banked before the new rates
    apply (integrate-then-change): 2 s at 100 B/s, then the rest at 10."""
    sim = Simulator()
    net = FlowNetwork(sim, incremental=incremental)
    link = FluidLink(100.0)
    flow = net.start_flow(1000.0, [link])

    def changer():
        yield sim.timeout(2.0)
        link.set_capacity(10.0)
        # Exactly 200 B must have been delivered under the old capacity.
        assert flow.remaining == pytest.approx(800.0)

    sim.process(changer())
    sim.run()
    assert flow.finish_time == pytest.approx(2.0 + 800.0 / 10.0)


@pytest.mark.parametrize("incremental", [True, False])
def test_pause_resume_accounting_with_sharing(incremental):
    """Pause banks progress at the *shared* rate; resume re-splits."""
    sim = Simulator()
    net = FlowNetwork(sim, incremental=incremental)
    link = FluidLink(100.0)
    a = net.start_flow(1000.0, [link])
    b = net.start_flow(1000.0, [link])

    def controller():
        yield sim.timeout(4.0)        # both at 50 B/s -> 200 B each
        net.pause_flow(a)
        assert a.remaining == pytest.approx(800.0)
        assert a.rate == 0.0
        yield sim.timeout(2.0)        # b alone at 100 B/s -> 600 B left
        net.resume_flow(a)
        # The resume re-priced b's component, integrating its solo spell.
        assert b.remaining == pytest.approx(600.0)
        assert a.remaining == pytest.approx(800.0)

    sim.process(controller())
    sim.run()
    # t=6: a has 800, b has 600, both at 50 B/s.  b finishes at t=18,
    # leaving a 200 B at 100 B/s -> a finishes at t=20.
    assert b.finish_time == pytest.approx(18.0)
    assert a.finish_time == pytest.approx(20.0)


@pytest.mark.parametrize("incremental", [True, False])
def test_cap_exactly_equal_to_fair_share(incremental):
    """A cap equal to the max-min fair share must not perturb anything."""
    sim = Simulator()
    net = FlowNetwork(sim, incremental=incremental)
    link = FluidLink(100.0)
    capped = net.start_flow(500.0, [link], cap=50.0)   # fair share == 50
    free = net.start_flow(500.0, [link])
    sim.run()
    assert capped.finish_time == pytest.approx(10.0)
    assert free.finish_time == pytest.approx(10.0)


@pytest.mark.parametrize("incremental", [True, False])
def test_sub_ulp_horizon_completes_in_both_modes(incremental):
    """The math.ulp wake-nudge path: a near-finished flow at a large clock
    value must complete rather than spin at `now` forever."""
    sim = Simulator(start_time=1e9)
    net = FlowNetwork(sim, incremental=incremental)
    link = FluidLink(1e9)
    flow = net.start_flow(2e-6, [link])
    sim.run(until=flow.done)
    assert flow.remaining == 0.0
    assert sim.now >= 1e9


@pytest.mark.parametrize("incremental", [True, False])
def test_pause_at_exact_completion_horizon_completes(incremental):
    """Regression: pausing a flow at the instant its last byte lands must
    complete it (triggering `done`), not park it paused forever."""
    sim = Simulator()
    net = FlowNetwork(sim, incremental=incremental)
    link = FluidLink(100.0)
    # Register the pause callback first so it runs before the network's
    # completion wake at the same timestamp.
    holder = {}
    sim.call_at(10.0, lambda: net.pause_flow(holder["flow"]))
    holder["flow"] = net.start_flow(1000.0, [link])  # completes at t=10
    sim.run()
    flow = holder["flow"]
    assert flow.done.triggered
    assert flow.finish_time == pytest.approx(10.0)
    assert flow not in net.active_flows


def test_sync_respects_per_flow_sync_points():
    """Regression: a whole-network sync() after per-flow syncs must not
    double-integrate progress from a stale shared checkpoint."""
    sim = Simulator()
    net = FlowNetwork(sim)  # incremental

    def driver():
        yield sim.timeout(40.0)
        flow = net.start_flow(1000.0, [FluidLink(100.0)])
        yield sim.timeout(5.0)   # 500 B delivered
        net.sync()
        assert flow.remaining == pytest.approx(500.0)
        net.cancel_flow(flow)

    p = sim.process(driver())
    sim.run(until=p)


@pytest.mark.parametrize("incremental", [True, False])
def test_untouched_component_keeps_its_schedule(incremental):
    """Churn in one component must not disturb another's completions."""
    sim = Simulator()
    net = FlowNetwork(sim, incremental=incremental)
    left = FluidLink(100.0, "left")
    right = FluidLink(100.0, "right")
    steady = net.start_flow(1000.0, [left])   # 10 s, alone on its link

    def churner():
        for _ in range(20):
            f = net.start_flow(50.0, [right])
            yield f.done

    sim.process(churner())
    sim.run()
    assert steady.finish_time == pytest.approx(10.0)
    assert steady.rate == 0.0
