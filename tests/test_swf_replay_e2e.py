"""End-to-end replay of a real (committed) ANL-Intrepid-format SWF file.

The ``swf-replay`` scenario synthesizes its traces; this suite closes the
ROADMAP gap by feeding an actual ``.swf`` *file* through ``parse_swf`` ->
``replay_spec`` -> ``ExperimentEngine`` at the ~10^2-job scale, checking
the parse round-trip and that replays are deterministic per seed (and
actually differ across I/O-model seeds).
"""

import pathlib

import pytest

from repro.experiments import ExperimentEngine
from repro.experiments.replay import plan_replay, replay_spec
from repro.experiments.scenarios import many_writers_platform
from repro.traces import JobIOModel
from repro.traces.swf import format_swf, parse_swf

FIXTURE = pathlib.Path(__file__).parent / "data" / "ANL-Intrepid-tiny.swf"
WINDOW = (0.0, 6 * 3600.0)


@pytest.fixture(scope="module")
def trace():
    return parse_swf(FIXTURE.read_text())


def test_fixture_parses_with_header_and_jobs(trace):
    assert any("Intrepid" in line for line in trace.header)
    jobs = trace.valid_jobs()
    assert len(jobs) >= 100, "fixture should hold ~10^2 usable jobs"
    for job in jobs:
        assert job.allocated_procs > 0
        assert job.run_time > 0
    # 18-field SWF lines survive a write/parse round trip.
    again = parse_swf(format_swf(trace))
    assert len(again) == len(trace)
    assert [j.job_id for j in again] == [j.job_id for j in trace]


def test_window_holds_target_job_count(trace):
    plan = plan_replay(trace, WINDOW, core_scale=512,
                       phases_per_job=2, max_jobs=100)
    assert 60 <= len(plan.configs) <= 100
    assert all(cfg.nprocs >= 1 for cfg in plan.configs)


def _run(trace, io_seed):
    spec = replay_spec(
        many_writers_platform(8), trace, WINDOW,
        core_scale=512, bytes_per_process=2_000_000, phases_per_job=2,
        max_jobs=100, measure_alone=False,
        io_model=JobIOModel(median_bytes_per_process=2_000_000.0),
        io_seed=io_seed, name="swf-file-replay",
    )
    result = ExperimentEngine().run(spec)
    return {name: rec.write_times for name, rec in result.records.items()}


def test_replay_is_deterministic_per_seed(trace):
    first = _run(trace, io_seed=7)
    second = _run(trace, io_seed=7)
    assert first.keys() == second.keys() and len(first) >= 60
    for name in first:
        assert first[name] == second[name], name


def test_io_model_seed_changes_sampled_workloads(trace):
    a = _run(trace, io_seed=7)
    b = _run(trace, io_seed=8)
    assert a.keys() == b.keys()
    assert any(a[name] != b[name] for name in a), (
        "different io_seed must sample different per-job workloads")
