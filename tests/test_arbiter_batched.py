"""The indexed/batched coordination layer: rounds, views, oracle equivalence.

Companion to ``tests/test_core_arbiter.py`` (which exercises the state
machine through the synchronous API and keeps passing unchanged): this file
covers what the scalable-coordination refactor added — coordination-round
batching, decision views, the ring-buffer decision log, the DELAY-hold
race fix, and randomized batched-vs-unbatched equivalence.
"""

import warnings

import numpy as np
import pytest

from repro.core import (
    AccessDescriptor, AccessState, Action, Arbiter, CalciomRuntime, Decision,
    DescriptorSetView, Strategy,
)
from repro.experiments import ExperimentEngine, ExperimentSpec, build_scenario
from repro.perf import PerfCounters
from repro.platforms import Platform, PlatformConfig
from repro.simcore import Simulator


def desc(app, nprocs=10, t_alone=5.0, total=1e6):
    return AccessDescriptor(app=app, nprocs=nprocs, total_bytes=total,
                            t_alone=t_alone)


# -- coordination rounds ------------------------------------------------------

def test_same_timestamp_informs_coalesce_into_one_round():
    perf = PerfCounters()
    sim = Simulator()
    arb = Arbiter(sim, "fcfs", perf=perf)
    results = {}

    def app(name):
        yield sim.timeout(1.0)
        results[name] = yield arb.submit_inform(desc(name))

    for name in ("a", "b", "c"):
        sim.process(app(name))
    sim.run()
    assert results == {"a": True, "b": False, "c": False}
    assert perf.get("coord_rounds") == 1
    assert perf.get("coord_exchanges") == 3
    assert perf.get("coord_decisions") == 3


def test_round_preserves_arrival_order_across_timestamps():
    sim = Simulator()
    arb = Arbiter(sim, "fcfs")

    def app(name, at):
        yield sim.timeout(at)
        yield arb.submit_inform(desc(name))

    sim.process(app("late", 2.0))
    sim.process(app("early", 1.0))
    sim.run()
    assert [r.app for r in arb.decision_log] == ["early", "late"]
    assert arb.is_authorized("early")
    assert arb.state_of("late") is AccessState.WAITING


def test_sync_call_flushes_pending_round_first():
    """on_complete between submit and flush must still see the inform."""
    sim = Simulator()
    arb = Arbiter(sim, "fcfs")
    arb.on_inform(desc("a"))
    seen = []

    def b():
        yield sim.timeout(1.0)
        seen.append((yield arb.submit_inform(desc("b"))))

    def finish_a():
        yield sim.timeout(1.0)
        arb.on_complete("a")  # same timestamp, later event

    sim.process(b())
    sim.process(finish_a())
    sim.run()
    # b informed before a completed -> FCFS said WAIT; a's completion then
    # granted b.  (Had the flush not run eagerly, b would have seen an
    # empty machine and been logged GO.)
    assert seen == [False]
    assert arb.decision_log[-1].action is Action.WAIT
    assert arb.is_authorized("b")


def test_submit_release_updates_knowledge_in_order():
    sim = Simulator()
    arb = Arbiter(sim, "fcfs")
    arb.on_inform(desc("a"))

    def step():
        yield sim.timeout(1.0)
        arb.submit_release("a", 123.0)

    sim.process(step())
    sim.run()
    assert arb.descriptor_of("a").remaining_bytes == 123.0


def test_batched_strategy_invocation_sees_earlier_decisions():
    """The lazily-pulled decide_batch observes in-batch state changes."""
    seen_active = []

    class Recording(Strategy):
        name = "recording"
        supports_views = True

        def decide(self, now, active, waiting, incoming):
            seen_active.append([d.app for d in active])
            return Decision(Action.GO)

    sim = Simulator()
    arb = Arbiter(sim, Recording())

    def app(name):
        yield sim.timeout(1.0)
        yield arb.submit_inform(desc(name))

    sim.process(app("a"))
    sim.process(app("b"))
    sim.run()
    assert seen_active == [[], ["a"]]


# -- decision views -----------------------------------------------------------

def test_views_reach_view_aware_strategies():
    captured = {}

    class Peek(Strategy):
        name = "peek"
        supports_views = True

        def decide(self, now, active, waiting, incoming):
            captured["active"] = active
            captured["waiting"] = waiting
            captured["len_at_decision"] = len(active)
            captured["truthy_at_decision"] = bool(active)
            return Decision(Action.GO)

    arb = Arbiter(Simulator(), Peek())
    arb.on_inform(desc("a"))
    assert isinstance(captured["active"], DescriptorSetView)
    assert isinstance(captured["waiting"], DescriptorSetView)
    assert captured["len_at_decision"] == 0
    assert captured["truthy_at_decision"] is False
    # The view is live: after the decision was applied, a is active.
    assert [d.app for d in captured["active"]] == ["a"]


def test_views_are_the_default_contract():
    """A strategy declaring nothing gets live views, warning-free."""
    captured = {}

    class Plain(Strategy):
        name = "plain"

        def decide(self, now, active, waiting, incoming):
            captured["active"] = active
            return Decision(Action.GO)

    arb = Arbiter(Simulator(), Plain())
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        arb.on_inform(desc("a"))
    assert isinstance(captured["active"], DescriptorSetView)


def test_legacy_escape_hatch_is_gone():
    """supports_views = False (the one-release shim) now fails loudly at
    class definition instead of silently materializing lists."""
    with pytest.raises(TypeError, match="supports_views"):
        class Legacy(Strategy):
            name = "legacy"
            supports_views = False

            def decide(self, now, active, waiting, incoming):
                return Decision(Action.GO)

    # Declaring it True (the old default) stays harmless.
    class Fine(Strategy):
        name = "fine"
        supports_views = True

        def decide(self, now, active, waiting, incoming):
            return Decision(Action.GO)

    arb = Arbiter(Simulator(), Fine())
    assert arb.on_inform(desc("a"))


def test_active_view_order_is_first_decision_order():
    """Re-activation after completion must not reorder the active view."""
    arb = Arbiter(Simulator(), "interfere")
    arb.on_inform(desc("a"))
    arb.on_inform(desc("b"))
    arb.on_complete("a")
    arb.on_inform(desc("a"))  # a re-informs: still listed before b
    assert [d.app for d in arb.active_descriptors()] == ["a", "b"]


# -- decision-log ring buffer -------------------------------------------------

def test_decision_log_ring_buffer_bounds_memory():
    """10^5 decisions with a cap must retain only the cap's records."""
    sim = Simulator()
    arb = Arbiter(sim, "fcfs", decision_log_limit=256)
    for i in range(100_000):
        name = f"app{i % 7}"
        arb.on_inform(desc(name))
        arb.on_complete(name)
    assert len(arb.decision_log) == 256
    # Only the most recent records are retained (the ring dropped the
    # 99744 older DecisionRecord snapshots instead of accumulating them).
    times = [r.time for r in arb.decision_log]
    assert times == sorted(times)
    assert arb.decision_log[0].app == "app" + str((100_000 - 256) % 7)


def test_decision_log_unbounded_by_default():
    arb = Arbiter(Simulator(), "fcfs")
    for i in range(500):
        arb.on_inform(desc(f"app{i}"))
    assert len(arb.decision_log) == 500
    assert isinstance(arb.decision_log, list)


def test_scale_scenarios_cap_decision_log():
    spec, = build_scenario("many-writers", napps=4, nservers=2)
    assert spec.arbiter["decision_log_limit"] == 10_000
    spec, = build_scenario("swf-replay", napps=10, hours=2.0)
    assert spec.arbiter["decision_log_limit"] == 10_000


# -- the DELAY-hold race ------------------------------------------------------

class AlwaysDelay(Strategy):
    name = "always-delay"
    supports_views = True

    def __init__(self, delay):
        self.delay = delay

    def decide(self, now, active, waiting, incoming):
        if active:
            return Decision(Action.DELAY, delay=self.delay)
        return Decision(Action.GO)


@pytest.mark.parametrize("batched", [True, False])
def test_stale_hold_does_not_activate_new_access(batched):
    """withdraw() + re-inform between hold scheduling and firing.

    b's first access is held for 5 s, withdrawn at t=1; its *second*
    access (informed at t=2, held until t=7) must not be activated by the
    stale t=5 timer.
    """
    sim = Simulator()
    arb = Arbiter(sim, AlwaysDelay(5.0), batched=batched)
    arb.on_inform(desc("a"))
    assert arb.on_inform(desc("b")) is False   # hold scheduled for t=5

    def script():
        yield sim.timeout(1.0)
        arb.withdraw("b")
        yield sim.timeout(1.0)
        arb.on_inform(desc("b"))               # new access, hold at t=7

    sim.process(script())
    sim.run(until=6.0)
    # The stale t=5 hold fired in this window; the new access must still
    # be waiting (its own hold expires at t=7).
    assert arb.state_of("b") is AccessState.WAITING
    sim.run()
    assert arb.is_authorized("b")              # granted by its own hold


@pytest.mark.parametrize("batched", [True, False])
def test_hold_for_withdrawn_app_is_noop(batched):
    sim = Simulator()
    arb = Arbiter(sim, AlwaysDelay(5.0), batched=batched)
    arb.on_inform(desc("a"))
    arb.on_inform(desc("b"))
    arb.withdraw("b")
    sim.run()
    assert arb.state_of("b") is AccessState.IDLE


# -- arbiter edge cases -------------------------------------------------------

@pytest.mark.parametrize("batched", [True, False])
def test_preempted_app_completing_while_waiters_queue(batched):
    sim = Simulator()
    arb = Arbiter(sim, "interrupt", batched=batched)
    arb.on_inform(desc("a"))
    arb.on_inform(desc("b"))                   # b interrupts a
    assert arb.state_of("a") is AccessState.PREEMPTED

    class JustWait(Strategy):
        supports_views = True

        def decide(self, now, active, waiting, incoming):
            return Decision(Action.WAIT)

    arb.strategy = JustWait()
    arb.on_inform(desc("c"))                   # c queues behind b
    arb.on_complete("a")                       # a gives up while preempted
    arb.on_complete("b")
    sim.run()
    # a must not have been granted (it completed); c gets the machine.
    assert arb.state_of("a") is AccessState.IDLE
    assert arb.is_authorized("c")


@pytest.mark.parametrize("batched", [True, False])
def test_interrupt_targeting_explicit_subset(batched):
    class InterruptOnlyA(Strategy):
        supports_views = True

        def decide(self, now, active, waiting, incoming):
            if active:
                return Decision(Action.INTERRUPT, preempt=["a"])
            return Decision(Action.GO)

    sim = Simulator()
    arb = Arbiter(sim, InterruptOnlyA(), batched=batched)
    arb.on_inform(desc("a"))
    arb.on_inform(desc("b"))                   # preempts only a
    assert arb.state_of("a") is AccessState.PREEMPTED
    assert arb.is_authorized("b")              # untargeted: stays active
    arb.on_inform(desc("c"))                   # a already preempted: no-op
    assert arb.is_authorized("c")
    arb.on_complete("b")
    arb.on_complete("c")
    sim.run()
    assert arb.is_authorized("a")              # resumes once machine frees


@pytest.mark.parametrize("batched", [True, False])
def test_grant_latency_orders_sequential_grants(batched):
    sim = Simulator()
    arb = Arbiter(sim, "fcfs", grant_latency=0.5, batched=batched)
    grants = []

    def app(name, at, hold):
        yield sim.timeout(at)
        if batched:
            authorized = yield arb.submit_inform(desc(name))
        else:
            authorized = arb.on_inform(desc(name))
        if not authorized:
            yield arb.authorization_event(name)
        grants.append((name, sim.now))
        yield sim.timeout(hold)
        arb.on_complete(name)

    sim.process(app("a", 0.0, hold=2.0))
    sim.process(app("b", 1.0, hold=2.0))
    sim.process(app("c", 1.5, hold=2.0))
    sim.run()
    names = [g[0] for g in grants]
    times = dict(grants)
    assert names == ["a", "b", "c"]            # FIFO order survives latency
    assert times["b"] == pytest.approx(2.5)    # a done at 2.0 + 0.5 latency
    assert times["c"] == pytest.approx(5.0)    # b done at 4.5 + 0.5 latency


@pytest.mark.parametrize("batched", [True, False])
def test_withdraw_clears_in_flight_grant(batched):
    """A dead access's in-flight grant must not leak to the next access.

    b is granted at t=2 (notification in flight until t=2.5), withdraws
    before it lands, then re-informs while c holds the machine: b's new
    access is WAIT-decided, and its authorization_event must be the new
    pending one — not the stale triggered grant of the withdrawn access.
    """
    sim = Simulator()
    arb = Arbiter(sim, "fcfs", grant_latency=0.5, batched=batched)
    arb.on_inform(desc("a"))
    arb.on_inform(desc("b"))
    resumed = []

    def script():
        yield sim.timeout(2.0)
        arb.on_complete("a")        # grants b; notification in flight
        arb.withdraw("b")           # b's job dies before it lands
        arb.on_inform(desc("c"))    # c takes the machine
        assert arb.on_inform(desc("b")) is False  # b's NEW access waits
        ev = arb.authorization_event("b")
        assert not ev.triggered     # not the dead access's grant
        yield ev
        resumed.append((sim.now, arb.is_authorized("b")))

    sim.process(script())
    sim.run(until=4.0)
    assert resumed == []            # stale grant at t=2.5 must not resume b
    arb.on_complete("c")
    sim.run()
    assert resumed == [(4.5, True)]  # c's completion + grant latency


def test_regrant_during_flight_keeps_successor_inflight_entry():
    """A stale grant event's cleanup must not evict the successor's."""
    sim = Simulator()
    arb = Arbiter(sim, "fcfs", grant_latency=0.5)
    arb.on_inform(desc("a"))
    arb.on_inform(desc("b"))
    arb.on_complete("a")            # ev1 for b in flight: t=0 -> 0.5

    def regrant():
        yield sim.timeout(0.25)
        arb.withdraw("b")           # ev1 now stale
        arb.on_inform(desc("c"))
        arb.on_inform(desc("b"))    # b's new access waits behind c
        arb.on_complete("c")        # ev2 for b in flight: t=0.25 -> 0.75
        assert arb.grant_in_flight("b")

    sim.process(regrant())
    sim.run(until=0.6)              # ev1 processed at 0.5; ev2 still flying
    assert arb.grant_in_flight("b")  # ev2's entry survived ev1's cleanup
    sim.run()
    assert not arb.grant_in_flight("b")
    assert arb.is_authorized("b")


def test_randomized_traces_batched_equals_unbatched():
    """Random inform/release/complete schedules: logs must be identical."""
    def drive(batched, seed):
        rng = np.random.default_rng(seed)
        napps = 24
        starts = rng.uniform(0.0, 3.0, size=napps)
        holds = rng.uniform(0.1, 1.0, size=napps)
        phases = rng.integers(1, 4, size=napps)
        sim = Simulator()
        arb = Arbiter(sim, "dynamic", grant_latency=1e-3, batched=batched)

        def app(i):
            name = f"app{i:02d}"
            yield sim.timeout(float(starts[i]))
            for _ in range(int(phases[i])):
                d = desc(name, nprocs=int(rng.integers(1, 64)),
                         t_alone=float(holds[i]))
                if batched:
                    ok = yield arb.submit_inform(d)
                else:
                    ok = arb.on_inform(d)
                if not ok:
                    yield arb.authorization_event(name)
                yield sim.timeout(float(holds[i]) / 2)
                if batched:
                    arb.submit_release(name, d.total_bytes / 2)
                else:
                    arb.on_release(name, d.total_bytes / 2)
                yield sim.timeout(float(holds[i]) / 2)
                arb.on_complete(name)

        for i in range(napps):
            sim.process(app(i))
        sim.run()
        return arb.decision_log, sim.now

    for seed in (1, 7, 2014):
        log_b, end_b = drive(True, seed)
        log_u, end_u = drive(False, seed)
        assert log_b == log_u, f"seed {seed}: decision logs diverged"
        assert end_b == end_u, f"seed {seed}: end times diverged"


# -- wiring: spec round-trip and perf surfacing -------------------------------

def test_spec_arbiter_options_round_trip():
    spec, = build_scenario("many-writers", napps=3, nservers=2,
                           strategy="fcfs", arbiter={"batched": False})
    assert spec.arbiter == {"decision_log_limit": 10_000, "batched": False}
    clone = ExperimentSpec.from_json(spec.to_json())
    assert clone == spec
    assert clone.arbiter == spec.arbiter


def test_experiment_results_carry_coordination_counters():
    spec, = build_scenario("many-writers", napps=6, nservers=3, phases=2,
                           strategy="fcfs")
    result = ExperimentEngine().run(spec)
    perf = result.perf
    assert perf["coord_decisions"] > 0
    assert perf["coord_rounds"] > 0
    assert perf["coord_exchanges"] >= perf["coord_rounds"]
    assert perf["coord_grants"] >= perf["coord_decisions"] / 2
    assert perf["coord_messages"] > 0
    assert perf["coord_seconds"] > 0


def test_runtime_perf_wiring_through_platform():
    cfg = PlatformConfig(name="tiny", nservers=2, disk_bandwidth=100.0,
                         per_core_bandwidth=10.0, stripe_size=100,
                         latency=1e-5)
    platform = Platform(cfg)
    runtime = CalciomRuntime(platform, strategy="fcfs")
    assert runtime.arbiter.perf is platform.perf
    runtime.arbiter.on_inform(desc("x"))
    assert platform.perf.get("coord_decisions") == 1
