"""Unit + property tests for stripe layout arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import StripeLayout


def test_single_server_gets_everything():
    layout = StripeLayout(nservers=1, stripe_size=100)
    assert layout.partition(0, 1234) == {0: 1234}


def test_round_robin_unit_mapping():
    layout = StripeLayout(nservers=3, stripe_size=10)
    assert layout.server_of(0) == 0
    assert layout.server_of(9) == 0
    assert layout.server_of(10) == 1
    assert layout.server_of(25) == 2
    assert layout.server_of(30) == 0


def test_first_server_rotation():
    layout = StripeLayout(nservers=4, stripe_size=10, first_server=2)
    assert layout.server_of(0) == 2
    assert layout.server_of(10) == 3
    assert layout.server_of(20) == 0


def test_partition_exact_units():
    layout = StripeLayout(nservers=2, stripe_size=10)
    assert layout.partition(0, 40) == {0: 20, 1: 20}


def test_partition_partial_head_and_tail():
    layout = StripeLayout(nservers=2, stripe_size=10)
    # bytes 5..24: server0 gets 5..9 (5B) + 20..24 (5B); server1 gets 10..19.
    assert layout.partition(5, 20) == {0: 10, 1: 10}


def test_partition_small_within_one_unit():
    layout = StripeLayout(nservers=5, stripe_size=100)
    assert layout.partition(250, 30) == {2: 30}


def test_partition_zero_size():
    layout = StripeLayout(nservers=3, stripe_size=10)
    assert layout.partition(100, 0) == {}


def test_chunks_cover_range_in_order():
    layout = StripeLayout(nservers=3, stripe_size=10)
    # Bytes 5..29 span units 0 (5 B tail), 1 (full), 2 (full).
    chunks = list(layout.chunks(5, 25))
    assert sum(c[2] for c in chunks) == 25
    assert [c[0] for c in chunks] == [0, 1, 2]
    assert [c[2] for c in chunks] == [5, 10, 10]


def test_chunks_local_offsets_contiguous_per_server():
    layout = StripeLayout(nservers=2, stripe_size=10)
    # units 0,2 -> server0 local offsets 0,10 ; units 1,3 -> server1 0,10
    chunks = list(layout.chunks(0, 40))
    by_server = {}
    for s, local, n in chunks:
        by_server.setdefault(s, []).append((local, n))
    assert by_server[0] == [(0, 10), (10, 10)]
    assert by_server[1] == [(0, 10), (10, 10)]


def test_invalid_parameters():
    with pytest.raises(ValueError):
        StripeLayout(nservers=0)
    with pytest.raises(ValueError):
        StripeLayout(nservers=1, stripe_size=0)
    layout = StripeLayout(nservers=2, stripe_size=10)
    with pytest.raises(ValueError):
        layout.partition(-1, 10)
    with pytest.raises(ValueError):
        layout.server_of(-5)


@settings(max_examples=200, deadline=None)
@given(
    nservers=st.integers(min_value=1, max_value=40),
    stripe=st.integers(min_value=1, max_value=1 << 20),
    first=st.integers(min_value=0, max_value=100),
    offset=st.integers(min_value=0, max_value=1 << 30),
    size=st.integers(min_value=0, max_value=1 << 26),
)
def test_partition_matches_chunks_and_conserves_bytes(nservers, stripe, first,
                                                      offset, size):
    """Closed-form partition == brute-force chunk walk; bytes conserved."""
    layout = StripeLayout(nservers, stripe, first)
    fast = layout.partition(offset, size)
    slow = {}
    for server, _local, nbytes in layout.chunks(offset, size):
        slow[server] = slow.get(server, 0) + nbytes
    assert fast == slow
    assert sum(fast.values()) == size


@settings(max_examples=100, deadline=None)
@given(
    nservers=st.integers(min_value=1, max_value=16),
    stripe=st.integers(min_value=1, max_value=4096),
    offset=st.integers(min_value=0, max_value=1 << 20),
    size=st.integers(min_value=1, max_value=1 << 18),
)
def test_partition_balance_bound(nservers, stripe, offset, size):
    """No server exceeds another by more than one stripe unit."""
    layout = StripeLayout(nservers, stripe)
    parts = layout.partition(offset, size)
    if len(parts) == nservers:
        spread = max(parts.values()) - min(parts.values())
        assert spread <= 2 * stripe  # head+tail trims at most one unit each
