"""Unit tests for the write-back cache fluid integrator."""

import pytest

from repro.simcore import FluidLink, FlowNetwork, Simulator
from repro.storage import WriteBackCache


def make_cached_pipe(cache_bw=100.0, disk_bw=20.0, capacity=400.0,
                     low_watermark=None):
    sim = Simulator()
    net = FlowNetwork(sim)
    link = FluidLink(cache_bw, "ingest")
    cache = WriteBackCache(sim, net, link, cache_bandwidth=cache_bw,
                           drain_bandwidth=disk_bw, capacity=capacity,
                           low_watermark=low_watermark)
    return sim, net, link, cache


def test_small_write_runs_at_cache_speed():
    sim, net, link, cache = make_cached_pipe()
    flow = net.start_flow(300.0, [link])  # fits in the 400 B pool
    sim.run(until=flow.done)
    assert sim.now == pytest.approx(3.0)  # 300 B at 100 B/s
    assert not cache.throttled


def test_dirty_accumulates_at_net_rate():
    sim, net, link, cache = make_cached_pipe()
    net.start_flow(300.0, [link])
    sim.run(until=2.0)
    # 2 s of (100 in - 20 drain) = 160 dirty.
    assert cache.dirty_now == pytest.approx(160.0)


def test_large_write_throttles_to_disk_speed():
    sim, net, link, cache = make_cached_pipe()
    flow = net.start_flow(2000.0, [link])
    sim.run(until=flow.done)
    # Pool fills after 400/(100-20) = 5 s (500 B ingested);
    # remaining 1500 B at disk speed 20 B/s = 75 s. Total 80 s.
    assert sim.now == pytest.approx(80.0)
    assert cache.throttled


def test_idle_period_drains_pool():
    sim, net, link, cache = make_cached_pipe()
    f = net.start_flow(300.0, [link])
    sim.run(until=f.done)           # t=3, dirty=240
    sim.run(until=3.0 + 240.0 / 20.0 + 1.0)
    assert cache.dirty_now == pytest.approx(0.0)


def test_periodic_writer_sees_cache_speed_when_pool_drains():
    """The Fig 3 'without interference' behaviour."""
    sim, net, link, cache = make_cached_pipe(capacity=400.0)

    times = []

    def writer():
        for _ in range(3):
            t0 = sim.now
            flow = net.start_flow(200.0, [link])
            yield flow.done
            times.append(sim.now - t0)
            yield sim.timeout(15.0)  # 15 s drains 200 B at 20 B/s -> pool empty

    sim.process(writer())
    sim.run()
    for t in times:
        assert t == pytest.approx(2.0)  # always cache speed


def test_colliding_writers_overflow_and_collapse():
    """The Fig 3 'with interference' collapse."""
    sim, net, link, cache = make_cached_pipe(capacity=400.0)
    f1 = net.start_flow(400.0, [link])
    f2 = net.start_flow(400.0, [link])
    sim.run(until=f1.done)
    # Joint 800 B >> pool: fills at t=400/(100-20)=5 s (each moved 250 B);
    # the remaining 300 B drain at the 20 B/s disk rate -> 15 s more.
    assert f1.finish_time == pytest.approx(20.0)
    assert cache.throttled  # still full the instant the writes finish
    sim.run()
    assert f2.finish_time == pytest.approx(20.0)
    assert not cache.throttled  # the idle pool has drained and reopened


def test_throttle_reopens_at_low_watermark():
    sim, net, link, cache = make_cached_pipe(capacity=400.0, low_watermark=100.0)
    f = net.start_flow(600.0, [link])
    sim.run(until=f.done)
    assert cache.throttled
    # Drain from 400 to 100 at 20 B/s = 15 s after the flow ends.
    sim.run(until=sim.now + 15.5)
    assert not cache.throttled
    assert link.capacity == pytest.approx(100.0)


def test_invalid_configuration_rejected():
    sim = Simulator()
    net = FlowNetwork(sim)
    link = FluidLink(100.0)
    with pytest.raises(ValueError):
        WriteBackCache(sim, net, link, cache_bandwidth=10.0,
                       drain_bandwidth=20.0, capacity=100.0)
    with pytest.raises(ValueError):
        WriteBackCache(sim, net, link, cache_bandwidth=100.0,
                       drain_bandwidth=20.0, capacity=0.0)
    with pytest.raises(ValueError):
        WriteBackCache(sim, net, link, cache_bandwidth=100.0,
                       drain_bandwidth=20.0, capacity=100.0,
                       low_watermark=100.0)


def test_dirty_series_recording():
    sim = Simulator()
    net = FlowNetwork(sim)
    link = FluidLink(100.0)
    cache = WriteBackCache(sim, net, link, cache_bandwidth=100.0,
                           drain_bandwidth=20.0, capacity=400.0, record=True)
    f = net.start_flow(300.0, [link])
    sim.run()
    assert cache.dirty_series is not None
    assert len(cache.dirty_series) >= 1
    assert cache.dirty_series.values.max() <= 400.0
