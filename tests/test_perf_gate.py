"""The CI perf-regression gate over BENCH_*.json records.

The gate compares *achieved speedups* (optimized path vs retained oracle,
measured within one run on one machine) rather than raw wall-clock, so a
committed record from one machine gates a CI runner without tripping on
hardware speed; a >2x wall-clock regression of the optimized path alone
shows up exactly as a >2x speedup collapse.
"""

import pytest

from repro.perf import check_perf_regression


def kernel_record(speedup, napps=200, wall=0.05):
    return {
        "benchmark": "scale_kernel",
        "config": {"napps": napps, "nservers": 40},
        "incremental": {"wall_seconds": wall, "events_processed": 5000},
        "global": {"wall_seconds": wall * speedup, "events_processed": 5000},
        "speedup": speedup,
    }


def arbiter_record(speedups_by_scale, phases=3, wall=0.01):
    return {
        "benchmark": "scale_arbiter",
        "config": {"scales": sorted(map(int, speedups_by_scale)),
                   "phases": phases, "rounds": 3, "strategy": "dynamic",
                   "full_scale": max(map(int, speedups_by_scale)) >= 500},
        "scales": {
            scale: {"batched": {"coord_seconds": wall,
                                "coord_decisions": 1000},
                    "unbatched": {"coord_seconds": wall * speedup,
                                  "coord_decisions": 1000},
                    "speedup": speedup}
            for scale, speedup in speedups_by_scale.items()
        },
    }


def churn_record(speedups_by_scale, stable=100):
    return {
        "config": {"phases": 3, "stable_per_server": stable,
                   "apps_per_server": 125, "seed": 1,
                   "full_scale": True,
                   "scales": sorted(speedups_by_scale, key=float)},
        "scales": {
            scale: {"baseline_wall_seconds": 1.0 * speedup,
                    "cached_wall_seconds": 1.0, "speedup": speedup}
            for scale, speedup in speedups_by_scale.items()
        },
        "identical_completion_times": True,
    }


def with_churn(record, churn):
    record["churn"] = churn
    return record


def test_kernel_gate_fails_on_speedup_collapse():
    ok, msg = check_perf_regression(kernel_record(80.0), kernel_record(200.0),
                                    "kernel")
    assert not ok and "collapse" in msg
    ok, _ = check_perf_regression(kernel_record(150.0), kernel_record(200.0),
                                  "kernel")
    assert ok


def test_kernel_gate_is_hardware_independent():
    # A 3x slower machine scales both paths' wall-clock equally: the
    # speedup is unchanged and the gate must pass.
    slow_machine = kernel_record(200.0, wall=0.15)
    ok, _ = check_perf_regression(slow_machine, kernel_record(200.0, wall=0.05),
                                  "kernel")
    assert ok


def test_kernel_gate_skips_on_differing_config():
    ok, msg = check_perf_regression(kernel_record(20.0, napps=60),
                                    kernel_record(200.0, napps=200), "kernel")
    assert ok and "skipping gate" in msg


def test_kernel_gate_covers_churn_scales():
    committed = with_churn(kernel_record(200.0),
                           churn_record({"500": 5.0, "1000": 4.0}))
    # Reduced smoke config: only the 500-app churn scale was run; the gate
    # compares at the largest common scale.
    fresh_ok = with_churn(kernel_record(180.0), churn_record({"500": 4.5}))
    ok, _ = check_perf_regression(fresh_ok, committed, "kernel")
    assert ok
    fresh_bad = with_churn(kernel_record(180.0), churn_record({"500": 1.5}))
    ok, msg = check_perf_regression(fresh_bad, committed, "kernel")
    assert not ok and "kernel-churn@500" in msg


def test_kernel_gate_skips_churn_on_differing_workload():
    """An incomparable churn workload must not swallow the base gate."""
    committed = with_churn(kernel_record(200.0), churn_record({"500": 5.0}))
    fresh = with_churn(kernel_record(200.0),
                       churn_record({"500": 1.0}, stable=10))
    ok, msg = check_perf_regression(fresh, committed, "kernel")
    assert ok and "kernel:" in msg  # fell through to the base comparison
    # ... and a base-speedup collapse still fails despite the churn skip.
    collapsed = with_churn(kernel_record(40.0),
                           churn_record({"500": 9.0}, stable=10))
    ok, msg = check_perf_regression(collapsed, committed, "kernel")
    assert not ok and "collapse" in msg
    # Records without a churn section still gate on the base speedup.
    ok, _ = check_perf_regression(kernel_record(150.0), committed, "kernel")
    assert ok


def hyperscale_record(speedups_by_scale, waves=16):
    return {
        "config": {"waves": waves, "links": 8, "gap_seconds": 1.0,
                   "capacity": 1e9, "utilization": 1.5,
                   "weights": [1.0, 2.0, 4.0, 8.0],
                   "full_scale": True,
                   "scales": sorted(speedups_by_scale, key=float)},
        "scales": {
            scale: {"incremental_wall_seconds": 1.0 * speedup,
                    "vectorized_wall_seconds": 1.0, "speedup": speedup}
            for scale, speedup in speedups_by_scale.items()
        },
        "identical_completion_times": True,
    }


def with_hyperscale(record, hyperscale):
    record["hyperscale"] = hyperscale
    return record


def test_kernel_gate_covers_hyperscale_scales():
    committed = with_hyperscale(
        kernel_record(200.0),
        hyperscale_record({"10000": 3.6, "100000": 6.5, "1000000": 6.0}))
    # Reduced smoke config: the 10^6 scale was not run; the gate compares
    # at the largest common scale (10^5 here).
    fresh_ok = with_hyperscale(
        kernel_record(180.0), hyperscale_record({"10000": 3.5, "100000": 6.0}))
    ok, _ = check_perf_regression(fresh_ok, committed, "kernel")
    assert ok
    fresh_bad = with_hyperscale(
        kernel_record(180.0), hyperscale_record({"10000": 3.5, "100000": 2.0}))
    ok, msg = check_perf_regression(fresh_bad, committed, "kernel")
    assert not ok and "kernel-hyperscale@100000" in msg


def test_kernel_gate_skips_hyperscale_loudly_on_one_sided_regime():
    """A record that predates the vectorized kernel lacks the hyperscale
    regime entirely: the gate must skip the sub-gate with a note — not
    raise — and still run the base comparison."""
    committed = kernel_record(200.0)  # no hyperscale section
    fresh = with_hyperscale(kernel_record(190.0),
                            hyperscale_record({"10000": 3.5}))
    ok, msg = check_perf_regression(fresh, committed, "kernel")
    assert ok
    assert "kernel-hyperscale" in msg and "lacks the regime" in msg
    # The other side: fresh smoke run without the hyperscale benchmark.
    ok, msg = check_perf_regression(committed, fresh, "kernel")
    assert ok
    assert "kernel-hyperscale" in msg and "lacks the regime" in msg


def test_kernel_gate_skips_hyperscale_on_differing_workload():
    committed = with_hyperscale(kernel_record(200.0),
                                hyperscale_record({"10000": 3.6}))
    fresh = with_hyperscale(kernel_record(200.0),
                            hyperscale_record({"10000": 1.0}, waves=4))
    ok, msg = check_perf_regression(fresh, committed, "kernel")
    assert ok and "workload parameters differ" in msg


def test_kernel_gate_skips_missing_base_speedup_loudly():
    """A record with only regime sub-records (no base decision-free
    speedup) must skip the base gate with a message, not KeyError."""
    committed = with_hyperscale(kernel_record(200.0),
                                hyperscale_record({"10000": 3.6}))
    fresh = with_hyperscale({"benchmark": "scale_kernel",
                             "config": {"napps": 200, "nservers": 40}},
                            hyperscale_record({"10000": 3.5}))
    ok, msg = check_perf_regression(fresh, committed, "kernel")
    assert ok and "lacks the base" in msg
    # ... but a hyperscale collapse still fails even without a base.
    collapsed = with_hyperscale({"benchmark": "scale_kernel",
                                 "config": {"napps": 200, "nservers": 40}},
                                hyperscale_record({"10000": 1.0}))
    ok, msg = check_perf_regression(collapsed, committed, "kernel")
    assert not ok and "kernel-hyperscale@10000" in msg


def test_arbiter_gate_uses_largest_common_scale():
    committed = arbiter_record({"100": 2.0, "500": 8.0, "1000": 15.0})
    fresh = arbiter_record({"60": 1.5, "100": 1.9})
    ok, msg = check_perf_regression(fresh, committed, "arbiter")
    assert ok and "arbiter@100" in msg
    collapsed = arbiter_record({"60": 1.0, "100": 0.9})
    ok, msg = check_perf_regression(collapsed, committed, "arbiter")
    assert not ok and "arbiter@100" in msg


def test_arbiter_gate_skips_on_disjoint_scales():
    ok, msg = check_perf_regression(arbiter_record({"60": 1.5}),
                                    arbiter_record({"500": 8.0}), "arbiter")
    assert ok and "no scale" in msg


def test_arbiter_gate_skips_on_differing_workload_parameters():
    # Same scale but different phases-per-app: speedups not comparable.
    ok, msg = check_perf_regression(arbiter_record({"100": 1.0}, phases=9),
                                    arbiter_record({"100": 2.0}, phases=3),
                                    "arbiter")
    assert ok and "not comparable" in msg


def shard_record(speedups, phases=3, wall=0.01):
    """``speedups``: {scale: {nshards: speedup}} (1-shard baseline = 1.0)."""
    return {
        "benchmark": "scale_shards",
        "config": {"scales": sorted(map(int, speedups)),
                   "shard_counts": [1, 4, 8], "npartitions": 8,
                   "phases": phases, "dt_arrival": 0.05,
                   "strategy": "fcfs-audited",
                   "full_scale": max(map(int, speedups)) >= 1000},
        "scales": {
            scale: {
                nshards: {"perf": {"coord_seconds": wall / speedup,
                                   "coord_decisions": 3000},
                          "speedup": speedup,
                          "mean_waiting_depth": 100.0}
                for nshards, speedup in per_shardcount.items()
            }
            for scale, per_shardcount in speedups.items()
        },
    }


def test_shard_gate_uses_largest_common_scale_and_shard_count():
    committed = shard_record({"500": {"1": 1.0, "8": 3.0},
                              "1000": {"1": 1.0, "8": 4.5}})
    fresh = shard_record({"500": {"1": 1.0, "8": 2.8},
                          "1000": {"1": 1.0, "8": 4.0}})
    ok, msg = check_perf_regression(fresh, committed, "shard")
    assert ok and "shard@1000x8" in msg
    collapsed = shard_record({"1000": {"1": 1.0, "8": 1.5}})
    ok, msg = check_perf_regression(collapsed, committed, "shard")
    assert not ok and "shard@1000x8" in msg


def process_subrecord(speedup_cpu, cores=8, napps=2000):
    return {
        "config": {"napps": napps, "nshards": 8, "dt_wave": 0.01,
                   "phases": 3, "strategy": "fcfs-wave-audit",
                   "cores": cores, "full_scale": napps >= 2000},
        "inline": {"coord_seconds": 3.0, "coord_wall_seconds": 3.0},
        "process": {"coord_seconds": 3.0 / speedup_cpu,
                    "coord_wall_seconds": 3.0 / speedup_cpu},
        "speedup_wall": speedup_cpu,
        "speedup_cpu": speedup_cpu,
    }


def test_shard_gate_process_subrecord():
    committed = shard_record({"1000": {"1": 1.0, "8": 4.0}})
    committed["process"] = process_subrecord(2.0, cores=8)
    # CPU speedup collapse fails the gate even when the main regime holds.
    fresh = shard_record({"1000": {"1": 1.0, "8": 4.0}})
    fresh["process"] = process_subrecord(0.5, cores=1)
    ok, msg = check_perf_regression(fresh, committed, "shard")
    assert not ok and "shard-process" in msg
    # A matching speedup passes — core count is ignored for comparability
    # (CPU seconds are hardware-stable; only wall-clock depends on cores).
    fresh["process"] = process_subrecord(1.8, cores=1)
    ok, msg = check_perf_regression(fresh, committed, "shard")
    assert ok and "shard@1000x8" in msg
    # A different wave workload skips the sub-gate, not the whole gate.
    fresh["process"] = process_subrecord(0.5, napps=400)
    ok, msg = check_perf_regression(fresh, committed, "shard")
    assert ok and "shard@1000x8" in msg
    # Records without the sub-record (pre-process-mode) still gate.
    del fresh["process"]
    ok, msg = check_perf_regression(fresh, committed, "shard")
    assert ok and "shard@1000x8" in msg


def test_shard_gate_skips_on_mismatches():
    ok, msg = check_perf_regression(shard_record({"250": {"1": 1.0, "8": 2.0}}),
                                    shard_record({"1000": {"1": 1.0, "8": 4.0}}),
                                    "shard")
    assert ok and "no scale" in msg
    ok, msg = check_perf_regression(
        shard_record({"1000": {"1": 1.0, "8": 2.0}}, phases=9),
        shard_record({"1000": {"1": 1.0, "8": 4.0}}, phases=3), "shard")
    assert ok and "not comparable" in msg
    # Reduced smoke scales (a config-list subset) still gate: the scale
    # list itself is ignored, only per-scale workload parameters matter.
    ok, msg = check_perf_regression(
        shard_record({"500": {"1": 1.0, "8": 2.9}, "1000": {"1": 1.0, "8": 4.2}}),
        shard_record({"500": {"1": 1.0, "8": 3.0}, "1000": {"1": 1.0, "8": 4.5},
                      "2000": {"1": 1.0, "8": 6.0}}),
        "shard")
    assert ok and "shard@1000x8" in msg


def service_record(speedups_by_clients, napps=32, phases=3):
    """``speedups_by_clients``: {nclients: over-the-wire/in-process ratio}."""
    return {
        "benchmark": "scale_service",
        "config": {"napps": napps, "nservers": 8, "phases": phases,
                   "strategy": "fcfs", "seed": 1,
                   "scales": sorted(map(int, speedups_by_clients)),
                   "full_scale": max(map(int, speedups_by_clients)) >= 8},
        "scales": {
            nclients: {"speedup": speedup,
                       "service_rate": 3000.0 * speedup,
                       "inproc_rate": 3000.0,
                       "p50_latency_s": 1e-4, "p99_latency_s": 2e-3,
                       "decisions": 96, "exchanges": 480,
                       "wall_seconds": 0.03,
                       "identical_decision_log": True}
            for nclients, speedup in speedups_by_clients.items()
        },
    }


def test_service_gate_uses_largest_common_client_count():
    committed = service_record({"1": 0.55, "4": 0.52, "8": 0.48})
    fresh = service_record({"1": 0.50, "4": 0.45})
    ok, msg = check_perf_regression(fresh, committed, "service")
    assert ok and "service@4" in msg
    collapsed = service_record({"1": 0.50, "4": 0.20})
    ok, msg = check_perf_regression(collapsed, committed, "service")
    assert not ok and "service@4" in msg and "collapse" in msg


def test_service_gate_skips_on_mismatches():
    ok, msg = check_perf_regression(service_record({"2": 0.5}),
                                    service_record({"8": 0.5}), "service")
    assert ok and "no scale" in msg
    ok, msg = check_perf_regression(service_record({"8": 0.5}, napps=64),
                                    service_record({"8": 0.5}, napps=32),
                                    "service")
    assert ok and "not comparable" in msg


def codec_subrecord(speedup, nclients=8, napps=32, phases=3):
    """The binary-vs-JSON codec sub-record of ``BENCH_service.json``."""
    return {
        "config": {"napps": napps, "nservers": 8, "phases": phases,
                   "strategy": "fcfs", "seed": 1, "nclients": nclients,
                   "json_pipeline": 1, "binary_pipeline": 64},
        "speedup": speedup,
        "json_rate": 5000.0,
        "binary_rate": 5000.0 * speedup,
        "identical_decision_log": True,
    }


def test_service_codec_subgate_fails_on_collapse():
    committed = service_record({"8": 0.5})
    committed["codec"] = codec_subrecord(2.4)
    fresh = service_record({"8": 0.5})
    fresh["codec"] = codec_subrecord(2.2)
    ok, msg = check_perf_regression(fresh, committed, "service")
    assert ok
    fresh["codec"] = codec_subrecord(1.0)
    ok, msg = check_perf_regression(fresh, committed, "service")
    assert not ok and "service-codec" in msg and "collapse" in msg


def test_service_codec_subgate_skips_loudly_when_one_sided():
    committed = service_record({"8": 0.5})
    fresh = service_record({"8": 0.5})
    fresh["codec"] = codec_subrecord(2.4)
    ok, msg = check_perf_regression(fresh, committed, "service")
    assert ok and "service-codec" in msg and "lacks the sub-record" in msg
    ok, msg = check_perf_regression(committed, fresh, "service")
    assert ok and "service-codec" in msg and "lacks the sub-record" in msg


def test_service_codec_subgate_skips_on_differing_workload():
    committed = service_record({"8": 0.5})
    committed["codec"] = codec_subrecord(2.4, nclients=8)
    fresh = service_record({"8": 0.5})
    fresh["codec"] = codec_subrecord(1.0, nclients=4)
    ok, msg = check_perf_regression(fresh, committed, "service")
    assert ok and "service-codec" in msg and "differ" in msg


def test_custom_factor_and_unknown_kind():
    fresh, committed = kernel_record(150.0), kernel_record(200.0)
    ok, _ = check_perf_regression(fresh, committed, "kernel", factor=1.2)
    assert not ok
    ok, _ = check_perf_regression(fresh, committed, "kernel", factor=2.0)
    assert ok
    with pytest.raises(ValueError, match="unknown benchmark kind"):
        check_perf_regression(fresh, committed, "frobnicator")


def sim_record(speedups_by_scale, slots=64):
    return {
        "dispatch": {
            "benchmark": "scale_sim_dispatch",
            "config": {"slots": slots, "churn": 8, "wave_width": 512,
                       "wave_depth": 4, "seed": 1,
                       "full_scale": max(map(int, speedups_by_scale)) >= 10**6,
                       "scales": sorted(speedups_by_scale, key=float)},
            "scales": {
                scale: {"oracle_wall": 1.0 * speedup, "heap_wall": 1.0,
                        "speedup": speedup}
                for scale, speedup in speedups_by_scale.items()
            },
            "identical_decision_logs": True,
        },
    }


def test_sim_gate_uses_largest_common_scale():
    committed = sim_record({"10000": 2.1, "100000": 2.8, "1000000": 3.4})
    # Reduced smoke config: compare at the largest scale both sides ran.
    fresh_ok = sim_record({"10000": 2.0, "100000": 2.7})
    ok, msg = check_perf_regression(fresh_ok, committed, "sim")
    assert ok and "sim-dispatch@100000" in msg
    fresh_bad = sim_record({"10000": 2.0, "100000": 1.1})
    ok, msg = check_perf_regression(fresh_bad, committed, "sim")
    assert not ok and "sim-dispatch@100000" in msg


def test_sim_gate_skips_loudly_on_one_sided_regime():
    """A BENCH_sim.json that predates (or postdates) the dispatch regime
    on one side must skip with a note, not KeyError."""
    committed = sim_record({"1000000": 3.4})
    fresh = {"dispatch": {}}
    ok, msg = check_perf_regression(fresh, committed, "sim")
    assert ok and "sim-dispatch" in msg and "lacks the regime" in msg
    ok, msg = check_perf_regression(committed, fresh, "sim")
    assert ok and "sim-dispatch" in msg and "lacks the regime" in msg
    ok, msg = check_perf_regression({"dispatch": {}}, {"dispatch": {}}, "sim")
    assert ok and "neither record has the regime" in msg


def test_sim_gate_skips_on_mismatches():
    committed = sim_record({"1000000": 3.4})
    # Disjoint scales: nothing comparable.
    ok, msg = check_perf_regression(sim_record({"10000": 2.0}),
                                    committed, "sim")
    assert ok and "share no scale" in msg
    # Differing workload shape: speedups are not comparable.
    ok, msg = check_perf_regression(sim_record({"1000000": 1.0}, slots=8),
                                    committed, "sim")
    assert ok and "workload parameters differ" in msg
    # Scale list / full_scale flag alone must NOT trip the config check —
    # that is exactly what a reduced CI smoke run looks like.
    fresh = sim_record({"10000": 2.0, "1000000": 3.3})
    ok, msg = check_perf_regression(fresh, committed, "sim")
    assert ok and "sim-dispatch@1000000" in msg
