"""The service's headline guarantee: decisions over the wire are
bit-identical to the in-process run.

Every test records a real ``service-many-writers`` run through the
:class:`~repro.service.trace.RecordingRouter` seam, replays the trace
through a self-hosted daemon with N concurrent clients, and compares the
daemon's decision log against the in-process reference as *strings* via
the canonical serialization (``decisions_to_json``) — not approximately,
not field-by-field: the same bytes.
"""

import asyncio
import hashlib
import random

import pytest

from repro.experiments.scenarios import build_scenario
from repro.service.loadgen import run_service_benchmark
from repro.service.protocol import decisions_to_json
from repro.service.trace import CoordinationTrace, record_trace

_TIMEOUT = 120.0


def _spec(strategy, seed, napps=8, phases=2):
    return build_scenario("service-many-writers", napps=napps, nservers=4,
                          phases=phases, seed=seed, strategy=strategy)[0]


def _roundtrip(strategy, seed, nclients, napps=8, phases=2,
               trace_hop=False):
    """Record in-process, replay over the wire, demand identical logs."""
    spec = _spec(strategy, seed, napps=napps, phases=phases)

    async def go():
        trace, result = record_trace(spec)
        if trace_hop:
            # Persisted-trace path: JSON round trip must not cost fidelity.
            trace = CoordinationTrace.from_json(trace.to_json())
        stats, service = await run_service_benchmark(
            spec, nclients,
            trace_and_reference=(trace, result.decisions,
                                 float(result.perf["wall_seconds"])))
        return result, stats, service

    result, stats, service = asyncio.run(asyncio.wait_for(go(), _TIMEOUT))
    reference = decisions_to_json(result.decisions)
    assert stats.equivalent, (
        f"digest diverged for {strategy} seed={seed} nclients={nclients}")
    assert decisions_to_json(service.decision_log) == reference
    assert stats.decisions == len(result.decisions) > 0
    expected_sha = hashlib.sha256(reference.encode("utf-8")).hexdigest()
    assert stats.digest == expected_sha
    return stats


@pytest.mark.parametrize("strategy", ["fcfs", "interrupt", "dynamic"])
def test_wire_equivalence_across_strategies(strategy):
    _roundtrip(strategy, seed=19, nclients=3)


@pytest.mark.parametrize("nclients", [1, 2, 5])
def test_wire_equivalence_across_client_counts(nclients):
    _roundtrip("fcfs", seed=7, nclients=nclients)


def test_wire_equivalence_randomized_traces():
    """Seeds and client counts drawn at random: no hand-picked cases."""
    rng = random.Random(0xCA1C10)
    for _ in range(4):
        strategy = rng.choice(["fcfs", "dynamic", "interrupt"])
        _roundtrip(strategy,
                   seed=rng.randrange(10_000),
                   nclients=rng.randint(1, 4),
                   napps=rng.choice([4, 6, 10]),
                   phases=rng.randint(1, 2))


def test_wire_equivalence_survives_trace_serialization():
    _roundtrip("dynamic", seed=23, nclients=2, trace_hop=True)


def test_exchange_counts_match_trace():
    spec = _spec("fcfs", seed=5)

    async def go():
        trace, result = record_trace(spec)
        stats, service = await run_service_benchmark(
            spec, 2,
            trace_and_reference=(trace, result.decisions,
                                 float(result.perf["wall_seconds"])))
        return trace, stats, service

    trace, stats, service = asyncio.run(asyncio.wait_for(go(), _TIMEOUT))
    assert stats.exchanges == len(trace)
    counters = service.perf.as_dict()
    assert counters["service_exchanges_applied"] == len(trace)
    assert service.health()["next_seq"] == len(trace)
    # Every exchange's round trip was measured.
    assert len(stats.latencies) == len(trace)
    assert stats.p99_latency_s >= stats.p50_latency_s >= 0.0
