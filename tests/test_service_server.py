"""Daemon behaviour tests: admission control, crash semantics, backpressure,
and the ops (healthz/metrics/drain) HTTP contract.

Each test hosts a real :class:`CoordinationService` on an ephemeral
localhost port inside ``asyncio.run`` (the repo takes no async test
dependencies) and talks to it over genuine sockets.
"""

import asyncio
import json

import pytest

from repro.core.metrics import AccessDescriptor
from repro.experiments.scenarios import build_scenario
from repro.service.client import AdmissionRejected, ServiceClient
from repro.service.protocol import (
    descriptor_to_dict, read_message, write_message,
)
from repro.service.server import CoordinationService, ServiceConfig
from repro.service.trace import spec_fingerprint

_TIMEOUT = 30.0


def _spec(napps=4, phases=1, strategy="fcfs", seed=11):
    return build_scenario("service-many-writers", napps=napps, nservers=4,
                          phases=phases, seed=seed, strategy=strategy)[0]


def _run(coro):
    return asyncio.run(asyncio.wait_for(coro, _TIMEOUT))


async def _start(spec=None, **config) -> CoordinationService:
    service = CoordinationService(spec or _spec(), ServiceConfig(**config))
    await service.start()
    return service


async def _eventually(predicate, timeout=5.0) -> bool:
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(0.01)
    return predicate()


def _descriptor(app: str) -> AccessDescriptor:
    return AccessDescriptor(app=app, nprocs=16, total_bytes=1_000_000.0,
                            t_alone=5.0)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

def test_admission_at_capacity():
    async def go():
        service = await _start(max_sessions=2)
        host, port = service.address
        first = await ServiceClient.connect(host, port, ["a", "b"])
        try:
            with pytest.raises(AdmissionRejected) as err:
                await ServiceClient.connect(host, port, ["c"])
            assert err.value.reason == "at-capacity"
            assert service.perf.as_dict()["service_rejections"] == 1
        finally:
            await first.close()
            await service.close()

    _run(go())


def test_admission_rejects_while_draining():
    async def go():
        service = await _start()
        host, port = service.address
        # Flag-only: the listener is still up, so the rejection (not a
        # connect error) is what a racing client observes.
        service.draining = True
        try:
            with pytest.raises(AdmissionRejected) as err:
                await ServiceClient.connect(host, port, ["a"])
            assert err.value.reason == "draining"
        finally:
            await service.close()

    _run(go())


def test_admission_duplicate_app_and_empty_hello():
    async def go():
        service = await _start()
        host, port = service.address
        first = await ServiceClient.connect(host, port, ["a"])
        try:
            with pytest.raises(AdmissionRejected) as err:
                await ServiceClient.connect(host, port, ["b", "a"])
            assert err.value.reason == "duplicate-app"
            with pytest.raises(AdmissionRejected) as err:
                await ServiceClient.connect(host, port, [])
            assert "no apps" in err.value.reason
        finally:
            await first.close()
            await service.close()

    _run(go())


def test_admission_spec_fingerprint():
    async def go():
        spec = _spec()
        sha = spec_fingerprint(spec)
        service = await _start(spec=spec, spec_sha=sha)
        host, port = service.address
        try:
            with pytest.raises(AdmissionRejected) as err:
                await ServiceClient.connect(host, port, ["a"],
                                            spec_sha="f" * 16)
            assert err.value.reason == "spec-mismatch"
            # The right fingerprint — and no fingerprint — are admitted.
            matching = await ServiceClient.connect(host, port, ["a"],
                                                   spec_sha=sha)
            await matching.close()
            agnostic = await ServiceClient.connect(host, port, ["b"])
            await agnostic.close()
        finally:
            await service.close()

    _run(go())


# ---------------------------------------------------------------------------
# Live mode: sessions, grants, crash semantics
# ---------------------------------------------------------------------------

def test_live_session_reaches_arbiter_and_frees_capacity():
    async def go():
        service = await _start()
        host, port = service.address
        client = await ServiceClient.connect(host, port, ["w1"])
        try:
            session = client.session("w1")
            assert await session.inform(_descriptor("w1")) is True
            assert service.coordinator.is_authorized("w1")
            await session.complete()
            assert not service.coordinator.is_authorized("w1")
        finally:
            await client.close()
            await service.close()

    _run(go())


def test_live_grant_pushed_when_predecessor_completes():
    async def go():
        service = await _start()
        host, port = service.address
        client = await ServiceClient.connect(host, port, ["g1", "g2"])
        try:
            ahead, behind = client.session("g1"), client.session("g2")
            assert await ahead.inform(_descriptor("g1")) is True
            # FCFS queues the second writer behind the first.
            assert await behind.inform(_descriptor("g2")) is False
            await ahead.complete()
            grant = await behind.wait_grant(timeout=5.0)
            assert grant["app"] == "g2"
            assert service.coordinator.is_authorized("g2")
            assert service.perf.as_dict()["service_grants_pushed"] == 1
        finally:
            await client.close()
            await service.close()

    _run(go())


def test_live_disconnect_withdraws_sessions():
    async def go():
        service = await _start()
        host, port = service.address
        crasher = await ServiceClient.connect(host, port, ["w1"])
        assert await crasher.session("w1").inform(_descriptor("w1"))
        assert service.coordinator.is_authorized("w1")
        await crasher.abort()  # vanish without bye
        try:
            assert await _eventually(lambda: not service._connections)
            assert not service.coordinator.is_authorized("w1")
            counters = service.perf.as_dict()
            assert counters["service_crash_withdrawals"] == 1
            assert counters["service_abnormal_disconnects"] == 1
        finally:
            await service.close()

    _run(go())


def test_clean_bye_keeps_authorizations():
    async def go():
        service = await _start()
        host, port = service.address
        client = await ServiceClient.connect(host, port, ["w1"])
        assert await client.session("w1").inform(_descriptor("w1"))
        await client.close()
        try:
            assert await _eventually(lambda: not service._connections)
            # A clean bye is not a crash: no forced withdrawal.
            assert service.coordinator.is_authorized("w1")
            counters = service.perf.as_dict()
            assert counters.get("service_crash_withdrawals", 0) == 0
            assert counters.get("service_abnormal_disconnects", 0) == 0
        finally:
            await service.close()

    _run(go())


# ---------------------------------------------------------------------------
# Replay sequencing and backpressure
# ---------------------------------------------------------------------------

async def _raw_replay_connection(host, port, apps):
    reader, writer = await asyncio.open_connection(host, port)
    await write_message(writer, {"type": "hello", "apps": apps,
                                 "mode": "replay", "spec_sha": None})
    welcome = await read_message(reader)
    assert welcome["type"] == "welcome"
    return reader, writer


def test_sequencer_buffers_and_backpressures_out_of_order_entries():
    async def go():
        service = await _start(max_pending=2)
        host, port = service.address
        ra, wa = await _raw_replay_connection(host, port, ["a"])
        rb, wb = await _raw_replay_connection(host, port, ["b"])
        try:
            # Connection A races ahead: its entries (seq 1, 2) arrive
            # before the global head (seq 0, owned by connection B).
            await write_message(wa, {
                "type": "inform", "seq": 1, "t": 0.0,
                "descriptor": descriptor_to_dict(_descriptor("a"))})
            await write_message(wa, {
                "type": "complete", "seq": 2, "t": 1.0, "app": "a"})
            counters = service.perf.as_dict
            assert await _eventually(
                lambda: counters().get("service_reordered_frames") == 2)
            assert counters()["service_backpressure_stalls"] == 1
            assert service.health()["pending"] == 2

            # The head arrives; the sequencer drains everything buffered.
            await write_message(wb, {
                "type": "inform", "seq": 0, "t": 0.0,
                "descriptor": descriptor_to_dict(_descriptor("b"))})
            acks_a = [await read_message(ra), await read_message(ra)]
            assert [a["seq"] for a in acks_a] == [1, 2]
            assert acks_a[0]["type"] == "inform-ack"
            ack_b = await read_message(rb)
            assert (ack_b["type"], ack_b["seq"]) == ("inform-ack", 0)
            assert service.health()["next_seq"] == 3

            await write_message(wb, {"type": "complete", "seq": 3,
                                     "t": 1.0, "app": "b"})
            assert (await read_message(rb))["seq"] == 3
        finally:
            for w in (wa, wb):
                w.close()
            await service.close()

    _run(go())


def test_sequencer_rejects_duplicate_seq():
    async def go():
        service = await _start()
        host, port = service.address
        reader, writer = await _raw_replay_connection(host, port, ["a"])
        try:
            inform = {"type": "inform", "seq": 0, "t": 0.0,
                      "descriptor": descriptor_to_dict(_descriptor("a"))}
            await write_message(writer, inform)
            ack = await read_message(reader)
            assert ack["type"] == "inform-ack"
            await write_message(writer, dict(inform))  # replayed seq 0
            error = await read_message(reader)
            assert error["type"] == "error"
            assert "duplicate seq" in error["reason"]
        finally:
            writer.close()
            await service.close()

    _run(go())


# ---------------------------------------------------------------------------
# The ops surface
# ---------------------------------------------------------------------------

async def _http(host, port, method, path):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"{method} {path} HTTP/1.0\r\n\r\n".encode("ascii"))
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), body


def test_ops_healthz_metrics_and_drain():
    async def go():
        service = await _start(ops_port=0)
        host, port = service.ops_address
        coord_host, coord_port = service.address
        client = await ServiceClient.connect(coord_host, coord_port, ["a"])

        status, body = await _http(host, port, "GET", "/healthz")
        health = json.loads(body)
        assert status == 200
        assert health["status"] == "ok"
        assert health["sessions"] == 1

        status, body = await _http(host, port, "GET", "/metrics")
        text = body.decode("utf-8")
        assert status == 200
        assert "# TYPE service_sessions_active gauge" in text
        assert "service_sessions_active 1" in text
        assert "service_draining 0" in text

        status, _ = await _http(host, port, "GET", "/no-such-route")
        assert status == 404

        status, body = await _http(host, port, "POST", "/drain")
        assert status == 202
        await client.close()
        await asyncio.wait_for(service._drained.wait(), 5.0)

        status, body = await _http(host, port, "GET", "/healthz")
        assert status == 503
        assert json.loads(body)["status"] == "draining"
        await service.close()

    _run(go())


def test_drain_times_out_on_stuck_connection():
    async def go():
        service = await _start()
        host, port = service.address
        stuck = await ServiceClient.connect(host, port, ["a"])
        try:
            clean = await service.drain(timeout=0.2)
            assert clean is False
            assert service._drained.is_set()
        finally:
            await stuck.abort()
            await service.close()

    _run(go())
