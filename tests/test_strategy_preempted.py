"""The preempted-queue view exposed to strategy decisions.

Strategies see active+waiting by default; cost models that price deep
preemption stacks (ROADMAP: one reason ``dynamic`` over-interrupts under
backlogs) can declare a ``preempted`` keyword on ``decide`` /
``decide_batch`` and receive a read-only view of the preempted queue in
preemption order.  Built-ins ignore it, and their decisions must be
bit-identical whether or not the view is plumbed through.
"""

import pytest

from repro.core.arbiter import AccessState, Arbiter
from repro.core.metrics import AccessDescriptor, DescriptorSetView
from repro.core.strategies import (
    Action, Decision, FCFSStrategy, InterruptStrategy, Strategy,
)
from repro.simcore import Simulator


def desc(app, nprocs=8, total=1e6, t_alone=2.0):
    return AccessDescriptor(app=app, nprocs=nprocs, total_bytes=total,
                            t_alone=t_alone)


class Spy(Strategy):
    """Always interrupts; records what the preempted view showed."""

    name = "spy"

    def __init__(self):
        self.seen = []

    def decide(self, now, active, waiting, incoming, preempted=()):
        self.seen.append([d.app for d in preempted])
        if active:
            return Decision(Action.INTERRUPT)
        return Decision(Action.GO)


@pytest.mark.parametrize("batched", [True, False])
def test_preempted_view_lists_stack_in_preemption_order(batched):
    spy = Spy()
    arb = Arbiter(Simulator(), spy, batched=batched)
    arb.on_inform(desc("a"))          # GO; nothing preempted yet
    arb.on_inform(desc("b"))          # interrupts a (a still active here)
    arb.on_inform(desc("c"))          # interrupts b; sees the [a] stack
    # A decision observes the stack as of its own arrival (its effect is
    # applied after), so the third inform sees only a's preemption.
    assert spy.seen == [[], [], ["a"]]
    assert arb.state_of("a") is AccessState.PREEMPTED
    assert [d.app for d in arb.preempted_descriptors()] == ["a", "b"]


def test_batched_view_is_live_and_read_only_shaped():
    spy = Spy()
    arb = Arbiter(Simulator(), spy, batched=True)
    arb.on_inform(desc("a"))
    arb.on_inform(desc("b"))
    view = arb._preempted_view
    assert isinstance(view, DescriptorSetView)
    assert len(view) == 1 and bool(view)
    # Completion of the interrupter re-grants the preempted app: the same
    # view object reflects it without re-materialization.
    arb.on_complete("b")
    assert len(view) == 0
    assert arb.state_of("a") is AccessState.ACTIVE


class LegacySignature(Strategy):
    """A pre-preempted-view strategy: four-argument decide and a
    four-argument decide_batch override."""

    name = "legacy-signature"

    def decide(self, now, active, waiting, incoming):
        return Decision(Action.WAIT if active else Action.GO)

    def decide_batch(self, now, active, waiting, incomings):
        for incoming in incomings:
            yield self.decide(now, active, waiting, incoming)


@pytest.mark.parametrize("batched", [True, False])
def test_legacy_signatures_keep_working(batched):
    arb = Arbiter(Simulator(), LegacySignature(), batched=batched)
    assert arb.on_inform(desc("a")) is True
    assert arb.on_inform(desc("b")) is False
    assert arb.state_of("b") is AccessState.WAITING


def _drive(strategy, batched):
    """A workload with real preemption stacks; returns the decision log."""
    sim = Simulator()
    arb = Arbiter(sim, strategy, batched=batched)
    names = [f"app{i}" for i in range(6)]
    for i, name in enumerate(names):
        arb.on_inform(desc(name, nprocs=4 + i, t_alone=1.0 + 0.5 * i))
    arb.on_complete(names[0])
    arb.on_inform(desc("late", nprocs=2, t_alone=0.5))
    for name in names[1:]:
        arb.on_complete(name)
    return [(r.app, r.action) for r in arb.decision_log]


@pytest.mark.parametrize("builtin", [FCFSStrategy, InterruptStrategy])
@pytest.mark.parametrize("batched", [True, False])
def test_builtins_unchanged_when_view_is_ignored(builtin, batched):
    """Regression: built-ins (which ignore ``preempted``) must decide
    exactly as a wrapper that explicitly receives and discards the view."""

    class Wrapped(builtin):
        name = f"wrapped-{builtin.name}"

        def decide(self, now, active, waiting, incoming, preempted=()):
            assert preempted is not None  # the view arrives...
            return super().decide(now, active, waiting, incoming)  # ...unused

    assert _drive(builtin(), batched) == _drive(Wrapped(), batched)
