"""Tests for N-application experiments and trace replay."""

import pytest

from repro.apps import IORConfig
from repro.experiments import plan_replay, replay_trace, run_many
from repro.mpisim import Contiguous
from repro.platforms import PlatformConfig
from repro.traces import SWFJob, SWFTrace

PLATFORM = PlatformConfig(
    name="multi", nservers=2, disk_bandwidth=500.0,
    per_core_bandwidth=10.0, stripe_size=1000, latency=1e-6,
)


def cfg(name, nprocs, start=0.0, block=1000):
    return IORConfig(name=name, nprocs=nprocs,
                     pattern=Contiguous(block_size=block),
                     start_time=start, grain="round", cb_buffer_size=2000)


def test_run_many_rejects_duplicate_names():
    with pytest.raises(ValueError):
        run_many(PLATFORM, [cfg("x", 1), cfg("x", 2)])


def test_run_many_uncoordinated_three_apps_share():
    # 100-proc apps saturate the 1000 B/s file system alone, so three
    # overlapping ones each stretch ~3x.
    res = run_many(PLATFORM, [cfg("a", 100), cfg("b", 100), cfg("c", 100)],
                   measure_alone=True)
    for name, factor in res.interference_factors().items():
        assert 2.0 < factor < 3.5, (name, factor)


def test_run_many_fcfs_chains_apps():
    res = run_many(PLATFORM,
                   [cfg("a", 100), cfg("b", 100, 0.1), cfg("c", 100, 0.2)],
                   strategy="fcfs")
    # Strict chain: later arrivals wait longer.
    t = {name: rec.write_time for name, rec in res.records.items()}
    assert t["a"] < t["b"] < t["c"]
    # And the last one waited roughly two writes' worth.
    assert t["c"] > 2.2 * t["a"]


def test_run_many_interrupt_stacks_preemptions():
    # c (latest) interrupts b, which had interrupted a.
    res = run_many(PLATFORM,
                   [cfg("a", 100, 0.0, block=4000),
                    cfg("b", 100, 1.0, block=4000),
                    cfg("c", 100, 2.0, block=1000)],
                   strategy="interrupt")
    t = {name: rec.write_time for name, rec in res.records.items()}
    alone_c = res.records["c"].t_alone
    # The latest arrival is served promptly despite two writers ahead.
    assert t["c"] < 2.5 * alone_c
    # Preempted apps resume in FIFO order (first preempted, first resumed):
    # a restarts before b, so b carries the longest phase.
    assert t["b"] > t["a"] > t["c"]


def test_run_many_decision_log_covers_all_apps():
    res = run_many(PLATFORM, [cfg("a", 10), cfg("b", 10, 0.5),
                              cfg("c", 10, 1.0)], strategy="dynamic")
    assert {d.app for d in res.decisions} == {"a", "b", "c"}


def test_run_many_makespan_consistency():
    res = run_many(PLATFORM, [cfg("a", 50), cfg("b", 50, 5.0)])
    assert res.makespan >= max(rec.write_time
                               for rec in res.records.values())


def test_multi_metrics():
    res = run_many(PLATFORM, [cfg("a", 50), cfg("b", 25, 1.0)])
    f = res.cpu_seconds_wasted()
    assert f == pytest.approx(
        50 * res.records["a"].write_time + 25 * res.records["b"].write_time)
    assert res.sum_interference_factors() >= 2.0


# -- replay -----------------------------------------------------------------

def toy_trace():
    jobs = [
        SWFJob(job_id=1, submit_time=0, wait_time=0, run_time=100,
               allocated_procs=512),
        SWFJob(job_id=2, submit_time=20, wait_time=0, run_time=60,
               allocated_procs=256),
        SWFJob(job_id=3, submit_time=500, wait_time=0, run_time=50,
               allocated_procs=1024),  # outside the window
    ]
    return SWFTrace(jobs)


def test_plan_replay_selects_window_jobs():
    plan = plan_replay(toy_trace(), window=(0.0, 120.0), core_scale=8)
    assert len(plan.configs) == 2
    assert plan.configs[0].nprocs == 64
    assert plan.configs[1].nprocs == 32
    assert plan.configs[1].start_time == pytest.approx(20.0)


def test_plan_replay_scales_cores_with_floor():
    plan = plan_replay(toy_trace(), window=(0.0, 120.0), core_scale=8192)
    assert all(c.nprocs == 1 for c in plan.configs)


def test_plan_replay_validation():
    with pytest.raises(ValueError):
        plan_replay(toy_trace(), window=(10.0, 10.0))
    with pytest.raises(ValueError):
        plan_replay(toy_trace(), window=(0.0, 1.0), phases_per_job=0)


def test_replay_trace_runs_under_strategies():
    from repro.core import DynamicStrategy
    results = {}
    for key, strat in [(None, None),
                       ("dynamic", DynamicStrategy(
                           consider_interference=True))]:
        results[key] = replay_trace(
            PLATFORM, toy_trace(), window=(0.0, 120.0), core_scale=8,
            bytes_per_process=1000, strategy=strat)
    assert set(results[None].records) == {"job1", "job2"}
    # The share-aware dynamic strategy never loses machine-wide: when
    # sharing is the cheapest predicted option it picks GO.
    assert (results["dynamic"].cpu_seconds_wasted()
            <= results[None].cpu_seconds_wasted() * 1.1)


def test_replay_empty_window_raises():
    with pytest.raises(ValueError):
        replay_trace(PLATFORM, toy_trace(), window=(2000.0, 2100.0))


def test_replay_max_jobs_cap():
    plan = plan_replay(toy_trace(), window=(0.0, 120.0), max_jobs=1)
    assert len(plan.configs) == 1
