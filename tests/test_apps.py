"""Unit + integration tests for application models."""

import pytest

from repro.apps import IORApp, IORConfig, checkpoint_like, cm1_like, namd_like
from repro.mpisim import Contiguous
from repro.platforms import Platform, PlatformConfig


def platform():
    return Platform(PlatformConfig(
        name="t", nservers=2, disk_bandwidth=500.0,
        per_core_bandwidth=10.0, stripe_size=1000, latency=0.0,
    ))


def test_config_validation():
    pat = Contiguous(block_size=100)
    with pytest.raises(ValueError):
        IORConfig(name="x", nprocs=0, pattern=pat)
    with pytest.raises(ValueError):
        IORConfig(name="x", nprocs=1, pattern=pat, nfiles=0)
    with pytest.raises(ValueError):
        IORConfig(name="x", nprocs=1, pattern=pat, iterations=0)
    with pytest.raises(ValueError):
        IORConfig(name="x", nprocs=1, pattern=pat, scope="banana")
    with pytest.raises(ValueError):
        IORConfig(name="x", nprocs=1, pattern=pat, grain="banana")
    with pytest.raises(ValueError):
        IORConfig(name="x", nprocs=1, pattern=pat, start_time=-1.0)


def test_bytes_per_phase():
    cfg = IORConfig(name="x", nprocs=8, pattern=Contiguous(block_size=100),
                    nfiles=3)
    assert cfg.bytes_per_phase == 2400


def test_app_runs_and_records_phases():
    p = platform()
    app = IORApp(p, IORConfig(name="a", nprocs=10,
                              pattern=Contiguous(block_size=100),
                              iterations=3, think_time=5.0, grain=None))
    app.start()
    p.sim.run()
    assert len(app.phases) == 3
    assert all(ph.duration > 0 for ph in app.phases)
    assert app.total_io_time() == pytest.approx(sum(app.write_times))


def test_app_start_offset_respected():
    p = platform()
    app = IORApp(p, IORConfig(name="a", nprocs=10,
                              pattern=Contiguous(block_size=100),
                              start_time=42.0, grain=None))
    app.start()
    p.sim.run()
    assert app.phases[0].start == pytest.approx(42.0)


def test_app_period_semantics():
    """period = start-to-start; short writes wait out the period."""
    p = platform()
    app = IORApp(p, IORConfig(name="a", nprocs=10,
                              pattern=Contiguous(block_size=100),
                              iterations=3, period=50.0, grain=None))
    app.start()
    p.sim.run()
    starts = [ph.start for ph in app.phases]
    assert starts[1] - starts[0] == pytest.approx(50.0)
    assert starts[2] - starts[1] == pytest.approx(50.0)


def test_app_think_time_semantics():
    """think_time = end-to-start gap."""
    p = platform()
    app = IORApp(p, IORConfig(name="a", nprocs=10,
                              pattern=Contiguous(block_size=100),
                              iterations=2, think_time=7.0, grain=None))
    app.start()
    p.sim.run()
    assert app.phases[1].start - app.phases[0].end == pytest.approx(7.0)


def test_app_multi_file_phase():
    p = platform()
    app = IORApp(p, IORConfig(name="a", nprocs=10,
                              pattern=Contiguous(block_size=100),
                              nfiles=4, grain=None))
    app.start()
    p.sim.run()
    assert app.phases[0].bytes == 4000
    assert len(p.pfs.listdir()) == 4


def test_app_cannot_start_twice():
    p = platform()
    app = IORApp(p, IORConfig(name="a", nprocs=1,
                              pattern=Contiguous(block_size=100)))
    app.start()
    with pytest.raises(RuntimeError):
        app.start()


def test_app_done_requires_start():
    p = platform()
    app = IORApp(p, IORConfig(name="a", nprocs=1,
                              pattern=Contiguous(block_size=100)))
    with pytest.raises(RuntimeError):
        _ = app.done


def test_phase_throughput():
    p = platform()
    app = IORApp(p, IORConfig(name="a", nprocs=10,
                              pattern=Contiguous(block_size=1000),
                              grain=None))
    app.start()
    p.sim.run()
    ph = app.phases[0]
    assert ph.throughput == pytest.approx(ph.bytes / ph.duration)


# -- profiles -----------------------------------------------------------------

def test_cm1_profile_shape():
    cfg = cm1_like(nprocs=512, iterations=2, time_scale=0.1)
    assert cfg.pattern.bytes_per_process == 23_000_000
    assert cfg.period == pytest.approx(18.0)
    assert cfg.scope == "phase"


def test_namd_profile_shape():
    cfg = namd_like(nprocs=1024)
    assert cfg.pattern.bytes_per_process <= 1024
    assert cfg.naggregators == 16
    assert cfg.period == 1.0


def test_checkpoint_profile_shape():
    cfg = checkpoint_like(nprocs=256, mb_per_core=32.0, nfiles=2)
    assert cfg.bytes_per_phase == 2 * 256 * 32_000_000


def test_profiles_run_end_to_end():
    p = Platform(PlatformConfig(
        name="t", nservers=2, disk_bandwidth=5e8,
        per_core_bandwidth=1e7, stripe_size=1 << 20, latency=1e-5,
    ))
    app = IORApp(p, cm1_like(nprocs=32, iterations=2, time_scale=0.05))
    app.start()
    p.sim.run()
    assert len(app.phases) == 2


def test_overlap_compute_credits_wait_against_gap():
    """SecVI future work: an interrupted app does internal work while it
    waits, finishing its campaign earlier."""
    from repro.core import CalciomRuntime

    def run(overlap):
        p = Platform(PlatformConfig(
            name="t", nservers=2, disk_bandwidth=100.0,
            per_core_bandwidth=10.0, stripe_size=100, latency=1e-6,
        ))
        runtime = CalciomRuntime(p, strategy="fcfs")
        waiter = IORApp(p, IORConfig(
            name="w", nprocs=20, pattern=Contiguous(block_size=500),
            iterations=2, think_time=30.0, start_time=1.0,
            grain="round", overlap_compute=overlap))
        hog = IORApp(p, IORConfig(
            name="h", nprocs=20, pattern=Contiguous(block_size=10_000),
            grain="round"))
        for app in (waiter, hog):
            s = runtime.session(app.config.name, app.client,
                                app.config.nprocs, app.comm)
            app.guard = s
            app.adio.guard = s
        waiter.start()
        hog.start()
        p.sim.run()
        return waiter

    plain = run(False)
    overlapped = run(True)
    waited = plain.phases[0].wait_time
    assert waited > 1.0  # the FCFS wait behind the hog is substantial
    # Same wait either way, but the overlapped app converts it to compute:
    assert overlapped.phases[-1].end == pytest.approx(
        plain.phases[-1].end - min(30.0, overlapped.phases[0].wait_time),
        rel=0.05)
