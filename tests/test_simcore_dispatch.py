"""The dispatch core: cancellable timers, batch dispatch, queue backends.

Covers the engine-level contracts the 10^6-flow regime leans on:

* :class:`~repro.simcore.engine.Timer` handle semantics — ``cancel()``,
  ``reschedule()``, ``active``/``cancelled`` — identical across the heap,
  calendar and oracle backends;
* same-timestamp batch dispatch, including the delay-0 lane and failure
  mid-batch;
* retirement-time ``timers_cancelled`` accounting and bulk compaction;
* a randomized three-backend equivalence fuzzer (ties, zero delays,
  mid-flight cancellations and reschedules, failing processes, ``until=``
  variants) — serialized traces must be string-equal;
* committed scenarios: arbiter decision logs string-equal and kernel
  finish times ``np.array_equal`` under ``queue="heap"`` vs
  ``queue="calendar"``;
* the peripheral call sites that migrated onto handles (fair-share
  horizon wakes, cache boundary wakes) and the arbiter DELAY-hold epoch
  guard kept as belt-and-braces.
"""

import math
import random

import numpy as np
import pytest

from repro.core import AccessDescriptor, AccessState, Arbiter
from repro.core.strategies import Action, Decision, FCFSStrategy
from repro.perf import PerfCounters
from repro.simcore import (
    FluidLink, FlowNetwork, SimulationError, Simulator,
)
from repro.simcore.engine import _COMPACT_MIN_DEAD, Timer
from repro.storage import WriteBackCache

BACKENDS = ("heap", "calendar", "oracle")


# ---------------------------------------------------------------------------
# Timer handle semantics (identical surface on every backend)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("queue", BACKENDS)
def test_cancelled_timer_never_fires(queue):
    sim = Simulator(queue=queue)
    fired = []
    t = sim.call_at(1.0, lambda: fired.append(sim.now))
    assert t.active and not t.cancelled
    assert t.cancel() is True
    assert t.cancelled and not t.active
    assert t.cancel() is False  # second cancel is a no-op
    sim.call_at(2.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.0]
    assert sim.now == 2.0  # the clock never advanced for the dead entry


@pytest.mark.parametrize("queue", BACKENDS)
def test_cancel_after_fire_returns_false(queue):
    sim = Simulator(queue=queue)
    t = sim.call_at(1.0, lambda: None)
    sim.run()
    assert not t.active
    assert t.cancel() is False


@pytest.mark.parametrize("queue", BACKENDS)
def test_reschedule_pending_supersedes(queue):
    sim = Simulator(queue=queue)
    fired = []
    t = sim.call_at(5.0, lambda: fired.append(sim.now))
    assert t.reschedule(2.0) is t
    assert t.when == 2.0
    sim.run()
    assert fired == [2.0]  # fired once, at the new time only


@pytest.mark.parametrize("queue", BACKENDS)
def test_reschedule_rearms_fired_and_cancelled_handles(queue):
    sim = Simulator(queue=queue)
    fired = []
    t = sim.call_at(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.0]
    t.reschedule(3.0)  # re-arm a fired handle
    sim.run()
    assert fired == [1.0, 3.0]
    t.cancel()  # nothing pending: no-op
    t.reschedule(4.0)  # re-arm after an (effective) cancel
    t.cancel()
    t.reschedule(5.0)  # re-arm a genuinely cancelled pending handle
    sim.run()
    assert fired == [1.0, 3.0, 5.0]


@pytest.mark.parametrize("queue", BACKENDS)
def test_reschedule_into_past_rejected(queue):
    sim = Simulator(queue=queue)
    sim.call_at(2.0, lambda: None)
    t = sim.call_at(3.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError) as err:
        t.reschedule(1.0)
    # Both the offending timestamp and the current clock are reported.
    assert "1.0" in str(err.value) and "3.0" in str(err.value)


@pytest.mark.parametrize("queue", BACKENDS)
def test_call_at_past_reports_timestamp_and_clock(queue):
    sim = Simulator(queue=queue)
    sim.call_at(4.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError) as err:
        sim.call_at(1.5, lambda: None)
    assert "1.5" in str(err.value) and "4.0" in str(err.value)


@pytest.mark.parametrize("queue", BACKENDS)
def test_reschedule_from_inside_callback_to_now_joins_batch(queue):
    """A handle rescheduled to the current instant from a firing callback
    joins the in-flight batch (heap/calendar) or dispatches at the same
    timestamp (oracle) — either way it runs at the same sim time."""
    sim = Simulator(queue=queue)
    fired = []
    later = sim.call_at(9.0, lambda: fired.append(("later", sim.now)))

    def first():
        fired.append(("first", sim.now))
        later.reschedule(sim.now)

    sim.call_at(1.0, first)
    sim.run()
    assert fired == [("first", 1.0), ("later", 1.0)]


def test_unknown_backend_rejected():
    with pytest.raises(SimulationError):
        Simulator(queue="wheel")


def test_backend_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_QUEUE", "calendar")
    assert Simulator().queue_backend == "calendar"
    monkeypatch.delenv("REPRO_SIM_QUEUE")
    assert Simulator().queue_backend == "heap"


# ---------------------------------------------------------------------------
# Batch dispatch
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("queue", ("heap", "calendar"))
def test_step_drains_whole_coincident_batch(queue):
    sim = Simulator(queue=queue)
    order = []
    for i in range(4):
        sim.call_at(1.0, lambda i=i: order.append(i))
    sim.call_at(2.0, lambda: order.append("next"))
    sim.step()
    assert order == [0, 1, 2, 3]  # one step, whole batch, insertion order
    assert sim.now == 1.0
    sim.step()
    assert order == [0, 1, 2, 3, "next"]


@pytest.mark.parametrize("queue", ("heap", "calendar"))
def test_delay_zero_from_callback_joins_batch(queue):
    """Events scheduled at the batch timestamp *during* the batch ride the
    FIFO lane: same clock instant, ordered after the queued members."""
    sim = Simulator(queue=queue)
    order = []

    def leader():
        order.append("leader")
        sim.call_at(sim.now, lambda: order.append("lane"))

    sim.call_at(1.0, leader)
    sim.call_at(1.0, lambda: order.append("queued"))
    sim.step()
    assert order == ["leader", "queued", "lane"]
    assert sim.now == 1.0


@pytest.mark.parametrize("queue", BACKENDS)
def test_step_on_empty_queue_raises(queue):
    sim = Simulator(queue=queue)
    with pytest.raises(SimulationError):
        sim.step()
    t = sim.call_at(1.0, lambda: None)
    t.cancel()
    with pytest.raises(SimulationError):
        sim.step()  # a dead-only queue is empty for dispatch purposes


@pytest.mark.parametrize("queue", ("heap", "calendar"))
def test_failure_mid_batch_preserves_undelivered_lane(queue):
    """A process failure aborting a batch must not lose the lane: the
    delay-0 events scheduled before the failure go back into the queue
    and dispatch when the driver resumes."""
    sim = Simulator(queue=queue)
    order = []

    def boom():
        yield sim.timeout(1.0)
        raise RuntimeError("mid-batch failure")

    def leader():
        order.append("leader")
        sim.call_at(sim.now, lambda: order.append("lane1"))

    def late():
        # Runs after boom's failure event entered the lane, so this lane
        # entry carries a larger eid and is still undelivered at abort.
        order.append("late")
        sim.call_at(sim.now, lambda: order.append("lane2"))

    sim.call_at(1.0, leader)
    sim.process(boom())
    # Armed at t=0.5 so its insertion id lands *after* boom's t=1 timeout:
    # at t=1 the failure event enters the lane between lane1 and lane2.
    sim.call_at(0.5, lambda: sim.call_at(1.0, late))
    with pytest.raises(RuntimeError):
        sim.run()
    assert order == ["leader", "late", "lane1"]
    sim.run()  # the stranded lane entry was re-queued, eid intact
    assert order == ["leader", "late", "lane1", "lane2"]
    assert sim.now == 1.0


# ---------------------------------------------------------------------------
# Perf counters: retirement-time accounting and compaction
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("queue", ("heap", "calendar"))
def test_timers_cancelled_counted_at_retirement(queue):
    perf = PerfCounters()
    sim = Simulator(perf=perf, queue=queue)
    t = sim.call_at(1.0, lambda: None)
    sim.call_at(2.0, lambda: None)
    t.cancel()
    # Cancellation itself is bookkeeping-free: the counter moves when the
    # dead entry is retired from the queue, not at cancel time.
    assert perf.as_dict().get("timers_cancelled", 0) == 0
    sim.run()
    counters = perf.as_dict()
    assert counters["timers_cancelled"] == 1
    assert counters["events_processed"] == 1
    assert counters["timer_fastpath_hits"] == 1


@pytest.mark.parametrize("queue", ("heap", "calendar"))
def test_coincident_counter_counts_batch_followers(queue):
    perf = PerfCounters()
    sim = Simulator(perf=perf, queue=queue)
    for _ in range(5):
        sim.call_at(1.0, lambda: None)
    sim.call_at(2.0, lambda: None)
    sim.run()
    counters = perf.as_dict()
    assert counters["events_processed"] == 6
    # 5-wide batch -> 4 followers; the lone t=2 event adds none.
    assert counters["events_coincident"] == 4
    assert counters["timer_fastpath_hits"] == 6


@pytest.mark.parametrize("queue", ("heap", "calendar"))
def test_bulk_cancellation_triggers_compaction(queue):
    """Once dead entries outnumber live ones (past the floor) they are
    swept in bulk — without any dispatch — and counted then."""
    perf = PerfCounters()
    sim = Simulator(perf=perf, queue=queue)
    timers = [sim.call_at(1.0 + i * 1e-3, lambda: None)
              for i in range(_COMPACT_MIN_DEAD + 10)]
    for t in timers:
        t.cancel()
    # The sweep fired during the cancel storm: counted without dispatch.
    assert perf.as_dict()["timers_cancelled"] >= _COMPACT_MIN_DEAD
    if queue == "heap":
        assert len(sim._queue) <= 10
    sim.run()
    assert perf.as_dict()["timers_cancelled"] == len(timers)
    assert perf.as_dict().get("events_processed", 0) == 0


def test_reschedule_consumes_one_insertion_id():
    """`reschedule` must burn exactly the ids that cancel()+call_at()
    would, or backends stop being dispatch-order comparable."""
    sim_a = Simulator(queue="heap")
    t = sim_a.call_at(1.0, lambda: None)
    t.reschedule(2.0)
    sim_b = Simulator(queue="heap")
    u = sim_b.call_at(1.0, lambda: None)
    u.cancel()
    sim_b.call_at(2.0, lambda: None)
    assert next(sim_a._eid) == next(sim_b._eid)


# ---------------------------------------------------------------------------
# Randomized three-backend equivalence fuzzer
# ---------------------------------------------------------------------------

def _fuzz_trace(queue, seed, until_mode):
    """One pseudo-random dispatch workout; returns its serialized trace.

    Every decision is drawn from an RNG seeded identically across
    backends; since backends promise identical dispatch order, the draw
    sequence stays aligned — any divergence desynchronizes the trace and
    the string comparison fails loudly.
    """
    rng = random.Random(seed)
    perf = PerfCounters()
    sim = Simulator(perf=perf, queue=queue)
    log = []
    handles = []

    def fire(tag):
        log.append((tag, round(sim.now, 9)))
        roll = rng.random()
        if roll < 0.45:  # keep the trace going
            delay = rng.choice((0.0, 0.0, 0.25, 0.5, 1.0, 1.0))
            handles.append(
                sim.call_at(sim.now + delay, _mk(f"{tag}.{len(log)}")))
        if roll < 0.2 and handles:  # cancel something mid-flight
            victim = handles[rng.randrange(len(handles))]
            log.append(("cancel", victim.cancel()))
        elif roll < 0.35 and handles:  # supersede something mid-flight
            victim = handles[rng.randrange(len(handles))]
            when = sim.now + rng.choice((0.0, 0.5, 1.0))
            victim.reschedule(when)
            log.append(("resched", round(when, 9)))

    def _mk(tag):
        return lambda: fire(tag)

    def proc(name, steps):
        for k in range(steps):
            yield sim.timeout(rng.choice((0.0, 0.5, 1.0)))
            log.append((name, k, round(sim.now, 9)))

    for i in range(12):
        handles.append(sim.call_at(rng.choice((0.0, 0.5, 1.0, 1.0)),
                                   _mk(f"t{i}")))
    for i in range(4):
        sim.process(proc(f"p{i}", 3))

    if until_mode == "time":
        sim.run(until=2.0)
        log.append(("pause", sim.now))
        sim.run()
    elif until_mode == "event":
        marker = sim.timeout(1.5, value="marker")
        assert sim.run(until=marker) == "marker"
        log.append(("pause", sim.now))
        sim.run()
    else:
        sim.run()
    log.append(("end", round(sim.now, 9)))
    # Retirement accounting: with the queue drained, every cancelled
    # entry has been counted exactly once on every backend.
    log.append(("cancelled", perf.as_dict().get("timers_cancelled", 0)))
    return str(log)


@pytest.mark.parametrize("until_mode", ("none", "time", "event"))
def test_fuzzed_traces_identical_across_backends(until_mode):
    for seed in range(8):
        traces = {q: _fuzz_trace(q, seed, until_mode) for q in BACKENDS}
        assert traces["heap"] == traces["oracle"], (
            f"seed {seed}: heap diverged from oracle")
        assert traces["calendar"] == traces["oracle"], (
            f"seed {seed}: calendar diverged from oracle")


@pytest.mark.parametrize("queue", BACKENDS)
def test_failing_process_aborts_identically(queue):
    sim = Simulator(queue=queue)

    def doomed():
        yield sim.timeout(1.0)
        yield sim.timeout(0.0)
        raise ValueError("scripted failure")

    def bystander():
        yield sim.timeout(0.5)
        yield sim.timeout(1.5)

    sim.process(doomed())
    sim.process(bystander())
    with pytest.raises(ValueError, match="scripted failure"):
        sim.run()
    assert sim.now == 1.0


# ---------------------------------------------------------------------------
# Committed scenarios: decision logs and finish times across backends
# ---------------------------------------------------------------------------

class _DelayThenShare(FCFSStrategy):
    """FCFS that answers DELAY while anything is active — enough traffic
    through the hold-timer machinery to make a meaty decision log."""

    def decide(self, now, active, waiting, incoming):
        if active:
            return Decision(Action.DELAY, delay=2.0)
        return Decision(Action.GO)


def _arbiter_scenario(queue):
    sim = Simulator(queue=queue)
    arb = Arbiter(sim, _DelayThenShare())

    def app(name, start, work):
        yield sim.timeout(start)
        arb.submit_inform(AccessDescriptor(
            app=name, nprocs=8, total_bytes=1e6, t_alone=work))
        yield arb.authorization_event(name)
        yield sim.timeout(work)
        arb.on_complete(name)

    for i, (start, work) in enumerate(
            [(0.0, 3.0), (0.5, 1.0), (0.5, 2.0), (1.0, 0.5), (4.0, 1.0)]):
        sim.process(app(f"app{i}", start, work))
    sim.run()
    return str(arb.decision_log), sim.now


def test_arbiter_decision_log_equal_across_backends():
    log_heap, end_heap = _arbiter_scenario("heap")
    log_cal, end_cal = _arbiter_scenario("calendar")
    log_oracle, end_oracle = _arbiter_scenario("oracle")
    assert log_heap == log_oracle == log_cal
    assert end_heap == end_oracle == end_cal


def _kernel_scenario(queue):
    sim = Simulator(queue=queue)
    net = FlowNetwork(sim)
    shared = FluidLink(100.0, "shared")
    finish = []

    def app(start, sizes):
        yield sim.timeout(start)
        for size in sizes:
            flow = net.start_flow(size, [shared])
            yield flow.done
            finish.append(flow.finish_time)

    for i in range(6):
        sim.process(app(0.25 * i, [50.0 + 10 * i, 80.0, 30.0 + 5 * i]))
    sim.run()
    return np.array(finish)


def test_kernel_finish_times_equal_across_backends():
    times = {q: _kernel_scenario(q) for q in BACKENDS}
    assert np.array_equal(times["heap"], times["oracle"])
    assert np.array_equal(times["calendar"], times["oracle"])


# ---------------------------------------------------------------------------
# Peripheral call sites on handles
# ---------------------------------------------------------------------------

def desc(app, t_alone=5.0):
    return AccessDescriptor(app=app, nprocs=10, total_bytes=1e6,
                            t_alone=t_alone)


def test_arbiter_hold_cancellation_prevents_ghost_dispatch():
    """An early grant cancels the DELAY hold outright: the stale timer is
    deadmarked in the queue and the app is activated exactly once."""
    sim = Simulator()
    arb = Arbiter(sim, _DelayThenShare())
    activations = []
    original = arb._activate
    arb._activate = lambda app: (activations.append((app, sim.now)),
                                 original(app))[-1]
    arb.on_inform(desc("a"))
    arb.on_inform(desc("b"))  # DELAY(2.0): hold timer armed at t=2
    assert "b" in arb._hold_timers
    hold = arb._hold_timers["b"]
    assert hold.active
    arb.on_complete("a")  # frees the slot at t=0, long before the hold
    sim.run()
    assert hold.cancelled  # the grant cancelled the hold outright
    assert "b" not in arb._hold_timers
    assert [a for a, _ in activations] == ["a", "b"]  # once each, no ghost
    assert arb.state_of("b") is AccessState.ACTIVE


def test_arbiter_hold_epoch_guard_blocks_resurrected_timer():
    """Belt-and-braces: even if a stale hold callback somehow ran (say the
    cancellation contract broke), the access-epoch guard refuses to
    activate from it."""
    sim = Simulator()
    arb = Arbiter(sim, _DelayThenShare())
    arb.on_inform(desc("a"))
    arb.on_inform(desc("b"))
    ghost = arb._hold_timers["b"]._fn  # the hold closure, epoch captured
    arb._epoch["b"] = arb._epoch.get("b", 0) + 1  # a newer access exists
    ghost()  # resurrect the stale timer by hand
    assert arb.state_of("b") is AccessState.WAITING  # guard held the line


def test_arbiter_hold_expiry_still_activates():
    sim = Simulator()
    arb = Arbiter(sim, _DelayThenShare())
    arb.on_inform(desc("a", t_alone=50.0))
    arb.on_inform(desc("b"))
    assert arb.state_of("b") is AccessState.WAITING
    sim.run(until=2.5)  # past the 2.0 s hold; "a" still active
    assert arb.state_of("b") is AccessState.ACTIVE


def test_fairshare_wake_handle_is_reused():
    """The completion-horizon wake owns one Timer for the network's whole
    life: superseded in place on every update, never reallocated."""
    perf = PerfCounters()
    sim = Simulator(perf=perf)
    net = FlowNetwork(sim, perf=perf)
    link = FluidLink(100.0, "l")

    def app(start, size):
        yield sim.timeout(start)
        flow = net.start_flow(size, [link])
        yield flow.done

    # The big flow arms a far horizon; the tiny late arrival pulls it in,
    # superseding the pending wake in place.
    sim.process(app(0.0, 1000.0))
    sim.process(app(0.5, 1.0))
    sim.run(until=0.25)
    first = net._wake_timer
    assert type(first) is Timer
    sim.run()
    assert net._wake_timer is first  # same handle, rescheduled in place
    counters = perf.as_dict()
    # Superseded horizons were cancelled in the queue, not guard-dispatched.
    assert counters.get("timers_cancelled", 0) > 0


def test_cache_boundary_handle_is_reused_and_cancelled_cleanly():
    perf = PerfCounters()
    sim = Simulator(perf=perf)
    net = FlowNetwork(sim, perf=perf)
    link = FluidLink(100.0, "ingest")
    cache = WriteBackCache(sim, net, link, cache_bandwidth=100.0,
                           drain_bandwidth=20.0, capacity=400.0)

    def writer(start, size):
        yield sim.timeout(start)
        flow = net.start_flow(size, [link])
        yield flow.done

    sim.process(writer(0.0, 2000.0))
    sim.process(writer(1.0, 500.0))
    sim.run(until=2.0)
    timer = cache._boundary_timer
    assert type(timer) is Timer
    sim.run()
    assert cache._boundary_timer is timer  # one handle for the cache's life
    assert cache.dirty_now == pytest.approx(0.0, abs=1e-6)
    assert perf.as_dict().get("timers_cancelled", 0) > 0
