"""The binary wire codec against its JSON oracle.

Two layers of guarantee:

* **Codec equality** — a randomized fuzzer generates messages of every
  hot type (unicode app tags, inf/NaN-adjacent float magnitudes, empty
  partitions, interned and non-interned descriptors) plus off-schema
  strays, and asserts the binary encoding decodes to *exactly* the dict
  the JSON encoding decodes to.  The generic fallback makes coverage
  total: anything the fast paths refuse must still round-trip.
* **Decision-log bit-identity** — replaying the committed
  ``service-many-writers`` scenario through the daemon, and the
  randomized shard traces through ``workers="process"``, must produce
  string-equal canonical decision logs under both codecs.

Plus the framing satellites: `FrameError` with byte offsets out of every
truncation path, the buffered `FrameReader`, codec negotiation, and the
shared canonical-JSON helper.
"""

import asyncio
import json
import math
import socket
import struct

import pytest

from repro.core.metrics import AccessDescriptor
from repro.core.sharding import ShardRouter
from repro.perf import PerfCounters
from repro.service.protocol import (
    CODECS, MAX_FRAME, FrameError, FrameReader, ProtocolError, WireDecoder,
    WireEncoder, canonical_json, decisions_to_json, default_wire_codec,
    descriptor_from_dict, descriptor_to_dict, encode_message, read_frame,
    read_message, write_frame,
)
from repro.simcore import Simulator

_TIMEOUT = 120.0


# ---------------------------------------------------------------------------
# Fuzzing helpers
# ---------------------------------------------------------------------------

_APPS = ["a", "writer-07", "chéckpoint", "アプリ", "x" * 120, "", "app🚀"]
#: Exact-round-trip floats near the representable extremes (true inf/NaN
#: are not canonical-JSON-serializable, so the wire never carries them).
_FLOATS = [0.0, -0.0, 1.0, -1.5, 1e-300, 5e-324, 1e308, -1.7976931348623157e308,
           math.pi, 2.0 ** 53, 1 / 3]


def _rand_float(rng):
    return rng.choice(_FLOATS) * rng.choice([1.0, -1.0])


def _rand_descriptor(rng):
    return {
        "app": rng.choice(_APPS),
        "nprocs": rng.choice([1, 64, 2 ** 31, -3]),
        "total_bytes": abs(_rand_float(rng)) + 1.0,
        "t_alone": abs(_rand_float(rng)),
        "remaining_bytes": _rand_float(rng),
        "access_started": rng.choice([None, _rand_float(rng)]),
        "files": rng.choice([1, 7, 10 ** 9]),
        "rounds": rng.choice([1, 3]),
        "partitions": rng.choice([[], [0], [0, 1, 2], [-1, 2 ** 30],
                                  list(range(40))]),
    }


def _rand_message(rng):
    kind = rng.randrange(10)
    if kind == 0:
        return {"type": "inform", "seq": rng.randrange(2 ** 48),
                "t": abs(_rand_float(rng)),
                "descriptor": _rand_descriptor(rng)}
    if kind == 1:
        return {"type": "inform", "descriptor": _rand_descriptor(rng)}
    if kind == 2:
        return {"type": "release", "seq": rng.randrange(100),
                "t": abs(_rand_float(rng)), "app": rng.choice(_APPS),
                "remaining": rng.choice([None, _rand_float(rng)])}
    if kind == 3:
        return {"type": rng.choice(["complete", "withdraw"]),
                "seq": rng.randrange(100), "t": abs(_rand_float(rng)),
                "app": rng.choice(_APPS)}
    if kind == 4:
        msg = {"type": "inform-ack", "t": abs(_rand_float(rng)),
               "app": rng.choice(_APPS),
               "authorized": rng.choice([True, False])}
        if rng.random() < 0.5:
            msg["seq"] = rng.randrange(2 ** 60)
        return msg
    if kind == 5:
        return {"type": rng.choice(["release-ack", "complete-ack",
                                    "withdraw-ack"]),
                "t": abs(_rand_float(rng)), "app": rng.choice(_APPS)}
    if kind == 6:
        return {"type": "grant", "app": rng.choice(_APPS),
                "t": abs(_rand_float(rng))}
    if kind == 7:
        op = rng.choice(["inform", "release", "complete", "withdraw",
                         "advance"])
        msg = {"type": "op", "op": op}
        if rng.random() < 0.8:
            msg["t"] = abs(_rand_float(rng))
        if op == "inform":
            msg["d"] = _rand_descriptor(rng)
            msg["r"] = rng.choice([0, 1])
        elif op == "release":
            msg["app"] = rng.choice(_APPS)
            msg["rem"] = rng.choice([None, _rand_float(rng)])
        elif op != "advance":
            msg["app"] = rng.choice(_APPS)
            if rng.random() < 0.5:
                msg["r"] = rng.choice([0, 1])
        return msg
    if kind == 8:
        states = ["idle", "active", "waiting", "preempted"]
        msg = {"type": "r",
               "tr": [[rng.choice(_APPS), rng.choice(states)]
                      for _ in range(rng.randrange(4))],
               "nw": rng.choice([None, abs(_rand_float(rng))])}
        if rng.random() < 0.5:
            msg["ok"] = rng.choice([True, False])
        if rng.random() < 0.5:
            msg["dec"] = rng.choice(
                [None, [rng.choice(["go", "wait", "interrupt", "delay"]),
                        _rand_float(rng)]])
        return msg
    # Off-schema strays: must survive via the generic fallback.
    return rng.choice([
        {"type": "hello", "apps": [rng.choice(_APPS)], "mode": "replay",
         "spec_sha": None, "codec": rng.choice(list(CODECS))},
        {"type": "bye"},
        {"type": "decision-digest"},
        {"type": "error", "reason": "Δ" * rng.randrange(5)},
        {"type": "inform", "descriptor": _rand_descriptor(rng),
         "surprise": [1, {"k": None}]},
        {"type": "release", "app": rng.choice(_APPS),
         "remaining": "not-a-float"},
        {"type": "op", "op": "inform", "d": {"app": "a"}},
    ])


def test_fuzz_binary_json_roundtrip():
    """2000 random messages: binary decode == JSON decode == original."""
    import random
    rng = random.Random(0x10C0DEC)
    enc_bin = WireEncoder("binary")
    enc_json = WireEncoder("json")
    dec_bin = WireDecoder()
    dec_json = WireDecoder()
    for i in range(2000):
        msg = _rand_message(rng)
        frame_bin = enc_bin.encode(msg)
        frame_json = enc_json.encode(msg)
        got_bin = dec_bin.decode(frame_bin[4:])
        got_json = dec_json.decode(frame_json[4:])
        assert got_bin == msg, f"binary diverged at #{i}: {msg!r}"
        assert got_json == msg, f"json diverged at #{i}: {msg!r}"
        # Exact float fidelity, not just dict ==: re-serialize both
        # decodes canonically and demand the same bytes.
        assert (canonical_json(got_bin, sort_keys=True)
                == canonical_json(got_json, sort_keys=True)), msg


def test_fuzzed_descriptors_reconstruct_identically():
    """descriptor_from_dict over both codecs builds equal descriptors."""
    import random
    rng = random.Random(7)
    enc = WireEncoder("binary")
    dec = WireDecoder()
    for _ in range(200):
        d = _rand_descriptor(rng)
        if not d["partitions"]:
            d["partitions"] = [0]   # the dataclass requires >= 1 partition
        msg = {"type": "inform", "descriptor": d}
        via_bin = dec.decode(enc.encode(msg)[4:])["descriptor"]
        a = descriptor_from_dict(via_bin)
        b = descriptor_from_dict(d)
        assert descriptor_to_dict(a) == descriptor_to_dict(b)


# ---------------------------------------------------------------------------
# Descriptor interning
# ---------------------------------------------------------------------------

def _desc_dict(app="appA", remaining=512.0, started=None):
    return {"app": app, "nprocs": 8, "total_bytes": 1024.0, "t_alone": 2.0,
            "remaining_bytes": remaining, "access_started": started,
            "files": 2, "rounds": 3, "partitions": [0, 1]}


def test_interning_shrinks_repeat_descriptors():
    perf = PerfCounters()
    enc = WireEncoder("binary", perf=perf)
    dec = WireDecoder()
    first = enc.encode({"type": "inform", "descriptor": _desc_dict()})
    second = enc.encode({"type": "inform",
                         "descriptor": _desc_dict(remaining=100.5,
                                                  started=7.25)})
    assert len(second) < len(first) / 2
    assert dec.decode(first[4:])["descriptor"] == _desc_dict()
    assert dec.decode(second[4:])["descriptor"] == _desc_dict(
        remaining=100.5, started=7.25)
    assert perf.get("wire_desc_interned") == 1
    assert perf.get("wire_desc_refs") == 1
    # A different static tuple interns separately.
    other = enc.encode({"type": "inform",
                        "descriptor": _desc_dict(app="appB")})
    assert dec.decode(other[4:])["descriptor"] == _desc_dict(app="appB")
    assert perf.get("wire_desc_interned") == 2


def test_generic_fallback_does_not_corrupt_intern_table():
    """A failed fast-path encode must not desync encoder/decoder tables."""
    perf = PerfCounters()
    enc = WireEncoder("binary", perf=perf)
    dec = WireDecoder()
    bad = _desc_dict()
    bad["app"] = "x" * 70_000          # blows the u16 string bound mid-body
    fallback = enc.encode({"type": "inform", "descriptor": bad})
    assert dec.decode(fallback[4:])["descriptor"] == bad
    assert perf.get("wire_generic_frames") == 1
    assert enc._desc_ids == {}         # nothing committed
    # The table still works from id 0 after the failure.
    full = enc.encode({"type": "inform", "descriptor": _desc_dict()})
    ref = enc.encode({"type": "inform", "descriptor": _desc_dict()})
    assert dec.decode(full[4:])["descriptor"] == _desc_dict()
    assert dec.decode(ref[4:])["descriptor"] == _desc_dict()
    assert len(ref) < len(full)


def test_unknown_intern_ref_is_a_protocol_error():
    enc = WireEncoder("binary")
    enc.encode({"type": "inform", "descriptor": _desc_dict()})   # interns 0
    ref = enc.encode({"type": "inform", "descriptor": _desc_dict()})
    fresh = WireDecoder()              # never saw the full descriptor
    with pytest.raises(ProtocolError, match="unknown intern id"):
        fresh.decode(ref[4:])


def test_trailing_bytes_rejected():
    enc = WireEncoder("binary")
    frame = enc.encode({"type": "grant", "app": "a", "t": 1.0})
    with pytest.raises(ProtocolError, match="trailing"):
        WireDecoder().decode(frame[4:] + b"\x00")


def test_unknown_codec_name_rejected():
    with pytest.raises(ValueError, match="unknown wire codec"):
        WireEncoder("msgpack")


# ---------------------------------------------------------------------------
# FrameError: byte offsets out of every truncation path
# ---------------------------------------------------------------------------

def test_sync_read_truncated_payload_carries_offsets():
    a, b = socket.socketpair()
    try:
        payload = canonical_json({"type": "bye"}).encode()
        a.sendall(struct.pack(">I", len(payload)) + payload[:3])
        a.close()
        with pytest.raises(FrameError, match=r"got 3 of 14"):
            read_frame(b)
    finally:
        b.close()


def test_sync_read_truncated_header_carries_offsets():
    a, b = socket.socketpair()
    try:
        a.sendall(b"\x00\x00")
        a.close()
        with pytest.raises(FrameError, match=r"got 2 of 4"):
            read_frame(b)
    finally:
        b.close()


def test_sync_read_clean_eof_is_none():
    a, b = socket.socketpair()
    try:
        write_frame(a, {"type": "bye"})
        a.close()
        assert read_frame(b) == {"type": "bye"}
        assert read_frame(b) is None
    finally:
        b.close()


def test_sync_oversized_frame_is_frame_error():
    a, b = socket.socketpair()
    try:
        a.sendall(struct.pack(">I", MAX_FRAME + 1))
        with pytest.raises(FrameError, match="exceeds MAX_FRAME"):
            read_frame(b)
    finally:
        a.close()
        b.close()


def test_frame_error_is_a_protocol_error():
    """Existing `except ProtocolError` sites keep catching frame faults."""
    assert issubclass(FrameError, ProtocolError)


def test_async_truncation_carries_offsets():
    async def go():
        a, b = socket.socketpair()
        reader, _writer = await asyncio.open_connection(sock=b)
        payload = canonical_json({"type": "bye"}).encode()
        a.sendall(struct.pack(">I", len(payload)) + payload[:5])
        a.close()
        with pytest.raises(FrameError, match=r"got 5 of 14"):
            await read_message(reader)
        _writer.close()

    asyncio.run(asyncio.wait_for(go(), _TIMEOUT))


# ---------------------------------------------------------------------------
# FrameReader: buffered reads, coalesced waves
# ---------------------------------------------------------------------------

def test_frame_reader_parses_coalesced_wave_from_buffer():
    a, b = socket.socketpair()
    try:
        enc = WireEncoder("binary")
        wave = b"".join(enc.encode({"type": "grant", "app": f"a{i}",
                                    "t": float(i)}) for i in range(5))
        a.sendall(wave)
        reader = FrameReader(b)
        assert not reader.has_buffered_frame()   # nothing recv'd yet
        for i in range(5):
            msg = reader.read_frame()
            assert msg == {"type": "grant", "app": f"a{i}", "t": float(i)}
            # After one recv the whole wave is in the buffer.
            assert reader.has_buffered_frame() == (i < 4)
        a.close()
        assert reader.read_frame() is None
    finally:
        b.close()


def test_frame_reader_mid_frame_eof_carries_offsets():
    a, b = socket.socketpair()
    try:
        a.sendall(struct.pack(">I", 100) + b"partial")
        a.close()
        reader = FrameReader(b)
        with pytest.raises(FrameError, match=r"got 11 of 104"):
            reader.read_frame()
    finally:
        b.close()


def test_frame_reader_mixed_codecs_one_stream():
    """Payloads are self-describing: one reader handles both codecs."""
    a, b = socket.socketpair()
    try:
        enc_b, enc_j = WireEncoder("binary"), WireEncoder("json")
        msg = {"type": "release", "app": "α", "remaining": None}
        a.sendall(enc_b.encode(msg) + enc_j.encode(msg) + enc_b.encode(msg))
        reader = FrameReader(b)
        assert [reader.read_frame() for _ in range(3)] == [msg, msg, msg]
    finally:
        a.close()
        b.close()


# ---------------------------------------------------------------------------
# Canonical JSON: one policy, two call sites
# ---------------------------------------------------------------------------

def test_encode_message_uses_canonical_json():
    msg = {"type": "inform", "t": 1 / 3, "descriptor": _desc_dict()}
    assert encode_message(msg)[4:] == canonical_json(msg).encode("utf-8")


def test_canonical_json_float_policy_round_trips():
    for value in _FLOATS:
        assert json.loads(canonical_json(value)) == value


def test_default_wire_codec_env(monkeypatch):
    monkeypatch.delenv("REPRO_WIRE_CODEC", raising=False)
    assert default_wire_codec() == "json"
    monkeypatch.setenv("REPRO_WIRE_CODEC", "binary")
    assert default_wire_codec() == "binary"
    monkeypatch.setenv("REPRO_WIRE_CODEC", "bogus")
    assert default_wire_codec() == "json"


# ---------------------------------------------------------------------------
# Codec negotiation (hello/welcome)
# ---------------------------------------------------------------------------

def _service_spec():
    from repro.experiments.scenarios import build_scenario
    return build_scenario("service-many-writers", napps=4, nservers=4,
                          phases=1, seed=5, strategy="fcfs")[0]


@pytest.mark.parametrize("proposal,granted", [
    ("binary", "binary"), ("json", "json"), (None, "json")])
def test_codec_negotiation(proposal, granted, monkeypatch):
    monkeypatch.delenv("REPRO_WIRE_CODEC", raising=False)
    from repro.service.client import ServiceClient
    from repro.service.server import CoordinationService

    async def go():
        service = CoordinationService(_service_spec())
        await service.start()
        host, port = service.address
        client = await ServiceClient.connect(host, port, ["w00"],
                                             mode="live", codec=proposal)
        assert client.codec == granted
        await client.close()
        await service.close()

    asyncio.run(asyncio.wait_for(go(), _TIMEOUT))


def test_unknown_codec_proposal_falls_back_to_json():
    """A raw hello naming an unsupported codec gets a JSON welcome."""
    from repro.service.server import CoordinationService

    async def go():
        service = CoordinationService(_service_spec())
        await service.start()
        host, port = service.address
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(encode_message({"type": "hello", "apps": ["w00"],
                                     "mode": "live", "spec_sha": None,
                                     "codec": "msgpack"}))
        await writer.drain()
        welcome = await read_message(reader)
        assert welcome["type"] == "welcome"
        assert welcome["codec"] == "json"
        writer.close()
        await service.close()

    asyncio.run(asyncio.wait_for(go(), _TIMEOUT))


# ---------------------------------------------------------------------------
# Decision-log bit-identity across codecs
# ---------------------------------------------------------------------------

def _replay_with_codec(codec, pipeline):
    from repro.service.loadgen import run_service_benchmark
    from repro.service.trace import record_trace

    spec = _service_spec()

    async def go():
        trace, result = record_trace(spec)
        stats, service = await run_service_benchmark(
            spec, 3,
            trace_and_reference=(trace, result.decisions,
                                 float(result.perf["wall_seconds"])),
            codec=codec, pipeline=pipeline)
        return result, stats, service

    return asyncio.run(asyncio.wait_for(go(), _TIMEOUT))


@pytest.mark.parametrize("pipeline", [1, 16])
def test_service_replay_bit_identical_across_codecs(pipeline):
    logs = {}
    for codec in CODECS:
        result, stats, service = _replay_with_codec(codec, pipeline)
        assert stats.equivalent, f"{codec} digest diverged"
        logs[codec] = decisions_to_json(service.decision_log)
        assert logs[codec] == decisions_to_json(result.decisions)
    assert logs["binary"] == logs["json"]


def test_service_metrics_expose_wire_counters():
    result, stats, service = _replay_with_codec("binary", 16)
    snap = service.metrics_snapshot()
    assert snap.get("wire_frames_encoded", 0) > 0
    assert snap.get("wire_frames_decoded", 0) > 0
    assert snap.get("wire_bytes_encoded", 0) > 0
    assert snap.get("wire_flushes", 0) > 0
    # Descriptors flow client->server, so interning counters are bumped
    # by the *client's* encoder — the daemon side only decodes them.
    assert snap.get("wire_frames_decoded", 0) >= stats.exchanges


def _drive_shards(codec, seed=11):
    """The randomized shard trace from test_process_shards, per codec."""
    import numpy as np

    rng = np.random.default_rng(seed)
    napps, nparts = 12, 2
    starts = rng.uniform(0.0, 3.0, size=napps)
    holds = rng.uniform(0.1, 1.0, size=napps)
    phases = rng.integers(1, 4, size=napps)
    parts = rng.integers(0, nparts, size=napps)
    sim = Simulator()
    perf = PerfCounters()
    router = ShardRouter(sim, nparts, "dynamic", grant_latency=1e-3,
                         workers="process", perf=perf, codec=codec)

    def app(i):
        name = f"app{i:02d}"
        yield sim.timeout(float(starts[i]))
        for _ in range(int(phases[i])):
            d = AccessDescriptor(app=name, nprocs=int(rng.integers(1, 64)),
                                 total_bytes=1e6,
                                 t_alone=float(holds[i]),
                                 partitions=(int(parts[i]),))
            ok = yield router.submit_inform(d)
            if not ok:
                yield router.authorization_event(name)
            yield sim.timeout(float(holds[i]) / 2)
            router.submit_release(name, d.total_bytes / 2)
            yield sim.timeout(float(holds[i]) / 2)
            router.on_complete(name)

    for i in range(napps):
        sim.process(app(i))
    sim.run()
    router.close()
    return decisions_to_json(router.decision_log), sim.now, perf


def test_process_shards_bit_identical_across_codecs():
    log_json, end_json, _ = _drive_shards("json")
    log_bin, end_bin, perf = _drive_shards("binary")
    assert log_bin == log_json
    assert end_bin == end_json
    assert perf.get("wire_frames_encoded") > 0
    assert perf.get("wire_flushes") > 0


def test_process_shards_env_codec(monkeypatch):
    """REPRO_WIRE_CODEC=binary selects the codec at pool start."""
    monkeypatch.setenv("REPRO_WIRE_CODEC", "binary")
    sim = Simulator()
    perf = PerfCounters()
    router = ShardRouter(sim, 1, "fcfs", workers="process", perf=perf)

    def one():
        d = AccessDescriptor(app="solo", nprocs=4, total_bytes=1e5,
                             t_alone=1.0, partitions=(0,))
        ok = yield router.submit_inform(d)
        assert ok
        yield sim.timeout(0.5)
        router.on_complete("solo")

    sim.process(one())
    sim.run()
    assert router._pool.codec == "binary"
    router.close()
    assert perf.get("wire_frames_encoded") > 0
