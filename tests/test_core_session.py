"""Integration tests: CALCioM sessions + runtime + real applications."""

import pytest

from repro.apps import IORApp, IORConfig
from repro.core import CalciomRuntime
from repro.mpisim import Contiguous, MPIInfo
from repro.platforms import Platform, PlatformConfig
from repro.simcore import SimulationError


def tiny_cfg(**overrides):
    base = dict(name="tiny", nservers=2, disk_bandwidth=100.0,
                per_core_bandwidth=10.0, stripe_size=100, latency=1e-5)
    base.update(overrides)
    return PlatformConfig(**base)


def make_pair(strategy, dt=0.0, nprocs_a=20, nprocs_b=20, nbytes=1000,
              platform_cfg=None, **app_kwargs):
    platform = Platform(platform_cfg or tiny_cfg())
    runtime = CalciomRuntime(platform, strategy=strategy)
    apps = []
    for name, nprocs, start in [("A", nprocs_a, 0.0), ("B", nprocs_b, dt)]:
        cfg = IORConfig(name=name, nprocs=nprocs,
                        pattern=Contiguous(block_size=nbytes),
                        start_time=start, **app_kwargs)
        app = IORApp(platform, cfg)
        session = runtime.session(name, app.client, nprocs, app.comm)
        app.guard = session
        app.adio.guard = session
        apps.append(app)
    return platform, runtime, apps


def test_session_prepare_complete_balance():
    platform = Platform(tiny_cfg())
    runtime = CalciomRuntime(platform, strategy="fcfs")
    platform.add_client("x", 4)
    session = runtime.session("x", "x", 4)
    with pytest.raises(SimulationError):
        session.complete()
    session.prepare(MPIInfo(total_bytes=100, nprocs=4))
    session.complete()


def test_session_inform_requires_prepare():
    platform = Platform(tiny_cfg())
    runtime = CalciomRuntime(platform, strategy="fcfs")
    platform.add_client("x", 4)
    session = runtime.session("x", "x", 4)

    def body():
        yield from session.inform()

    platform.sim.process(body())
    with pytest.raises(SimulationError, match="Prepare"):
        platform.sim.run()


def test_duplicate_session_rejected():
    platform = Platform(tiny_cfg())
    runtime = CalciomRuntime(platform, strategy="fcfs")
    platform.add_client("x", 4)
    runtime.session("x", "x", 4)
    with pytest.raises(SimulationError):
        runtime.session("x", "x", 4)


def test_end_job_withdraws():
    platform = Platform(tiny_cfg())
    runtime = CalciomRuntime(platform, strategy="fcfs")
    platform.add_client("x", 4)
    runtime.session("x", "x", 4)
    runtime.end_job("x")
    assert len(runtime.registry) == 0
    with pytest.raises(SimulationError):
        runtime.end_job("x")
    # Name can be reused for a new job.
    platform.add_client("x2", 4)
    runtime.session("x", "x2", 4)


def test_fcfs_serializes_simultaneous_writers():
    platform, runtime, (a, b) = make_pair("fcfs", dt=0.0)
    a.start(); b.start()
    platform.sim.run()
    # One app must have finished its write before the other started writing:
    # total span ~= sum of standalone times, and one app waited.
    waits = [sum(p.wait_time for p in app.phases) for app in (a, b)]
    assert max(waits) > 0.9 * min(a.phases[0].duration, b.phases[0].duration) / 2
    # The second app's phase contains the first's write time.
    t_long = max(a.phases[0].duration, b.phases[0].duration)
    t_short = min(a.phases[0].duration, b.phases[0].duration)
    assert t_long > 1.5 * t_short


def test_interfere_strategy_shares():
    platform, runtime, (a, b) = make_pair("interfere", dt=0.0)
    a.start(); b.start()
    platform.sim.run()
    # Both see roughly the doubled time; neither waits.
    assert sum(p.wait_time for p in a.phases) < 0.01
    assert sum(p.wait_time for p in b.phases) < 0.01
    assert a.phases[0].duration == pytest.approx(b.phases[0].duration, rel=0.1)


def test_interrupt_lets_second_app_through():
    # A is long (big write), B short, arriving mid-A.
    platform = Platform(tiny_cfg())
    runtime = CalciomRuntime(platform, strategy="interrupt")
    cfg_a = IORConfig(name="A", nprocs=20, pattern=Contiguous(block_size=10000),
                      grain="round", cb_buffer_size=200)
    cfg_b = IORConfig(name="B", nprocs=20, pattern=Contiguous(block_size=500),
                      start_time=2.0, grain="round", cb_buffer_size=200)
    a = IORApp(platform, cfg_a)
    b = IORApp(platform, cfg_b)
    for app in (a, b):
        s = runtime.session(app.config.name, app.client, app.config.nprocs,
                            app.comm)
        app.guard = s
        app.adio.guard = s
    a.start(); b.start()
    platform.sim.run()
    t_b_alone = 20 * 500 / 200.0  # 10000 B at 200 B/s (client-bound)
    # B barely suffers; A absorbs the interruption.
    assert b.phases[0].duration < 2.5 * t_b_alone
    assert sum(p.wait_time for p in a.phases) > 0


def test_coordination_message_accounting():
    platform, runtime, (a, b) = make_pair("fcfs", dt=0.0)
    a.start(); b.start()
    platform.sim.run()
    sessions = runtime.sessions()
    assert sessions["A"].coordination_messages > 0
    assert sessions["B"].coordination_messages > 0


def test_decision_log_populated():
    platform, runtime, (a, b) = make_pair("dynamic", dt=0.0)
    a.start(); b.start()
    platform.sim.run()
    assert len(runtime.decision_log) >= 2
    apps_seen = {d.app for d in runtime.decision_log}
    assert apps_seen == {"A", "B"}


def test_strategy_property_exposed():
    platform = Platform(tiny_cfg())
    runtime = CalciomRuntime(platform, strategy="fcfs")
    assert runtime.strategy.name == "fcfs"


def test_total_wait_time_tracked_on_session():
    platform, runtime, (a, b) = make_pair("fcfs", dt=0.0)
    a.start(); b.start()
    platform.sim.run()
    sessions = runtime.sessions()
    total_wait = (sessions["A"].total_wait_time
                  + sessions["B"].total_wait_time)
    assert total_wait > 0
