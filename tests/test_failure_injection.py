"""Failure injection: withdrawn jobs, cancelled transfers, no deadlocks.

A coordination layer's worst failure mode is wedging the machine: an
application that dies while holding (or queued for) the file system must
not strand everyone else.  These tests kill things at awkward moments and
assert the system drains.
"""


from repro.apps import IORApp, IORConfig
from repro.core import CalciomRuntime
from repro.mpisim import Contiguous
from repro.platforms import Platform, PlatformConfig


def tiny_cfg():
    return PlatformConfig(name="fi", nservers=2, disk_bandwidth=100.0,
                          per_core_bandwidth=10.0, stripe_size=100,
                          latency=1e-6)


def make_apps(platform, runtime, specs):
    apps = []
    for name, nprocs, start, block in specs:
        cfg = IORConfig(name=name, nprocs=nprocs,
                        pattern=Contiguous(block_size=block),
                        start_time=start, grain="round", cb_buffer_size=500)
        app = IORApp(platform, cfg)
        session = runtime.session(name, app.client, nprocs, app.comm)
        app.guard = session
        app.adio.guard = session
        apps.append(app)
    return apps


def test_holder_withdrawal_unblocks_waiters():
    """A job that dies while ACTIVE releases the machine to the queue."""
    platform = Platform(tiny_cfg())
    runtime = CalciomRuntime(platform, strategy="fcfs")
    a, b = make_apps(platform, runtime,
                     [("a", 20, 0.0, 10_000), ("b", 20, 1.0, 500)])
    a.start()
    b.start()

    def killer():
        yield platform.sim.timeout(5.0)
        # Simulate a crash of application a: the scheduler tells CALCioM.
        runtime.end_job("a")
        # Its in-flight I/O disappears with it.
        for flow in platform.net.active_flows:
            if flow.label == "a":
                platform.net.cancel_flow(flow)
        a.done.interrupt("killed")
        a.done.defuse()  # nobody joins a crashed job

    platform.sim.process(killer())
    platform.sim.run()
    # b completed despite a's crash (no deadlock) and reasonably fast.
    assert len(b.phases) == 1
    t_b_alone = 20 * 500 / 200.0
    assert b.phases[0].duration < 6.0 + 3 * t_b_alone


def test_waiter_withdrawal_keeps_queue_moving():
    """A queued job that dies is skipped when its turn comes."""
    platform = Platform(tiny_cfg())
    runtime = CalciomRuntime(platform, strategy="fcfs")
    a, b, c = make_apps(platform, runtime,
                        [("a", 20, 0.0, 2000),
                         ("b", 20, 0.5, 2000),
                         ("c", 20, 1.0, 2000)])
    a.start()
    c.start()  # note: b never starts its I/O...

    def kill_b():
        yield platform.sim.timeout(0.6)
        runtime.end_job("b")  # ...and leaves the machine entirely

    platform.sim.process(kill_b())
    platform.sim.run()
    assert len(a.phases) == 1
    assert len(c.phases) == 1


def test_end_job_reuse_after_withdrawal():
    platform = Platform(tiny_cfg())
    runtime = CalciomRuntime(platform, strategy="fcfs")
    platform.add_client("x", 4)
    runtime.session("x", "x", 4)
    runtime.end_job("x")
    # The slot is free for a new job of the same name.
    platform.add_client("x2", 4)
    session = runtime.session("x", "x2", 4)
    assert session.app == "x"


def test_cancelled_transfer_fails_waiting_process():
    """A cancelled flow surfaces as an exception to whoever awaits it."""
    platform = Platform(tiny_cfg())
    platform.add_client("app", 10)
    outcome = {}

    def writer():
        try:
            yield platform.pfs.write("app", "app", "/f", 0, 10_000, weight=10)
            outcome["result"] = "completed"
        except RuntimeError as exc:
            outcome["result"] = f"failed: {exc}"

    platform.sim.process(writer())

    def canceller():
        yield platform.sim.timeout(1.0)
        for flow in platform.net.active_flows:
            platform.net.cancel_flow(flow, RuntimeError("server died"))

    platform.sim.process(canceller())
    platform.sim.run()
    assert outcome["result"] == "failed: server died"


def test_interrupted_app_survives_interrupter_withdrawal():
    """A preempted app resumes if the interrupter's job is withdrawn."""
    platform = Platform(tiny_cfg())
    runtime = CalciomRuntime(platform, strategy="interrupt")
    a, b = make_apps(platform, runtime,
                     [("a", 20, 0.0, 10_000), ("b", 20, 2.0, 10_000)])
    a.start()
    b.start()

    def kill_b():
        yield platform.sim.timeout(4.0)  # b has preempted a by now
        runtime.end_job("b")
        for flow in platform.net.active_flows:
            if flow.label == "b":
                platform.net.cancel_flow(flow)
        b.done.interrupt("killed")
        b.done.defuse()  # nobody joins a crashed job

    platform.sim.process(kill_b())
    platform.sim.run()
    assert len(a.phases) == 1  # a finished after b vanished
