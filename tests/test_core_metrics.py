"""Unit tests for efficiency metrics and access descriptors."""

import pytest

from repro.core import (
    AccessDescriptor, CpuSecondsWasted, MaxSlowdown, SumInterferenceFactors,
    TotalIOTime, make_metric,
)


def descriptors():
    return {
        "big": AccessDescriptor(app="big", nprocs=2048, total_bytes=1e9,
                                t_alone=10.0),
        "small": AccessDescriptor(app="small", nprocs=64, total_bytes=1e8,
                                  t_alone=2.0),
    }


def test_descriptor_remaining_defaults_to_total():
    d = AccessDescriptor(app="a", nprocs=1, total_bytes=100.0, t_alone=1.0)
    assert d.remaining_bytes == 100.0


def test_descriptor_remaining_t_scales_linearly():
    d = AccessDescriptor(app="a", nprocs=1, total_bytes=100.0, t_alone=10.0)
    d.remaining_bytes = 25.0
    assert d.remaining_t == pytest.approx(2.5)


def test_descriptor_remaining_t_zero_bytes():
    d = AccessDescriptor(app="a", nprocs=1, total_bytes=0.0, t_alone=0.0)
    assert d.remaining_t == 0.0


def test_descriptor_copy_is_independent():
    d = AccessDescriptor(app="a", nprocs=1, total_bytes=100.0, t_alone=1.0)
    c = d.copy()
    c.remaining_bytes = 1.0
    assert d.remaining_bytes == 100.0


def test_cpu_seconds_wasted_weights_by_size():
    m = CpuSecondsWasted()
    cost = m.cost({"big": 10.0, "small": 2.0}, descriptors())
    assert cost == pytest.approx(2048 * 10.0 + 64 * 2.0)


def test_sum_interference_factors_normalizes_by_alone():
    m = SumInterferenceFactors()
    cost = m.cost({"big": 20.0, "small": 2.0}, descriptors())
    assert cost == pytest.approx(2.0 + 1.0)


def test_max_slowdown_takes_worst():
    m = MaxSlowdown()
    cost = m.cost({"big": 10.0, "small": 28.0}, descriptors())
    assert cost == pytest.approx(14.0)


def test_total_io_time_is_size_blind():
    m = TotalIOTime()
    assert m.cost({"big": 10.0, "small": 2.0}, descriptors()) == 12.0


def test_make_metric_from_name_class_instance():
    assert isinstance(make_metric("cpu-seconds-wasted"), CpuSecondsWasted)
    assert isinstance(make_metric(MaxSlowdown), MaxSlowdown)
    inst = TotalIOTime()
    assert make_metric(inst) is inst
    with pytest.raises(ValueError):
        make_metric("nope")
    with pytest.raises(TypeError):
        make_metric(42)
