"""Integration tests for the experiment harness against the analytic model."""

import numpy as np
import pytest

from repro.apps import IORConfig
from repro.experiments import (
    TwoFlowModel, cpu_seconds_wasted, efficiency_summary,
    expected_pair_times, format_series, format_table, interference_factor,
    run_delta_graph, run_pair, run_single, size_split_sweep, sparkline,
    split_pairs, standalone_time, strategy_comparison,
    sum_interference_factors,
)
from repro.mpisim import Contiguous
from repro.platforms import PlatformConfig

PLATFORM = PlatformConfig(
    name="bench", nservers=4, disk_bandwidth=250.0,
    per_core_bandwidth=10.0, stripe_size=1000, latency=0.0,
)
# 4 servers x 250 = 1000 B/s aggregate; 100 procs saturate.


def cfg(name, nprocs, block=1000, **kw):
    return IORConfig(name=name, nprocs=nprocs,
                     pattern=Contiguous(block_size=block), grain=None, **kw)


# -- analytic model -------------------------------------------------------------

def test_two_flow_alone_rates():
    m = TwoFlowModel(capacity=1000.0, weight_a=50, weight_b=200,
                     cap_a=500.0, cap_b=2000.0)
    assert m.alone_rate_a() == 500.0
    assert m.alone_rate_b() == 1000.0


def test_two_flow_shared_rates_proportional():
    m = TwoFlowModel(capacity=1000.0, weight_a=100, weight_b=300,
                     cap_a=1e9, cap_b=1e9)
    ra, rb = m.shared_rates()
    assert ra == pytest.approx(250.0)
    assert rb == pytest.approx(750.0)


def test_two_flow_shared_rates_with_cap_redistribution():
    m = TwoFlowModel(capacity=1000.0, weight_a=100, weight_b=100,
                     cap_a=200.0, cap_b=1e9)
    ra, rb = m.shared_rates()
    assert ra == pytest.approx(200.0)   # capped
    assert rb == pytest.approx(800.0)   # picks up the slack


def test_expected_pair_symmetric_at_dt_zero():
    ta, tb = expected_pair_times(PLATFORM, 200, 100000.0, 200, 100000.0, 0.0)
    assert ta == pytest.approx(tb)
    # Equal halves of 1000 B/s: each 500 B/s for 100 kB -> 200 s.
    assert ta == pytest.approx(200.0)


def test_expected_pair_no_overlap_when_dt_large():
    ta, tb = expected_pair_times(PLATFORM, 200, 100000.0, 200, 100000.0, 1e6)
    assert ta == pytest.approx(100.0)
    assert tb == pytest.approx(100.0)


def test_expected_pair_negative_dt_mirrors():
    ta1, tb1 = expected_pair_times(PLATFORM, 200, 1e5, 100, 5e4, 30.0)
    tb2, ta2 = expected_pair_times(PLATFORM, 100, 5e4, 200, 1e5, -30.0)[::-1]
    # Mirror: (A,B,dt) == swapped (B,A,-dt).
    assert ta1 == pytest.approx(expected_pair_times(
        PLATFORM, 200, 1e5, 100, 5e4, 30.0)[0])


def test_expected_identical_apps_finish_in_equal_time():
    """Under exact proportional sharing, two identical apps see the *same*
    write time for any overlap (work conservation); the paper's measured
    first-arriver advantage is a sub-proportional queueing effect."""
    for dt in (0.0, 25.0, 50.0, 99.0):
        ta, tb = expected_pair_times(PLATFORM, 200, 1e5, 200, 1e5, dt)
        assert ta == pytest.approx(tb)


# -- runner ------------------------------------------------------------------------

def test_run_single_matches_analytic():
    app = run_single(PLATFORM, cfg("solo", 50))
    # 50 procs x 10 B/s = 500 B/s client-bound; 50 kB data + 12.5% shuffle.
    base = 50 * 1000 / 500.0
    assert app.phases[0].duration == pytest.approx(base * 1.125, rel=0.01)


def test_standalone_time_cache_consistency():
    t1 = standalone_time(PLATFORM, cfg("x", 50))
    t2 = standalone_time(PLATFORM, cfg("y", 50, start_time=17.0))
    assert t1 == t2  # name and start_time are normalized away


def test_run_pair_interference_factors():
    res = run_pair(PLATFORM, cfg("A", 200), cfg("B", 200), dt=0.0)
    assert res.a.interference_factor > 1.5
    assert res.b.interference_factor > 1.5
    assert res.cpu_seconds_wasted() > 0
    assert res.sum_interference_factors() > 3.0


def test_run_pair_negative_dt_shifts_a():
    res = run_pair(PLATFORM, cfg("A", 200), cfg("B", 200), dt=-1e5)
    # B ran long before A: no interference either way.
    assert res.a.interference_factor == pytest.approx(1.0, abs=0.01)
    assert res.b.interference_factor == pytest.approx(1.0, abs=0.01)


def test_delta_graph_shape_matches_expected():
    dts = [-300.0, -100.0, 0.0, 100.0, 300.0]
    g = run_delta_graph(PLATFORM, cfg("A", 200), cfg("B", 200), dts,
                        with_expected=True)
    # Peak interference at dt=0, falling off on both sides.
    i_b = g.interference_b
    assert i_b[2] == max(i_b)
    assert i_b[0] < i_b[1] <= i_b[2]
    # Measured tracks expected within the shuffle overhead (~12.5%).
    ratio = g.t_a / g.expected_a
    assert np.all(ratio > 0.99) and np.all(ratio < 1.30)


def test_delta_graph_rows():
    g = run_delta_graph(PLATFORM, cfg("A", 100), cfg("B", 100), [0.0])
    rows = g.rows()
    assert len(rows) == 1
    dt, ta, tb, ia, ib = rows[0]
    assert dt == 0.0 and ia >= 1.0 and ib >= 1.0


def test_split_pairs():
    assert split_pairs(768, [24, 384]) == [(744, 24), (384, 384)]
    with pytest.raises(ValueError):
        split_pairs(768, [768])


def test_size_split_sweep_returns_graph_per_split():
    # total=400 puts B=50 below the ~100-proc saturation knee (I ~ cT/S = 4)
    # and B=200 above it (I ~ T/N = 2).
    graphs = size_split_sweep(PLATFORM, cfg("A", 1), cfg("B", 1),
                              total_cores=400, sizes_b=[50, 200],
                              dts=[0.0])
    assert set(graphs) == {50, 200}
    # The smaller B suffers more at dt=0.
    assert graphs[50].max_interference_b() > graphs[200].max_interference_b()


def test_strategy_comparison_covers_strategies():
    results = strategy_comparison(PLATFORM, cfg("A", 150), cfg("B", 50),
                                  dt=10.0,
                                  strategies=(None, "fcfs", "interrupt"))
    assert set(results) == {None, "fcfs", "interrupt"}
    # Interrupt saves the small app relative to FCFS.
    assert (results["interrupt"].b.interference_factor
            < results["fcfs"].b.interference_factor)


# -- interference helpers ------------------------------------------------------------

def test_interference_factor_validation():
    assert interference_factor(10.0, 5.0) == 2.0
    with pytest.raises(ValueError):
        interference_factor(10.0, 0.0)
    with pytest.raises(ValueError):
        interference_factor(4.0, 5.0)  # speedup under contention = bug


def test_summary_metrics():
    io = {"a": 10.0, "b": 4.0}
    alone = {"a": 5.0, "b": 4.0}
    nprocs = {"a": 100, "b": 10}
    assert cpu_seconds_wasted(io, nprocs) == pytest.approx(1040.0)
    assert sum_interference_factors(io, alone) == pytest.approx(3.0)
    summary = efficiency_summary(io, alone, nprocs)
    assert summary["max-slowdown"] == pytest.approx(2.0)
    assert summary["total-io-time"] == pytest.approx(14.0)


# -- reporting ------------------------------------------------------------------------

def test_format_table_alignment():
    out = format_table(["x", "value"], [[1, 2.5], [10, 0.125]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "value" in lines[0]


def test_sparkline_range():
    line = sparkline([0, 1, 2, 3])
    assert len(line) == 4
    assert line[0] != line[-1]
    assert sparkline([]) == ""
    assert len(set(sparkline([5, 5, 5]))) == 1


def test_format_series_contains_rows():
    out = format_series("test", [1.0, 2.0], [3.0, 4.0], xlabel="dt",
                        ylabel="T")
    assert "dt=" in out and "T=3" in out
