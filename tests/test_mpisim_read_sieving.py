"""Tests for collective reads and data sieving."""

import pytest

from repro.mpisim import (
    ADIOLayer, Communicator, Contiguous, Strided, plan_data_sieving,
)
from repro.platforms import Platform, PlatformConfig


def adio_fixture(nprocs=8, per_core=10.0, disk=100.0):
    cfg = PlatformConfig(name="t", nservers=2, disk_bandwidth=disk,
                         per_core_bandwidth=per_core, stripe_size=1000,
                         latency=0.0)
    platform = Platform(cfg)
    client = platform.add_client("app", nprocs)
    comm = Communicator(platform.sim, nprocs, alpha=0.0,
                        per_proc_bandwidth=per_core)
    adio = ADIOLayer(platform.sim, platform.pfs, client, "app", comm,
                     cb_buffer_size=1000, naggregators=nprocs)
    return platform, adio


# -- sieve planning -----------------------------------------------------------

def test_sieve_contiguous_no_amplification():
    plan = plan_data_sieving(Contiguous(block_size=10_000), nprocs=4,
                             buffer_size=4000)
    assert plan.amplification == 1.0
    assert all(w for _o, _n, w in plan.operations)  # writes only
    assert plan.nrequests == 3  # ceil(10000/4000)


def test_sieve_strided_amplification():
    # 4 procs x 4 blocks x 100 B: extent 1600 B per proc, payload 400 B.
    plan = plan_data_sieving(Strided(block_size=100, nblocks=4), nprocs=4,
                             buffer_size=800)
    # read+write of the full extent: 3200 B moved for 400 B payload.
    assert plan.amplification == pytest.approx(8.0)
    assert plan.nrequests == 4  # 2 windows x (read + write)
    kinds = [w for _o, _n, w in plan.operations]
    assert kinds == [False, True, False, True]


def test_sieve_without_rmw_halves_traffic():
    plan = plan_data_sieving(Strided(block_size=100, nblocks=4), nprocs=4,
                             buffer_size=800, read_modify_write=False)
    assert plan.amplification == pytest.approx(4.0)


def test_sieve_operations_cover_extent():
    plan = plan_data_sieving(Strided(block_size=128, nblocks=3), nprocs=5,
                             buffer_size=1000)
    writes = [(o, n) for o, n, w in plan.operations if w]
    assert sum(n for _o, n in writes) == 128 * 3 * 5
    offsets = [o for o, _n in writes]
    assert offsets == sorted(offsets)


def test_sieve_validation():
    with pytest.raises(ValueError):
        plan_data_sieving(Contiguous(block_size=10), nprocs=0)
    with pytest.raises(ValueError):
        plan_data_sieving(Contiguous(block_size=10), nprocs=1, buffer_size=0)


def test_sieve_aggregate_transferred():
    plan = plan_data_sieving(Strided(block_size=100, nblocks=2), nprocs=3,
                             buffer_size=600)
    assert plan.aggregate_transferred == plan.transferred_bytes_per_process * 3


# -- ADIO execution -----------------------------------------------------------

def test_read_collective_roundtrip():
    platform, adio = adio_fixture()

    def body():
        yield from adio.write_collective("/f", Contiguous(block_size=1000),
                                         grain=None)
        stats = yield from adio.read_collective(
            "/f", Contiguous(block_size=1000), grain=None)
        return stats

    p = platform.sim.process(body())
    stats = platform.sim.run(until=p)
    assert stats.bytes == 8000
    assert stats.write_time > 0  # read-phase time lands here


def test_read_collective_strided_has_scatter_phase():
    platform, adio = adio_fixture()

    def body():
        yield from adio.write_collective(
            "/f", Strided(block_size=500, nblocks=2), grain=None)
        return (yield from adio.read_collective(
            "/f", Strided(block_size=500, nblocks=2), grain=None))

    p = platform.sim.process(body())
    stats = platform.sim.run(until=p)
    assert stats.comm_time > 0


def test_sieved_write_moves_amplified_volume():
    platform, adio = adio_fixture()

    def body():
        return (yield from adio.write_independent_sieved(
            "/f", Strided(block_size=100, nblocks=4), guarded=False))

    p = platform.sim.process(body())
    stats = platform.sim.run(until=p)
    # Aggregate: 8 procs x (read 3200 + write 3200) = 51200 B through a
    # client at 80 B/s (both directions full duplex).
    assert platform.pfs.total_bytes_written == pytest.approx(8 * 3200)
    assert platform.pfs.total_bytes_read == pytest.approx(8 * 3200)


def test_sieved_contiguous_as_fast_as_plain():
    platform, adio = adio_fixture()

    def body():
        s1 = yield from adio.write_independent("/plain", 8000, guarded=False)
        s2 = yield from adio.write_independent_sieved(
            "/sieved", Contiguous(block_size=1000), guarded=False)
        return s1, s2

    p = platform.sim.process(body())
    s1, s2 = platform.sim.run(until=p)
    assert s2.duration == pytest.approx(s1.duration, rel=0.05)


def test_sieved_strided_much_slower_than_collective():
    """The reason two-phase I/O exists: sieving a strided pattern moves
    2 x nprocs x payload; collective buffering moves ~2 x payload."""
    platform, adio = adio_fixture()

    def body():
        s_cb = yield from adio.write_collective(
            "/cb", Strided(block_size=100, nblocks=4), grain=None)
        s_sv = yield from adio.write_independent_sieved(
            "/sv", Strided(block_size=100, nblocks=4), guarded=False)
        return s_cb, s_sv

    p = platform.sim.process(body())
    s_cb, s_sv = platform.sim.run(until=p)
    assert s_sv.duration > 3.0 * s_cb.duration


def test_mpiio_read_all_advances_offset():
    from repro.mpisim import MPIIOFile
    platform, adio = adio_fixture()
    f = MPIIOFile(adio, "/f")

    def body():
        yield from f.write_all(Contiguous(block_size=1000), grain=None)
        f.offset = 0
        yield from f.read_all(Contiguous(block_size=1000), grain=None)

    platform.sim.process(body())
    platform.sim.run()
    assert f.offset == 8000
