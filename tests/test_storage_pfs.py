"""Integration tests: PFS + servers + schedulers + platform presets."""

import pytest

from repro.platforms import (
    Platform, PlatformConfig, grid5000_nancy, grid5000_rennes, surveyor,
)
from repro.simcore import SimulationError
from repro.storage import IORequest


def tiny_platform(**overrides):
    cfg = PlatformConfig(
        name="tiny", nservers=2, disk_bandwidth=100.0,
        per_core_bandwidth=10.0, stripe_size=10, latency=0.0,
    )
    return Platform(cfg.with_(**overrides) if overrides else cfg)


def test_write_creates_file_and_tracks_size():
    p = tiny_platform()
    p.add_client("appA", nprocs=4)
    done = p.pfs.write("appA", "appA", "/f", offset=0, nbytes=100, weight=4)
    p.sim.run(until=done)
    assert p.pfs.stat("/f").size == 100


def test_write_time_bounded_by_client_uplink():
    p = tiny_platform()
    p.add_client("appA", nprocs=4)  # uplink 40 B/s < servers 200 B/s
    done = p.pfs.write("appA", "appA", "/f", 0, 400, weight=4)
    p.sim.run(until=done)
    assert p.sim.now == pytest.approx(10.0)


def test_write_time_bounded_by_servers_when_client_is_fat():
    p = tiny_platform()
    p.add_client("appA", nprocs=100)  # uplink 1000 B/s > servers 2x100
    done = p.pfs.write("appA", "appA", "/f", 0, 1000, weight=100)
    p.sim.run(until=done)
    assert p.sim.now == pytest.approx(5.0)


def test_two_apps_share_servers_by_weight():
    p = tiny_platform()
    p.add_client("big", nprocs=30)
    p.add_client("small", nprocs=10)
    d_big = p.pfs.write("big", "big", "/b", 0, 600, weight=30)
    d_small = p.pfs.write("small", "small", "/s", 0, 200, weight=10)
    p.sim.run()
    # Servers carry 200 B/s total, split 3:1 (150 vs 50): big takes 4 s,
    # small takes 200/50=4 s (then both end simultaneously by construction).
    assert p.sim.now == pytest.approx(4.0)
    assert d_big.triggered and d_small.triggered


def test_read_returns_written_data_time():
    p = tiny_platform()
    p.add_client("appA", nprocs=100)
    done = p.pfs.write("appA", "appA", "/f", 0, 1000, weight=100)
    p.sim.run(until=done)
    t0 = p.sim.now
    done = p.pfs.read("appA", "appA", "/f", 0, 1000, weight=100)
    p.sim.run(until=done)
    assert p.sim.now - t0 == pytest.approx(5.0)


def test_read_past_eof_raises():
    p = tiny_platform()
    p.add_client("appA", nprocs=1)
    done = p.pfs.write("appA", "appA", "/f", 0, 50, weight=1)
    p.sim.run(until=done)
    with pytest.raises(SimulationError):
        p.pfs.read("appA", "appA", "/f", 0, 51)


def test_unlink_and_listdir():
    p = tiny_platform()
    p.pfs.create("/a")
    p.pfs.create("/b")
    assert p.pfs.listdir() == ["/a", "/b"]
    p.pfs.unlink("/a")
    assert p.pfs.listdir() == ["/b"]
    with pytest.raises(SimulationError):
        p.pfs.unlink("/a")


def test_create_duplicate_raises():
    p = tiny_platform()
    p.pfs.create("/a")
    with pytest.raises(SimulationError):
        p.pfs.create("/a")


def test_zero_byte_write_completes_instantly():
    p = tiny_platform()
    p.add_client("appA", nprocs=1)
    done = p.pfs.write("appA", "appA", "/f", 0, 0)
    assert done.triggered


def test_duplicate_client_rejected():
    p = tiny_platform()
    p.add_client("appA", 1)
    with pytest.raises(SimulationError):
        p.add_client("appA", 2)


def test_fifo_scheduler_serializes_requests():
    p = tiny_platform(scheduler="fifo", nservers=1)
    p.add_client("a", nprocs=100)
    p.add_client("b", nprocs=100)
    d1 = p.pfs.write("a", "a", "/x", 0, 100, weight=100)
    d2 = p.pfs.write("b", "b", "/y", 0, 100, weight=100)
    p.sim.run()
    # Server is 100 B/s; strict FIFO services a fully, then b.
    assert d1.value is not None
    t1 = max(f.finish_time for f in [v for v in d1.value.values()][0:1]) \
        if hasattr(d1.value, "values") else None
    assert p.sim.now == pytest.approx(2.0)


def test_app_serial_scheduler_batches_per_app():
    p = tiny_platform(scheduler="app-serial", nservers=1)
    p.add_client("a", nprocs=100)
    p.add_client("b", nprocs=100)
    # Two requests from a, one from b, interleaved in submission order.
    da1 = p.pfs.write("a", "a", "/x1", 0, 100, weight=100)
    db = p.pfs.write("b", "b", "/y", 0, 100, weight=100)
    da2 = p.pfs.write("a", "a", "/x2", 0, 100, weight=100)
    p.sim.run()
    assert p.sim.now == pytest.approx(3.0)  # a batch (2 concurrent) + b


def test_seek_penalty_degrades_multi_app_ingest():
    p = tiny_platform(seek_penalty=1.0, nservers=1)
    p.add_client("a", nprocs=100)
    p.add_client("b", nprocs=100)
    d1 = p.pfs.write("a", "a", "/x", 0, 100, weight=100)
    d2 = p.pfs.write("b", "b", "/y", 0, 100, weight=100)
    p.sim.run()
    # Two apps: rate 100/(1+1) = 50 B/s shared -> 25 each -> 200 B joint at
    # 50 B/s aggregate = 4 s.
    assert p.sim.now == pytest.approx(4.0)


def test_bytes_accounting():
    p = tiny_platform()
    p.add_client("appA", nprocs=10)
    done = p.pfs.write("appA", "appA", "/f", 0, 1000, weight=10)
    p.sim.run(until=done)
    assert p.pfs.total_bytes_written == pytest.approx(1000.0)


def test_request_validation():
    with pytest.raises(ValueError):
        IORequest(app="a", client="a", path="/f", offset=0, size=-1)
    with pytest.raises(ValueError):
        IORequest(app="a", client="a", path="/f", offset=0, size=1, kind="scan")
    with pytest.raises(ValueError):
        IORequest(app="a", client="a", path="/f", offset=0, size=1, weight=0)


# -- platform presets --------------------------------------------------------

def test_presets_instantiate():
    for cfg in (surveyor(), grid5000_nancy(), grid5000_nancy(cache=True),
                grid5000_rennes()):
        p = Platform(cfg)
        expected = 1 if cfg.pool_servers else cfg.nservers
        assert len(p.servers) == expected


def test_pooled_and_unpooled_platforms_agree():
    """Pooling servers must not change symmetric-workload physics."""
    import pytest as _pytest
    times = {}
    for pooled in (True, False):
        cfg = grid5000_nancy().with_(pool_servers=pooled)
        p = Platform(cfg)
        p.add_client("app", nprocs=336)
        done = p.pfs.write("app", "app", "/f", 0, int(336 * 16e6), weight=336)
        p.sim.run(until=done)
        times[pooled] = p.sim.now
    # Pooling is exact; per-server striping has stripe-unit imbalance, so
    # agreement is to ~1 stripe unit out of ~150k.
    assert times[True] == _pytest.approx(times[False], rel=1e-3)


def test_preset_calibration_anchor_nancy():
    """Two 336-proc apps writing 16 MB/proc take ~8.5 s alone (Fig 2)."""
    cfg = grid5000_nancy()
    t = Platform(cfg).standalone_write_time(336, 336 * 16e6)
    assert 7.0 < t < 10.0


def test_preset_calibration_anchor_surveyor():
    """2048-core app writing 32 MB/proc takes ~13 s alone (Fig 7a)."""
    cfg = surveyor()
    t = Platform(cfg).standalone_write_time(2048, 2048 * 32e6)
    assert 10.0 < t < 16.0
    # A 1024-core app must NOT saturate the file system (Fig 7b regime).
    assert 1024 * cfg.per_core_bandwidth < cfg.aggregate_bandwidth


def test_preset_calibration_anchor_rennes():
    """Per-core/aggregate ratio ~55 gives the Fig 6 interference ceiling."""
    cfg = grid5000_rennes()
    ratio = cfg.aggregate_bandwidth / cfg.per_core_bandwidth
    assert 45 < ratio < 65


def test_config_with_override():
    cfg = surveyor().with_(scheduler="fifo")
    assert cfg.scheduler == "fifo"
    assert surveyor().scheduler == "shared"
