"""Unit tests for scheduling strategies (decision logic only, no sim)."""

import pytest

from repro.core import (
    AccessDescriptor, Action, CpuSecondsWasted, DynamicStrategy, FCFSStrategy,
    InterfereStrategy, InterruptStrategy, SumInterferenceFactors,
    make_strategy,
)


def desc(app, nprocs, t_alone, total=1e9, started=None, remaining=None):
    d = AccessDescriptor(app=app, nprocs=nprocs, total_bytes=total,
                         t_alone=t_alone, access_started=started)
    if remaining is not None:
        d.remaining_bytes = remaining
    return d


def test_interfere_always_go():
    s = InterfereStrategy()
    a = desc("a", 100, 10.0, started=0.0)
    decision = s.decide(5.0, [a], [], desc("b", 100, 10.0))
    assert decision.action is Action.GO


def test_fcfs_waits_behind_active():
    s = FCFSStrategy()
    a = desc("a", 100, 10.0, started=0.0)
    assert s.decide(5.0, [a], [], desc("b", 100, 10.0)).action is Action.WAIT


def test_fcfs_waits_behind_queue():
    s = FCFSStrategy()
    waiting = desc("w", 100, 10.0)
    assert s.decide(5.0, [], [waiting], desc("b", 100, 10.0)).action is Action.WAIT


def test_fcfs_goes_when_idle():
    assert FCFSStrategy().decide(0.0, [], [], desc("b", 1, 1.0)).action is Action.GO


def test_interrupt_preempts_active():
    s = InterruptStrategy()
    a = desc("a", 100, 10.0, started=0.0)
    d = s.decide(5.0, [a], [], desc("b", 100, 10.0))
    assert d.action is Action.INTERRUPT


def test_interrupt_goes_when_idle():
    assert InterruptStrategy().decide(0.0, [], [], desc("b", 1, 1.0)).action is Action.GO


# -- the paper's §IV-D decision rule ----------------------------------------
#
# Equal sizes, B writes 1/4 of A's data (the Fig 10/11 scenario).
# Rule: interrupt iff dt < T_A(alone) - T_B(alone).

def fig11_scenario(dt, t_a=20.0, t_b=5.0, n=2048):
    """A started at 0, B informs at time dt."""
    a = desc("A", n, t_a, total=4e9, started=0.0,
             remaining=4e9 * (1 - dt / t_a) if dt < t_a else 0.0)
    b = desc("B", n, t_b, total=1e9)
    return a, b


def test_dynamic_interrupts_early_arrival():
    s = DynamicStrategy(CpuSecondsWasted())
    dt = 5.0  # < T_A - T_B = 15: interrupt wins
    a, b = fig11_scenario(dt)
    d = s.decide(dt, [a], [], b)
    assert d.action is Action.INTERRUPT
    assert d.costs["interrupt"] < d.costs["fcfs"]


def test_dynamic_serializes_late_arrival():
    s = DynamicStrategy(CpuSecondsWasted())
    dt = 18.0  # > T_A - T_B = 15: FCFS wins
    a, b = fig11_scenario(dt)
    d = s.decide(dt, [a], [], b)
    assert d.action is Action.WAIT
    assert d.costs["fcfs"] < d.costs["interrupt"]


def test_dynamic_crossover_at_ta_minus_tb():
    """The decision flips exactly where §IV-D says it should."""
    s = DynamicStrategy(CpuSecondsWasted())
    t_a, t_b = 20.0, 5.0
    crossover = t_a - t_b
    for dt, expected in [(crossover - 1.0, Action.INTERRUPT),
                         (crossover + 1.0, Action.WAIT)]:
        a, b = fig11_scenario(dt, t_a, t_b)
        assert s.decide(dt, [a], [], b).action is expected, dt


def test_dynamic_weighted_rule_small_interrupter():
    """N_A >> N_B flips toward FCFS under CPU-seconds (big app matters more)."""
    s = DynamicStrategy(CpuSecondsWasted())
    a = desc("A", 744, 20.0, total=1e9, started=0.0, remaining=0.75e9)
    b = desc("B", 24, 1.5, total=3e7)
    # Interrupt iff N_A * T_B < N_B * (T_A - dt): 744*1.5=1116 vs 24*15=360.
    assert s.decide(5.0, [a], [], b).action is Action.WAIT


def test_dynamic_small_app_rescued_by_interference_metric():
    """Under sum-of-interference-factors, the small app gets the interrupt."""
    s = DynamicStrategy(SumInterferenceFactors())
    a = desc("A", 744, 20.0, total=1e9, started=0.0, remaining=0.75e9)
    b = desc("B", 24, 1.5, total=3e7)
    # fcfs: I_B = (15 + 1.5)/1.5 = 11; interrupt: I_A = (20+1.5)/20 ~ 1.08.
    assert s.decide(5.0, [a], [], b).action is Action.INTERRUPT


def test_dynamic_goes_when_idle():
    s = DynamicStrategy()
    assert s.decide(0.0, [], [], desc("b", 1, 1.0)).action is Action.GO


def test_dynamic_interference_option():
    """With consider_interference, a negligible overlap chooses GO."""
    s = DynamicStrategy(CpuSecondsWasted(), consider_interference=True)
    # Two apps that together demand less than... proportional model predicts
    # doubling; here B is tiny relative to A so sharing barely hurts A but
    # serializing/interrupting costs someone a full t_alone.
    a = desc("A", 1000, 100.0, total=1e12, started=0.0)
    b = desc("B", 1, 0.001, total=1e4)
    d = s.decide(0.0, [a], [], b)
    assert "interfere" in d.costs


def test_make_strategy_lookup():
    assert isinstance(make_strategy("fcfs"), FCFSStrategy)
    assert isinstance(make_strategy(InterruptStrategy), InterruptStrategy)
    inst = DynamicStrategy()
    assert make_strategy(inst) is inst
    with pytest.raises(ValueError):
        make_strategy("wat")
    with pytest.raises(TypeError):
        make_strategy(3.14)


# -- delay option (Fig 12 extension) -----------------------------------------

def test_dynamic_delay_option_evaluated():
    s = DynamicStrategy(CpuSecondsWasted(), consider_delay=True,
                        capacity=1000.0)
    a = desc("A", 100, 10.0, total=1e4, started=0.0)
    b = desc("B", 100, 10.0, total=1e4)
    d = s.decide(0.0, [a], [], b)
    assert any(k.startswith("delay@") for k in d.costs)


def test_dynamic_delay_chosen_when_partial_overlap_wins():
    """Sub-saturating equals (the Fig 12 regime): total demand only a bit
    over capacity, so a short hold beats both full serialization and a
    full-length overlap under total-I/O-time."""
    from repro.core import TotalIOTime
    s = DynamicStrategy(TotalIOTime(), consider_interference=True,
                        consider_delay=True, capacity=1000.0)
    # Each app drains at 800 alone (cap), 500 when sharing.
    a = desc("A", 100, 12.5, total=1e4, started=0.0)   # drain 800
    b = desc("B", 100, 12.5, total=1e4)
    d = s.decide(0.0, [a], [], b)
    # Whatever wins must be no worse than both pure options.
    best = min(d.costs.values())
    assert best <= d.costs["fcfs"] + 1e-9
    assert best <= d.costs["interrupt"] + 1e-9


# -- batch-aware built-ins and O(1) backlog aggregates (sharded-coord PR) ----

def test_fcfs_decide_batch_matches_per_incoming_decisions():
    s = FCFSStrategy()
    incomings = [desc(f"i{k}", 10, 1.0) for k in range(4)]
    batch = list(s.decide_batch(0.0, [], [], incomings))
    assert [d.action for d in batch] == [Action.GO] + [Action.WAIT] * 3
    busy = list(s.decide_batch(0.0, [desc("a", 10, 1.0)], [], incomings))
    assert all(d.action is Action.WAIT for d in busy)


def test_fcfs_subclass_custom_decide_survives_batching():
    """The O(1) batch shortcut must not bypass a subclass's decide()."""
    class Audited(FCFSStrategy):
        def decide(self, now, active, waiting, incoming):
            d = super().decide(now, active, waiting, incoming)
            d.costs["audited"] = 1.0
            return d

    batch = list(Audited().decide_batch(0.0, [], [],
                                        [desc("a", 1, 1.0),
                                         desc("b", 1, 1.0)]))
    assert all(d.costs.get("audited") == 1.0 for d in batch)


def test_dynamic_decomposed_costs_match_full_path_decisions():
    """Built-in (decomposable) metrics must pick the same action and
    near-identical costs as the historical whole-population evaluation."""

    class Opaque(CpuSecondsWasted):
        """Same metric, but non-decomposable: forces _decide_full."""
        def alone_cost(self, totals):
            return None

    fast, slow = DynamicStrategy(CpuSecondsWasted()), DynamicStrategy(Opaque())
    active = [desc("A", 744, 20.0, total=1e9, started=0.0, remaining=0.7e9)]
    waiting = [desc(f"w{k}", 8 * (k + 1), 1.0 + 0.25 * k) for k in range(20)]
    for dt, nb in ((5.0, 24), (1.0, 700), (19.0, 8)):
        incoming = desc("B", nb, 1.5, total=3e7)
        d_fast = fast.decide(dt, active, waiting, incoming)
        d_slow = slow.decide(dt, active, waiting, incoming)
        assert d_fast.action is d_slow.action, (dt, nb)
        for key in d_slow.costs:
            assert d_fast.costs[key] == pytest.approx(d_slow.costs[key])


def test_dynamic_decomposition_with_max_combine_metric():
    from repro.core import MaxSlowdown

    class OpaqueMax(MaxSlowdown):
        def alone_cost(self, totals):
            return None

    fast, slow = DynamicStrategy(MaxSlowdown()), DynamicStrategy(OpaqueMax())
    active = [desc("A", 100, 10.0, total=1e9, started=0.0)]
    waiting = [desc("w", 50, 4.0)]
    incoming = desc("B", 10, 2.0, total=1e7)
    d_fast = fast.decide(3.0, active, waiting, incoming)
    d_slow = slow.decide(3.0, active, waiting, incoming)
    assert d_fast.action is d_slow.action
    # max-combine decomposition is exactly associative: bit-equal costs.
    assert d_fast.costs == d_slow.costs


def test_waiting_totals_cache_is_bit_identical_to_fresh_fold():
    """Appends extend the float fold; removals recompute — the cached
    aggregates must always equal a fresh FIFO-order sum bit-for-bit."""
    from repro.core import DescriptorSetView, WaitingTotals

    names = {}
    descriptors = {}
    view = DescriptorSetView(names, descriptors, track_totals=True)
    rng = __import__("numpy").random.default_rng(5)

    def check():
        cached = view.totals()
        fresh = WaitingTotals.fold(view)
        assert cached.t_alone == fresh.t_alone
        assert cached.nprocs_t_alone == fresh.nprocs_t_alone
        assert (cached.positive, cached.count) == (fresh.positive, fresh.count)

    for i in range(120):
        op = rng.integers(0, 3)
        if op in (0, 1) or not names:
            d = desc(f"a{i}", int(rng.integers(1, 64)),
                     float(rng.uniform(0.0, 3.0)))
            names[d.app] = None
            descriptors[d.app] = d
            view.note_append(d)
        else:
            victim = list(names)[int(rng.integers(0, len(names)))]
            del names[victim]
            del descriptors[victim]
            view.note_remove()
        if i % 7 == 0:
            check()
    check()
