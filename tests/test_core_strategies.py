"""Unit tests for scheduling strategies (decision logic only, no sim)."""

import pytest

from repro.core import (
    AccessDescriptor, Action, CpuSecondsWasted, DynamicStrategy, FCFSStrategy,
    InterfereStrategy, InterruptStrategy, SumInterferenceFactors,
    make_strategy,
)


def desc(app, nprocs, t_alone, total=1e9, started=None, remaining=None):
    d = AccessDescriptor(app=app, nprocs=nprocs, total_bytes=total,
                         t_alone=t_alone, access_started=started)
    if remaining is not None:
        d.remaining_bytes = remaining
    return d


def test_interfere_always_go():
    s = InterfereStrategy()
    a = desc("a", 100, 10.0, started=0.0)
    decision = s.decide(5.0, [a], [], desc("b", 100, 10.0))
    assert decision.action is Action.GO


def test_fcfs_waits_behind_active():
    s = FCFSStrategy()
    a = desc("a", 100, 10.0, started=0.0)
    assert s.decide(5.0, [a], [], desc("b", 100, 10.0)).action is Action.WAIT


def test_fcfs_waits_behind_queue():
    s = FCFSStrategy()
    waiting = desc("w", 100, 10.0)
    assert s.decide(5.0, [], [waiting], desc("b", 100, 10.0)).action is Action.WAIT


def test_fcfs_goes_when_idle():
    assert FCFSStrategy().decide(0.0, [], [], desc("b", 1, 1.0)).action is Action.GO


def test_interrupt_preempts_active():
    s = InterruptStrategy()
    a = desc("a", 100, 10.0, started=0.0)
    d = s.decide(5.0, [a], [], desc("b", 100, 10.0))
    assert d.action is Action.INTERRUPT


def test_interrupt_goes_when_idle():
    assert InterruptStrategy().decide(0.0, [], [], desc("b", 1, 1.0)).action is Action.GO


# -- the paper's §IV-D decision rule ----------------------------------------
#
# Equal sizes, B writes 1/4 of A's data (the Fig 10/11 scenario).
# Rule: interrupt iff dt < T_A(alone) - T_B(alone).

def fig11_scenario(dt, t_a=20.0, t_b=5.0, n=2048):
    """A started at 0, B informs at time dt."""
    a = desc("A", n, t_a, total=4e9, started=0.0,
             remaining=4e9 * (1 - dt / t_a) if dt < t_a else 0.0)
    b = desc("B", n, t_b, total=1e9)
    return a, b


def test_dynamic_interrupts_early_arrival():
    s = DynamicStrategy(CpuSecondsWasted())
    dt = 5.0  # < T_A - T_B = 15: interrupt wins
    a, b = fig11_scenario(dt)
    d = s.decide(dt, [a], [], b)
    assert d.action is Action.INTERRUPT
    assert d.costs["interrupt"] < d.costs["fcfs"]


def test_dynamic_serializes_late_arrival():
    s = DynamicStrategy(CpuSecondsWasted())
    dt = 18.0  # > T_A - T_B = 15: FCFS wins
    a, b = fig11_scenario(dt)
    d = s.decide(dt, [a], [], b)
    assert d.action is Action.WAIT
    assert d.costs["fcfs"] < d.costs["interrupt"]


def test_dynamic_crossover_at_ta_minus_tb():
    """The decision flips exactly where §IV-D says it should."""
    s = DynamicStrategy(CpuSecondsWasted())
    t_a, t_b = 20.0, 5.0
    crossover = t_a - t_b
    for dt, expected in [(crossover - 1.0, Action.INTERRUPT),
                         (crossover + 1.0, Action.WAIT)]:
        a, b = fig11_scenario(dt, t_a, t_b)
        assert s.decide(dt, [a], [], b).action is expected, dt


def test_dynamic_weighted_rule_small_interrupter():
    """N_A >> N_B flips toward FCFS under CPU-seconds (big app matters more)."""
    s = DynamicStrategy(CpuSecondsWasted())
    a = desc("A", 744, 20.0, total=1e9, started=0.0, remaining=0.75e9)
    b = desc("B", 24, 1.5, total=3e7)
    # Interrupt iff N_A * T_B < N_B * (T_A - dt): 744*1.5=1116 vs 24*15=360.
    assert s.decide(5.0, [a], [], b).action is Action.WAIT


def test_dynamic_small_app_rescued_by_interference_metric():
    """Under sum-of-interference-factors, the small app gets the interrupt."""
    s = DynamicStrategy(SumInterferenceFactors())
    a = desc("A", 744, 20.0, total=1e9, started=0.0, remaining=0.75e9)
    b = desc("B", 24, 1.5, total=3e7)
    # fcfs: I_B = (15 + 1.5)/1.5 = 11; interrupt: I_A = (20+1.5)/20 ~ 1.08.
    assert s.decide(5.0, [a], [], b).action is Action.INTERRUPT


def test_dynamic_goes_when_idle():
    s = DynamicStrategy()
    assert s.decide(0.0, [], [], desc("b", 1, 1.0)).action is Action.GO


def test_dynamic_interference_option():
    """With consider_interference, a negligible overlap chooses GO."""
    s = DynamicStrategy(CpuSecondsWasted(), consider_interference=True)
    # Two apps that together demand less than... proportional model predicts
    # doubling; here B is tiny relative to A so sharing barely hurts A but
    # serializing/interrupting costs someone a full t_alone.
    a = desc("A", 1000, 100.0, total=1e12, started=0.0)
    b = desc("B", 1, 0.001, total=1e4)
    d = s.decide(0.0, [a], [], b)
    assert "interfere" in d.costs


def test_make_strategy_lookup():
    assert isinstance(make_strategy("fcfs"), FCFSStrategy)
    assert isinstance(make_strategy(InterruptStrategy), InterruptStrategy)
    inst = DynamicStrategy()
    assert make_strategy(inst) is inst
    with pytest.raises(ValueError):
        make_strategy("wat")
    with pytest.raises(TypeError):
        make_strategy(3.14)


# -- delay option (Fig 12 extension) -----------------------------------------

def test_dynamic_delay_option_evaluated():
    s = DynamicStrategy(CpuSecondsWasted(), consider_delay=True,
                        capacity=1000.0)
    a = desc("A", 100, 10.0, total=1e4, started=0.0)
    b = desc("B", 100, 10.0, total=1e4)
    d = s.decide(0.0, [a], [], b)
    assert any(k.startswith("delay@") for k in d.costs)


def test_dynamic_delay_chosen_when_partial_overlap_wins():
    """Sub-saturating equals (the Fig 12 regime): total demand only a bit
    over capacity, so a short hold beats both full serialization and a
    full-length overlap under total-I/O-time."""
    from repro.core import TotalIOTime
    s = DynamicStrategy(TotalIOTime(), consider_interference=True,
                        consider_delay=True, capacity=1000.0)
    # Each app drains at 800 alone (cap), 500 when sharing.
    a = desc("A", 100, 12.5, total=1e4, started=0.0)   # drain 800
    b = desc("B", 100, 12.5, total=1e4)
    d = s.decide(0.0, [a], [], b)
    # Whatever wins must be no worse than both pure options.
    best = min(d.costs.values())
    assert best <= d.costs["fcfs"] + 1e-9
    assert best <= d.costs["interrupt"] + 1e-9
