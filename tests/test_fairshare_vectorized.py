"""Cross-checks of the vectorized SoA allocator against the incremental oracle.

The vectorized allocator must be a pure optimization of the scalar
incremental kernel: the **completion ordering and event sequence are
always identical**, and the rates are bit-exact wherever the scalar scan
order is deterministic (single-link components without caps) and
ulp-bounded otherwise (numpy reductions batch the weight-sum and cap
residuals the scalar loop accumulates one flow at a time).

These tests script randomized workloads — random link graphs, weights,
caps, pauses, cancellations and capacity changes — plus targeted
merge/split choreography (bridge flows joining components, cancellations
splitting them back apart), and run the *same* script through both
allocators, comparing the completion order exactly and the numeric state
within 1e-9.
"""

import math

import numpy as np
import pytest

from repro.experiments import ExperimentEngine, build_scenario
from repro.perf import PerfCounters
from repro.simcore import FluidLink, FlowNetwork, Simulator

HORIZON = 800.0


# ---------------------------------------------------------------------------
# randomized-topology fuzz harness
# ---------------------------------------------------------------------------

def _random_script(seed, nlinks=8, nflows=40, nevents=30,
                   multilink=True, caps=True):
    """A reproducible event script: flow starts plus mid-flight mutations."""
    rng = np.random.default_rng(seed)
    capacities = rng.uniform(50.0, 500.0, size=nlinks)
    starts = []
    for _ in range(nflows):
        if multilink:
            npath = int(rng.integers(1, min(4, nlinks) + 1))
        else:
            npath = 1
        path = sorted(rng.choice(nlinks, size=npath, replace=False).tolist())
        starts.append({
            "time": float(rng.uniform(0.0, 40.0)),
            "size": float(rng.uniform(100.0, 20000.0)),
            "path": path,
            "weight": float(rng.uniform(0.5, 8.0)),
            "cap": (float(rng.uniform(20.0, 200.0))
                    if caps and rng.random() < 0.3 else None),
        })
    events = []
    for _ in range(nevents):
        kind = rng.choice(["pause", "resume", "cancel", "capacity"])
        events.append({
            "time": float(rng.uniform(1.0, 80.0)),
            "kind": str(kind),
            "flow": int(rng.integers(0, nflows)),
            "link": int(rng.integers(0, nlinks)),
            "capacity": float(rng.uniform(30.0, 600.0)),
        })
    return capacities, starts, events


def _run_script(vectorized, capacities, starts, events):
    """Execute one script; returns (completion order, per-flow state)."""
    sim = Simulator()
    net = FlowNetwork(sim, incremental=True, vectorized=vectorized)
    links = [FluidLink(float(c), f"l{j}") for j, c in enumerate(capacities)]
    flows = {}
    order = []

    def starter(idx, spec):
        yield sim.timeout(spec["time"])
        f = net.start_flow(
            spec["size"], [links[j] for j in spec["path"]],
            weight=spec["weight"], cap=spec["cap"], label=f"f{idx}")
        flows[idx] = f
        f.done.callbacks.append(lambda ev, i=idx: order.append(i))

    def mutator(ev):
        yield sim.timeout(ev["time"])
        flow = flows.get(ev["flow"])
        if ev["kind"] == "pause" and flow is not None:
            net.pause_flow(flow)
        elif ev["kind"] == "resume" and flow is not None:
            net.resume_flow(flow)
        elif ev["kind"] == "cancel" and flow is not None:
            net.cancel_flow(flow)
        elif ev["kind"] == "capacity":
            links[ev["link"]].set_capacity(ev["capacity"])

    for idx, spec in enumerate(starts):
        sim.process(starter(idx, spec))
    for ev in events:
        sim.process(mutator(ev))
    sim.run(until=HORIZON)
    net.sync()
    state = {}
    for idx in range(len(starts)):
        f = flows.get(idx)
        state[idx] = (None if f is None
                      else (f.finish_time, f.remaining, f.rate))
    return order, state


def _assert_state_close(state_vec, state_inc, rel=1e-9):
    assert state_vec.keys() == state_inc.keys()
    for idx in state_vec:
        a, b = state_vec[idx], state_inc[idx]
        if a is None or b is None:
            assert a == b
            continue
        for x, y, what in zip(a, b, ("finish_time", "remaining", "rate")):
            if math.isnan(x) or math.isnan(y):
                assert math.isnan(x) and math.isnan(y), (idx, what, x, y)
            elif math.isinf(x) or math.isinf(y):
                assert x == y, (idx, what, x, y)
            else:
                assert x == pytest.approx(y, rel=rel, abs=1e-9), (
                    f"flow {idx} {what}: vectorized={x} incremental={y}")


@pytest.mark.parametrize("seed", range(12))
def test_vectorized_matches_incremental_on_random_topologies(seed):
    """Same script, both kernels: identical completion order, close state."""
    script = _random_script(seed)
    order_vec, state_vec = _run_script(True, *script)
    order_inc, state_inc = _run_script(False, *script)
    assert order_vec == order_inc
    _assert_state_close(state_vec, state_inc)


@pytest.mark.parametrize("seed", range(8))
def test_vectorized_bit_exact_single_link_no_caps(seed):
    """Single-link components without caps have a deterministic scan order,
    so the vectorized fill is **bit-identical** — not merely close."""
    script = _random_script(seed, multilink=False, caps=False)
    order_vec, state_vec = _run_script(True, *script)
    order_inc, state_inc = _run_script(False, *script)
    assert order_vec == order_inc
    assert state_vec.keys() == state_inc.keys()
    for idx in state_vec:
        assert state_vec[idx] == state_inc[idx], (
            f"flow {idx}: vectorized={state_vec[idx]} "
            f"incremental={state_inc[idx]}")


# ---------------------------------------------------------------------------
# merge / split fuzzer (bridge flows joining and splitting components)
# ---------------------------------------------------------------------------

def _merge_split_script(seed, nlinks=6, nlocal=18, nbridges=6, nevents=10):
    """Single-link 'local' flows per link, plus multi-link 'bridge' flows
    that merge components; cancelling or pausing a bridge splits them."""
    rng = np.random.default_rng(seed)
    capacities = rng.uniform(80.0, 400.0, size=nlinks)
    starts = []
    for _ in range(nlocal):
        starts.append({
            "time": float(rng.uniform(0.0, 20.0)),
            "size": float(rng.uniform(500.0, 15000.0)),
            "path": [int(rng.integers(0, nlinks))],
            "weight": float(rng.uniform(0.5, 4.0)),
            "cap": None,
        })
    bridges = []
    for _ in range(nbridges):
        pair = sorted(rng.choice(nlinks, size=2, replace=False).tolist())
        idx = len(starts)
        starts.append({
            "time": float(rng.uniform(5.0, 30.0)),
            "size": float(rng.uniform(5000.0, 40000.0)),
            "path": pair,
            "weight": float(rng.uniform(0.5, 4.0)),
            "cap": None,
        })
        bridges.append(idx)
    events = []
    for _ in range(nevents):
        # Mutations target bridges: each pause/cancel splits a merged
        # component, each resume re-merges it.
        kind = rng.choice(["pause", "resume", "cancel"])
        events.append({
            "time": float(rng.uniform(10.0, 60.0)),
            "kind": str(kind),
            "flow": int(rng.choice(bridges)),
            "link": 0,
            "capacity": 0.0,
        })
    return capacities, starts, events


@pytest.mark.parametrize("seed", range(10))
def test_merge_split_fuzzer_ordering_identical(seed):
    """Components merged by bridge flows and split by their cancellation
    complete in the same order under both kernels."""
    script = _merge_split_script(seed)
    order_vec, state_vec = _run_script(True, *script)
    order_inc, state_inc = _run_script(False, *script)
    assert order_vec == order_inc
    _assert_state_close(state_vec, state_inc)


@pytest.mark.parametrize("vectorized", [True, False])
def test_split_remainder_completes_from_donor_arrays(vectorized):
    """Cancel a bridge mid-flight: the far-side component — whose rows
    live in the donor component's arrays until the next rebuild — must
    keep draining and complete on schedule."""
    sim = Simulator()
    net = FlowNetwork(sim, incremental=True, vectorized=vectorized)
    a, b = FluidLink(100.0, "a"), FluidLink(100.0, "b")
    state = {}

    def script():
        state["fa"] = net.start_flow(1000.0, [a], label="fa")
        state["fb"] = net.start_flow(3000.0, [b], label="fb")
        bridge = net.start_flow(50000.0, [a, b], label="bridge")
        yield sim.timeout(5.0)
        net.cancel_flow(bridge)

    sim.process(script())
    sim.run(until=200.0)
    # After the split each side owns its full link again:
    # fa: 5 s at 50 -> 750 left at 100 -> finishes at 12.5
    # fb: 5 s at 50 -> 2750 left at 100 -> finishes at 32.5
    assert state["fa"].finish_time == pytest.approx(12.5, rel=1e-12)
    assert state["fb"].finish_time == pytest.approx(32.5, rel=1e-12)


def test_vec_state_survives_component_reshape_chain():
    """Merge, split, and re-merge the same links repeatedly: stale SoA
    states must be retired and rebuilt, never consulted across reshapes."""
    sim = Simulator()
    net = FlowNetwork(sim, incremental=True, vectorized=True)
    links = [FluidLink(100.0, f"l{j}") for j in range(3)]
    done = []

    def script():
        for j in range(3):
            f = net.start_flow(4000.0, [links[j]], label=f"local{j}")
            f.done.callbacks.append(lambda ev, i=j: done.append(i))
        for _ in range(4):
            bridge = net.start_flow(200.0, links, label="bridge")
            yield bridge.done
            yield sim.timeout(1.0)

    sim.process(script())
    sim.run(until=500.0)
    net.sync()
    assert done == [0, 1, 2]


# ---------------------------------------------------------------------------
# committed scenarios (end-to-end equivalence)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scenario,kwargs", [
    ("checkpoint-waves", dict(napps=30, nservers=6, ncohorts=3, phases=2,
                              bridge_every=4)),
    ("read-write-mix", dict(napps=18, nservers=6, phases=4)),
])
def test_vectorized_matches_incremental_on_committed_scenarios(
        scenario, kwargs):
    """Full-stack cross-check: committed scenarios yield the same
    per-application records under the vectorized and scalar kernels."""
    engine = ExperimentEngine()
    results = {}
    for allocator in ("vectorized", "incremental"):
        spec = build_scenario(scenario, allocator=allocator, seed=7,
                              **kwargs)[0]
        results[allocator] = engine.run(spec)
    rec_vec = results["vectorized"].records
    rec_inc = results["incremental"].records
    assert rec_vec.keys() == rec_inc.keys()
    for name in rec_vec:
        assert rec_vec[name].write_times == pytest.approx(
            rec_inc[name].write_times, rel=1e-9), name
    assert results["vectorized"].makespan == pytest.approx(
        results["incremental"].makespan, rel=1e-9)


# ---------------------------------------------------------------------------
# batch start (the 10^6-burst entry point)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("vectorized", [True, False])
def test_start_flows_batch_single_reallocation(vectorized):
    """A batch start computes rates once over the final population."""
    sim = Simulator()
    perf = PerfCounters()
    net = FlowNetwork(sim, incremental=True, vectorized=vectorized,
                      perf=perf)
    link = FluidLink(100.0, "l0")

    def script():
        yield sim.timeout(1.0)
        flows = net.start_flows(
            {"size": 1000.0, "path": [link], "weight": float(1 + i % 3),
             "label": f"f{i}"}
            for i in range(20))
        assert len(flows) == 20
        assert all(f.rate > 0.0 for f in flows)

    before = perf.as_dict().get("reallocations", 0)
    sim.process(script())
    sim.run(until=2.0)
    after = perf.as_dict().get("reallocations", 0)
    assert after - before == 1


@pytest.mark.parametrize("vectorized", [True, False])
def test_start_flows_zero_size_completes_immediately(vectorized):
    """Zero-byte flows in a batch complete at the current instant and are
    never registered with the allocator."""
    sim = Simulator()
    net = FlowNetwork(sim, incremental=True, vectorized=vectorized)
    link = FluidLink(100.0, "l0")
    out = {}

    def script():
        yield sim.timeout(3.0)
        flows = net.start_flows([
            {"size": 0.0, "path": [link], "label": "empty"},
            {"size": 600.0, "path": [link], "label": "real"},
        ])
        out["empty"], out["real"] = flows

    sim.process(script())
    sim.run(until=100.0)
    assert out["empty"].finish_time == 3.0
    assert out["empty"].remaining == 0.0
    assert out["real"].finish_time == pytest.approx(9.0, rel=1e-12)


def test_vectorized_perf_counters_present():
    """The vec_* instrumentation fires under a vectorized run."""
    sim = Simulator()
    perf = PerfCounters()
    net = FlowNetwork(sim, incremental=True, vectorized=True, perf=perf)
    link = FluidLink(100.0, "l0")

    def script():
        net.start_flows({"size": 1000.0 * (1 + i), "path": [link],
                         "label": f"f{i}"} for i in range(10))
        yield sim.timeout(5.0)
        # A straggler arrival rides the in-place append fast path.
        net.start_flow(500.0, [link], label="late")

    sim.process(script())
    sim.run(until=2000.0)
    stats = perf.as_dict()
    assert stats["vec_refills"] > 0
    assert stats["vec_fill_steps"] > 0
    assert stats["vec_rate_writebacks"] > 0
    assert stats["vec_appends"] >= 1
    assert stats["vec_append_flows"] >= 1
