"""Unit tests for the simulation engine, events, and processes."""

import pytest

from repro.simcore import (
    AllOf, AnyOf, Interrupt, SimulationError, Simulator,
)


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_custom_start():
    assert Simulator(start_time=5.0).now == 5.0


def test_timeout_advances_clock():
    sim = Simulator()
    t = sim.timeout(2.5)
    sim.run(until=t)
    assert sim.now == 2.5


def test_timeout_value_delivered():
    sim = Simulator()
    t = sim.timeout(1.0, value="payload")
    assert sim.run(until=t) == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_run_until_time_sets_clock_exactly():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_events_process_in_time_order():
    sim = Simulator()
    seen = []
    for d in [3.0, 1.0, 2.0]:
        sim.timeout(d).callbacks.append(lambda ev, d=d: seen.append(d))
    sim.run()
    assert seen == [1.0, 2.0, 3.0]


def test_simultaneous_events_fifo_within_same_time():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.timeout(1.0).callbacks.append(lambda ev, i=i: seen.append(i))
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_process_return_value():
    sim = Simulator()

    def body():
        yield sim.timeout(1)
        return 42

    p = sim.process(body())
    assert sim.run(until=p) == 42


def test_process_sequences_multiple_timeouts():
    sim = Simulator()

    def body():
        yield sim.timeout(1)
        yield sim.timeout(2)
        yield sim.timeout(3)
        return sim.now

    p = sim.process(body())
    assert sim.run(until=p) == 6.0


def test_process_does_not_run_synchronously():
    sim = Simulator()
    marker = []

    def body():
        marker.append("ran")
        yield sim.timeout(0)

    sim.process(body())
    assert marker == []  # body only starts once the engine runs
    sim.run()
    assert marker == ["ran"]


def test_process_exception_propagates_to_run():
    sim = Simulator()

    def body():
        yield sim.timeout(1)
        raise ValueError("boom")

    sim.process(body())
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_waiting_process_receives_failure():
    sim = Simulator()

    def failing():
        yield sim.timeout(1)
        raise ValueError("inner")

    def waiter():
        try:
            yield sim.process(failing())
        except ValueError as exc:
            return f"caught {exc}"

    p = sim.process(waiter())
    assert sim.run(until=p) == "caught inner"


def test_yield_non_event_raises():
    sim = Simulator()

    def body():
        yield 123

    sim.process(body())
    with pytest.raises(SimulationError, match="non-event"):
        sim.run()


def test_event_succeed_once_only():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.event().fail("not an exception")


def test_event_value_unavailable_before_trigger():
    sim = Simulator()
    with pytest.raises(SimulationError):
        _ = sim.event().value


def test_interrupt_delivers_cause():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt as i:
            return ("interrupted", i.cause, sim.now)

    p = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(3)
        p.interrupt(cause="urgent")

    sim.process(interrupter())
    assert sim.run(until=p) == ("interrupted", "urgent", 3.0)


def test_interrupt_detaches_from_target():
    """After an interrupt, the original timeout firing must not resume us twice."""
    sim = Simulator()
    resumed = []

    def sleeper():
        try:
            yield sim.timeout(5)
            resumed.append("timeout")
        except Interrupt:
            resumed.append("interrupt")
        yield sim.timeout(100)

    p = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(1)
        p.interrupt()

    sim.process(interrupter())
    sim.run(until=20)
    assert resumed == ["interrupt"]


def test_interrupt_terminated_process_rejected():
    sim = Simulator()

    def body():
        yield sim.timeout(1)

    p = sim.process(body())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_self_interrupt_rejected():
    sim = Simulator()

    def body():
        with pytest.raises(SimulationError):
            p.interrupt()
        yield sim.timeout(1)

    p = sim.process(body())
    sim.run()


def test_all_of_waits_for_every_event():
    sim = Simulator()
    t1, t2 = sim.timeout(1, "a"), sim.timeout(5, "b")

    def body():
        result = yield (t1 & t2)
        return (sim.now, sorted(result.values()))

    p = sim.process(body())
    assert sim.run(until=p) == (5.0, ["a", "b"])


def test_any_of_fires_on_first():
    sim = Simulator()
    t1, t2 = sim.timeout(1, "fast"), sim.timeout(5, "slow")

    def body():
        result = yield (t1 | t2)
        return (sim.now, list(result.values()))

    p = sim.process(body())
    assert sim.run(until=p) == (1.0, ["fast"])


def test_all_of_empty_triggers_immediately():
    sim = Simulator()

    def body():
        result = yield AllOf(sim, [])
        return result

    p = sim.process(body())
    assert sim.run(until=p) == {}


def test_condition_failure_propagates():
    sim = Simulator()

    def failing():
        yield sim.timeout(1)
        raise RuntimeError("cond-fail")

    def body():
        try:
            yield AnyOf(sim, [sim.process(failing()), sim.timeout(10)])
        except RuntimeError as exc:
            return str(exc)

    p = sim.process(body())
    assert sim.run(until=p) == "cond-fail"


def test_call_at_runs_function_at_time():
    sim = Simulator()
    seen = []
    sim.call_at(4.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.0]


def test_call_at_past_rejected():
    sim = Simulator()
    sim.timeout(10)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_run_until_event_already_processed():
    sim = Simulator()
    t = sim.timeout(1, "x")
    sim.run()
    assert sim.run(until=t) == "x"


def test_run_until_event_never_triggering_raises():
    sim = Simulator()
    ev = sim.event()
    sim.timeout(1)
    with pytest.raises(SimulationError, match="exhausted"):
        sim.run(until=ev)


def test_peek_on_empty_queue_is_inf():
    assert Simulator().peek() == float("inf")


def test_step_on_empty_queue_raises():
    with pytest.raises(SimulationError):
        Simulator().step()


def test_nested_processes():
    sim = Simulator()

    def child(n):
        yield sim.timeout(n)
        return n * 2

    def parent():
        a = yield sim.process(child(1))
        b = yield sim.process(child(2))
        return a + b

    p = sim.process(parent())
    assert sim.run(until=p) == 6
    assert sim.now == 3.0
