"""Tests for the declarative experiment API: spec, engine, executors, cache."""

import json
import os

import numpy as np
import pytest

from repro.apps import IORConfig
from repro.experiments import (
    BaselineCache, ExperimentEngine, ExperimentSpec, ParallelExecutor,
    SerialExecutor, WorkloadSpec, build_scenario, get_scenario,
    list_scenarios, result_set_csv, result_set_json, run_many, run_pair,
)
from repro.experiments.export import MISSING, multi_result_csv
from repro.experiments.spec import (
    baseline_spec, pattern_from_dict, pattern_to_dict, platform_from_dict,
    platform_to_dict,
)
from repro.mpisim import Contiguous, Strided
from repro.platforms import PlatformConfig, grid5000_rennes

PLATFORM = PlatformConfig(
    name="bench", nservers=4, disk_bandwidth=250.0,
    per_core_bandwidth=10.0, stripe_size=1000, latency=0.0,
)


def w(name, nprocs, block=1000, **kw):
    return WorkloadSpec(name=name, nprocs=nprocs,
                        pattern=Contiguous(block_size=block), grain=None,
                        **kw)


# -- serialization -----------------------------------------------------------

def test_pattern_roundtrip():
    for pattern in (Contiguous(block_size=4096),
                    Strided(block_size=2_000_000, nblocks=8)):
        assert pattern_from_dict(pattern_to_dict(pattern)) == pattern
    with pytest.raises(ValueError):
        pattern_from_dict({"kind": "mystery", "block_size": 1})


def test_platform_roundtrip_handles_infinity():
    cfg = grid5000_rennes()
    data = json.loads(json.dumps(platform_to_dict(cfg)))
    assert platform_from_dict(data) == cfg
    assert data["server_link_bandwidth"] == "inf"
    with pytest.raises(ValueError):
        platform_from_dict({**platform_to_dict(cfg), "bogus": 1})


def test_platform_roundtrip_keeps_kernel_knobs():
    from dataclasses import replace
    cfg = replace(grid5000_rennes(), allocator="vectorized",
                  fill_cache_min_flows=8)
    data = json.loads(json.dumps(platform_to_dict(cfg)))
    assert platform_from_dict(data) == cfg
    assert data["allocator"] == "vectorized"
    assert data["fill_cache_min_flows"] == 8


def test_workload_spec_mirrors_ior_config():
    spec = w("A", 50, start_time=3.0, iterations=2)
    cfg = spec.to_ior()
    assert isinstance(cfg, IORConfig)
    assert (cfg.name, cfg.nprocs, cfg.start_time) == ("A", 50, 3.0)
    assert WorkloadSpec.from_ior(cfg) == spec
    # Validation runs eagerly (IORConfig's checks).
    with pytest.raises(ValueError):
        WorkloadSpec(name="bad", nprocs=0, pattern=Contiguous(block_size=1))


def test_experiment_spec_json_roundtrip():
    spec = ExperimentSpec.pair(
        grid5000_rennes(), w("A", 200), w("B", 100), dt=-5.0,
        strategy="fcfs", name="trip", meta={"split": 24})
    again = ExperimentSpec.from_json(spec.to_json())
    assert again == spec
    assert again.meta == {"split": 24, "dt": -5.0}
    assert again.dt == -5.0
    # Negative dt shifted A, kept B at zero.
    assert again.workload("A").start_time == 5.0
    assert again.workload("B").start_time == 0.0


def test_experiment_spec_rejects_object_strategy_in_to_dict():
    from repro.core import DynamicStrategy
    spec = ExperimentSpec.pair(PLATFORM, w("A", 10), w("B", 10),
                               strategy=DynamicStrategy())
    with pytest.raises(TypeError):
        spec.to_dict()


def test_experiment_spec_validates_workloads():
    with pytest.raises(ValueError):
        ExperimentSpec(platform=PLATFORM, workloads=())
    with pytest.raises(ValueError):
        ExperimentSpec(platform=PLATFORM,
                       workloads=(w("x", 1), w("x", 2)))


def test_experiment_spec_accepts_raw_ior_configs():
    cfg = IORConfig(name="A", nprocs=5, pattern=Contiguous(block_size=100))
    spec = ExperimentSpec(platform=PLATFORM, workloads=(cfg,))
    assert isinstance(spec.workloads[0], WorkloadSpec)


# -- engine + executors ------------------------------------------------------

def _fig6_style_specs():
    """A miniature Fig 6 campaign: two size splits x a handful of dts."""
    specs = []
    for nb in (50, 200):
        for dt in (-50.0, 0.0, 100.0):
            specs.append(ExperimentSpec.pair(
                PLATFORM, w("A", 400 - nb), w("B", nb), dt=dt,
                meta={"split": nb}))
    return specs


def test_parallel_executor_matches_serial_exactly():
    serial = ExperimentEngine(SerialExecutor())
    parallel = ExperimentEngine(ParallelExecutor(max_workers=2))
    rs_serial = serial.run_all(_fig6_style_specs())
    rs_parallel = parallel.run_all(_fig6_style_specs())
    # Bit-identical result sets (worker pid excluded from equality)...
    assert rs_serial == rs_parallel
    # ...but the parallel one really ran in separate worker processes.
    assert all(pid != os.getpid() for pid in rs_parallel.worker_pids())
    assert all(pid == os.getpid() for pid in rs_serial.worker_pids())


def test_parallel_delta_graph_matches_serial():
    dts = [-100.0, 0.0, 100.0]
    g_serial = ExperimentEngine(SerialExecutor()).delta_graph(
        PLATFORM, w("A", 200), w("B", 200), dts)
    g_parallel = ExperimentEngine(ParallelExecutor(max_workers=2)).delta_graph(
        PLATFORM, w("A", 200), w("B", 200), dts)
    assert np.array_equal(g_serial.t_a, g_parallel.t_a)
    assert np.array_equal(g_serial.t_b, g_parallel.t_b)
    assert g_serial.t_alone_a == g_parallel.t_alone_a


def test_engine_run_matches_legacy_run_pair():
    engine = ExperimentEngine()
    spec = ExperimentSpec.pair(PLATFORM, w("A", 200), w("B", 100), dt=10.0)
    ours = engine.run(spec).as_pair()
    legacy = run_pair(PLATFORM, w("A", 200).to_ior(), w("B", 100).to_ior(),
                      dt=10.0)
    assert ours.a == legacy.a
    assert ours.b == legacy.b
    assert ours.dt == legacy.dt


def test_engine_run_matches_legacy_run_many():
    engine = ExperimentEngine()
    configs = [w("a", 100).to_ior(), w("b", 100, start_time=5.0).to_ior()]
    ours = engine.run(ExperimentSpec(platform=PLATFORM,
                                     workloads=tuple(configs))).as_multi()
    legacy = run_many(PLATFORM, configs)
    assert ours.records == legacy.records
    assert ours.makespan == legacy.makespan


def test_result_set_grouping_and_errors():
    engine = ExperimentEngine()
    rs = engine.run_all(_fig6_style_specs())
    groups = rs.group_by_meta("split")
    assert set(groups) == {50, 200}
    assert all(len(sub) == 3 for sub in groups.values())
    graphs = {nb: sub.delta_graph() for nb, sub in groups.items()}
    assert graphs[50].max_interference_b() > graphs[200].max_interference_b()
    with pytest.raises(ValueError):
        rs.filter(lambda r: False).delta_graph()   # empty
    with pytest.raises(ValueError):
        rs.delta_graph()                           # mixed (A, B) sizes
    mixed_policy = engine.run_all([
        ExperimentSpec.pair(PLATFORM, w("A", 100), w("B", 100), dt=0.0,
                            strategy=s)
        for s in (None, "fcfs")])
    with pytest.raises(ValueError):
        mixed_policy.delta_graph()                 # mixed strategies


# -- baseline cache ----------------------------------------------------------

def test_baseline_cache_shared_across_delta_sweep():
    cache = BaselineCache()
    engine = ExperimentEngine(cache=cache)
    engine.delta_graph(PLATFORM, w("A", 200), w("B", 100),
                       dts=[-50.0, 0.0, 50.0])
    # One baseline per distinct workload, not per dt.
    assert len(cache) == 2
    hits_after_first = cache.hits
    # A second sweep over the same workloads recomputes nothing.
    engine.delta_graph(PLATFORM, w("A", 200), w("B", 100), dts=[25.0, 75.0])
    assert len(cache) == 2
    assert cache.hits > hits_after_first
    cache.clear()
    assert len(cache) == 0 and cache.hits == 0


def test_baseline_cache_key_normalizes_name_and_offset():
    engine = ExperimentEngine()
    t1 = engine.baseline(PLATFORM, w("x", 50))
    t2 = engine.baseline(PLATFORM, w("y", 50, start_time=17.0))
    assert t1 == t2
    assert len(engine.cache) == 1


def test_standalone_time_shim_and_clear():
    from repro.experiments import clear_baseline_cache, default_engine
    from repro.experiments.runner import standalone_time
    clear_baseline_cache()
    t1 = standalone_time(PLATFORM, w("shim", 50).to_ior())
    assert len(default_engine().cache) == 1
    t2 = standalone_time(PLATFORM, w("shim", 50).to_ior(), use_cache=False)
    assert t1 == t2
    assert len(default_engine().cache) == 1  # bypass neither read nor wrote
    clear_baseline_cache()
    assert len(default_engine().cache) == 0


def test_injected_caches_are_isolated():
    a, b = BaselineCache(), BaselineCache()
    ExperimentEngine(cache=a).baseline(PLATFORM, w("iso", 50))
    assert len(a) == 1 and len(b) == 0


def test_measure_alone_false_skips_baselines():
    engine = ExperimentEngine()
    spec = ExperimentSpec.pair(PLATFORM, w("A", 100), w("B", 100),
                               measure_alone=False)
    result = engine.run(spec)
    assert len(engine.cache) == 0
    assert result.record("A").t_alone is None


def test_baseline_spec_shape():
    spec = baseline_spec(PLATFORM, w("anything", 10, start_time=9.0))
    assert spec.workloads[0].name == "_alone"
    assert spec.workloads[0].start_time == 0.0
    assert not spec.measure_alone


# -- scenarios ---------------------------------------------------------------

def test_scenario_registry_lists_builtins():
    names = list_scenarios()
    for expected in ("rennes-big-small", "fig06-size-split",
                     "fig09-policies", "surveyor-four-files"):
        assert expected in names
    with pytest.raises(KeyError):
        get_scenario("no-such-scenario")


def test_scenarios_build_spec_lists():
    specs = build_scenario("fig06-size-split", sizes_b=(24,), dts=(0.0, 5.0))
    assert len(specs) == 2
    assert all(s.meta["split"] == 24 for s in specs)
    assert [s.dt for s in specs] == [0.0, 5.0]
    quick = build_scenario("rennes-big-small", dt=1.0, strategy="fcfs")
    assert len(quick) == 1 and quick[0].strategy == "fcfs"


def test_three_way_scenario_runs():
    engine = ExperimentEngine()
    result = engine.run(build_scenario("three-way-contention")[0])
    factors = result.interference_factors()
    assert set(factors) == {"a", "b", "c"}
    assert all(f > 1.5 for f in factors.values())


# -- uniform export ----------------------------------------------------------

def test_result_set_csv_and_json():
    engine = ExperimentEngine()
    specs = [ExperimentSpec.pair(PLATFORM, w("A", 200), w("B", 100), dt=dt,
                                 name="pairs")
             for dt in (0.0, 50.0)]
    rs = engine.run_all(specs)
    lines = result_set_csv(rs).strip().splitlines()
    assert lines[0].startswith("experiment,strategy,dt,app")
    assert len(lines) == 5   # header + 2 experiments x 2 apps
    assert lines[1].startswith("pairs,none,0,A,200")

    data = json.loads(result_set_json(rs))
    assert len(data["results"]) == 2
    first = data["results"][0]
    assert first["spec"]["meta"]["dt"] == 0.0
    assert set(first["records"]) == {"A", "B"}
    assert first["records"]["A"]["t_alone"] is not None


def test_multi_result_csv_keeps_zero_baseline():
    from repro.experiments import MultiResult
    from repro.experiments.runner import AppRecord
    records = {
        "zero": AppRecord(name="zero", nprocs=4, write_times=[2.0],
                          wait_times=[0.0], comm_times=[0.0],
                          io_write_times=[2.0], t_alone=0.0),
        "none": AppRecord(name="none", nprocs=8, write_times=[3.0],
                          wait_times=[0.0], comm_times=[0.0],
                          io_write_times=[3.0], t_alone=None),
    }
    lines = multi_result_csv(
        MultiResult(records=records, strategy=None)).strip().splitlines()
    by_app = {line.split(",")[0]: line.split(",") for line in lines[1:]}
    # t_alone == 0.0 exports as 0 (not dropped); its factor is undefined.
    assert by_app["zero"][3] == "0"
    assert by_app["zero"][4] == MISSING
    # Missing baseline gets explicit markers in both cells.
    assert by_app["none"][3] == MISSING
    assert by_app["none"][4] == MISSING
