"""Process-parallel shard execution: equivalence, failure, negotiation.

Four layers of guarantees:

* **Oracle equivalence** — ``workers="process"`` must be bit-identical
  (canonical ``decisions_to_json`` string equality) to the in-process
  router: single-shard process mode vs the plain arbiter on randomized
  traces, multi-shard process mode vs inline on randomized traces and on
  the committed ``sharded-writers`` / ``cross-partition`` scenarios.
* **Lifecycle** — lazy pool start (strategy capacity injected before
  fork), clean idempotent teardown, per-worker perf counters shipped
  back and merged, ``coord_wall_seconds`` metered router-side.
* **Worker failure** — a worker killed mid-run (or a broken pipe) must
  surface a clean :class:`ShardWorkerError`, fire withdraws at the
  surviving workers, and tear the pool down without hanging.
* **DELAY negotiation** — ``span_delay="requeue"`` releases held shards
  while a later shard's DELAY hold runs out (vs the historical
  ``"hold"``), and the two modes are decision-log-equivalent whenever
  strategies never DELAY.
"""

import struct

import numpy as np
import pytest

from repro.core import (
    AccessDescriptor, AccessState, Action, Arbiter, Decision, FCFSStrategy,
    ShardRouter, ShardWorkerError,
)
from repro.experiments import build_scenario
from repro.experiments.engine import execute_spec
from repro.perf import PerfCounters
from repro.service.protocol import decisions_to_json
from repro.simcore import Simulator


def desc(app, nprocs=10, t_alone=5.0, total=1e6, partitions=(0,)):
    return AccessDescriptor(app=app, nprocs=nprocs, total_bytes=total,
                            t_alone=t_alone, partitions=tuple(partitions))


def drive_random(coord_factory, seed, napps=24, nparts=4):
    """The randomized multi-phase trace from the sharding tests."""
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0.0, 3.0, size=napps)
    holds = rng.uniform(0.1, 1.0, size=napps)
    phases = rng.integers(1, 4, size=napps)
    parts = rng.integers(0, nparts, size=napps)
    sim = Simulator()
    coord = coord_factory(sim)

    def app(i):
        name = f"app{i:02d}"
        yield sim.timeout(float(starts[i]))
        for _ in range(int(phases[i])):
            d = desc(name, nprocs=int(rng.integers(1, 64)),
                     t_alone=float(holds[i]), partitions=(int(parts[i]),))
            ok = yield coord.submit_inform(d)
            if not ok:
                yield coord.authorization_event(name)
            yield sim.timeout(float(holds[i]) / 2)
            coord.submit_release(name, d.total_bytes / 2)
            yield sim.timeout(float(holds[i]) / 2)
            coord.on_complete(name)

    for i in range(napps):
        sim.process(app(i))
    sim.run()
    close = getattr(coord, "close", None)
    if close is not None:
        close()
    return decisions_to_json(coord.decision_log), sim.now


# -- oracle equivalence -------------------------------------------------------

def test_single_shard_process_mode_equals_plain_arbiter():
    """The acceptance anchor: one worker process == the plain arbiter."""
    for seed in (3, 11, 2014):
        log_p, end_p = drive_random(
            lambda sim: ShardRouter(sim, 1, "dynamic", grant_latency=1e-3,
                                    workers="process"), seed, nparts=1)
        log_a, end_a = drive_random(
            lambda sim: Arbiter(sim, "dynamic", grant_latency=1e-3),
            seed, nparts=1)
        assert log_p == log_a, f"seed {seed}: decision logs diverged"
        assert end_p == end_a, f"seed {seed}: end times diverged"


@pytest.mark.parametrize("strategy", ["fcfs", "dynamic", "interrupt"])
def test_randomized_traces_process_equals_inline(strategy):
    for seed in (3, 11):
        log_p, end_p = drive_random(
            lambda sim: ShardRouter(sim, 4, strategy, grant_latency=1e-3,
                                    workers="process"), seed)
        log_i, end_i = drive_random(
            lambda sim: ShardRouter(sim, 4, strategy, grant_latency=1e-3),
            seed)
        assert log_p == log_i, f"{strategy}/{seed}: logs diverged"
        assert end_p == end_i


@pytest.mark.parametrize("name,kwargs", [
    ("sharded-writers", dict(napps=16, npartitions=4, nservers=8, phases=2,
                             strategy="fcfs")),
    ("sharded-writers", dict(napps=24, npartitions=8, nservers=8, phases=2,
                             strategy="dynamic")),
    ("cross-partition", dict(napps=8, npartitions=4, nservers=8,
                             strategy="fcfs")),
])
def test_committed_scenarios_process_mode_bit_identical(name, kwargs):
    spec, = build_scenario(name, **kwargs)
    inline = execute_spec(spec)
    proc = execute_spec(spec.with_(
        arbiter={**spec.arbiter, "workers": "process"}))
    assert (decisions_to_json(proc.decisions)
            == decisions_to_json(inline.decisions))
    assert proc.makespan == inline.makespan
    for app, rec in inline.records.items():
        assert proc.records[app].write_times == rec.write_times


def test_spawn_start_method_identical(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_START_METHOD", "spawn")
    log_p, end_p = drive_random(
        lambda sim: ShardRouter(sim, 2, "fcfs", grant_latency=1e-3,
                                workers="process"), 7, napps=10, nparts=2)
    monkeypatch.delenv("REPRO_SHARD_START_METHOD")
    log_i, end_i = drive_random(
        lambda sim: ShardRouter(sim, 2, "fcfs", grant_latency=1e-3),
        7, napps=10, nparts=2)
    assert log_p == log_i
    assert end_p == end_i


# -- lifecycle / perf ---------------------------------------------------------

def test_pool_starts_lazily_with_injected_capacity():
    """Runtime-injected strategy capacity must reach the workers: the pool
    forks on the *first exchange*, after CalciomRuntime set capacity."""
    spec, = build_scenario("sharded-writers", napps=16, npartitions=4,
                           nservers=8, phases=2, strategy="dynamic")
    inline = execute_spec(spec)
    proc = execute_spec(spec.with_(
        arbiter={**spec.arbiter, "workers": "process"}))
    # Dynamic decisions depend on the injected per-partition capacity, so
    # identical logs prove the capacity was aboard when the workers forked.
    assert (decisions_to_json(proc.decisions)
            == decisions_to_json(inline.decisions))


def test_process_mode_perf_counters_merged():
    spec, = build_scenario("sharded-writers", napps=16, npartitions=4,
                           nservers=8, phases=2, strategy="fcfs")
    inline = execute_spec(spec)
    proc = execute_spec(spec.with_(
        arbiter={**spec.arbiter, "workers": "process"}))
    # Worker-side decision counters shipped back, merged, and twinned.
    assert proc.perf["coord_decisions"] == inline.perf["coord_decisions"]
    shard_keys = {k for k in proc.perf
                  if k.startswith("coord_decisions_shard")}
    assert len(shard_keys) == 4
    # Router-side elapsed time is metered, and the summed per-worker CPU
    # never leaks into the wall counter.
    assert proc.perf["coord_wall_seconds"] > 0.0
    assert not any(k.startswith("coord_wall_seconds_shard")
                   for k in proc.perf)


def test_inline_mode_has_wall_clock_counter():
    """Inline coordination co-bumps coord_wall_seconds == coord_seconds
    (single-threaded: elapsed time *is* the summed decision time)."""
    spec, = build_scenario("sharded-writers", napps=12, npartitions=4,
                           nservers=8, phases=2, strategy="fcfs")
    result = execute_spec(spec)
    assert result.perf["coord_wall_seconds"] == \
        pytest.approx(result.perf["coord_seconds"])


def test_close_is_idempotent_and_caches_logs():
    sim = Simulator()
    router = ShardRouter(sim, 2, "fcfs", workers="process")

    def app(name, at, part):
        yield sim.timeout(at)
        yield router.submit_inform(desc(name, partitions=(part,)))
        yield sim.timeout(0.5)
        router.on_complete(name)

    sim.process(app("a", 0.0, 0))
    sim.process(app("b", 0.1, 1))
    sim.run()
    router.close()
    log = router.decision_log
    assert [r.app for r in log] == ["a", "b"]
    router.close()   # second close: no-op
    assert router.decision_log == log
    assert all(not h.proc.is_alive() for h in router._pool.handles)


def test_inline_router_close_is_noop():
    sim = Simulator()
    router = ShardRouter(sim, 2, "fcfs")
    router.on_inform(desc("a", partitions=(0,)))
    router.close()
    assert router.state_of("a") is AccessState.ACTIVE


def test_invalid_workers_value_rejected():
    with pytest.raises(ValueError):
        ShardRouter(Simulator(), 2, "fcfs", workers="threads")
    with pytest.raises(ValueError):
        ShardRouter(Simulator(), 2, "fcfs", span_delay="never")


# -- worker failure -----------------------------------------------------------

def _decode_ops(buf):
    """Parse the length-prefixed frames a recording socket captured."""
    import json
    ops, offset = [], 0
    while offset < len(buf):
        (length,) = struct.unpack_from(">I", buf, offset)
        offset += 4
        ops.append(json.loads(bytes(buf[offset:offset + length])))
        offset += length
    return ops


class _RecordingSock:
    """Socket wrapper logging every byte the router sends to one worker."""

    def __init__(self, sock):
        self._sock = sock
        self.sent = bytearray()

    def sendall(self, data):
        self.sent += data
        return self._sock.sendall(data)

    def __getattr__(self, name):
        return getattr(self._sock, name)


def test_killed_worker_surfaces_clean_error_and_withdraws_survivors():
    sim = Simulator()
    router = ShardRouter(sim, 2, "fcfs", workers="process")
    pool = router._pool
    spy = {}

    def scenario():
        ok = yield router.submit_inform(desc("a", partitions=(0,)))
        assert ok
        # The pool is live now: record what shard 0 (the survivor) is
        # sent from here on, then kill shard 1's worker.
        spy["sock"] = _RecordingSock(pool.handles[0].sock)
        pool.handles[0].sock = spy["sock"]
        pool.handles[1].proc.kill()
        pool.handles[1].proc.join(timeout=5)
        yield router.submit_inform(desc("b", partitions=(1,)))

    sim.process(scenario())
    with pytest.raises(ShardWorkerError, match="shard 1 worker died"):
        sim.run()
    assert pool.broken and pool.closed
    # Teardown did not hang and left no live workers.
    assert all(not h.proc.is_alive() for h in pool.handles)
    # The survivor was told to withdraw the in-flight grant before exit.
    ops = _decode_ops(spy["sock"].sent)
    withdraws = [m for m in ops if m.get("op") == "withdraw"]
    assert [m["app"] for m in withdraws] == ["a"]
    assert ops[-1]["op"] == "exit"
    router.close()   # idempotent after a failure


def test_broken_pipe_surfaces_clean_error():
    sim = Simulator()
    router = ShardRouter(sim, 2, "fcfs", workers="process")
    assert router.on_inform(desc("a", partitions=(0,))) is True
    router._pool.handles[1].sock.close()
    with pytest.raises(ShardWorkerError):
        router.on_inform(desc("b", partitions=(1,)))
    assert router._pool.broken
    assert all(not h.proc.is_alive() for h in router._pool.handles)


def test_engine_tears_down_pool_on_clean_run():
    """execute_spec closes the coordinator: no worker outlives the run."""
    import multiprocessing
    spec, = build_scenario("sharded-writers", napps=12, npartitions=4,
                           nservers=8, phases=2, strategy="fcfs")
    execute_spec(spec.with_(arbiter={**spec.arbiter, "workers": "process"}))
    assert multiprocessing.active_children() == []


# -- cross-shard DELAY negotiation --------------------------------------------

class DelayWhenBusy(FCFSStrategy):
    """DELAY (fixed hold) instead of queueing whenever the shard is busy."""

    name = "delay-when-busy"

    def __init__(self, delay=1.0):
        self.delay = delay

    def decide(self, now, active, waiting, incoming):
        if active or waiting:
            return Decision(Action.DELAY, delay=self.delay)
        return Decision(Action.GO)


def _delay_span_scenario(span_delay):
    """holder on shard 1; span (0,1) hits its DELAY; rival probes shard 0."""
    sim = Simulator()
    router = ShardRouter(sim, 2, DelayWhenBusy(delay=1.0),
                         span_delay=span_delay)
    seen = {}

    def holder():
        ok = yield router.submit_inform(desc("h", partitions=(1,)))
        assert ok
        yield sim.timeout(2.0)
        router.on_complete("h")

    def span():
        yield sim.timeout(0.5)
        ok = yield router.submit_inform(desc("s", partitions=(0, 1)))
        assert not ok   # shard 0 granted, shard 1 answered DELAY(1.0)
        yield router.authorization_event("s")
        seen["granted_at"] = sim.now
        yield sim.timeout(0.1)
        router.on_complete("s")

    def rival():
        yield sim.timeout(1.0)
        seen["rival_ok"] = yield router.submit_inform(
            desc("w", partitions=(0,)))
        seen["span_on_shard0"] = router.shards[0].arbiter.state_of("s")
        yield sim.timeout(0.2)
        router.on_complete("w")

    sim.process(holder())
    sim.process(span())
    sim.process(rival())
    sim.run()
    return seen


def test_span_delay_requeue_frees_held_shards():
    seen = _delay_span_scenario("requeue")
    # The chain retreated: shard 0 is *not* pinned during the hold, so
    # the rival is granted instantly on an idle shard.
    assert seen["span_on_shard0"] is AccessState.IDLE
    assert seen["rival_ok"] is True
    assert seen["granted_at"] == pytest.approx(2.5)


def test_span_delay_hold_pins_engaged_prefix():
    seen = _delay_span_scenario("hold")
    # Historical behavior: the span sits on its shard-0 grant through the
    # whole hold, so the rival finds the shard busy and is delayed too.
    # Shard 1's hold expires at 1.5 and activates (DELAY = "come back in
    # delta, then run" — the strategy priced the wait), completing the
    # chain while shard 0 never left the span's hands.
    assert seen["span_on_shard0"] is AccessState.ACTIVE
    assert seen["rival_ok"] is False
    assert seen["granted_at"] == pytest.approx(1.5)


def test_span_delay_modes_equivalent_when_strategies_never_delay():
    """FCFS never DELAYs: hold and requeue must be bit-identical."""
    spec, = build_scenario("cross-partition", napps=8, npartitions=4,
                           nservers=8, strategy="fcfs")
    hold = execute_spec(spec.with_(
        arbiter={**spec.arbiter, "span_delay": "hold"}))
    requeue = execute_spec(spec.with_(
        arbiter={**spec.arbiter, "span_delay": "requeue"}))
    assert (decisions_to_json(requeue.decisions)
            == decisions_to_json(hold.decisions))
    assert requeue.makespan == hold.makespan


def test_span_delay_requeue_identical_across_process_mode():
    """The requeue path goes through the same proxies: process == inline."""
    spec, = build_scenario("cross-partition", napps=8, npartitions=4,
                           nservers=8, strategy="fcfs")
    inline = execute_spec(spec)
    proc = execute_spec(spec.with_(
        arbiter={**spec.arbiter, "workers": "process"}))
    assert (decisions_to_json(proc.decisions)
            == decisions_to_json(inline.decisions))
