"""Pricing the preempted queue in the dynamic strategy's cost model.

``DynamicStrategy(price_preempted=True)`` charges the preempted stack
into every option: under FCFS the stack resumes after the actives drain
(ahead of FIFO waiters), under INTERRUPT it resumes right after the
incoming while the victims queue behind it.  The flag is off by default
and the contract is exact: decisions are bit-identical to the historical
model whenever the flag is off *or* the preempted queue is empty.
"""

import pytest

from repro.core.arbiter import AccessState, Arbiter
from repro.core.metrics import AccessDescriptor
from repro.core.strategies import Action, DynamicStrategy
from repro.simcore import Simulator


def desc(app, nprocs, t_alone, total=1e6):
    return AccessDescriptor(app=app, nprocs=nprocs, total_bytes=total,
                            t_alone=t_alone)


def _log(arb):
    return [(r.app, r.action) for r in arb.decision_log]


# ---------------------------------------------------------------------------
# Direct decide(): the cost model itself
# ---------------------------------------------------------------------------

def test_pricing_noop_when_queue_empty():
    state = dict(active=[desc("a", 64, 50.0)], waiting=[],
                 incoming=desc("s", 4, 1.0))
    base = DynamicStrategy().decide(0.0, state["active"], state["waiting"],
                                    state["incoming"], preempted=())
    priced = DynamicStrategy(price_preempted=True).decide(
        0.0, state["active"], state["waiting"], state["incoming"],
        preempted=())
    assert priced.action is base.action
    assert priced.costs == base.costs


def test_unpriced_ignores_a_populated_queue():
    """Without the flag, a non-empty view must not move any number."""
    active, incoming = [desc("a", 64, 50.0)], desc("s", 4, 1.0)
    stack = [desc("p", 2, 100.0)]
    base = DynamicStrategy().decide(0.0, active, [], incoming, preempted=())
    shown = DynamicStrategy().decide(0.0, active, [], incoming,
                                     preempted=stack)
    assert shown.action is base.action
    assert shown.costs == base.costs


def test_priced_stack_flips_interrupt_to_wait():
    """A deep stack makes INTERRUPT pay: the victims eat the whole
    stack's remainder before resuming (CPU-seconds-wasted explodes with
    the victim's core count)."""
    active, incoming = [desc("a", 64, 50.0)], desc("s", 4, 1.0)
    stack = [desc("p", 2, 100.0)]
    base = DynamicStrategy().decide(0.0, active, [], incoming,
                                    preempted=stack)
    priced = DynamicStrategy(price_preempted=True).decide(
        0.0, active, [], incoming, preempted=stack)
    assert base.action is Action.INTERRUPT
    assert priced.action is Action.WAIT
    # fcfs: a=64*50, p=2*(50+100), s=4*(50+100+1) -> 4104
    assert priced.costs["fcfs"] == pytest.approx(4104.0)
    # interrupt: a=64*(1+50+100), p=2*(1+100), s=4*1 -> 9870
    assert priced.costs["interrupt"] == pytest.approx(9870.0)


def test_priced_stack_ordering_is_queue_order():
    """Per-app resume times accumulate the stack prefix (queue order), so
    permuting the queue changes the per-app prices but not the totals —
    visible through a per-app-weighted metric."""
    active, incoming = [desc("a", 8, 10.0)], desc("s", 8, 10.0)
    p1, p2 = desc("p1", 1, 30.0), desc("p2", 16, 5.0)
    strategy = DynamicStrategy(price_preempted=True,
                               metric="max-slowdown")
    one = strategy.decide(0.0, active, [], incoming, preempted=[p1, p2])
    other = strategy.decide(0.0, active, [], incoming, preempted=[p2, p1])
    # p2 (16 cores, 5 s alone) behind p1's 30 s is slowed 9x; ahead of it
    # only 3x — queue order must reach the cost model.
    assert one.costs["fcfs"] != other.costs["fcfs"]


def test_priced_interference_and_delay_options_cover_the_stack():
    strategy = DynamicStrategy(price_preempted=True,
                               consider_interference=True,
                               consider_delay=True, capacity=1e6)
    active, incoming = [desc("a", 64, 50.0)], desc("s", 4, 1.0)
    stack = [desc("p", 2, 100.0)]
    priced = strategy.decide(0.0, active, [], incoming, preempted=stack)
    unpriced = DynamicStrategy(consider_interference=True,
                               consider_delay=True, capacity=1e6).decide(
        0.0, active, [], incoming, preempted=stack)
    # The stack is queued under every option, so each option's cost rises
    # by the same kind of term — and never below its unpriced value.
    for key, value in unpriced.costs.items():
        assert priced.costs[key] > value, key


# ---------------------------------------------------------------------------
# Through the arbiter: decision logs
# ---------------------------------------------------------------------------

def _drive_stacked(strategy, batched):
    """big P runs; big A interrupts it; small S arrives over the stack."""
    arb = Arbiter(Simulator(), strategy, batched=batched)
    arb.on_inform(desc("p", 2, 100.0))   # GO
    arb.on_inform(desc("a", 64, 50.0))   # INTERRUPT (p -> preempted)
    arb.on_inform(desc("s", 4, 1.0))     # the priced/unpriced divergence
    return arb


@pytest.mark.parametrize("batched", [True, False])
def test_decision_log_diverges_only_on_stacked_decision(batched):
    unpriced = _drive_stacked(DynamicStrategy(), batched)
    priced = _drive_stacked(DynamicStrategy(price_preempted=True), batched)
    assert _log(unpriced)[:2] == _log(priced)[:2] == [
        ("p", Action.GO), ("a", Action.INTERRUPT)]
    assert _log(unpriced)[2] == ("s", Action.INTERRUPT)
    assert _log(priced)[2] == ("s", Action.WAIT)
    # The priced WAIT keeps the stack intact instead of deepening it.
    assert priced.state_of("s") is AccessState.WAITING
    assert unpriced.state_of("a") is AccessState.PREEMPTED


@pytest.mark.parametrize("batched", [True, False])
def test_decision_log_identical_without_preemptions(batched):
    """While the preempted queue stays empty, priced and unpriced runs
    must produce bit-identical logs — costs included."""

    def drive(strategy):
        arb = Arbiter(Simulator(), strategy, batched=batched)
        # Pairwise overlap of equals: ties resolve to FCFS, so nothing is
        # ever preempted and the stack stays empty for every decision.
        arb.on_inform(desc("app0", 8, 2.0))
        for i in range(1, 6):
            arb.on_inform(desc(f"app{i}", 8, 2.0))
            arb.on_complete(f"app{i - 1}")
        arb.on_complete("app5")
        return arb

    unpriced, priced = drive(DynamicStrategy()), \
        drive(DynamicStrategy(price_preempted=True))
    assert _log(unpriced) == _log(priced)
    assert [r.costs for r in unpriced.decision_log] == \
        [r.costs for r in priced.decision_log]
    assert Action.INTERRUPT not in {a for _, a in _log(unpriced)}
