"""The PR-1 legacy shims must emit real DeprecationWarnings naming the
declarative replacement — and shims whose deprecation period has lapsed
must be gone for good."""

import warnings

import pytest

from repro.core.strategies import Action, Decision, Strategy
from repro.experiments import (
    run_delta_graph, run_many, run_pair, size_split_sweep, standalone_time,
    strategy_comparison,
)
from repro.apps import IORConfig
from repro.mpisim import Contiguous
from repro.platforms import PlatformConfig


def tiny_platform():
    return PlatformConfig(name="shim-test", nservers=1,
                          disk_bandwidth=1000.0, per_core_bandwidth=100.0,
                          stripe_size=1000, latency=0.0)


def tiny_cfg(name="a", start=0.0):
    return IORConfig(name=name, nprocs=2,
                     pattern=Contiguous(block_size=500),
                     start_time=start, grain=None)


def test_standalone_time_warns():
    with pytest.warns(DeprecationWarning, match="ExperimentEngine.baseline"):
        standalone_time(tiny_platform(), tiny_cfg())


def test_run_pair_warns():
    with pytest.warns(DeprecationWarning, match="ExperimentSpec"):
        run_pair(tiny_platform(), tiny_cfg("a"), tiny_cfg("b"), dt=0.5,
                 measure_alone=False)


def test_run_many_warns():
    with pytest.warns(DeprecationWarning, match="as_multi"):
        run_many(tiny_platform(), [tiny_cfg("a"), tiny_cfg("b", 0.5)],
                 measure_alone=False)


def test_run_delta_graph_warns():
    with pytest.warns(DeprecationWarning,
                      match="ExperimentEngine.delta_graph"):
        run_delta_graph(tiny_platform(), tiny_cfg("a"), tiny_cfg("b"),
                        dts=[0.0])


def test_sweep_helpers_warn():
    with pytest.warns(DeprecationWarning,
                      match="ExperimentEngine.size_split_sweep"):
        size_split_sweep(tiny_platform(), tiny_cfg("a"), tiny_cfg("b"),
                         total_cores=4, sizes_b=[2], dts=[0.0])
    with pytest.warns(DeprecationWarning,
                      match="ExperimentEngine.strategy_comparison"):
        strategy_comparison(tiny_platform(), tiny_cfg("a"), tiny_cfg("b"),
                            dt=0.0, strategies=(None,))


def test_supports_views_escape_hatch_removed():
    """The PR-4 ``supports_views = False`` list-materialization shim
    promised removal this release: declaring it is now a TypeError at
    class definition (no silent behavior change, no warning machinery)."""
    with pytest.raises(TypeError, match="has been removed"):
        class Straggler(Strategy):
            supports_views = False

            def decide(self, now, active, waiting, incoming):
                return Decision(Action.GO)


def test_shims_still_produce_results():
    """Deprecated does not mean broken: the shims stay functional."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        pair = run_pair(tiny_platform(), tiny_cfg("a"), tiny_cfg("b"),
                        dt=0.5, measure_alone=False)
    assert pair.a.write_time > 0
    assert pair.b.write_time > 0
