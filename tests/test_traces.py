"""Unit + property tests for SWF parsing, synthesis, and Fig 1 statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces import (
    IntrepidModel, SWFJob, SWFTrace, concurrency_distribution, format_swf,
    generate_intrepid_like, interference_probability_curve,
    job_size_distribution, parse_swf, prob_concurrent_io,
)


def make_jobs(specs):
    """specs: list of (start, runtime, procs)."""
    return [
        SWFJob(job_id=i + 1, submit_time=s, wait_time=0.0, run_time=r,
               allocated_procs=p)
        for i, (s, r, p) in enumerate(specs)
    ]


# -- SWF format ---------------------------------------------------------------

def test_swf_roundtrip():
    trace = SWFTrace(make_jobs([(0, 100, 64), (50, 200, 128)]),
                     header=["; test trace"])
    text = format_swf(trace)
    back = parse_swf(text)
    assert len(back) == 2
    assert back.jobs[0].allocated_procs == 64
    assert back.jobs[1].run_time == 200
    assert back.header == ["; test trace"]


def test_swf_parse_skips_blank_and_comments():
    text = """
; header one
; header two

1 0 5 100 64 -1 -1 64 150 -1 1 3 4 -1 -1 -1 -1 -1
"""
    trace = parse_swf(text)
    assert len(trace) == 1
    job = trace.jobs[0]
    assert job.start_time == 5.0
    assert job.end_time == 105.0
    assert job.requested_procs == 64
    assert job.user_id == 3


def test_swf_malformed_line_raises():
    with pytest.raises(ValueError):
        parse_swf("1 2 3")


def test_swf_invalid_jobs_filtered():
    trace = SWFTrace(make_jobs([(0, -1, 64), (0, 100, -1), (0, 100, 32)]))
    assert len(trace.valid_jobs()) == 1


def test_swf_makespan():
    trace = SWFTrace(make_jobs([(0, 100, 1), (500, 100, 1)]))
    assert trace.makespan == 600.0


# -- size distribution (Fig 1a) --------------------------------------------------

def test_size_distribution_counts():
    trace = SWFTrace(make_jobs([(0, 10, 256)] * 3 + [(0, 10, 4096)]))
    dist = job_size_distribution(trace)
    assert dist.fraction_at_or_below(256) == pytest.approx(0.75)
    assert dist.fraction_at_or_below(4096) == pytest.approx(1.0)
    assert dist.median_size() == 256


def test_size_distribution_duration_weighting():
    # One long small job vs three short big jobs.
    trace = SWFTrace(make_jobs([(0, 300, 256), (0, 10, 4096),
                                (0, 10, 4096), (0, 10, 4096)]))
    by_count = job_size_distribution(trace)
    by_time = job_size_distribution(trace, weight_by_duration=True)
    assert by_count.fraction_at_or_below(256) == pytest.approx(0.25)
    assert by_time.fraction_at_or_below(256) == pytest.approx(300 / 330)


def test_size_distribution_empty_raises():
    with pytest.raises(ValueError):
        job_size_distribution(SWFTrace([]))


# -- concurrency distribution (Fig 1b) ----------------------------------------------

def test_concurrency_simple_overlap():
    # [0,10) one job; [10,20) two jobs; [20,30) one job.
    trace = SWFTrace(make_jobs([(0, 20, 1), (10, 20, 1)]))
    dist = concurrency_distribution(trace)
    pmf = dist.pmf()
    assert pmf[1] == pytest.approx(2 / 3)
    assert pmf[2] == pytest.approx(1 / 3)
    assert dist.mean() == pytest.approx(4 / 3)


def test_concurrency_window_clipping():
    trace = SWFTrace(make_jobs([(0, 100, 1)]))
    dist = concurrency_distribution(trace, t0=0.0, t1=200.0)
    assert dist.pmf()[1] == pytest.approx(0.5)
    assert dist.pmf()[0] == pytest.approx(0.5)


def test_concurrency_empty_window_raises():
    trace = SWFTrace(make_jobs([(0, 10, 1)]))
    with pytest.raises(ValueError):
        concurrency_distribution(trace, t0=5.0, t1=5.0)


@settings(max_examples=50, deadline=None)
@given(st.lists(
    st.tuples(st.floats(min_value=0, max_value=1e4),
              st.floats(min_value=1, max_value=1e4),
              st.integers(min_value=1, max_value=1024)),
    min_size=1, max_size=30,
))
def test_concurrency_distribution_properties(specs):
    """PMF sums to 1; mean equals Σ runtimes / window."""
    trace = SWFTrace(make_jobs(specs))
    dist = concurrency_distribution(trace)
    assert np.isclose(dist.proportion.sum(), 1.0)
    window = (max(s + r for s, r, _ in specs)
              - min(s for s, r, _ in specs))
    expected_mean = sum(r for _, r, _ in specs) / window
    assert dist.mean() == pytest.approx(expected_mean, rel=1e-6)


# -- probability model (§II-B) -------------------------------------------------------

def test_prob_zero_io_fraction():
    assert prob_concurrent_io({0: 0.5, 3: 0.5}, 0.0) == 0.0


def test_prob_full_io_fraction():
    # Everyone always in I/O: interference certain unless X=0.
    assert prob_concurrent_io({0: 0.25, 2: 0.75}, 1.0) == pytest.approx(0.75)


def test_prob_formula_matches_hand_computation():
    pmf = {0: 0.1, 1: 0.4, 2: 0.5}
    mu = 0.2
    expected = 1 - (0.1 + 0.4 * 0.8 + 0.5 * 0.64)
    assert prob_concurrent_io(pmf, mu) == pytest.approx(expected)


def test_prob_rejects_bad_inputs():
    with pytest.raises(ValueError):
        prob_concurrent_io({0: 0.5}, 0.05)      # pmf doesn't sum to 1
    with pytest.raises(ValueError):
        prob_concurrent_io({0: 1.0}, 1.5)       # mu out of range


def test_prob_curve_is_monotonic():
    pmf = {i: 1 / 21 for i in range(21)}
    curve = interference_probability_curve(pmf, np.linspace(0, 1, 11))
    assert np.all(np.diff(curve) >= -1e-12)


# -- synthetic generator ----------------------------------------------------------------

def test_synthetic_trace_determinism():
    t1 = generate_intrepid_like(njobs=500, seed=42)
    t2 = generate_intrepid_like(njobs=500, seed=42)
    assert [j.start_time for j in t1] == [j.start_time for j in t2]


def test_synthetic_trace_seed_sensitivity():
    t1 = generate_intrepid_like(njobs=500, seed=1)
    t2 = generate_intrepid_like(njobs=500, seed=2)
    assert [j.run_time for j in t1.jobs] != [j.run_time for j in t2.jobs]


def test_synthetic_sizes_are_valid_partitions():
    trace = generate_intrepid_like(njobs=2000, seed=3)
    sizes = {j.allocated_procs for j in trace.jobs}
    assert sizes <= {256 << i for i in range(10)}


def test_synthetic_capacity_never_exceeded():
    model = IntrepidModel(duration_days=5.0)
    trace = generate_intrepid_like(model, seed=4)
    events = []
    for j in trace.valid_jobs():
        events.append((j.start_time, j.allocated_procs))
        events.append((j.end_time, -j.allocated_procs))
    events.sort()
    used, peak = 0, 0
    for _, delta in events:
        used += delta
        peak = max(peak, used)
    assert peak <= model.machine_cores


def test_synthetic_matches_paper_headline():
    """Half of jobs <= 2048 cores; P(concurrent I/O) ~ 64% at E[mu]=5%."""
    model = IntrepidModel(duration_days=60.0)
    trace = generate_intrepid_like(model, seed=5)
    dist = job_size_distribution(trace)
    assert 0.45 < dist.fraction_at_or_below(2048) < 0.60
    conc = concurrency_distribution(trace)
    p = prob_concurrent_io(conc, 0.05)
    assert 0.5 < p < 0.75
