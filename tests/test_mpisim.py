"""Unit tests for the simulated MPI layer: info, patterns, communicators,
two-phase planning, ADIO execution, and the MPI-IO facade."""


import pytest

from repro.mpisim import (
    ADIOLayer, Communicator, Contiguous, MPIInfo, MPIIOFile,
    Strided, plan_collective_write,
)
from repro.platforms import Platform, PlatformConfig
from repro.simcore import SimulationError


# -- MPIInfo -----------------------------------------------------------------

def test_info_set_get_roundtrip():
    info = MPIInfo(files=4)
    info.set("rounds", 16)
    assert info.get("files") == 4
    assert info["rounds"] == 16
    assert info.get("missing", "dflt") == "dflt"


def test_info_typed_accessors():
    info = MPIInfo(total_bytes="1024", rounds=7.0)
    assert info.get_float("total_bytes") == 1024.0
    assert info.get_int("rounds") == 7
    assert info.get_int("absent", 3) == 3


def test_info_merge_overrides():
    merged = MPIInfo(a=1, b=2).merged(MPIInfo(b=3, c=4))
    assert dict(merged.items()) == {"a": 1, "b": 3, "c": 4}


def test_info_rejects_non_string_keys():
    with pytest.raises(TypeError):
        MPIInfo().set(42, "x")


def test_info_len_contains_iter():
    info = MPIInfo(a=1, b=2)
    assert len(info) == 2 and "a" in info and sorted(info) == ["a", "b"]


# -- patterns ---------------------------------------------------------------------

def test_contiguous_bytes_per_process():
    p = Contiguous(block_size=1000)
    assert p.bytes_per_process == 1000
    assert not p.is_strided
    assert p.total_bytes(8) == 8000


def test_strided_bytes_per_process():
    p = Strided(block_size=2_000_000, nblocks=8)  # the paper's Fig 6 pattern
    assert p.bytes_per_process == 16_000_000
    assert p.is_strided


def test_pattern_validation():
    with pytest.raises(ValueError):
        Contiguous(block_size=0)
    with pytest.raises(ValueError):
        Strided(block_size=10, nblocks=0)


# -- communicator ----------------------------------------------------------------

def test_communicator_single_rank_barriers_are_free():
    from repro.simcore import Simulator
    comm = Communicator(Simulator(), 1, alpha=1e-3)
    assert comm.barrier_time() == 0.0


def test_communicator_barrier_scales_logarithmically():
    from repro.simcore import Simulator
    sim = Simulator()
    alpha = 1e-3
    c64 = Communicator(sim, 64, alpha=alpha)
    c1024 = Communicator(sim, 1024, alpha=alpha)
    assert c64.barrier_time() == pytest.approx(6 * alpha)
    assert c1024.barrier_time() == pytest.approx(10 * alpha)


def test_communicator_alltoall_bandwidth_term():
    from repro.simcore import Simulator
    comm = Communicator(Simulator(), 16, alpha=0.0, per_proc_bandwidth=100.0)
    # 16 procs x 100 B/s aggregate = 1600 B/s; 3200 B -> 2 s.
    assert comm.alltoall_time(3200.0) == pytest.approx(2.0)


def test_communicator_shuffle_fraction():
    from repro.simcore import Simulator
    comm = Communicator(Simulator(), 16, alpha=0.0, per_proc_bandwidth=100.0)
    assert comm.shuffle_time(3200.0, fraction_remote=0.5) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        comm.shuffle_time(100.0, fraction_remote=1.5)


def test_communicator_split():
    from repro.simcore import Simulator
    comm = Communicator(Simulator(), 64)
    sub = comm.split(8)
    assert sub.nprocs == 8
    with pytest.raises(ValueError):
        comm.split(65)


def test_communicator_validation():
    from repro.simcore import Simulator
    with pytest.raises(ValueError):
        Communicator(Simulator(), 0)


# -- two-phase planning -------------------------------------------------------------

def test_plan_covers_all_bytes():
    plan = plan_collective_write(Strided(block_size=1_000_000, nblocks=4),
                                 nprocs=64, cb_buffer_size=4_000_000,
                                 procs_per_node=4)
    assert sum(r.write_bytes for r in plan.rounds) == plan.total_bytes
    assert plan.total_bytes == 64 * 4_000_000


def test_plan_round_count():
    # 64 procs / 4 per node -> 16 aggregators x 4 MB buffer = 64 MB/round;
    # 256 MB total -> 4 rounds.
    plan = plan_collective_write(Strided(block_size=1_000_000, nblocks=4),
                                 nprocs=64, cb_buffer_size=4_000_000,
                                 procs_per_node=4)
    assert plan.naggregators == 16
    assert plan.nrounds == 4


def test_plan_offsets_are_contiguous():
    plan = plan_collective_write(Contiguous(block_size=10_000_000), nprocs=8,
                                 cb_buffer_size=4_000_000, naggregators=4)
    expected_offset = 0
    for rnd in plan.rounds:
        assert rnd.offset == expected_offset
        expected_offset += rnd.write_bytes


def test_strided_shuffles_everything_contiguous_little():
    strided = plan_collective_write(Strided(block_size=1_000_000, nblocks=4),
                                    nprocs=16, naggregators=4)
    contig = plan_collective_write(Contiguous(block_size=4_000_000),
                                   nprocs=16, naggregators=4)
    s_frac = sum(r.shuffle_bytes for r in strided.rounds) / strided.total_bytes
    c_frac = sum(r.shuffle_bytes for r in contig.rounds) / contig.total_bytes
    assert s_frac == pytest.approx(1.0, abs=0.01)
    assert c_frac < 0.2


def test_plan_single_round_when_buffer_is_huge():
    plan = plan_collective_write(Contiguous(block_size=1000), nprocs=4,
                                 cb_buffer_size=1 << 30, naggregators=4)
    assert plan.nrounds == 1


def test_plan_aggregators_capped_at_nprocs():
    plan = plan_collective_write(Contiguous(block_size=1000), nprocs=2,
                                 naggregators=64)
    assert plan.naggregators == 2


def test_plan_validation():
    with pytest.raises(ValueError):
        plan_collective_write(Contiguous(block_size=10), nprocs=0)
    with pytest.raises(ValueError):
        plan_collective_write(Contiguous(block_size=10), nprocs=1,
                              cb_buffer_size=0)


# -- ADIO execution -------------------------------------------------------------------

def adio_fixture(nprocs=8, per_core=10.0, disk=100.0, nservers=2):
    cfg = PlatformConfig(name="t", nservers=nservers, disk_bandwidth=disk,
                         per_core_bandwidth=per_core, stripe_size=1000,
                         latency=0.0)
    platform = Platform(cfg)
    client = platform.add_client("app", nprocs)
    comm = Communicator(platform.sim, nprocs, alpha=0.0,
                        per_proc_bandwidth=per_core)
    adio = ADIOLayer(platform.sim, platform.pfs, client, "app", comm,
                     cb_buffer_size=1000, naggregators=nprocs)
    return platform, adio


def test_adio_collective_write_moves_all_bytes():
    platform, adio = adio_fixture()

    def body():
        stats = yield from adio.write_collective(
            "/f", Contiguous(block_size=1000), grain="round")
        return stats

    p = platform.sim.process(body())
    stats = platform.sim.run(until=p)
    assert stats.bytes == 8000
    assert platform.pfs.stat("/f").size == 8000
    assert stats.duration > 0
    assert stats.write_time > 0


def test_adio_contiguous_write_time_matches_bandwidth():
    # 8 procs x 10 B/s = 80 B/s client; servers 200 B/s -> client-bound.
    platform, adio = adio_fixture()

    def body():
        return (yield from adio.write_collective(
            "/f", Contiguous(block_size=1000), grain=None))

    p = platform.sim.process(body())
    stats = platform.sim.run(until=p)
    # Write phase: 8000 B at 80 B/s = 100 s; contiguous collective buffering
    # still shuffles the 12.5% domain-boundary fraction -> +12.5 s comm.
    assert stats.write_time == pytest.approx(100.0, rel=0.01)
    assert stats.duration == pytest.approx(112.5, rel=0.01)


def test_adio_strided_write_includes_comm_phases():
    platform, adio = adio_fixture()

    def body():
        return (yield from adio.write_collective(
            "/f", Strided(block_size=500, nblocks=2), grain=None))

    p = platform.sim.process(body())
    stats = platform.sim.run(until=p)
    assert stats.comm_time > 0
    assert stats.duration == pytest.approx(
        stats.comm_time + stats.write_time, rel=1e-6)


def test_adio_history_accumulates():
    platform, adio = adio_fixture()

    def body():
        yield from adio.write_collective("/a", Contiguous(block_size=100))
        yield from adio.write_collective("/b", Contiguous(block_size=100))

    platform.sim.process(body())
    platform.sim.run()
    assert [s.path for s in adio.history] == ["/a", "/b"]


def test_adio_rejects_bad_grain():
    platform, adio = adio_fixture()

    def body():
        yield from adio.write_collective("/f", Contiguous(block_size=100),
                                         grain="banana")

    platform.sim.process(body())
    with pytest.raises(ValueError, match="grain"):
        platform.sim.run()


def test_adio_independent_write():
    platform, adio = adio_fixture()

    def body():
        return (yield from adio.write_independent("/f", 4000))

    p = platform.sim.process(body())
    stats = platform.sim.run(until=p)
    assert stats.bytes == 4000
    assert stats.nrounds == 1
    assert stats.comm_time == 0.0


# -- MPI-IO facade ---------------------------------------------------------------------

def test_mpiio_file_advances_offset():
    platform, adio = adio_fixture()
    f = MPIIOFile(adio, "/f")

    def body():
        yield from f.write_all(Contiguous(block_size=1000), grain=None)
        yield from f.write_all(Contiguous(block_size=1000), grain=None)

    platform.sim.process(body())
    platform.sim.run()
    assert f.offset == 16000
    assert platform.pfs.stat("/f").size == 16000


def test_mpiio_write_at_all_does_not_move_pointer():
    platform, adio = adio_fixture()
    f = MPIIOFile(adio, "/f")

    def body():
        yield from f.write_at_all(0, Contiguous(block_size=1000), grain=None)

    platform.sim.process(body())
    platform.sim.run()
    assert f.offset == 0


def test_mpiio_closed_file_rejects_io():
    platform, adio = adio_fixture()
    f = MPIIOFile(adio, "/f")
    f.close()

    def body():
        yield from f.write(100)

    platform.sim.process(body())
    with pytest.raises(SimulationError, match="closed"):
        platform.sim.run()
