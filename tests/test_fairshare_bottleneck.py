"""Cross-checks of the bottleneck-incremental filling and wake-heap pool.

The PR-5 kernel layers — cached bottleneck orders with verified prefix
replay, and the per-component wake-heap pool behind the component
registry — must be *pure* optimizations: bit-identical rates and
completion times against the PR-2 incremental baseline
(``FlowNetwork(sim, fill_cache=False, heap_pool=False)``) on any topology
and any event sequence.  Equality here is exact (``==``), not approximate:
a replayed step recomputes the same floats the fresh scan would.
"""

import math

import numpy as np
import pytest

from repro.experiments import ExperimentEngine, build_scenario
from repro.simcore import FluidLink, FlowNetwork, Simulator
from repro.perf import PerfCounters

HORIZON = 400.0


def _random_script(seed: int, nlinks: int = 5, nflows: int = 48,
                   nevents: int = 24):
    """Randomized starts plus mid-flight mutations, with components large
    enough (few links, many flows) to engage the fill cache."""
    rng = np.random.default_rng(seed)
    capacities = rng.uniform(100.0, 1000.0, size=nlinks)
    starts = []
    for i in range(nflows):
        npath = int(rng.integers(1, min(3, nlinks) + 1))
        path = sorted(rng.choice(nlinks, size=npath, replace=False).tolist())
        starts.append({
            "time": float(rng.uniform(0.0, 30.0)),
            "size": float(rng.uniform(100.0, 20000.0)),
            "path": path,
            "weight": float(rng.uniform(0.5, 8.0)),
            "cap": (float(rng.uniform(5.0, 80.0))
                    if rng.random() < 0.6 else None),
        })
    events = []
    for _ in range(nevents):
        kind = rng.choice(["pause", "resume", "cancel", "capacity"])
        events.append({
            "time": float(rng.uniform(1.0, 80.0)),
            "kind": str(kind),
            "flow": int(rng.integers(0, nflows)),
            "link": int(rng.integers(0, nlinks)),
            "capacity": float(rng.uniform(60.0, 1200.0)),
        })
    return capacities, starts, events


def _run_script(capacities, starts, events, **net_kwargs):
    """Execute one script; returns per-flow (finish, remaining, rate)."""
    sim = Simulator()
    net = FlowNetwork(sim, **net_kwargs)
    links = [FluidLink(float(c), f"l{j}") for j, c in enumerate(capacities)]
    flows = {}

    def starter(idx, spec):
        yield sim.timeout(spec["time"])
        flows[idx] = net.start_flow(
            spec["size"], [links[j] for j in spec["path"]],
            weight=spec["weight"], cap=spec["cap"], label=f"f{idx}")

    def mutator(ev):
        yield sim.timeout(ev["time"])
        flow = flows.get(ev["flow"])
        if ev["kind"] == "pause" and flow is not None:
            net.pause_flow(flow)
        elif ev["kind"] == "resume" and flow is not None:
            net.resume_flow(flow)
        elif ev["kind"] == "cancel" and flow is not None:
            net.cancel_flow(flow)
        elif ev["kind"] == "capacity":
            links[ev["link"]].set_capacity(ev["capacity"])

    for idx, spec in enumerate(starts):
        sim.process(starter(idx, spec))
    for ev in events:
        sim.process(mutator(ev))
    sim.run(until=HORIZON)
    return {idx: (None if idx not in flows else
                  (flows[idx].finish_time, flows[idx].remaining,
                   flows[idx].rate))
            for idx in range(len(starts))}


@pytest.mark.parametrize("seed", range(14))
def test_cached_fill_matches_baseline_exactly(seed):
    """Same script, cache+pool vs the PR-2 baseline: bit-identical state."""
    script = _random_script(seed)
    cached = _run_script(*script, fill_cache=True, heap_pool=True)
    baseline = _run_script(*script, fill_cache=False, heap_pool=False)
    assert cached.keys() == baseline.keys()
    for idx in cached:
        a, b = cached[idx], baseline[idx]
        if a is None or b is None:
            assert a == b
            continue
        for x, y, what in zip(a, b, ("finish_time", "remaining", "rate")):
            if math.isnan(x) or math.isnan(y):
                assert math.isnan(x) and math.isnan(y), (idx, what, x, y)
            else:
                assert x == y, f"flow {idx} {what}: cached={x!r} baseline={y!r}"


@pytest.mark.parametrize("seed", [3, 9])
@pytest.mark.parametrize("feature",
                         [{"fill_cache": True, "heap_pool": False},
                          {"fill_cache": False, "heap_pool": True}])
def test_each_layer_is_independently_exact(seed, feature):
    """Cache-only and pool-only must each match the baseline bit for bit."""
    script = _random_script(seed)
    solo = _run_script(*script, **feature)
    baseline = _run_script(*script, fill_cache=False, heap_pool=False)
    assert solo == baseline or all(
        (a == b or (a is not None and b is not None
                    and all((x == y or (math.isnan(x) and math.isnan(y)))
                            for x, y in zip(a, b))))
        for a, b in zip(solo.values(), baseline.values()))


def test_cache_counters_report_hits_and_partial_refills():
    """A churny many-flow component must actually hit the cache."""
    perf = PerfCounters()
    sim = Simulator(perf=perf)
    net = FlowNetwork(sim, perf=perf)
    server = FluidLink(1e9, "server")
    # A stable cohort (low caps, long flows) plus cycling bursts.
    for j in range(20):
        net.start_flow(2e4 * (1 + 0.01 * j), [server], cap=100.0 + j,
                       label=f"stable{j}")

    def burst(i):
        yield sim.timeout(0.1 * i)
        for k in range(4):
            flow = net.start_flow(500.0, [server], cap=900.0 + i + k)
            yield flow.done
            yield sim.timeout(0.2)

    for i in range(8):
        sim.process(burst(i))
    sim.run()
    assert perf.get("fill_cache_hits") > 0
    assert perf.get("fill_partial_refills") > 0
    assert perf.get("fill_steps_reused") > 20
    assert perf.get("wake_stale_pops") > 0


def test_component_registry_survives_merge_and_split():
    """A bridge flow unions two components; its end splits them again —
    with every completion firing exactly once at the baseline time."""
    def run(**net_kwargs):
        sim = Simulator()
        net = FlowNetwork(sim, **net_kwargs)
        left = FluidLink(100.0, "left")
        right = FluidLink(100.0, "right")
        fires = []
        flows = []
        # Enough flows per side to exceed the cache threshold.
        for i in range(6):
            flows.append(net.start_flow(1000.0 + 10 * i, [left],
                                        cap=30.0 + i, label=f"L{i}"))
            flows.append(net.start_flow(1200.0 + 10 * i, [right],
                                        cap=28.0 + i, label=f"R{i}"))
        for f in flows:
            f.done.callbacks.append(lambda ev: fires.append(ev.value.label))

        def bridge():
            yield sim.timeout(2.0)
            b = net.start_flow(500.0, [left, right], label="bridge")
            yield b.done
            yield sim.timeout(1.0)
            b2 = net.start_flow(400.0, [left, right], label="bridge2")
            yield sim.timeout(1.0)
            net.cancel_flow(b2)  # split while entries are still heap-live

        sim.process(bridge())
        sim.run()
        return [f.finish_time for f in flows], fires

    times_cached, fires_cached = run(fill_cache=True, heap_pool=True)
    times_base, fires_base = run(fill_cache=False, heap_pool=False)
    assert times_cached == times_base
    assert sorted(fires_cached) == sorted(fires_base)
    assert len(fires_cached) == len(set(fires_cached))  # exactly once each


def test_cancel_mid_refill_leaves_no_stale_wake_for_detached_component():
    """Satellite regression: cancelling (or pausing) a flow while its
    component is mid-refill — from an observer running inside the
    reallocation loop — must not leave a heap entry that fires for a
    detached component or double-completes a migrated flow."""
    def run(**net_kwargs):
        sim = Simulator()
        net = FlowNetwork(sim, **net_kwargs)
        left = FluidLink(100.0, "left")
        right = FluidLink(100.0, "right")
        flows = [net.start_flow(500.0 + 5 * i, [left], cap=20.0 + i)
                 for i in range(5)]
        flows += [net.start_flow(600.0 + 5 * i, [right], cap=18.0 + i)
                  for i in range(5)]
        victim = net.start_flow(5000.0, [left], cap=25.0, label="victim")
        state = {"fired": 0, "cancelled": False}
        victim.done.callbacks.append(
            lambda ev: state.__setitem__("fired", state["fired"] + 1))

        def observer(now, active):
            # Mid-reallocation: detach the victim while the refill that
            # re-priced it is still on the stack.
            if now >= 3.0 and not state["cancelled"]:
                state["cancelled"] = True
                net.cancel_flow(victim)

        net.add_observer(observer)

        def bridge():
            yield sim.timeout(1.0)
            b = net.start_flow(300.0, [left, right], label="bridge")
            yield b.done

        sim.process(bridge())
        sim.run()
        return [f.finish_time for f in flows], state

    times_cached, state_cached = run(fill_cache=True, heap_pool=True)
    times_base, state_base = run(fill_cache=False, heap_pool=False)
    assert times_cached == times_base
    # The cancelled flow's event fired exactly once (the cancellation),
    # never again from a stale wake of a dead component.
    assert state_cached["fired"] == 1 == state_base["fired"]
    assert all(not math.isnan(t) for t in times_cached)  # all completed


def test_pause_mid_refill_is_exact_and_resumable():
    def run(**net_kwargs):
        sim = Simulator()
        net = FlowNetwork(sim, **net_kwargs)
        link = FluidLink(200.0)
        flows = [net.start_flow(800.0 + 7 * i, [link], cap=15.0 + i)
                 for i in range(10)]
        target = flows[3]

        def controller():
            yield sim.timeout(2.0)
            net.pause_flow(target)
            yield sim.timeout(5.0)
            net.resume_flow(target)

        sim.process(controller())
        sim.run()
        return [f.finish_time for f in flows]

    assert run(fill_cache=True, heap_pool=True) == \
        run(fill_cache=False, heap_pool=False)


def test_cache_survives_a_transient_bridge():
    """Regression: a short-lived bridge flow merges two regions; once it
    ends, each region must get its own component back (a stale pointer is
    a forwarding address, not membership) — otherwise the halves steal one
    shared component back and forth, wiping each other's fill cache on
    every refill."""
    perf = PerfCounters()
    sim = Simulator(perf=perf)
    net = FlowNetwork(sim, perf=perf)
    a, b = FluidLink(1e9, "a"), FluidLink(1e9, "b")
    for j in range(10):
        net.start_flow(2e4, [a], cap=100.0 + j)
        net.start_flow(2e4, [b], cap=100.0 + j)
    net.start_flow(500.0, [a, b], cap=500.0, label="bridge")  # ends early

    def burst(i, link):
        yield sim.timeout(0.05 * i)
        for k in range(6):
            f = net.start_flow(300.0, [link], cap=900.0 + i + k)
            yield f.done
            yield sim.timeout(0.1)

    for i in range(5):
        sim.process(burst(i, a))
        sim.process(burst(i, b))
    sim.run()
    refills = (perf.get("fill_cache_hits") + perf.get("fill_partial_refills")
               + perf.get("fill_cache_misses"))
    assert perf.get("fill_cache_hits") > 0.3 * refills, perf.as_dict()
    assert perf.get("fill_cache_misses") < 0.1 * refills, perf.as_dict()
    # ... and the regions are separate components again.
    assert a._comp is not b._comp


def test_merge_must_not_drop_a_stale_pointer_remainders_wake():
    """Regression (found by the scenario equivalence sweep): reshapes leave
    stale link->component pointers, so a component whose *recorded* links
    are fully absorbed by a merge can still hold another region's live
    heap entries.  Retiring it (or keeping it dead when stale pointers
    bring it back as the keeper) silently drops those completions."""
    def run(**net_kwargs):
        sim = Simulator()
        net = FlowNetwork(sim, **net_kwargs)
        c_sat, c_main = FluidLink(100.0, "c_sat"), FluidLink(100.0, "c_main")
        d_sat, d_main = FluidLink(100.0, "d_sat"), FluidLink(100.0, "d_main")
        # One component per family via a bridge; cancelling the bridge
        # splits it with in-place reshapes, leaving each *_sat link as a
        # stale-pointer remainder whose flow's wake lives in the family
        # component's heap.
        ca = net.start_flow(5000.0, [c_sat], label="ca")     # done at t=50
        cb = net.start_flow(4000.0, [c_main], label="cb")
        da = net.start_flow(5000.0, [d_sat], label="da")
        db = net.start_flow(4000.0, [d_main], label="db")
        bc = net.start_flow(1e9, [c_sat, c_main], label="bc")
        bd = net.start_flow(1e9, [d_sat, d_main], label="bd")

        def driver():
            yield sim.timeout(1.0)
            net.cancel_flow(bc)
            net.cancel_flow(bd)
            yield sim.timeout(1.0)
            # Merge the two main regions: whichever family component is
            # not kept has its recorded links fully absorbed here while
            # its satellite's wake still lives in its heap.
            m = net.start_flow(100.0, [c_main, d_main], label="m")
            yield m.done

        sim.process(driver())
        sim.run()
        return [f.finish_time for f in (ca, cb, da, db)]

    times_pool = run(fill_cache=True, heap_pool=True)
    times_flat = run(fill_cache=False, heap_pool=False)
    assert times_pool == times_flat
    assert all(not math.isnan(t) for t in times_pool)


# ---------------------------------------------------------------------------
# Per-capacity-vector slots (observer-driven capacity wiggles)
# ---------------------------------------------------------------------------

def test_capacity_wiggle_restores_matching_slot():
    """Toggling a saturated link between two operating points must flip
    between cached slots (one per capacity vector) instead of invalidating
    the only cache on every toggle — the single-slot design missed every
    flip, because the changed link gates the whole bottleneck order."""
    from repro.simcore.fairshare import _CACHE_SLOTS

    def run(**net_kwargs):
        perf = PerfCounters()
        sim = Simulator(perf=perf)
        net = FlowNetwork(sim, perf=perf, **net_kwargs)
        server = FluidLink(100.0, "server")
        # Equal, uncapped flows: the link is the only bottleneck, so any
        # capacity change invalidates the entire cached order — unless a
        # slot recorded under the returning vector exists.
        flows = [net.start_flow(1e5, [server]) for _ in range(12)]
        ramp_misses = []

        def wiggler():
            yield sim.timeout(1.0)
            ramp_misses.append(perf.get("fill_cache_misses"))
            for k in range(20):
                server.set_capacity(120.0 if k % 2 == 0 else 100.0)
                yield sim.timeout(1.0)

        sim.process(wiggler())
        sim.run()
        return [f.finish_time for f in flows], perf, server, ramp_misses[0]

    times, perf, server, ramp = run(fill_cache=True, heap_pool=True)
    base_times, _, _, _ = run(fill_cache=False, heap_pool=False)
    assert times == base_times
    assert all(not math.isnan(t) for t in times)
    # Past the ramp-up, only the first fill of each vector misses; every
    # later flip restores the slot recorded for the vector it returns to.
    assert perf.get("fill_cache_misses") - ramp <= 1, perf.as_dict()
    assert perf.get("fill_slot_restores") >= 15, perf.as_dict()
    assert perf.get("fill_cache_hits") >= 15, perf.as_dict()
    assert len(server._comp.fill_slots) <= _CACHE_SLOTS


def test_wiggle_script_with_churn_matches_baseline_exactly():
    """Two-point capacity cycling layered over random starts, pauses,
    resumes and cancels: the slotted cache must stay bit-identical to the
    cache-free baseline while actually restoring slots."""
    capacities, starts, random_events = _random_script(21)
    events = [ev for ev in random_events if ev["kind"] != "capacity"]
    # A two-point throttle on one link; the rest of the vector stays put,
    # so every other toggle returns to an already-recorded vector.
    for k in range(30):
        events.append({
            "time": 1.0 + 2.0 * k, "kind": "capacity", "flow": 0,
            "link": 0,
            "capacity": float(capacities[0] * (0.8 if k % 2 == 0 else 1.0)),
        })
    perf = PerfCounters()
    cached = _run_script(capacities, starts, events,
                         fill_cache=True, heap_pool=True, perf=perf)
    baseline = _run_script(capacities, starts, events,
                           fill_cache=False, heap_pool=False)
    for idx in cached:
        a, b = cached[idx], baseline[idx]
        if a is None or b is None:
            assert a == b
            continue
        for x, y in zip(a, b):
            assert x == y or (math.isnan(x) and math.isnan(y)), (idx, x, y)
    assert perf.get("fill_slot_restores") > 0, perf.as_dict()


def test_bypassed_fill_keeps_slots_for_the_cohorts_return():
    """A component that dips below ``_CACHE_MIN_FLOWS`` (bypassed fresh
    fills) and then regrows must find its slots intact: slot verification
    is input-based, so an intervening bypassed fill cannot stale them.
    The old design dropped the cache on every bypassed fill, charging a
    full miss when the cohort came back."""
    perf = PerfCounters()
    sim = Simulator(perf=perf)
    net = FlowNetwork(sim, perf=perf)
    server = FluidLink(1e9, "server")
    flows = [net.start_flow(1e6, [server], cap=10.0 + i, label=f"f{i}")
             for i in range(12)]

    def churn():
        # Churn the largest-cap flows: their steps sit at the end of the
        # recorded order, so the shrink and regrow refills keep a long
        # replayable prefix (this isolates the slot-retention behaviour).
        for f in flows[7:]:
            yield sim.timeout(1.0)
            net.pause_flow(f)          # down through 7 live: bypassed fills
        for f in flows[7:]:
            yield sim.timeout(1.0)
            net.resume_flow(f)         # back up: slots must still be there

    sim.process(churn())
    sim.run()
    # Only the very first fill misses; the shrink refills replay fully
    # (removed flows are skipped) and the regrow refills replay partially.
    assert perf.get("fill_cache_misses") == 1, perf.as_dict()
    assert perf.get("fill_cache_hits") >= 4, perf.as_dict()
    assert perf.get("fill_partial_refills") >= 4, perf.as_dict()
    assert all(not math.isnan(f.finish_time) for f in flows)


# ---------------------------------------------------------------------------
# Full-stack equivalence on the high-churn scenarios
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scenario,kwargs", [
    ("checkpoint-waves", dict(napps=30, nservers=6, ncohorts=3, phases=2,
                              bridge_every=4)),
    ("read-write-mix", dict(napps=18, nservers=6, phases=4)),
])
def test_scenarios_identical_across_kernel_regimes(scenario, kwargs):
    """checkpoint-waves / read-write-mix: the cached kernel, the PR-2
    baseline and the global oracle all tell the same story."""
    engine = ExperimentEngine()
    results = {}
    for allocator in ("incremental", "incremental-flat", "global"):
        spec = build_scenario(scenario, allocator=allocator, **kwargs)[0]
        results[allocator] = engine.run(spec)
    rec_inc = results["incremental"].records
    rec_flat = results["incremental-flat"].records
    rec_glob = results["global"].records
    assert rec_inc.keys() == rec_flat.keys() == rec_glob.keys()
    for name in rec_inc:
        # Cache + pool vs flat baseline: exact.
        assert rec_inc[name].write_times == rec_flat[name].write_times, name
        # vs the eager-free global oracle: float-chunking tolerance.
        assert rec_inc[name].write_times == pytest.approx(
            rec_glob[name].write_times, rel=1e-9), name
    assert results["incremental"].makespan == results["incremental-flat"].makespan
    assert results["incremental"].makespan == pytest.approx(
        results["global"].makespan, rel=1e-9)


def test_scenario_equivalence_is_stable_across_allocation_layouts():
    """Component-registry identity decisions iterate sets of links (id
    ordering), so layout-dependent bugs only show up under shifted heap
    addresses.  Re-run the read-write-mix regime comparison under a few
    deliberately shifted allocation patterns (this sweep caught the
    dead-component wake-loss bug the targeted test above pins down)."""
    import random
    engine = ExperimentEngine()
    rng = random.Random(1234)
    for _ in range(5):
        ballast = [object() for _ in range(rng.randrange(10000))]  # noqa: F841
        results = {}
        for allocator in ("incremental", "incremental-flat"):
            spec = build_scenario("read-write-mix", napps=18, nservers=6,
                                  phases=4, allocator=allocator)[0]
            results[allocator] = engine.run(spec)
        rec_inc = results["incremental"].records
        rec_flat = results["incremental-flat"].records
        for name in rec_inc:
            assert rec_inc[name].write_times == rec_flat[name].write_times, name


# ---------------------------------------------------------------------------
# Adaptive fill-cache cutover (per-component replay-score EWMA)
# ---------------------------------------------------------------------------

def test_fixed_cutover_override_matches_adaptive_exactly():
    """``fill_cache_min_flows=8`` (the historical fixed cutover) and the
    adaptive default must yield bit-identical physics: the policy only
    picks *how* rates are computed, and replay is verified exact."""
    for seed in (3, 9, 21):
        script = _random_script(seed)
        fixed = _run_script(*script, fill_cache=True, heap_pool=True,
                            fill_cache_min_flows=8)
        adaptive = _run_script(*script, fill_cache=True, heap_pool=True,
                               fill_cache_min_flows=None)
        baseline = _run_script(*script, fill_cache=False, heap_pool=False)
        for idx in fixed:
            for variant in (adaptive, baseline):
                a, b = fixed[idx], variant[idx]
                if a is None or b is None:
                    assert a == b
                    continue
                for x, y in zip(a, b):
                    assert x == y or (math.isnan(x) and math.isnan(y)), (
                        seed, idx, x, y)


def test_fixed_cutover_override_on_committed_scenario():
    """End-to-end: a committed scenario runs bit-identically with the
    fixed cutover forced through :class:`PlatformConfig`."""
    from dataclasses import replace

    engine = ExperimentEngine()
    results = {}
    for min_flows in (None, 8):
        spec = build_scenario("checkpoint-waves", napps=30, nservers=6,
                              ncohorts=3, phases=2, bridge_every=4)[0]
        spec = replace(spec, platform=replace(
            spec.platform, fill_cache_min_flows=min_flows))
        results[min_flows] = engine.run(spec)
    rec_none, rec_fixed = results[None].records, results[8].records
    assert rec_none.keys() == rec_fixed.keys()
    for name in rec_none:
        assert rec_none[name].write_times == rec_fixed[name].write_times, name
    assert results[None].makespan == results[8].makespan


def test_int_override_gates_strictly_by_flow_count():
    """An integer ``fill_cache_min_flows`` reproduces the fixed cutover:
    below the threshold the cache is never consulted, at or above it the
    first fill records (one miss) and later fills replay."""
    def run(nflows, min_flows):
        perf = PerfCounters()
        sim = Simulator(perf=perf)
        net = FlowNetwork(sim, perf=perf, fill_cache=True, heap_pool=True,
                          fill_cache_min_flows=min_flows)
        server = FluidLink(1e9, "server")
        # Capped flows on an unsaturated link: cap steps replay across
        # membership changes, so the drain produces genuine cache hits.
        flows = [net.start_flow(1e6, [server], cap=10.0 + i)
                 for i in range(nflows)]
        sim.run()
        assert all(not math.isnan(f.finish_time) for f in flows)
        return perf

    # 6 flows under a cutover of 100: every fill bypasses the cache.
    perf = run(6, 100)
    assert perf.get("fill_cache_misses") == 0, perf.as_dict()
    assert perf.get("fill_cache_hits") == 0, perf.as_dict()
    assert perf.get("components_refilled") > 0, perf.as_dict()
    # The same workload under a cutover of 2: one recording miss, then
    # the staggered completions replay the recorded order.
    perf = run(6, 2)
    assert perf.get("fill_cache_misses") >= 1, perf.as_dict()
    assert perf.get("fill_cache_hits") >= 1, perf.as_dict()


def test_adaptive_backs_off_when_replay_never_pays():
    """A capacity that never revisits an operating point defeats both
    replay and slot restore: every consulted fill is a genuine miss, the
    replay-score EWMA decays below the cutoff, and the component stops
    paying the recording overhead — misses plateau while refills grow."""
    from repro.simcore.fairshare import _CACHE_PROBE_PERIOD

    perf = PerfCounters()
    sim = Simulator(perf=perf)
    net = FlowNetwork(sim, perf=perf, fill_cache=True, heap_pool=True)
    server = FluidLink(100.0, "server")
    flows = [net.start_flow(1e6, [server]) for _ in range(12)]
    ramp = perf.get("fill_cache_misses")  # cold ramp-up misses, unscored
    nwiggles = 80

    def thrash():
        for k in range(nwiggles):
            # Monotonically drifting capacity: no vector ever returns.
            server.set_capacity(100.0 + 0.5 * (k + 1))
            yield sim.timeout(1.0)

    sim.process(thrash())
    sim.run()
    assert all(not math.isnan(f.finish_time) for f in flows)
    misses = perf.get("fill_cache_misses") - ramp
    refills = perf.get("components_refilled")
    assert refills >= nwiggles
    # EWMA 1.0 decays below the 0.2 cutoff after 6 score-0 misses; from
    # then on only the periodic probe (every _CACHE_PROBE_PERIOD bypassed
    # fills) consults the cache again.
    assert misses <= 6 + nwiggles // _CACHE_PROBE_PERIOD + 2, perf.as_dict()
    # ... and the probe really does fire: backoff is not permanent.
    assert misses >= 7, perf.as_dict()


def test_adaptive_stays_on_for_replayable_workload():
    """Staggered completions replay the recorded bottleneck order with no
    input drift: the EWMA must stay above the cutoff and keep the cache
    engaged for the whole drain."""
    from repro.simcore.fairshare import _CACHE_EWMA_CUTOFF

    perf = PerfCounters()
    sim = Simulator(perf=perf)
    net = FlowNetwork(sim, perf=perf, fill_cache=True, heap_pool=True)
    server = FluidLink(1e9, "server")
    # Capped flows on an unsaturated link: cap steps replay across both
    # the ramp (partials) and the staggered drain (hits) — input drift
    # never defeats the recorded order.
    flows = [net.start_flow(1e6, [server], cap=10.0 + i)
             for i in range(12)]
    sim.run()
    assert all(not math.isnan(f.finish_time) for f in flows)
    assert perf.get("fill_cache_hits") + perf.get("fill_partial_refills") \
        >= 4, perf.as_dict()
    assert perf.get("fill_cache_misses") <= 2, perf.as_dict()
    assert server._comp.fill_ewma >= _CACHE_EWMA_CUTOFF, \
        server._comp.fill_ewma
