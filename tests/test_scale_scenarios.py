"""The many-application trace scenarios and the perf-instrumented results."""

import pytest

from repro.experiments import (
    ExperimentEngine, ExperimentSpec, build_scenario, get_scenario,
    replay_spec,
)
from repro.platforms import grid5000_rennes
from repro.traces import IntrepidModel, generate_intrepid_like


@pytest.fixture(scope="module")
def engine():
    return ExperimentEngine()


def test_many_writers_builds_requested_population():
    spec, = build_scenario("many-writers", napps=50, nservers=8)
    assert len(spec.workloads) == 50
    assert spec.meta["napps"] == 50
    assert spec.platform.pool_servers is False
    assert spec.platform.allocator == "incremental"
    # Deterministic: the same seed yields the same campaign.
    again, = build_scenario("many-writers", napps=50, nservers=8)
    assert again == spec


def test_many_writers_runs_under_strategies(engine):
    for strategy in (None, "fcfs", "interrupt"):
        spec, = build_scenario("many-writers", napps=10, nservers=4,
                               strategy=strategy, phases=2)
        result = engine.run(spec)
        assert len(result.records) == 10
        assert result.makespan > 0
        for record in result.records.values():
            assert len(record.write_times) == 2


def test_swf_replay_scenario_reaches_scale(engine):
    spec, = build_scenario("swf-replay", napps=60, hours=3.0)
    assert 50 <= len(spec.workloads) <= 60
    assert spec.meta["scenario"] == "swf-replay"
    result = engine.run(spec)
    assert len(result.records) == len(spec.workloads)


def test_replay_spec_round_trips_through_json():
    trace = generate_intrepid_like(
        model=IntrepidModel(duration_days=1.0, jobs_per_hour=30.0), seed=3)
    spec = replay_spec(grid5000_rennes(), trace, window=(0.0, 4 * 3600.0),
                       max_jobs=20, measure_alone=False)
    clone = ExperimentSpec.from_json(spec.to_json())
    assert clone == spec


def test_experiment_results_carry_perf_counters(engine):
    spec, = build_scenario("many-writers", napps=6, nservers=3, phases=1)
    result = engine.run(spec)
    perf = result.perf
    assert perf["events_processed"] > 0
    assert perf["rate_recomputations"] > 0
    assert perf["flows_touched"] >= perf["rate_recomputations"]
    assert perf["flow_starts"] == perf["flow_completions"]
    assert perf["pfs_writes"] > 0
    assert perf["io_requests"] >= perf["pfs_writes"]
    assert perf["wall_seconds"] > 0


def test_result_set_total_perf_sums_campaign(engine):
    specs = [build_scenario("many-writers", napps=4, nservers=2, phases=1,
                            seed=s)[0] for s in (1, 2)]
    rs = engine.run_all(specs)
    total = rs.total_perf()
    assert total["flow_starts"] == sum(r.perf["flow_starts"] for r in rs)
    assert total["wall_seconds"] > 0


def test_scenario_descriptions_mention_scale():
    assert "50-500" in get_scenario("many-writers").description
    assert "50-500" in get_scenario("swf-replay").description


# -- Fig 1-style per-job I/O sampling (swf-replay realism) --------------------

def test_swf_replay_samples_patterns_and_volumes():
    spec, = build_scenario("swf-replay", napps=40, hours=3.0)
    kinds = {type(w.pattern).__name__ for w in spec.workloads}
    assert kinds == {"Contiguous", "Strided"}  # a mixed population
    volumes = {w.pattern.block_size * getattr(w.pattern, "nblocks", 1)
               for w in spec.workloads}
    assert len(volumes) > len(spec.workloads) // 2  # volumes vary per job
    # Sampling is deterministic: same seed, same population.
    again, = build_scenario("swf-replay", napps=40, hours=3.0)
    assert again == spec


def test_swf_replay_uniform_population_on_request():
    spec, = build_scenario("swf-replay", napps=20, hours=3.0,
                           sampled_io=False, bytes_per_process=1_000_000)
    for w in spec.workloads:
        assert type(w.pattern).__name__ == "Contiguous"
        assert w.pattern.block_size == 1_000_000


def test_job_io_model_sampling_is_per_job_deterministic():
    import numpy as np

    from repro.traces import JobIOModel

    model = JobIOModel()
    a1 = model.sample(np.random.default_rng((3, 17)), nprocs=8)
    a2 = model.sample(np.random.default_rng((3, 17)), nprocs=8)
    assert a1 == a2
    volumes = [model.sample_volume(np.random.default_rng((3, j)), 8)
               for j in range(200)]
    assert model.min_bytes <= min(volumes) <= max(volumes) <= model.max_bytes
    # Lognormal spread: the population is genuinely heterogeneous.
    assert max(volumes) / min(volumes) > 5
