"""The many-application trace scenarios and the perf-instrumented results."""

import pytest

from repro.experiments import (
    ExperimentEngine, ExperimentSpec, build_scenario, get_scenario,
    replay_spec,
)
from repro.platforms import grid5000_rennes
from repro.traces import IntrepidModel, generate_intrepid_like


@pytest.fixture(scope="module")
def engine():
    return ExperimentEngine()


def test_many_writers_builds_requested_population():
    spec, = build_scenario("many-writers", napps=50, nservers=8)
    assert len(spec.workloads) == 50
    assert spec.meta["napps"] == 50
    assert spec.platform.pool_servers is False
    assert spec.platform.allocator == "incremental"
    # Deterministic: the same seed yields the same campaign.
    again, = build_scenario("many-writers", napps=50, nservers=8)
    assert again == spec


def test_many_writers_runs_under_strategies(engine):
    for strategy in (None, "fcfs", "interrupt"):
        spec, = build_scenario("many-writers", napps=10, nservers=4,
                               strategy=strategy, phases=2)
        result = engine.run(spec)
        assert len(result.records) == 10
        assert result.makespan > 0
        for record in result.records.values():
            assert len(record.write_times) == 2


def test_swf_replay_scenario_reaches_scale(engine):
    spec, = build_scenario("swf-replay", napps=60, hours=3.0)
    assert 50 <= len(spec.workloads) <= 60
    assert spec.meta["scenario"] == "swf-replay"
    result = engine.run(spec)
    assert len(result.records) == len(spec.workloads)


def test_replay_spec_round_trips_through_json():
    trace = generate_intrepid_like(
        model=IntrepidModel(duration_days=1.0, jobs_per_hour=30.0), seed=3)
    spec = replay_spec(grid5000_rennes(), trace, window=(0.0, 4 * 3600.0),
                       max_jobs=20, measure_alone=False)
    clone = ExperimentSpec.from_json(spec.to_json())
    assert clone == spec


def test_experiment_results_carry_perf_counters(engine):
    spec, = build_scenario("many-writers", napps=6, nservers=3, phases=1)
    result = engine.run(spec)
    perf = result.perf
    assert perf["events_processed"] > 0
    assert perf["rate_recomputations"] > 0
    assert perf["flows_touched"] >= perf["rate_recomputations"]
    assert perf["flow_starts"] == perf["flow_completions"]
    assert perf["pfs_writes"] > 0
    assert perf["io_requests"] >= perf["pfs_writes"]
    assert perf["wall_seconds"] > 0


def test_result_set_total_perf_sums_campaign(engine):
    specs = [build_scenario("many-writers", napps=4, nservers=2, phases=1,
                            seed=s)[0] for s in (1, 2)]
    rs = engine.run_all(specs)
    total = rs.total_perf()
    assert total["flow_starts"] == sum(r.perf["flow_starts"] for r in rs)
    assert total["wall_seconds"] > 0


def test_scenario_descriptions_mention_scale():
    assert "50-500" in get_scenario("many-writers").description
    assert "50-500" in get_scenario("swf-replay").description
