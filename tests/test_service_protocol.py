"""Wire-protocol contract tests: framing, schemas, serialization exactness.

The service's correctness story rests on the protocol layer being *exact*:
length-prefixed frames must round-trip unmodified, descriptor snapshots
must restore every field bit for bit (including the zero-``remaining_bytes``
coercion hazard), and the canonical decision-log serialization must be a
deterministic string — that string's equality is the definition of
"bit-identical decision logs" the replay equivalence tests rely on.
"""

import asyncio
import json
import math

import pytest

from repro.core.arbiter import DecisionRecord
from repro.core.metrics import AccessDescriptor
from repro.core.strategies import Action
from repro.experiments.scenarios import build_scenario
from repro.service.protocol import (
    MAX_FRAME,
    ProtocolError,
    decision_to_dict,
    decisions_to_json,
    decode_message,
    descriptor_from_dict,
    descriptor_to_dict,
    encode_message,
    read_message,
)
from repro.service.trace import CoordinationTrace, spec_fingerprint


def _reader_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    if data:
        reader.feed_data(data)
    reader.feed_eof()
    return reader


def _read(data: bytes):
    async def go():
        return await read_message(_reader_with(data))

    return asyncio.run(go())


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def test_frame_round_trip():
    message = {"type": "inform", "seq": 17, "t": 30.000123,
               "descriptor": {"app": "app003", "total_bytes": 4.0e6}}
    frame = encode_message(message)
    assert frame[:4] == len(frame[4:]).to_bytes(4, "big")
    assert decode_message(frame[4:]) == message
    assert _read(frame) == message


def test_read_message_clean_eof_is_none():
    assert _read(b"") is None


def test_read_message_dropped_mid_header():
    with pytest.raises(ProtocolError):
        _read(b"\x00\x00")


def test_read_message_dropped_mid_payload():
    frame = encode_message({"type": "bye"})
    with pytest.raises(ProtocolError):
        _read(frame[:-2])


def test_read_message_rejects_oversized_announcement():
    header = (MAX_FRAME + 1).to_bytes(4, "big")
    with pytest.raises(ProtocolError):
        _read(header + b"x" * 16)


def test_encode_rejects_oversized_payload():
    with pytest.raises(ProtocolError):
        encode_message({"type": "blob", "data": "x" * MAX_FRAME})


def test_decode_rejects_untyped_and_undecodable():
    with pytest.raises(ProtocolError):
        decode_message(b"[1, 2, 3]")          # not an object
    with pytest.raises(ProtocolError):
        decode_message(b'{"seq": 1}')         # no "type"
    with pytest.raises(ProtocolError):
        decode_message(b"\xff\xfe not json")  # undecodable


def test_multiple_frames_stream_in_order():
    frames = [{"type": "a", "n": i} for i in range(5)]
    data = b"".join(encode_message(f) for f in frames)

    async def _go():
        reader = _reader_with(data)
        out = []
        while True:
            message = await read_message(reader)
            if message is None:
                return out
            out.append(message)

    assert asyncio.run(_go()) == frames


# ---------------------------------------------------------------------------
# Descriptor snapshots
# ---------------------------------------------------------------------------

def _descriptor(**overrides) -> AccessDescriptor:
    kwargs = dict(app="app007", nprocs=64, total_bytes=4_000_000.0,
                  t_alone=12.5, files=2, rounds=3, partitions=(0, 1))
    kwargs.update(overrides)
    return AccessDescriptor(**kwargs)


def test_descriptor_round_trip_exact():
    desc = _descriptor(total_bytes=0.1 + 0.2, t_alone=1.0 / 3.0)
    desc.remaining_bytes = 123456.789e-3
    desc.access_started = 30.000000000001
    back = descriptor_from_dict(descriptor_to_dict(desc))
    for name in ("app", "nprocs", "total_bytes", "t_alone",
                 "remaining_bytes", "access_started", "files", "rounds",
                 "partitions"):
        assert getattr(back, name) == getattr(desc, name), name


def test_descriptor_round_trip_survives_json():
    """The wire adds a JSON hop; floats must still be bitwise-exact."""
    desc = _descriptor(total_bytes=math.pi * 1e6, t_alone=math.e)
    desc.remaining_bytes = desc.total_bytes / 7.0
    wired = json.loads(json.dumps(descriptor_to_dict(desc)))
    back = descriptor_from_dict(wired)
    assert back.total_bytes == desc.total_bytes
    assert back.t_alone == desc.t_alone
    assert back.remaining_bytes == desc.remaining_bytes


def test_descriptor_drained_snapshot_not_recoerced():
    """``__post_init__`` turns 0.0 remaining into total; a genuinely
    drained snapshot must survive the round trip as 0.0."""
    desc = _descriptor()
    desc.remaining_bytes = 0.0
    back = descriptor_from_dict(descriptor_to_dict(desc))
    assert back.remaining_bytes == 0.0


def test_descriptor_snapshot_is_a_copy():
    desc = _descriptor()
    snap = descriptor_to_dict(desc)
    desc.remaining_bytes = 1.0
    desc.access_started = 99.0
    assert snap["remaining_bytes"] == desc.total_bytes
    assert snap["access_started"] is None


def test_descriptor_from_dict_rejects_garbage():
    with pytest.raises(ProtocolError):
        descriptor_from_dict({"app": "x"})  # missing required fields
    with pytest.raises(ProtocolError):
        descriptor_from_dict({"app": "x", "nprocs": "many",
                              "total_bytes": 1.0, "t_alone": 1.0})


# ---------------------------------------------------------------------------
# Decision-log canonical serialization
# ---------------------------------------------------------------------------

def _record(time=30.25, app="app001", action=Action.WAIT):
    return DecisionRecord(time=time, app=app, action=action,
                          active=["app000"], waiting=["app001"],
                          costs={"t_wait": 1.5, "t_interfere": 2.25})


def test_decision_to_dict_uses_plain_json_types():
    entry = decision_to_dict(_record())
    assert entry["action"] == "wait"
    assert json.loads(json.dumps(entry)) == entry


def test_decisions_to_json_is_canonical():
    log = [_record(), _record(time=31.0, app="app002", action=Action.GO)]
    text = decisions_to_json(log)
    # Deterministic: same log, same string; compact, key-sorted.
    assert text == decisions_to_json(list(log))
    assert ": " not in text and '"action"' in text
    parsed = json.loads(text)
    assert [e["app"] for e in parsed] == ["app001", "app002"]


def test_decisions_to_json_distinguishes_logs():
    base = decisions_to_json([_record()])
    assert decisions_to_json([_record(time=30.250000001)]) != base
    assert decisions_to_json([_record(action=Action.GO)]) != base


# ---------------------------------------------------------------------------
# Traces and spec fingerprints
# ---------------------------------------------------------------------------

def test_trace_round_trip_and_views():
    trace = CoordinationTrace(meta={"spec_sha": "abc"})
    trace.add("inform", "a", 0.0, descriptor={"app": "a"})
    trace.add("inform", "b", 0.5, descriptor={"app": "b"})
    trace.add("release", "a", 1.0, remaining=None)
    trace.add("complete", "a", 1.0)
    assert trace.apps == ["a", "b"]
    assert [e["seq"] for e in trace.entries] == [0, 1, 2, 3]
    assert [e["seq"] for e in trace.entries_for(["a"])] == [0, 2, 3]
    back = CoordinationTrace.from_json(trace.to_json())
    assert back.to_dict() == trace.to_dict()


def test_spec_fingerprint_stable_and_discriminating():
    spec = build_scenario("service-many-writers", napps=4, nservers=2,
                          phases=1, seed=3, strategy="fcfs")[0]
    other = build_scenario("service-many-writers", napps=4, nservers=2,
                           phases=1, seed=4, strategy="fcfs")[0]
    assert spec_fingerprint(spec) == spec_fingerprint(spec)
    assert spec_fingerprint(spec) != spec_fingerprint(other)
    assert len(spec_fingerprint(spec)) == 16
