"""Unit tests for the interconnect fabric."""


import pytest

from repro.network import Fabric
from repro.simcore import FlowNetwork, SimulationError, Simulator


def star_fabric(latency=0.0):
    sim = Simulator()
    net = FlowNetwork(sim)
    fab = Fabric.star(sim, net, {"a": 100.0, "b": 50.0, "srv": 200.0},
                      latency=latency)
    return sim, net, fab


def test_star_has_paths_between_endpoints():
    sim, net, fab = star_fabric()
    links = fab.path_links("a", "srv")
    assert len(links) == 2
    assert links[0].name == "a->switch"
    assert links[1].name == "switch->srv"


def test_transfer_time_limited_by_narrowest_link():
    sim, net, fab = star_fabric()
    done = fab.transfer("b", "srv", 500.0)  # b uplink = 50 B/s
    sim.run(until=done)
    assert sim.now == pytest.approx(10.0)


def test_transfer_latency_added_once():
    sim, net, fab = star_fabric(latency=0.5)
    done = fab.transfer("a", "srv", 100.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(0.5 + 1.0)


def test_full_duplex_directions_independent():
    """a->srv and srv->a use different directed links, so no contention."""
    sim, net, fab = star_fabric()
    d1 = fab.transfer("a", "srv", 100.0)   # 100 B/s -> 1 s
    d2 = fab.transfer("srv", "a", 100.0)   # also 100 B/s (a downlink)
    sim.run()
    assert d1.value.finish_time == pytest.approx(1.0)
    assert d2.value.finish_time == pytest.approx(1.0)


def test_shared_uplink_contention():
    sim, net, fab = star_fabric()
    d1 = fab.transfer("a", "srv", 100.0)
    d2 = fab.transfer("a", "srv", 100.0)
    sim.run()
    # Both share a's 100 B/s uplink: each finishes at t=2.
    assert d1.value.finish_time == pytest.approx(2.0)
    assert d2.value.finish_time == pytest.approx(2.0)


def test_no_path_raises():
    sim = Simulator()
    net = FlowNetwork(sim)
    fab = Fabric(sim, net)
    fab.add_endpoint("lonely")
    fab.add_endpoint("island")
    with pytest.raises(SimulationError):
        fab.path_links("lonely", "island")


def test_edge_requires_known_nodes():
    sim = Simulator()
    fab = Fabric(sim, FlowNetwork(sim))
    fab.add_endpoint("a")
    with pytest.raises(SimulationError):
        fab.add_edge("a", "ghost", 10.0)


def test_message_delay_includes_serialization():
    sim, net, fab = star_fabric(latency=1e-3)
    # narrowest link on b->srv is 50 B/s; 100 B serializes in 2 s.
    assert fab.message_delay("b", "srv", 100.0) == pytest.approx(1e-3 + 2.0)


def test_message_delay_zero_bytes_is_latency():
    sim, net, fab = star_fabric(latency=2e-3)
    assert fab.message_delay("a", "b") == pytest.approx(2e-3)


def test_send_message_event():
    sim, net, fab = star_fabric(latency=0.25)
    ev = fab.send_message("a", "b")
    sim.run(until=ev)
    assert sim.now == pytest.approx(0.25)


def test_extra_links_constrain_transfer():
    from repro.simcore import FluidLink
    sim, net, fab = star_fabric()
    slow = FluidLink(10.0, "disk")
    done = fab.transfer("a", "srv", 100.0, extra_links=[slow])
    sim.run(until=done)
    assert sim.now == pytest.approx(10.0)


def test_tree_intra_group_avoids_uplink():
    sim = Simulator()
    net = FlowNetwork(sim)
    fab = Fabric.tree(sim, net, groups={
        "rack0": {"n0": 100.0, "n1": 100.0},
        "io": {"srv": 200.0},
    }, uplink_bandwidth=50.0, latency=0.0)
    # Intra-rack transfer: n0 -> rack0 -> n1, never touching the uplink.
    done = fab.transfer("n0", "n1", 100.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(1.0)  # 100 B at 100 B/s


def test_tree_cross_group_bound_by_uplink():
    sim = Simulator()
    net = FlowNetwork(sim)
    fab = Fabric.tree(sim, net, groups={
        "rack0": {"n0": 100.0},
        "io": {"srv": 200.0},
    }, uplink_bandwidth=50.0, latency=0.0)
    done = fab.transfer("n0", "srv", 100.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(2.0)  # uplink 50 B/s binds


def test_tree_uplink_shared_by_rack_peers():
    sim = Simulator()
    net = FlowNetwork(sim)
    fab = Fabric.tree(sim, net, groups={
        "rack0": {"n0": 100.0, "n1": 100.0},
        "io": {"srv": 1000.0},
    }, uplink_bandwidth=50.0, latency=0.0)
    d1 = fab.transfer("n0", "srv", 100.0)
    d2 = fab.transfer("n1", "srv", 100.0)
    sim.run()
    # Both share the 50 B/s rack uplink -> 25 B/s each -> 4 s.
    assert d1.value.finish_time == pytest.approx(4.0)
    assert d2.value.finish_time == pytest.approx(4.0)


def test_link_monitor_records_rates_and_bytes():
    from repro.network import LinkMonitor
    sim, net, fab = star_fabric()
    link = fab.link("a", "switch")
    mon = LinkMonitor(sim, net, [link])
    done = fab.transfer("a", "srv", 200.0)  # 100 B/s for 2 s
    sim.run(until=done)
    sim.run()
    assert mon.peak_rate(link) == pytest.approx(100.0)
    assert mon.bytes_through(link, 0.0, 2.0) == pytest.approx(200.0)
    assert mon.utilization(link, 0.0, 2.0) == pytest.approx(1.0)
    assert mon.utilization(link, 0.0, 4.0) == pytest.approx(0.5)


def test_link_monitor_watch_later():
    from repro.network import LinkMonitor
    sim, net, fab = star_fabric()
    mon = LinkMonitor(sim, net)
    link = fab.link("b", "switch")
    ts = mon.watch(link)
    done = fab.transfer("b", "srv", 100.0)  # 50 B/s for 2 s
    sim.run(until=done)
    assert mon.bytes_through(link, 0.0, 2.0) == pytest.approx(100.0)
    assert ts is mon.series[link]
