"""Property-based tests: arbiter invariants under random schedules.

The arbiter is a state machine driven by inform/release/complete calls from
arbitrary interleavings of applications.  Whatever the strategy decides,
some things must always hold:

* FCFS never runs two applications at once, never preempts, and serves
  informs in arrival order;
* every application that informs is eventually authorized once earlier
  accesses complete (no lost wakeups);
* interrupt keeps at most one ACTIVE application and resumes preempted
  ones before queued waiters;
* state bookkeeping (queues vs state map) stays consistent throughout.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AccessDescriptor, AccessState, Arbiter
from repro.simcore import Simulator


def desc(app, nprocs=8):
    return AccessDescriptor(app=app, nprocs=nprocs, total_bytes=1e6,
                            t_alone=5.0)


APPS = ["a", "b", "c", "d"]

#: A schedule is a list of (op, app) steps; informs for idle apps,
#: completes for engaged ones (filtered during execution).
schedule_strategy = st.lists(
    st.tuples(st.sampled_from(["inform", "complete", "release"]),
              st.sampled_from(APPS)),
    min_size=1, max_size=40,
)


def _consistent(arb: Arbiter) -> None:
    """Structural invariants that must hold after every step."""
    for app in arb._waiting:
        assert arb.state_of(app) is AccessState.WAITING
    for app in arb._preempted:
        assert arb.state_of(app) is AccessState.PREEMPTED
    for app, state in arb._state.items():
        if state is AccessState.WAITING:
            assert app in arb._waiting
        if state is AccessState.PREEMPTED:
            assert app in arb._preempted
        if state in (AccessState.ACTIVE, AccessState.WAITING,
                     AccessState.PREEMPTED):
            assert arb.descriptor_of(app) is not None


def _run_schedule(strategy, schedule):
    sim = Simulator()
    arb = Arbiter(sim, strategy)
    engaged = set()
    informs = []
    for op, app in schedule:
        if op == "inform" and app not in engaged:
            arb.on_inform(desc(app))
            engaged.add(app)
            informs.append(app)
        elif op == "complete" and app in engaged:
            arb.on_complete(app)
            engaged.discard(app)
        elif op == "release" and app in engaged:
            arb.on_release(app, remaining_bytes=1.0)
        sim.run()
        _consistent(arb)
    return sim, arb, engaged


@settings(max_examples=150, deadline=None)
@given(schedule_strategy)
def test_fcfs_mutual_exclusion_and_order(schedule):
    sim, arb, engaged = _run_schedule("fcfs", schedule)
    active = [a for a in APPS if arb.state_of(a) is AccessState.ACTIVE]
    assert len(active) <= 1
    assert not arb._preempted  # FCFS never preempts
    # Drain: completing everything engaged must leave the arbiter idle and
    # authorize each next-in-line exactly once.
    for _ in range(len(APPS) + 1):
        active = [a for a in APPS if arb.is_authorized(a)]
        if not active:
            break
        arb.on_complete(active[0])
        engaged.discard(active[0])
        sim.run()
        _consistent(arb)
    assert all(arb.state_of(a) is AccessState.IDLE for a in APPS)


@settings(max_examples=150, deadline=None)
@given(schedule_strategy)
def test_interrupt_single_active_and_priority_resume(schedule):
    sim, arb, engaged = _run_schedule("interrupt", schedule)
    active = [a for a in APPS if arb.state_of(a) is AccessState.ACTIVE]
    assert len(active) <= 1
    # Drain and confirm preempted apps resume before queued waiters.
    while True:
        active = [a for a in APPS if arb.is_authorized(a)]
        if not active:
            break
        preempted_before = list(arb._preempted)
        waiting_before = list(arb._waiting)
        arb.on_complete(active[0])
        sim.run()
        _consistent(arb)
        if preempted_before:
            assert arb.is_authorized(preempted_before[0])
        elif waiting_before:
            assert arb.is_authorized(waiting_before[0])
    assert all(arb.state_of(a) is AccessState.IDLE for a in APPS)


@settings(max_examples=100, deadline=None)
@given(schedule_strategy)
def test_interfere_everyone_always_authorized(schedule):
    sim, arb, engaged = _run_schedule("interfere", schedule)
    for app in engaged:
        assert arb.is_authorized(app)
    assert not arb._waiting and not arb._preempted


@settings(max_examples=100, deadline=None)
@given(schedule_strategy)
def test_dynamic_no_lost_apps(schedule):
    """Under the dynamic strategy every engaged app is in a live state and
    the machine drains to idle."""
    sim, arb, engaged = _run_schedule("dynamic", schedule)
    for app in engaged:
        assert arb.state_of(app) in (
            AccessState.ACTIVE, AccessState.WAITING, AccessState.PREEMPTED)
    for _ in range(3 * len(APPS) + 1):
        active = [a for a in APPS if arb.is_authorized(a)]
        if not active:
            break
        arb.on_complete(active[0])
        engaged.discard(active[0])
        sim.run()
        _consistent(arb)
    assert all(arb.state_of(a) is AccessState.IDLE for a in APPS)
    assert not engaged
