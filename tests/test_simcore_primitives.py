"""Unit tests for kernel primitives: Resource, Store, TimeSeries, RNG."""

import numpy as np
import pytest

from repro.simcore import (
    Resource, SimulationError, Simulator, Store, TimeSeries, ensure_rng,
    substream,
)


# -- Resource -----------------------------------------------------------------

def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    sim.run()
    assert r1.processed and r2.processed
    assert not r3.triggered
    assert res.in_use == 2
    assert res.queue_length == 1


def test_resource_release_grants_next():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    sim.run()
    res.release(r1)
    sim.run()
    assert r2.processed
    assert res.in_use == 1


def test_resource_priority_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    holder = res.request()
    low = res.request(priority=10.0)
    high = res.request(priority=-1.0)
    sim.run()
    res.release(holder)
    sim.run()
    assert high.processed
    assert not low.triggered


def test_resource_release_of_non_holder_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.request()
    stranger = res.request()
    sim.run()
    with pytest.raises(SimulationError):
        res.release(stranger)


def test_resource_cancel_waiting_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    r3 = res.request()
    sim.run()
    r2.cancel()
    res.release(r1)
    sim.run()
    assert r3.processed
    assert not r2.triggered


def test_resource_capacity_validation():
    with pytest.raises(SimulationError):
        Resource(Simulator(), capacity=0)


def test_resource_process_integration():
    """Classic mutex pattern from a generator process."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(name, hold):
        req = res.request()
        yield req
        order.append(f"{name}-in")
        yield sim.timeout(hold)
        order.append(f"{name}-out")
        res.release(req)

    sim.process(worker("a", 2.0))
    sim.process(worker("b", 1.0))
    sim.run()
    assert order == ["a-in", "a-out", "b-in", "b-out"]


# -- Store ----------------------------------------------------------------------

def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    g1, g2 = store.get(), store.get()
    sim.run()
    assert g1.value == 1 and g2.value == 2


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    result = []

    def consumer():
        item = yield store.get()
        result.append((sim.now, item))

    def producer():
        yield sim.timeout(3.0)
        store.put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert result == [(3.0, "x")]


def test_store_len_and_peek():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    store.put("b")
    assert len(store) == 2
    assert store.peek_all() == ["a", "b"]
    assert len(store) == 2  # peek is non-destructive


# -- TimeSeries -------------------------------------------------------------------

def test_timeseries_record_and_value_at():
    ts = TimeSeries()
    ts.record(0.0, 1.0)
    ts.record(5.0, 3.0)
    assert ts.value_at(0.0) == 1.0
    assert ts.value_at(4.9) == 1.0
    assert ts.value_at(5.0) == 3.0
    assert ts.value_at(100.0) == 3.0


def test_timeseries_value_before_first_sample_raises():
    ts = TimeSeries()
    ts.record(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.value_at(4.0)


def test_timeseries_non_monotonic_rejected():
    ts = TimeSeries()
    ts.record(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.record(4.0, 2.0)


def test_timeseries_same_instant_supersedes():
    ts = TimeSeries()
    ts.record(1.0, 10.0)
    ts.record(1.0, 20.0)
    assert len(ts) == 1
    assert ts.value_at(1.0) == 20.0


def test_timeseries_integral_step_semantics():
    ts = TimeSeries()
    ts.record(0.0, 2.0)   # 2.0 on [0, 10)
    ts.record(10.0, 4.0)  # 4.0 on [10, ...)
    assert ts.integral(0.0, 10.0) == pytest.approx(20.0)
    assert ts.integral(0.0, 15.0) == pytest.approx(40.0)
    assert ts.integral(5.0, 12.0) == pytest.approx(10.0 + 8.0)
    assert ts.time_average(0.0, 20.0) == pytest.approx(3.0)


def test_timeseries_integral_validation():
    ts = TimeSeries()
    ts.record(0.0, 1.0)
    with pytest.raises(ValueError):
        ts.integral(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.time_average(3.0, 3.0)


def test_timeseries_arrays():
    ts = TimeSeries()
    ts.record(0.0, 1.0)
    ts.record(2.0, 5.0)
    assert np.allclose(ts.times, [0.0, 2.0])
    assert np.allclose(ts.values, [1.0, 5.0])
    assert ts.samples() == [(0.0, 1.0), (2.0, 5.0)]


# -- RNG ----------------------------------------------------------------------------

def test_substream_deterministic():
    a = substream(42, "component", 3).random(5)
    b = substream(42, "component", 3).random(5)
    assert np.array_equal(a, b)


def test_substream_independent_keys():
    a = substream(42, "x").random(5)
    b = substream(42, "y").random(5)
    assert not np.array_equal(a, b)


def test_substream_string_hash_stable():
    """Key hashing must not depend on Python's randomized hash()."""
    a = substream(7, "appA").random(3)
    b = substream(7, "appA").random(3)
    assert np.array_equal(a, b)


def test_ensure_rng_coercions():
    gen = ensure_rng(5)
    assert isinstance(gen, np.random.Generator)
    assert ensure_rng(gen) is gen
    assert isinstance(ensure_rng(None), np.random.Generator)
