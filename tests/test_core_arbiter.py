"""Unit tests for the arbiter state machine and the application registry."""

import pytest

from repro.core import (
    AccessDescriptor, AccessState, ApplicationRegistry, Arbiter,
)
from repro.simcore import SimulationError, Simulator


def desc(app, nprocs=10, t_alone=5.0):
    return AccessDescriptor(app=app, nprocs=nprocs, total_bytes=1e6,
                            t_alone=t_alone)


def test_first_inform_under_fcfs_is_authorized():
    arb = Arbiter(Simulator(), "fcfs")
    assert arb.on_inform(desc("a")) is True
    assert arb.is_authorized("a")
    assert arb.state_of("a") is AccessState.ACTIVE


def test_second_inform_under_fcfs_waits():
    arb = Arbiter(Simulator(), "fcfs")
    arb.on_inform(desc("a"))
    assert arb.on_inform(desc("b")) is False
    assert arb.state_of("b") is AccessState.WAITING


def test_complete_grants_next_waiter_in_order():
    sim = Simulator()
    arb = Arbiter(sim, "fcfs")
    arb.on_inform(desc("a"))
    arb.on_inform(desc("b"))
    arb.on_inform(desc("c"))
    arb.on_complete("a")
    sim.run()
    assert arb.is_authorized("b")
    assert arb.state_of("c") is AccessState.WAITING
    arb.on_complete("b")
    sim.run()
    assert arb.is_authorized("c")


def test_interrupt_preempts_and_resumes_with_priority():
    sim = Simulator()
    arb = Arbiter(sim, "interrupt")
    arb.on_inform(desc("a"))
    assert arb.on_inform(desc("b")) is True    # b interrupts a
    assert arb.state_of("a") is AccessState.PREEMPTED
    assert arb.is_authorized("b")
    arb.on_complete("b")
    sim.run()
    assert arb.is_authorized("a")              # a resumes before any waiter


def test_preempted_resumes_before_waiting():
    sim = Simulator()
    arb = Arbiter(sim, "interrupt")
    arb.on_inform(desc("a"))
    arb.on_inform(desc("b"))                   # b interrupts a
    # c arrives while b runs: interrupt strategy preempts b too.
    arb.on_inform(desc("c"))
    assert arb.state_of("b") is AccessState.PREEMPTED
    arb.on_complete("c")
    sim.run()
    # a was preempted first -> resumes first.
    assert arb.is_authorized("a")
    assert arb.state_of("b") is AccessState.PREEMPTED


def test_reinform_while_active_is_continuation():
    arb = Arbiter(Simulator(), "fcfs")
    arb.on_inform(desc("a"))
    d2 = desc("a")
    d2.remaining_bytes = 10.0
    assert arb.on_inform(d2) is True
    assert len(arb.decision_log) == 1  # no second strategy decision
    assert arb.descriptor_of("a").remaining_bytes == 10.0


def test_authorization_event_fires_on_grant():
    sim = Simulator()
    arb = Arbiter(sim, "fcfs")
    arb.on_inform(desc("a"))
    arb.on_inform(desc("b"))
    fired = []
    arb.authorization_event("b").callbacks.append(lambda ev: fired.append(True))
    arb.on_complete("a")
    sim.run()
    assert fired == [True]


def test_authorization_event_immediate_when_active():
    sim = Simulator()
    arb = Arbiter(sim, "fcfs")
    arb.on_inform(desc("a"))
    ev = arb.authorization_event("a")
    assert ev.triggered


def test_grant_latency_delays_authorization():
    sim = Simulator()
    arb = Arbiter(sim, "fcfs", grant_latency=0.5)
    arb.on_inform(desc("a"))
    arb.on_inform(desc("b"))
    ev = arb.authorization_event("b")
    arb.on_complete("a")
    sim.run(until=ev)
    assert sim.now == pytest.approx(0.5)


def test_on_release_updates_remaining():
    arb = Arbiter(Simulator(), "fcfs")
    arb.on_inform(desc("a"))
    arb.on_release("a", remaining_bytes=123.0)
    assert arb.descriptor_of("a").remaining_bytes == 123.0


def test_complete_unknown_app_is_noop():
    arb = Arbiter(Simulator(), "fcfs")
    arb.on_complete("ghost")  # must not raise


def test_decision_log_records_costs():
    sim = Simulator()
    arb = Arbiter(sim, "dynamic")
    a = desc("a")
    a.access_started = 0.0
    arb.on_inform(a)
    arb.on_inform(desc("b"))
    assert len(arb.decision_log) == 2
    assert "fcfs" in arb.decision_log[1].costs
    assert "interrupt" in arb.decision_log[1].costs


def test_waiting_app_completing_is_removed_from_queue():
    sim = Simulator()
    arb = Arbiter(sim, "fcfs")
    arb.on_inform(desc("a"))
    arb.on_inform(desc("b"))
    arb.on_inform(desc("c"))
    arb.on_complete("b")  # b gives up while queued
    arb.on_complete("a")
    sim.run()
    assert arb.is_authorized("c")


# -- registry -----------------------------------------------------------------

def test_registry_register_and_peers():
    reg = ApplicationRegistry()
    reg.register("a", 128, "a", now=0.0)
    reg.register("b", 64, "b", now=1.0)
    assert len(reg) == 2
    assert [r.name for r in reg.peers_of("a")] == ["b"]


def test_registry_unregister():
    reg = ApplicationRegistry()
    reg.register("a", 128, "a", now=0.0)
    reg.unregister("a", now=5.0)
    assert len(reg) == 0
    assert reg.lookup("a").finished_at == 5.0


def test_registry_double_register_rejected():
    reg = ApplicationRegistry()
    reg.register("a", 128, "a", now=0.0)
    with pytest.raises(SimulationError):
        reg.register("a", 128, "a", now=1.0)


def test_registry_rereregister_after_finish_ok():
    reg = ApplicationRegistry()
    reg.register("a", 128, "a", now=0.0)
    reg.unregister("a", now=1.0)
    reg.register("a", 256, "a", now=2.0)
    assert reg.lookup("a").nprocs == 256


def test_registry_unregister_unknown_rejected():
    reg = ApplicationRegistry()
    with pytest.raises(SimulationError):
        reg.unregister("ghost", now=0.0)
    with pytest.raises(SimulationError):
        reg.lookup("ghost")


def test_delay_action_grants_after_hold():
    from repro.core import Decision, Action, Strategy

    class AlwaysDelay(Strategy):
        name = "always-delay"

        def decide(self, now, active, waiting, incoming):
            if active:
                return Decision(Action.DELAY, delay=5.0)
            return Decision(Action.GO)

    sim = Simulator()
    arb = Arbiter(sim, AlwaysDelay())
    arb.on_inform(desc("a"))
    assert arb.on_inform(desc("b")) is False
    ev = arb.authorization_event("b")
    sim.run(until=ev)
    assert sim.now == pytest.approx(5.0)
    assert arb.is_authorized("b")
    # a was never preempted: both now share.
    assert arb.is_authorized("a")


def test_delay_action_early_grant_wins():
    from repro.core import Decision, Action, Strategy

    class AlwaysDelay(Strategy):
        name = "always-delay"

        def decide(self, now, active, waiting, incoming):
            if active:
                return Decision(Action.DELAY, delay=100.0)
            return Decision(Action.GO)

    sim = Simulator()
    arb = Arbiter(sim, AlwaysDelay())
    arb.on_inform(desc("a"))
    arb.on_inform(desc("b"))
    ev = arb.authorization_event("b")

    def finish_a():
        yield sim.timeout(2.0)
        arb.on_complete("a")

    sim.process(finish_a())
    sim.run(until=ev)
    assert sim.now == pytest.approx(2.0)  # granted at a's completion
    sim.run()  # the stale hold timer must not break anything
    assert arb.is_authorized("b")
