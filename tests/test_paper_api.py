"""Direct tests of the paper's §III-C API on a CalciomSession.

The six calls — Prepare, Inform, Check, Wait, Release, Complete — are the
paper's public contract; these tests drive them by hand (no ADIO in the
way) and verify the documented semantics:

* "Prepare adds more information about the future I/O accesses ...
  a call to Complete() will later unstack information";
* "Inform sends the information to the set of running applications ...
  suggestions of authorizations are eventually sent back";
* "Check checks whether the application is allowed to access";
* "Wait explicitly waits for all the other applications to agree";
* "Release ends a step in the I/O access ... reevaluates the global
  strategy ... A new call to Inform is necessary before the next access."
"""

import pytest

from repro.core import AccessState, CalciomRuntime
from repro.mpisim import MPIInfo
from repro.platforms import Platform, PlatformConfig


def setup_two_sessions(strategy="fcfs"):
    platform = Platform(PlatformConfig(
        name="api", nservers=1, disk_bandwidth=100.0,
        per_core_bandwidth=10.0, stripe_size=100, latency=1e-6,
    ))
    runtime = CalciomRuntime(platform, strategy=strategy)
    platform.add_client("a", 10)
    platform.add_client("b", 10)
    sa = runtime.session("a", "a", 10)
    sb = runtime.session("b", "b", 10)
    return platform, runtime, sa, sb


def test_prepare_inform_check_flow():
    platform, runtime, sa, sb = setup_two_sessions()
    log = []

    def app_a():
        sa.prepare(MPIInfo(total_bytes=1000, nprocs=10, rounds=2))
        authorized = yield from sa.inform()
        log.append(("a-informed", authorized, sa.check()))
        yield platform.sim.timeout(5.0)  # pretend to do I/O
        yield from sa.release()
        sa.complete()
        log.append(("a-done", platform.sim.now))

    def app_b():
        yield platform.sim.timeout(1.0)
        sb.prepare(MPIInfo(total_bytes=500, nprocs=10, rounds=1))
        authorized = yield from sb.inform()
        log.append(("b-informed", authorized, sb.check()))
        if not authorized:
            yield from sb.wait()
        log.append(("b-authorized", platform.sim.now))
        yield from sb.release()
        sb.complete()

    platform.sim.process(app_a())
    platform.sim.process(app_b())
    platform.sim.run()
    assert log[0][0] == "a-informed" and log[0][1] is True
    assert log[1][0] == "b-informed" and log[1][1] is False
    # b was authorized only once a completed (~t=5).
    b_auth = [entry for entry in log if entry[0] == "b-authorized"][0]
    assert b_auth[1] >= 5.0


def test_check_is_nonblocking_and_truthful():
    platform, runtime, sa, sb = setup_two_sessions()

    def body():
        sa.prepare(MPIInfo(total_bytes=100, nprocs=10))
        yield from sa.inform()
        assert sa.check() is True
        sb.prepare(MPIInfo(total_bytes=100, nprocs=10))
        yield from sb.inform()
        assert sb.check() is False  # a holds the machine under FCFS
        sa.complete()
        yield platform.sim.timeout(0.01)  # grant latency
        assert sb.check() is True
        sb.complete()

    p = platform.sim.process(body())
    platform.sim.run(until=p)


def test_wait_returns_immediately_when_authorized():
    platform, runtime, sa, sb = setup_two_sessions()

    def body():
        sa.prepare(MPIInfo(total_bytes=100, nprocs=10))
        yield from sa.inform()
        t0 = platform.sim.now
        yield from sa.wait()
        assert platform.sim.now == t0
        sa.complete()

    p = platform.sim.process(body())
    platform.sim.run(until=p)


def test_release_refreshes_remaining_knowledge():
    platform, runtime, sa, sb = setup_two_sessions()

    def body():
        sa.prepare(MPIInfo(total_bytes=1000, nprocs=10, rounds=4))
        yield from sa.inform()
        desc = runtime.arbiter.descriptor_of("a")
        assert desc.remaining_bytes == 1000
        yield from sa.end_access()  # one round done: 250 bytes
        assert desc.remaining_bytes == pytest.approx(750.0)
        sa.complete()

    p = platform.sim.process(body())
    platform.sim.run(until=p)


def test_complete_ends_access_and_descriptor():
    platform, runtime, sa, sb = setup_two_sessions()

    def body():
        sa.prepare(MPIInfo(total_bytes=100, nprocs=10))
        yield from sa.inform()
        sa.complete()
        assert runtime.arbiter.state_of("a") is AccessState.IDLE
        assert runtime.arbiter.descriptor_of("a") is None
        # A new access needs a fresh Prepare + Inform.
        sa.prepare(MPIInfo(total_bytes=200, nprocs=10))
        authorized = yield from sa.inform()
        assert authorized
        sa.complete()

    p = platform.sim.process(body())
    platform.sim.run(until=p)


def test_inform_costs_coordination_latency():
    platform, runtime, sa, sb = setup_two_sessions()

    def body():
        sa.prepare(MPIInfo(total_bytes=100, nprocs=10))
        t0 = platform.sim.now
        yield from sa.inform()
        assert platform.sim.now > t0  # messages are not free
        sa.complete()

    p = platform.sim.process(body())
    platform.sim.run(until=p)


def test_nested_prepare_complete_balance():
    """ADIO inside an application phase: inner pairs must not end the
    outer access."""
    platform, runtime, sa, sb = setup_two_sessions()

    def body():
        sa.prepare(MPIInfo(total_bytes=1000, nprocs=10, files=2))
        yield from sa.inform()
        sa.prepare(MPIInfo(total_bytes=500, nprocs=10))  # file 1 (nested)
        sa.complete()
        assert runtime.arbiter.state_of("a") is AccessState.ACTIVE
        sa.prepare(MPIInfo(total_bytes=500, nprocs=10))  # file 2 (nested)
        sa.complete()
        assert runtime.arbiter.state_of("a") is AccessState.ACTIVE
        sa.complete()  # outer
        assert runtime.arbiter.state_of("a") is AccessState.IDLE

    p = platform.sim.process(body())
    platform.sim.run(until=p)
