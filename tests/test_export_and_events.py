"""Tests for CSV export helpers and event edge cases."""

import pytest

from repro.apps import IORConfig
from repro.experiments import run_delta_graph, run_many
from repro.experiments.export import delta_graph_csv, multi_result_csv
from repro.mpisim import Contiguous
from repro.platforms import PlatformConfig
from repro.simcore import SimulationError, Simulator

PLATFORM = PlatformConfig(name="x", nservers=1, disk_bandwidth=100.0,
                          per_core_bandwidth=10.0, stripe_size=100,
                          latency=0.0)


def cfg(name, nprocs=10):
    return IORConfig(name=name, nprocs=nprocs,
                     pattern=Contiguous(block_size=100), grain=None)


# -- CSV export ----------------------------------------------------------------

def test_delta_graph_csv_roundtrip():
    g = run_delta_graph(PLATFORM, cfg("A"), cfg("B"), [0.0, 5.0],
                        with_expected=True)
    csv_text = delta_graph_csv(g)
    lines = csv_text.strip().splitlines()
    assert lines[0] == "dt,t_a,t_b,i_a,i_b,expected_a,expected_b"
    assert len(lines) == 3
    first = lines[1].split(",")
    assert float(first[0]) == 0.0
    assert float(first[3]) >= 1.0


def test_delta_graph_csv_without_expected():
    g = run_delta_graph(PLATFORM, cfg("A"), cfg("B"), [0.0])
    lines = delta_graph_csv(g).strip().splitlines()
    assert lines[0] == "dt,t_a,t_b,i_a,i_b"


def test_multi_result_csv():
    res = run_many(PLATFORM, [cfg("a"), cfg("b", 20)])
    lines = multi_result_csv(res).strip().splitlines()
    assert lines[0].startswith("app,nprocs,write_time")
    assert len(lines) == 3
    assert lines[1].startswith("a,10,")
    assert lines[2].startswith("b,20,")


def test_csv_quotes_commas():
    from repro.experiments.export import _cell
    assert _cell('a,b') == '"a,b"'
    assert _cell('say "hi"') == '"say ""hi"""'


# -- event edge cases --------------------------------------------------------------

def test_event_trigger_copies_success():
    sim = Simulator()
    src = sim.timeout(1.0, value="payload")
    dst = sim.event()
    src.callbacks.append(dst.trigger)
    sim.run()
    assert dst.processed and dst.value == "payload"


def test_event_trigger_copies_failure_and_defuses():
    sim = Simulator()
    src = sim.event()
    dst = sim.event()
    src.callbacks.append(dst.trigger)
    src.fail(ValueError("boom"))
    caught = {}

    def waiter():
        try:
            yield dst
        except ValueError as exc:
            caught["exc"] = str(exc)

    sim.process(waiter())
    sim.run()
    assert caught["exc"] == "boom"


def test_unhandled_failed_event_aborts_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("nobody listening"))
    with pytest.raises(RuntimeError, match="nobody listening"):
        sim.run()


def test_defused_failed_event_is_silent():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("handled elsewhere"))
    ev.defuse()
    sim.run()  # must not raise


def test_condition_with_pre_processed_event():
    sim = Simulator()
    early = sim.timeout(1.0, "early")
    sim.run()
    late = sim.timeout(1.0, "late")

    def body():
        result = yield (early & late)
        return sorted(result.values())

    p = sim.process(body())
    assert sim.run(until=p) == ["early", "late"]


def test_condition_rejects_cross_simulator_events():
    sim1, sim2 = Simulator(), Simulator()
    t1 = sim1.timeout(1.0)
    t2 = sim2.timeout(1.0)
    with pytest.raises(SimulationError):
        _ = t1 & t2


def test_event_repr_states():
    sim = Simulator()
    ev = sim.event()
    assert "pending" in repr(ev)
    ev.succeed()
    assert "triggered" in repr(ev)
    sim.run()
    assert "processed" in repr(ev)
