"""Sharded coordination: routing, cross-shard protocol, and equivalence.

Three layers of guarantees:

* **Transparency** — a single-shard :class:`ShardRouter` is a pure
  pass-through: randomized workloads and committed figure scenarios must
  be decision-log- and completion-time-identical to the plain arbiter.
* **Partitioned platforms** — server groups, per-partition file systems,
  stable path routing, and partition-aware workload placement.
* **Cross-shard protocol** — the ordered-lock two-phase grant: span
  accesses hold every involved shard, survive per-shard preemption, and
  clean up when withdrawn mid-acquisition.
"""

import numpy as np
import pytest

from repro.core import (
    AccessDescriptor, AccessState, Arbiter, CalciomRuntime, ShardRouter,
)
from repro.experiments import (
    ExperimentEngine, ExperimentSpec, WorkloadSpec, build_scenario,
)
from repro.mpisim import Contiguous
from repro.perf import PerfCounters
from repro.platforms import Platform, PlatformConfig
from repro.simcore import SimulationError, Simulator


def desc(app, nprocs=10, t_alone=5.0, total=1e6, partitions=(0,)):
    return AccessDescriptor(app=app, nprocs=nprocs, total_bytes=total,
                            t_alone=t_alone, partitions=tuple(partitions))


def partitioned_config(npartitions=4, nservers=8, **overrides):
    cfg = PlatformConfig(name=f"part-{npartitions}", nservers=nservers,
                         disk_bandwidth=100e6, per_core_bandwidth=10e6,
                         stripe_size=1 << 20, latency=1e-5,
                         pool_servers=False, npartitions=npartitions)
    return cfg.with_(**overrides) if overrides else cfg


# -- transparency: one shard == the arbiter -----------------------------------

def test_randomized_traces_single_shard_equals_arbiter():
    """Random schedules: router(1) and Arbiter must be bit-identical."""
    def drive(sharded, seed):
        rng = np.random.default_rng(seed)
        napps = 24
        starts = rng.uniform(0.0, 3.0, size=napps)
        holds = rng.uniform(0.1, 1.0, size=napps)
        phases = rng.integers(1, 4, size=napps)
        sim = Simulator()
        if sharded:
            coord = ShardRouter(sim, 1, "dynamic", grant_latency=1e-3)
        else:
            coord = Arbiter(sim, "dynamic", grant_latency=1e-3)

        def app(i):
            name = f"app{i:02d}"
            yield sim.timeout(float(starts[i]))
            for _ in range(int(phases[i])):
                d = desc(name, nprocs=int(rng.integers(1, 64)),
                         t_alone=float(holds[i]))
                ok = yield coord.submit_inform(d)
                if not ok:
                    yield coord.authorization_event(name)
                yield sim.timeout(float(holds[i]) / 2)
                coord.submit_release(name, d.total_bytes / 2)
                yield sim.timeout(float(holds[i]) / 2)
                coord.on_complete(name)

        for i in range(napps):
            sim.process(app(i))
        sim.run()
        return list(coord.decision_log), sim.now

    for seed in (3, 11, 2014):
        log_s, end_s = drive(True, seed)
        log_a, end_a = drive(False, seed)
        assert log_s == log_a, f"seed {seed}: decision logs diverged"
        assert end_s == end_a, f"seed {seed}: end times diverged"


@pytest.mark.parametrize("name,kwargs", [
    ("three-way-contention", dict(strategy="dynamic")),
    ("rennes-big-small", dict(dt=2.0, strategy="fcfs")),
    ("many-writers", dict(napps=20, nservers=4, phases=2,
                          strategy="dynamic")),
])
def test_figure_scenarios_shards1_identical(name, kwargs):
    """spec.arbiter={'shards': 1} must not change any committed scenario."""
    engine = ExperimentEngine()
    specs = build_scenario(name, **kwargs)
    spec = specs[0]
    base = engine.run(spec)
    sharded = engine.run(spec.with_(
        arbiter={**spec.arbiter, "shards": 1}))
    assert sharded.decisions == base.decisions
    assert sharded.makespan == base.makespan
    for app, rec in base.records.items():
        assert sharded.records[app].write_times == rec.write_times


def test_sharded_writers_shards1_equals_machine_wide_arbiter():
    """On a *partitioned* machine, shards=1 is the single-arbiter baseline
    and must serialize exactly like one machine-wide decision point."""
    engine = ExperimentEngine()
    spec, = build_scenario("sharded-writers", napps=16, npartitions=4,
                           nservers=8, phases=2, strategy="fcfs", shards=1)
    result = engine.run(spec)
    # One arbiter: no two applications are ever authorized concurrently
    # under FCFS, so every grant happens against an empty active set.
    assert all(len(r.active) == 0 or r.action.name != "GO"
               for r in result.decisions)
    assert not any("_shard" in key for key in result.perf)


# -- partitioned platforms ----------------------------------------------------

def test_platform_builds_partition_groups():
    platform = Platform(partitioned_config(npartitions=4, nservers=10))
    assert [len(pfs.servers) for pfs in platform.partitions] == [3, 3, 2, 2]
    assert platform.config.partition_sizes == (3, 3, 2, 2)
    assert len(platform.servers) == 10
    # Server names stay the historical dense sequence.
    assert [s.name for s in platform.servers] == \
        [f"server{i}" for i in range(10)]
    assert platform.config.partition_bandwidth(0) == 3 * 100e6
    assert platform.config.partition_bandwidth(3) == 2 * 100e6


def test_platform_partition_validation():
    with pytest.raises(SimulationError, match="npartitions"):
        Platform(partitioned_config(npartitions=0))
    with pytest.raises(SimulationError, match="cannot exceed"):
        Platform(partitioned_config(npartitions=9, nservers=8))


def test_single_partition_platform_unchanged():
    cfg = partitioned_config(npartitions=1)
    platform = Platform(cfg)
    assert platform.pfs is platform.partitions[0]
    assert platform.app_partitions("anything") == (0,)
    platform.pin_path("/a/f", 0)  # no-op, must not raise


def test_partitioned_pfs_routing_and_accounting():
    platform = Platform(partitioned_config(npartitions=4))
    pfs = platform.pfs
    pfs.pin("/appA/f0", 2)
    assert pfs.partition_of("/appA/f0") == 2
    with pytest.raises(SimulationError, match="already pinned"):
        pfs.pin("/appA/f0", 3)
    # Unpinned paths route by the top-level (application) directory, so
    # one app's files share a partition by default.
    assert pfs.partition_of("/appB/x") == pfs.partition_of("/appB/y")
    meta = pfs.create("/appA/f0")
    assert pfs.stat("/appA/f0") is meta
    assert "/appA/f0" in pfs.listdir()
    client = platform.add_client("c", 4)
    done = pfs.write(client, "appA", "/appA/f0", 0, 1000, weight=4)
    platform.sim.run(until=done)
    assert pfs.total_bytes_written == pytest.approx(1000.0)
    assert platform.partitions[2].total_bytes_written == pytest.approx(1000.0)
    pfs.unlink("/appA/f0")
    assert "/appA/f0" not in pfs.listdir()


def test_app_partition_placement_rules():
    platform = Platform(partitioned_config(npartitions=4))
    assert platform.app_partitions("x", (1, 3)) == (1, 3)
    assert platform.app_partitions("x", (3, 1, 3)) == (1, 3)
    assert platform.app_partitions("x", (5,)) == (1,)   # modulo wrap
    assert platform.file_partition("x", 0, (1, 3)) == 1
    assert platform.file_partition("x", 1, (1, 3)) == 3
    assert platform.file_partition("x", 2, (1, 3)) == 1
    default, = platform.app_partitions("x")
    assert platform.file_partition("x", 7) == default


def test_runtime_shard_validation_and_capacity():
    platform = Platform(partitioned_config(npartitions=4))
    with pytest.raises(SimulationError, match="shards"):
        CalciomRuntime(platform, strategy="fcfs", shards=3)
    runtime = CalciomRuntime(platform, strategy="dynamic")
    assert runtime.coordinator.nshards == 4
    for shard in runtime.coordinator.shards:
        # Each shard's dynamic strategy is capacity-bounded to its own
        # partition, not the whole machine.
        assert shard.arbiter.strategy.capacity == \
            platform.config.partition_bandwidth(shard.index)
    single = CalciomRuntime(Platform(partitioned_config(npartitions=4)),
                            strategy="dynamic", shards=1)
    assert single.arbiter.strategy.capacity == \
        platform.config.aggregate_bandwidth


def test_strategy_instance_is_copied_per_shard():
    """A Strategy *instance* must not alias per-shard configuration: each
    shard's copy gets its own partition-bounded capacity."""
    from repro.core import DynamicStrategy
    cfg = partitioned_config(npartitions=3, nservers=10)
    runtime = CalciomRuntime(Platform(cfg), strategy=DynamicStrategy())
    strategies = [s.arbiter.strategy for s in runtime.coordinator.shards]
    assert len({id(s) for s in strategies}) == 3
    assert [s.capacity for s in strategies] == \
        [cfg.partition_bandwidth(p) for p in range(3)]
    # With one shard the instance is used as-is (historical behavior).
    inst = DynamicStrategy()
    single = CalciomRuntime(Platform(cfg.with_(name="p2")), strategy=inst,
                            shards=1)
    assert single.arbiter.strategy is inst


# -- sharded semantics --------------------------------------------------------

def test_disjoint_partitions_coordinate_independently():
    """Two FCFS writers on different partitions both run at once — the
    scale-out point; a single arbiter would serialize them."""
    sim = Simulator()
    router = ShardRouter(sim, 2, "fcfs")
    assert router.on_inform(desc("a", partitions=(0,))) is True
    assert router.on_inform(desc("b", partitions=(1,))) is True
    assert router.is_authorized("a") and router.is_authorized("b")
    # Same partitions, single shard: b would have waited.
    sim2 = Simulator()
    single = ShardRouter(sim2, 1, "fcfs")
    assert single.on_inform(desc("a", partitions=(0,))) is True
    assert single.on_inform(desc("b", partitions=(1,))) is False


def test_span_access_holds_every_involved_shard():
    sim = Simulator()
    router = ShardRouter(sim, 4, "fcfs")
    result = {}

    def span():
        result["inform"] = yield router.submit_inform(
            desc("s", partitions=(1, 3)))

    sim.process(span())
    sim.run()
    assert result["inform"] is True
    assert router.is_authorized("s")
    for shard, expected in enumerate([AccessState.IDLE, AccessState.ACTIVE,
                                      AccessState.IDLE, AccessState.ACTIVE]):
        assert router.shards[shard].arbiter.state_of("s") is expected
    # Pinned writers on the held partitions queue behind the span access.
    assert router.on_inform(desc("p", partitions=(1,))) is False
    router.on_complete("s")
    sim.run()
    assert router.is_authorized("p")


def test_span_access_waits_for_busy_shard_in_order():
    """Ordered acquisition: the span app holds shard 0 while queueing on
    shard 1, and completes once the holder releases."""
    sim = Simulator()
    router = ShardRouter(sim, 2, "fcfs")
    timeline = []

    def holder():
        ok = yield router.submit_inform(desc("h", partitions=(1,)))
        timeline.append(("h", ok, sim.now))
        yield sim.timeout(2.0)
        router.on_complete("h")

    def span():
        yield sim.timeout(0.5)
        ok = yield router.submit_inform(desc("s", partitions=(0, 1)))
        timeline.append(("s-inform", ok, sim.now))
        assert router.shards[0].arbiter.state_of("s") is AccessState.ACTIVE
        assert router.shards[1].arbiter.state_of("s") is AccessState.WAITING
        assert router.state_of("s") is AccessState.WAITING
        if not ok:
            yield router.authorization_event("s")
        timeline.append(("s-granted", router.is_authorized("s"), sim.now))
        router.on_complete("s")

    sim.process(holder())
    sim.process(span())
    sim.run()
    assert timeline == [("h", True, 0.0), ("s-inform", False, 0.5),
                        ("s-granted", True, 2.0)]


def test_span_access_preempted_on_one_shard_reblocks():
    """A span app preempted on one shard loses overall authorization and
    regains it when that shard re-grants (priority over fresh waiters)."""
    sim = Simulator()
    router = ShardRouter(sim, 2, "interrupt")
    log = []

    def span():
        ok = yield router.submit_inform(desc("s", partitions=(0, 1)))
        assert ok
        yield sim.timeout(1.0)   # guarded step in progress
        # Preempted on shard 1 only by now: next step must re-block.
        log.append(("mid", router.is_authorized("s"),
                    router.state_of("s"), sim.now))
        yield router.authorization_event("s")
        log.append(("regranted", router.is_authorized("s"), sim.now))
        router.on_complete("s")

    def intruder():
        yield sim.timeout(0.5)
        ok = yield router.submit_inform(desc("b", partitions=(1,)))
        assert ok   # INTERRUPT preempts s on shard 1 only
        assert router.shards[1].arbiter.state_of("s") is AccessState.PREEMPTED
        assert router.shards[0].arbiter.state_of("s") is AccessState.ACTIVE
        yield sim.timeout(1.0)
        router.on_complete("b")

    sim.process(span())
    sim.process(intruder())
    sim.run()
    assert log[0][:3] == ("mid", False, AccessState.PREEMPTED)
    assert log[1] == ("regranted", True, 1.5)


def test_withdraw_mid_two_phase_grant_releases_held_shards():
    """Withdrawing while holding shard 0 and queueing on shard 1 must free
    shard 0 and leave no ghost entry on shard 1."""
    sim = Simulator()
    router = ShardRouter(sim, 2, "fcfs")

    def holder():
        yield router.submit_inform(desc("h", partitions=(1,)))
        yield sim.timeout(3.0)
        router.on_complete("h")

    def span():
        yield sim.timeout(0.5)
        ok = yield router.submit_inform(desc("s", partitions=(0, 1)))
        assert not ok   # holds shard 0, queued on shard 1

    def withdraw_then_rival():
        yield sim.timeout(1.0)
        router.withdraw("s")
        assert router.shards[0].arbiter.state_of("s") is AccessState.IDLE
        assert router.shards[1].arbiter.state_of("s") is AccessState.IDLE
        # Shard 0 is free again for a pinned writer.
        assert router.on_inform(desc("w0", partitions=(0,))) is True
        # Shard 1's queue no longer holds s: the next grant goes to w1.
        assert router.on_inform(desc("w1", partitions=(1,))) is False

    sim.process(holder())
    sim.process(span())
    sim.process(withdraw_then_rival())
    sim.run()
    assert router.is_authorized("w1")
    assert router.state_of("s") is AccessState.IDLE


def test_merged_decision_log_is_time_ordered():
    sim = Simulator()
    router = ShardRouter(sim, 2, "fcfs")

    def app(name, at, partition):
        yield sim.timeout(at)
        yield router.submit_inform(desc(name, partitions=(partition,)))

    sim.process(app("a", 1.0, 1))
    sim.process(app("b", 2.0, 0))
    sim.process(app("c", 3.0, 1))
    sim.run()
    merged = router.decision_log
    assert [r.app for r in merged] == ["a", "b", "c"]
    assert [r.time for r in merged] == [1.0, 2.0, 3.0]


def test_per_shard_perf_counters():
    perf = PerfCounters()
    sim = Simulator()
    router = ShardRouter(sim, 2, "fcfs", perf=perf)
    router.on_inform(desc("a", partitions=(0,)))
    router.on_inform(desc("b", partitions=(1,)))
    router.on_inform(desc("c", partitions=(1,)))
    counts = perf.as_dict()
    assert counts["coord_decisions"] == 3            # machine-wide total
    assert counts["coord_decisions_shard0"] == 1
    assert counts["coord_decisions_shard1"] == 2


# -- engine / spec / scenario wiring ------------------------------------------

def test_workload_partitions_round_trip():
    w = WorkloadSpec(name="w", nprocs=4, pattern=Contiguous(block_size=1000),
                     partitions=(0, 2))
    spec = ExperimentSpec(platform=partitioned_config(npartitions=4),
                          workloads=(w,), strategy="fcfs",
                          arbiter={"shards": 4})
    clone = ExperimentSpec.from_json(spec.to_json())
    assert clone == spec
    assert clone.workloads[0].partitions == (0, 2)
    assert clone.platform.npartitions == 4


def test_cross_partition_scenario_runs_span_accesses():
    engine = ExperimentEngine()
    spec, = build_scenario("cross-partition", napps=8, npartitions=4,
                           nservers=8, strategy="fcfs")
    nspan = sum(1 for w in spec.workloads
                if w.partitions and len(w.partitions) > 1)
    assert nspan == spec.meta["nspan"] > 0
    result = engine.run(spec)
    assert result.makespan > 0
    # Every app finished all its phases.
    for name, rec in result.records.items():
        assert len(rec.write_times) == spec.workload(name).iterations
    # Decisions landed on more than one shard.
    shard_keys = {k for k in result.perf
                  if k.startswith("coord_decisions_shard")}
    assert len(shard_keys) > 1


def test_sharded_writers_scales_out_makespan():
    """Same offered workload: per-partition arbiters beat one arbiter."""
    engine = ExperimentEngine()
    sharded, = build_scenario("sharded-writers", napps=16, npartitions=4,
                              nservers=8, phases=2, strategy="fcfs")
    single = sharded.with_(arbiter={**sharded.arbiter, "shards": 1})
    r_sharded = engine.run(sharded)
    r_single = engine.run(single)
    assert len(r_sharded.decisions) == len(r_single.decisions)
    assert r_sharded.makespan <= r_single.makespan


def test_sharding_works_with_unbatched_oracle_arbiters():
    engine = ExperimentEngine()
    spec, = build_scenario("sharded-writers", napps=12, npartitions=4,
                           nservers=8, phases=2, strategy="fcfs")
    batched = engine.run(spec)
    unbatched = engine.run(spec.with_(
        arbiter={**spec.arbiter, "batched": False}))
    assert batched.decisions == unbatched.decisions
    assert batched.makespan == unbatched.makespan
