"""Simulated machine configurations ("platforms").

A :class:`Platform` bundles a simulator, a fabric, storage servers, and a
parallel file system, and hands out client endpoints for applications.  The
presets model the paper's three testbeds.  Calibration note — the paper
never publishes raw hardware bandwidths, so the presets are fitted to the
*measured anchors* the paper does report:

* ``grid5000_nancy`` (Figs 2-4): 35 PVFS servers; two 336-process apps
  writing 16 MB/process take ~8.5 s alone (Fig 2), and an 8-core app loses
  ~6x throughput against a 336-core app (Fig 4).  Fitting both gives
  ~18 MB/s per server and ~11 MB/s per process (per-process share of the
  client side).  The Fig 3 variant enables the kernel write-back cache.
* ``grid5000_rennes`` (Figs 6, 9): 12 OrangeFS servers, caching disabled
  (as the authors did); per-process bandwidth is set so a 24-process app
  facing a 744-process app peaks at an interference factor near the
  paper's ~14 (ratio aggregate/per-core ≈ 55).
* ``surveyor`` (Figs 7, 8, 10-12): 4 PVFS servers; 2048-core apps saturate
  the file system (strong interference, Fig 7a) while 1024-core apps
  demand only ~0.8x of it (weak interference, Fig 7b) — per-core bandwidth
  4 MB/s against a 5 GB/s aggregate reproduces both regimes and the ~13 s
  standalone write of Fig 7a.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .network import Fabric
from .perf import PerfCounters
from .simcore import FlowNetwork, SimulationError, Simulator
from .storage import Disk, ParallelFileSystem, PartitionedFileSystem, StorageServer
from .storage.partitioned import default_partition

__all__ = ["PlatformConfig", "Platform", "surveyor", "grid5000_nancy",
           "grid5000_rennes"]

#: A workload's declared partition placement (see Platform.app_partitions).
_OptionalPartitions = Optional[Sequence[int]]


@dataclass(frozen=True)
class PlatformConfig:
    """Everything needed to instantiate a simulated machine."""

    name: str
    nservers: int
    disk_bandwidth: float            #: per-server drain rate, B/s
    per_core_bandwidth: float        #: client-side bandwidth per process, B/s
    server_link_bandwidth: float = math.inf  #: fabric edge to each server, B/s
    cache_bandwidth: Optional[float] = None  #: per-server cache speed (None = off)
    cache_capacity: Optional[float] = None   #: per-server dirty-pool bytes
    stripe_size: int = 64 * 1024
    latency: float = 50e-6           #: one-way message latency, s
    scheduler: str = "shared"        #: server admission policy
    seek_penalty: float = 0.0
    #: Per-process MPI (intra-application) bandwidth used by collective cost
    #: models, B/s.  ``None`` means equal to ``per_core_bandwidth`` — the
    #: BG/P regime, where the torus and the I/O path are comparable (hence
    #: Fig 8b's ~40%% communication phases).  Commodity IB clusters with a
    #: small file system (the Grid'5000 presets) set this ~10x higher: the
    #: fabric is far faster than the 18 MB/s-per-server PVFS deployment.
    mpi_per_core_bandwidth: Optional[float] = None
    #: Model the ``nservers`` data servers as one pooled server with their
    #: aggregate bandwidth.  Under uniform striping the per-server flows of
    #: an application are symmetric, so pooling is physics-preserving while
    #: cutting the live flow count (and simulation time) by ``nservers``x.
    #: Disable for experiments that need per-server behaviour (scheduler
    #: ablations, non-uniform access).
    pool_servers: bool = True
    #: Bandwidth allocator: ``"incremental"`` (default — dirty-component
    #: reallocation with cached bottleneck orders and the per-component
    #: wake-heap pool, see :mod:`repro.simcore.fairshare`),
    #: ``"vectorized"`` (structure-of-arrays components priced with numpy
    #: array operations, see :mod:`repro.simcore.fairshare_vec` — the
    #: 10^5-10^6-flow regime; completion ordering identical to
    #: ``"incremental"``, rates exact where the scan order is
    #: deterministic and ulp-bounded otherwise),
    #: ``"incremental-flat"`` (the PR-2 regime: dirty-component refills
    #: with from-scratch filling and one machine-wide heap — the scale
    #: benchmark's baseline) or ``"global"`` (the retained reference
    #: oracle that re-prices every flow on every change; identical rates,
    #: slower).
    allocator: str = "incremental"
    #: Fill-cache cutover for the ``"incremental"`` allocator: ``None``
    #: (default) learns it per component from observed replay hit rates;
    #: an ``int`` pins the historical fixed flow-count threshold (``8``
    #: reproduces the pre-adaptive behaviour).  Rates are bit-identical
    #: under any setting — the policy only picks how refills compute.
    fill_cache_min_flows: Optional[int] = None
    #: File-system partitions: the ``nservers`` data servers are split into
    #: this many disjoint groups, each running its own
    #: :class:`~repro.storage.ParallelFileSystem` (sizes as even as
    #: possible, partition-major server order).  ``1`` (the default, and
    #: every paper testbed) keeps the single machine-wide file system.
    #: Partitions are what arbiter shards own — see
    #: :mod:`repro.core.sharding`.
    npartitions: int = 1
    #: Simulator queue backend: ``None`` (default) defers to the
    #: ``REPRO_SIM_QUEUE`` environment variable (itself defaulting to
    #: ``"heap"``); ``"heap"``, ``"calendar"`` or ``"oracle"`` pin one.
    #: All backends dispatch in the same (time, insertion id) order, so
    #: results are bit-identical — this is purely a performance knob.
    sim_queue: Optional[str] = None
    description: str = ""

    @property
    def mpi_bandwidth_per_core(self) -> float:
        """Resolved per-process MPI bandwidth (see field docs)."""
        if self.mpi_per_core_bandwidth is not None:
            return self.mpi_per_core_bandwidth
        return self.per_core_bandwidth

    @property
    def server_ingest_bandwidth(self) -> float:
        """Peak ingest of one data server (cache speed when enabled,
        bounded by its fabric edge), B/s."""
        per_server = self.disk_bandwidth if self.cache_bandwidth is None \
            else self.cache_bandwidth
        return min(per_server, self.server_link_bandwidth)

    @property
    def aggregate_bandwidth(self) -> float:
        """Peak file-system ingest with all servers streaming, B/s."""
        return self.nservers * self.server_ingest_bandwidth

    @property
    def aggregate_disk_bandwidth(self) -> float:
        """Sustained (post-cache) drain bandwidth, B/s."""
        return self.nservers * min(self.disk_bandwidth, self.server_link_bandwidth)

    @property
    def partition_sizes(self) -> Tuple[int, ...]:
        """Data servers per partition (as even as possible, extras first)."""
        base, extra = divmod(self.nservers, self.npartitions)
        return tuple(base + (1 if p < extra else 0)
                     for p in range(self.npartitions))

    def partition_bandwidth(self, partition: int) -> float:
        """Peak ingest of one partition's server group, B/s."""
        return self.partition_sizes[partition] * self.server_ingest_bandwidth

    def with_(self, **changes) -> "PlatformConfig":
        """A modified copy (e.g. ``cfg.with_(scheduler='fifo')``)."""
        return replace(self, **changes)


class Platform:
    """An instantiated machine: simulator + fabric + PFS + client registry."""

    def __init__(self, config: PlatformConfig):
        if config.allocator not in ("incremental", "vectorized",
                                    "incremental-flat", "global"):
            raise SimulationError(
                f"allocator must be 'incremental', 'vectorized', "
                f"'incremental-flat' or 'global', got {config.allocator!r}"
            )
        if config.npartitions < 1:
            raise SimulationError(
                f"npartitions must be >= 1, got {config.npartitions}")
        if config.npartitions > config.nservers:
            raise SimulationError(
                f"npartitions ({config.npartitions}) cannot exceed "
                f"nservers ({config.nservers})")
        self.config = config
        self.perf = PerfCounters()
        self.sim = Simulator(perf=self.perf, queue=config.sim_queue)
        self.net = FlowNetwork(
            self.sim,
            incremental=(config.allocator != "global"),
            perf=self.perf,
            fill_cache=(config.allocator == "incremental"),
            heap_pool=(config.allocator == "incremental"),
            vectorized=(config.allocator == "vectorized"),
            fill_cache_min_flows=config.fill_cache_min_flows,
        )
        self.fabric = Fabric(self.sim, self.net, latency=config.latency)
        self.fabric.add_switch("switch")
        self.servers = []
        #: One :class:`~repro.storage.ParallelFileSystem` per partition
        #: (disjoint server groups).  With one partition this is the whole
        #: machine and ``self.pfs`` *is* ``partitions[0]``.
        self.partitions: List[ParallelFileSystem] = []
        index = 0
        for psize in config.partition_sizes:
            group = []
            n_physical = 1 if config.pool_servers else psize
            scale = psize if config.pool_servers else 1
            for _ in range(n_physical):
                server = StorageServer(
                    self.sim, self.net, self.fabric, name=f"server{index}",
                    disk=Disk(scale * config.disk_bandwidth,
                              config.seek_penalty),
                    cache_bandwidth=(None if config.cache_bandwidth is None
                                     else scale * config.cache_bandwidth),
                    cache_capacity=(None if config.cache_capacity is None
                                    else scale * config.cache_capacity),
                    scheduler=config.scheduler,
                )
                index += 1
                link_bw = config.server_link_bandwidth
                if math.isinf(link_bw):
                    # The fabric needs a finite edge; make it non-binding.
                    link_bw = 1e3 * max(
                        config.disk_bandwidth, config.cache_bandwidth or 0.0
                    )
                self.fabric.add_edge("switch", server.name, scale * link_bw)
                group.append(server)
                self.servers.append(server)
            self.partitions.append(ParallelFileSystem(
                self.sim, self.fabric, group,
                stripe_size=config.stripe_size))
        #: The client-facing file system: the partition itself on
        #: single-partition machines (bit-identical to the historical
        #: layout), a path-routing facade across partitions otherwise.
        self.pfs: Union[ParallelFileSystem, PartitionedFileSystem]
        if config.npartitions == 1:
            self.pfs = self.partitions[0]
        else:
            self.pfs = PartitionedFileSystem(self.sim, self.partitions)
        self._clients: Dict[str, int] = {}

    # -- clients ---------------------------------------------------------------
    def add_client(self, name: str, nprocs: int) -> str:
        """Register an application's compute allocation as a fabric endpoint.

        The endpoint's uplink carries the aggregate client-side bandwidth of
        ``nprocs`` processes.  Returns the endpoint name (== ``name``).
        """
        if name in self._clients:
            raise SimulationError(f"client {name!r} already registered")
        if nprocs < 1:
            raise SimulationError(f"nprocs must be >= 1, got {nprocs}")
        self.fabric.add_endpoint(name)
        self.fabric.add_edge(name, "switch",
                             nprocs * self.config.per_core_bandwidth)
        self._clients[name] = nprocs
        return name

    def client_bandwidth(self, name: str) -> float:
        """Registered aggregate uplink bandwidth of a client, B/s."""
        return self._clients[name] * self.config.per_core_bandwidth

    # -- partitions --------------------------------------------------------
    @property
    def npartitions(self) -> int:
        return self.config.npartitions

    def app_partitions(self, name: str,
                       requested: _OptionalPartitions = None
                       ) -> Tuple[int, ...]:
        """The partition footprint of an application's accesses.

        ``requested`` is the workload's declared placement (a sequence of
        partition indices; file *f* of a phase lands on entry ``f % len``);
        ``None`` pins the whole application to its stable default partition
        — the same hash rule :class:`~repro.storage.PartitionedFileSystem`
        routes unpinned paths by, so coordination routing and data
        placement agree by construction.
        """
        nparts = self.config.npartitions
        if requested:
            return tuple(sorted({int(p) % nparts for p in requested}))
        return (default_partition(name, nparts),)

    def file_partition(self, name: str, findex: int,
                       requested: _OptionalPartitions = None) -> int:
        """The partition holding file ``findex`` of one of ``name``'s phases."""
        nparts = self.config.npartitions
        if requested:
            return int(requested[findex % len(requested)]) % nparts
        return default_partition(name, nparts)

    def pin_path(self, path: str, partition: int) -> None:
        """Pin a file path to a partition (no-op on unpartitioned machines)."""
        if self.config.npartitions > 1:
            self.pfs.pin(path, partition)

    # -- analytics ---------------------------------------------------------------
    def standalone_write_time(self, nprocs: int, total_bytes: float) -> float:
        """Closed-form time for an uncontended contiguous write.

        The binding constraint is either the client uplink or the aggregate
        file-system ingest; latency is ignored (negligible at these sizes).
        Used by the expected-interference model and by CALCioM's estimates.
        """
        bw = min(nprocs * self.config.per_core_bandwidth,
                 self.config.aggregate_bandwidth)
        return total_bytes / bw

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Platform {self.config.name!r} servers={self.config.nservers}>"


# ---------------------------------------------------------------------------
# Presets (see module docstring for the calibration anchors)
# ---------------------------------------------------------------------------

_MB = 1e6


def surveyor(**overrides) -> PlatformConfig:
    """Argonne BG/P Surveyor: 4096 cores, 4-server PVFS2."""
    cfg = PlatformConfig(
        name="surveyor",
        nservers=4,
        disk_bandwidth=1250 * _MB,
        per_core_bandwidth=4 * _MB,
        stripe_size=4 * 1024 * 1024,
        latency=30e-6,
        description="BlueGene/P rack, 4-node PVFS2, 2048-core apps saturate",
    )
    return cfg.with_(**overrides) if overrides else cfg


def grid5000_nancy(cache: bool = False, **overrides) -> PlatformConfig:
    """Grid'5000 Nancy: 35 PVFS servers over InfiniBand (Figs 2-4).

    ``cache=True`` enables the kernel write-back cache configuration of
    Fig 3 (the authors otherwise disabled caching).
    """
    cfg = PlatformConfig(
        name="grid5000-nancy" + ("-cached" if cache else ""),
        nservers=35,
        # The cached (Fig 3) variant models a slow ext3 local-disk backend
        # behind a memory-speed kernel cache: the ~7x cache/disk speed ratio
        # bounds the collision collapse, and the dirty pool is sized so one
        # application's periodic write fits while two colliding ones
        # overflow it (and drain within a period, so clean iterations
        # recover — the paper's alternating pattern).
        disk_bandwidth=8.15 * _MB if cache else 18 * _MB,
        per_core_bandwidth=11 * _MB,
        cache_bandwidth=57 * _MB if cache else None,
        cache_capacity=37 * _MB if cache else None,
        mpi_per_core_bandwidth=110 * _MB,
        stripe_size=64 * 1024,
        latency=20e-6,
        description="35-node PVFS on IB; 336-proc writers; Fig 2-4 anchor",
    )
    return cfg.with_(**overrides) if overrides else cfg


def grid5000_rennes(**overrides) -> PlatformConfig:
    """Grid'5000 Rennes: 12-server OrangeFS, caching disabled (Figs 6, 9)."""
    cfg = PlatformConfig(
        name="grid5000-rennes",
        nservers=12,
        disk_bandwidth=50 * _MB,
        per_core_bandwidth=10.9 * _MB,
        mpi_per_core_bandwidth=109 * _MB,
        stripe_size=64 * 1024,
        latency=20e-6,
        description="parapluie/parapide OrangeFS; 768 cores split A/B",
    )
    return cfg.with_(**overrides) if overrides else cfg
