"""The ADIO layer: where collective writes meet the file system — and CALCioM.

ROMIO's ADIO is the abstract device layer under MPI-IO; the paper's authors
implemented "a custom, CALCioM-enabled ADIO layer for ROMIO" whose
``Inform/Release`` calls surround "each atomic call to independent
contiguous writes".  This module mirrors that: :class:`ADIOLayer` executes
collective-buffering plans against the simulated PFS and invokes an
:class:`IOGuard` at a configurable *grain*:

* ``grain="round"`` — guard brackets every collective-buffering round (the
  authors' ADIO-level placement; finest interruption latency);
* ``grain="file"`` — guard brackets a whole file write (the application
  -level placement that produces Fig 10's "saw" pattern);
* ``grain=None`` — no hooks (callers manage guarding themselves, e.g. for
  phase-level placement around multiple files).

The guard interface is deliberately tiny so that both the no-op baseline
(:class:`NullGuard`) and the CALCioM session satisfy it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

from ..simcore import Simulator
from ..storage import ParallelFileSystem
from .communicator import Communicator
from .datatypes import AccessPattern
from .info import MPIInfo
from .sieving import SievePlan, plan_data_sieving
from .twophase import CollectivePlan, plan_collective_write

__all__ = ["IOGuard", "NullGuard", "ADIOLayer", "WriteStats"]


class IOGuard:
    """Hook protocol invoked around guarded I/O steps.

    ``prepare``/``complete`` push and pop knowledge about a larger enclosing
    operation; ``begin_access``/``end_access`` are generators (they may cost
    simulated time for coordination messages, or block while another
    application holds the file system).
    """

    def prepare(self, info: MPIInfo) -> None:
        """Stack information describing upcoming accesses."""

    def complete(self) -> None:
        """Unstack the most recent :meth:`prepare` info."""

    def begin_access(self, step_info: Optional[MPIInfo] = None
                     ) -> Generator[Any, Any, None]:
        """Announce an imminent access; returns once authorized."""
        raise NotImplementedError

    def end_access(self) -> Generator[Any, Any, None]:
        """Declare the access finished; lets others re-evaluate strategy."""
        raise NotImplementedError


class NullGuard(IOGuard):
    """The interfering baseline: no coordination, no cost."""

    def begin_access(self, step_info: Optional[MPIInfo] = None):
        return
        yield  # pragma: no cover - makes this a generator function

    def end_access(self):
        return
        yield  # pragma: no cover


@dataclass
class WriteStats:
    """Timing breakdown of one ADIO write operation."""

    path: str
    bytes: int
    nrounds: int
    start: float
    end: float = 0.0
    comm_time: float = 0.0    #: total communication-phase time
    write_time: float = 0.0   #: total write-phase time
    wait_time: float = 0.0    #: time spent blocked in the guard
    round_marks: List[float] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Wall-clock time of the whole operation."""
        return self.end - self.start


class ADIOLayer:
    """Executes MPI-IO operations for one application against the PFS.

    Parameters
    ----------
    sim, pfs:
        Kernel objects.
    client:
        The application's fabric endpoint (from
        :meth:`~repro.platforms.Platform.add_client`).
    app:
        Application name (request labels, server-side weights).
    comm:
        The application's communicator (shuffle-phase cost model).
    cb_buffer_size, naggregators, procs_per_node:
        Collective-buffering configuration (see
        :func:`~repro.mpisim.twophase.plan_collective_write`).
    guard:
        The CALCioM session, or :class:`NullGuard` for the baseline.
    """

    def __init__(self, sim: Simulator, pfs: ParallelFileSystem, client: str,
                 app: str, comm: Communicator,
                 cb_buffer_size: int = 4 * 1024 * 1024,
                 naggregators: Optional[int] = None,
                 procs_per_node: int = 1,
                 guard: Optional[IOGuard] = None):
        self.sim = sim
        self.pfs = pfs
        self.client = client
        self.app = app
        self.comm = comm
        self.cb_buffer_size = int(cb_buffer_size)
        self.naggregators = naggregators
        self.procs_per_node = int(procs_per_node)
        self.guard = guard if guard is not None else NullGuard()
        self.history: List[WriteStats] = []

    # -- operations -------------------------------------------------------------
    def plan(self, pattern: AccessPattern, base_offset: int = 0) -> CollectivePlan:
        """The round plan a collective write of ``pattern`` would execute."""
        return plan_collective_write(
            pattern, self.comm.nprocs,
            cb_buffer_size=self.cb_buffer_size,
            naggregators=self.naggregators,
            procs_per_node=self.procs_per_node,
            base_offset=base_offset,
        )

    def write_collective(self, path: str, pattern: AccessPattern,
                         grain: Optional[str] = "round",
                         base_offset: int = 0):
        """Collective write (MPI_File_write_all analogue).  Generator.

        Use as ``stats = yield from adio.write_collective(...)`` inside a
        simulation process.  Returns :class:`WriteStats`.
        """
        if grain not in (None, "round", "file"):
            raise ValueError(f"grain must be None, 'round' or 'file', got {grain!r}")
        plan = self.plan(pattern, base_offset)
        stats = WriteStats(path=path, bytes=plan.total_bytes,
                           nrounds=plan.nrounds, start=self.sim.now)
        op_info = MPIInfo(
            app=self.app, nprocs=self.comm.nprocs, files=1,
            total_bytes=plan.total_bytes, rounds=plan.nrounds,
            bytes_per_round=plan.rounds[0].write_bytes if plan.rounds else 0,
        )
        self.guard.prepare(op_info)
        if grain == "file":
            t0 = self.sim.now
            yield from self.guard.begin_access(op_info)
            stats.wait_time += self.sim.now - t0
        try:
            for rnd in plan.rounds:
                if rnd.shuffle_bytes > 0:
                    t0 = self.sim.now
                    yield self.comm.shuffle(rnd.shuffle_bytes)
                    stats.comm_time += self.sim.now - t0
                if grain == "round":
                    t0 = self.sim.now
                    yield from self.guard.begin_access(MPIInfo(
                        app=self.app, nprocs=self.comm.nprocs,
                        round=rnd.index,
                    ))
                    stats.wait_time += self.sim.now - t0
                t0 = self.sim.now
                yield self.pfs.write(self.client, self.app, path,
                                     rnd.offset, rnd.write_bytes,
                                     weight=self.comm.nprocs)
                stats.write_time += self.sim.now - t0
                stats.round_marks.append(self.sim.now)
                if grain == "round":
                    yield from self.guard.end_access()
            if grain == "file":
                yield from self.guard.end_access()
        finally:
            self.guard.complete()
        stats.end = self.sim.now
        self.history.append(stats)
        return stats

    def write_independent(self, path: str, nbytes: int, offset: int = 0,
                          guarded: bool = True):
        """Independent contiguous write (no collective buffering).  Generator.

        One aggregate request per server, weight = process count.  Returns
        :class:`WriteStats` (with zero comm time and a single round).
        """
        stats = WriteStats(path=path, bytes=nbytes, nrounds=1,
                           start=self.sim.now)
        info = MPIInfo(app=self.app, nprocs=self.comm.nprocs, files=1,
                       total_bytes=nbytes, rounds=1, bytes_per_round=nbytes)
        if guarded:
            self.guard.prepare(info)
            t0 = self.sim.now
            yield from self.guard.begin_access(info)
            stats.wait_time += self.sim.now - t0
        try:
            t0 = self.sim.now
            yield self.pfs.write(self.client, self.app, path, offset, nbytes,
                                 weight=self.comm.nprocs)
            stats.write_time += self.sim.now - t0
            if guarded:
                yield from self.guard.end_access()
        finally:
            if guarded:
                self.guard.complete()
        stats.end = self.sim.now
        self.history.append(stats)
        return stats

    def read_collective(self, path: str, pattern: AccessPattern,
                        grain: Optional[str] = "round",
                        base_offset: int = 0):
        """Collective read (MPI_File_read_all analogue).  Generator.

        The mirror of :meth:`write_collective`: per round, aggregators
        issue one large contiguous read, then scatter the pieces to their
        owners over the compute fabric.  Returns :class:`WriteStats` (the
        same breakdown applies; ``write_time`` holds the read-phase time).
        """
        if grain not in (None, "round", "file"):
            raise ValueError(f"grain must be None, 'round' or 'file', got {grain!r}")
        plan = self.plan(pattern, base_offset)
        stats = WriteStats(path=path, bytes=plan.total_bytes,
                           nrounds=plan.nrounds, start=self.sim.now)
        op_info = MPIInfo(
            app=self.app, nprocs=self.comm.nprocs, files=1,
            total_bytes=plan.total_bytes, rounds=plan.nrounds,
            kind="read",
        )
        self.guard.prepare(op_info)
        if grain == "file":
            t0 = self.sim.now
            yield from self.guard.begin_access(op_info)
            stats.wait_time += self.sim.now - t0
        try:
            for rnd in plan.rounds:
                if grain == "round":
                    t0 = self.sim.now
                    yield from self.guard.begin_access(MPIInfo(
                        app=self.app, nprocs=self.comm.nprocs,
                        round=rnd.index,
                    ))
                    stats.wait_time += self.sim.now - t0
                t0 = self.sim.now
                yield self.pfs.read(self.client, self.app, path,
                                    rnd.offset, rnd.write_bytes,
                                    weight=self.comm.nprocs)
                stats.write_time += self.sim.now - t0
                stats.round_marks.append(self.sim.now)
                if grain == "round":
                    yield from self.guard.end_access()
                if rnd.shuffle_bytes > 0:
                    # Scatter phase follows the read of each round.
                    t0 = self.sim.now
                    yield self.comm.shuffle(rnd.shuffle_bytes)
                    stats.comm_time += self.sim.now - t0
            if grain == "file":
                yield from self.guard.end_access()
        finally:
            self.guard.complete()
        stats.end = self.sim.now
        self.history.append(stats)
        return stats

    def plan_sieved(self, pattern: AccessPattern,
                    buffer_size: Optional[int] = None,
                    base_offset: int = 0) -> SievePlan:
        """The per-process data-sieving plan for an independent access."""
        return plan_data_sieving(
            pattern, self.comm.nprocs,
            buffer_size=buffer_size or self.cb_buffer_size,
            base_offset=base_offset,
        )

    def write_independent_sieved(self, path: str, pattern: AccessPattern,
                                 buffer_size: Optional[int] = None,
                                 base_offset: int = 0,
                                 guarded: bool = True):
        """Independent write through data sieving.  Generator.

        Executes the aggregate traffic of all processes sieving in
        parallel: each buffer window becomes a read-modify-write pair of
        aggregate requests (weight = process count).  Cheap for contiguous
        patterns; for strided ones this moves ``~2 x nprocs`` times the
        payload — the optimization whose economics interference inverts.
        """
        plan = self.plan_sieved(pattern, buffer_size, base_offset)
        stats = WriteStats(path=path,
                           bytes=pattern.total_bytes(self.comm.nprocs),
                           nrounds=plan.nrequests, start=self.sim.now)
        info = MPIInfo(app=self.app, nprocs=self.comm.nprocs, files=1,
                       total_bytes=plan.aggregate_transferred,
                       rounds=plan.nrequests)
        if guarded:
            self.guard.prepare(info)
            t0 = self.sim.now
            yield from self.guard.begin_access(info)
            stats.wait_time += self.sim.now - t0
        try:
            # The plan is per process; all nprocs processes sieve the same
            # region concurrently.  Model the aggregate traffic by scaling
            # both volume and addressing by nprocs (under uniform striping
            # the layout fiction is free; the byte volume is what counts).
            # Reads need backing bytes (holes read as allocated space in
            # PVFS), so extend the file over the scaled extent first.
            scale = self.comm.nprocs
            extent = sum(n for _o, n, w in plan.operations if w)
            self.pfs.open(path).extend(base_offset * scale, extent * scale)
            for offset, nbytes, is_write in plan.operations:
                agg_offset = offset * scale
                aggregate = nbytes * scale
                t0 = self.sim.now
                if is_write:
                    yield self.pfs.write(self.client, self.app, path,
                                         agg_offset, aggregate,
                                         weight=self.comm.nprocs)
                else:
                    yield self.pfs.read(self.client, self.app, path,
                                        agg_offset, aggregate,
                                        weight=self.comm.nprocs)
                stats.write_time += self.sim.now - t0
                if guarded:
                    yield from self.guard.end_access()
                    if (offset, nbytes, is_write) != plan.operations[-1]:
                        t0 = self.sim.now
                        yield from self.guard.begin_access()
                        stats.wait_time += self.sim.now - t0
        finally:
            if guarded:
                self.guard.complete()
        stats.end = self.sim.now
        self.history.append(stats)
        return stats
