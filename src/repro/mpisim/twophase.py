"""Two-phase I/O (collective buffering) planning.

ROMIO's generalized two-phase algorithm: a subset of processes (the
*aggregators*, ``cb_nodes`` of them) each own a contiguous file domain and a
staging buffer of ``cb_buffer_size`` bytes.  A collective write proceeds in
rounds; per round each aggregator (1) receives the pieces of its file domain
from their owners (the *communication phase*) and (2) issues one large
contiguous write (the *write phase*).

The paper leans on this structure twice:

* Fig 8 shows that under interference only the write phase degrades — the
  shuffle runs on the compute fabric; and
* round boundaries are where CALCioM's ``Inform``/``Release`` hooks live in
  the authors' ADIO implementation, giving the fine interruption grain of
  Fig 10.

:func:`plan_collective_write` reduces a (pattern, nprocs, cb config) triple
to the list of rounds the ADIO layer will execute.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from .datatypes import AccessPattern

__all__ = ["CollectiveRound", "CollectivePlan", "plan_collective_write"]


@dataclass(frozen=True)
class CollectiveRound:
    """One round of collective buffering."""

    index: int            #: round number, 0-based
    offset: int           #: file offset of this round's write
    write_bytes: int      #: bytes written in the write phase
    shuffle_bytes: int    #: bytes exchanged in the communication phase


@dataclass(frozen=True)
class CollectivePlan:
    """The full round schedule for one collective write."""

    rounds: List[CollectiveRound]
    naggregators: int
    cb_buffer_size: int
    total_bytes: int

    @property
    def nrounds(self) -> int:
        return len(self.rounds)


def plan_collective_write(pattern: AccessPattern, nprocs: int,
                          cb_buffer_size: int = 4 * 1024 * 1024,
                          naggregators: Optional[int] = None,
                          procs_per_node: int = 1,
                          base_offset: int = 0) -> CollectivePlan:
    """Plan the collective-buffering rounds for one collective write.

    Parameters
    ----------
    pattern:
        The per-process file view.
    nprocs:
        Number of writing processes.
    cb_buffer_size:
        Per-aggregator staging buffer (ROMIO ``cb_buffer_size``; ROMIO's
        default is 4 MiB; BG/P deployments used larger values).
    naggregators:
        Aggregator count (ROMIO ``cb_nodes``).  Defaults to one per compute
        node, i.e. ``ceil(nprocs / procs_per_node)``.
    base_offset:
        Starting file offset of the whole operation.

    Notes
    -----
    For a strided pattern essentially every byte must change processes on
    its way to the aggregator that owns its file range; for a contiguous
    pattern ROMIO assigns aggregators so that most data is node-local, so
    the shuffle is a small constant fraction (we use 1/8, covering domain
    boundary spill).
    """
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    if cb_buffer_size < 1:
        raise ValueError(f"cb_buffer_size must be >= 1, got {cb_buffer_size}")
    if naggregators is None:
        naggregators = max(1, math.ceil(nprocs / max(1, procs_per_node)))
    if naggregators < 1:
        raise ValueError(f"naggregators must be >= 1, got {naggregators}")
    naggregators = min(naggregators, nprocs)

    total = pattern.total_bytes(nprocs)
    per_round = naggregators * cb_buffer_size
    nrounds = max(1, math.ceil(total / per_round))
    remote_fraction = 1.0 if pattern.is_strided else 0.125

    rounds: List[CollectiveRound] = []
    remaining = total
    offset = base_offset
    for i in range(nrounds):
        chunk = min(per_round, remaining)
        rounds.append(CollectiveRound(
            index=i,
            offset=offset,
            write_bytes=chunk,
            shuffle_bytes=int(chunk * remote_fraction),
        ))
        offset += chunk
        remaining -= chunk
    assert remaining == 0, "round planning must cover all bytes"
    return CollectivePlan(rounds=rounds, naggregators=naggregators,
                          cb_buffer_size=cb_buffer_size, total_bytes=total)
