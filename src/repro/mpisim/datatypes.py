"""File access patterns, in the vocabulary of IOR and MPI file views.

The paper's benchmark controls "contiguous or strided [patterns] with a
specified number of blocks and block sizes, in a way similar to IOR".  A
pattern here describes each process's view of the shared file:

* :class:`Contiguous` — process ``r`` writes one block of ``block_size``
  bytes at offset ``r * block_size`` (IOR's segmented layout).
* :class:`Strided` — process ``r`` writes ``nblocks`` blocks of
  ``block_size``, block ``k`` at offset ``(k * nprocs + r) * block_size``
  (interleaved, triggering collective buffering in ROMIO and here).

Patterns are pure descriptions; the ADIO layer turns them into transfer
plans.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AccessPattern", "Contiguous", "Strided"]


@dataclass(frozen=True)
class AccessPattern:
    """Base class: how much each process writes and how it interleaves."""

    block_size: int

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError(f"block_size must be > 0, got {self.block_size}")

    @property
    def bytes_per_process(self) -> int:
        raise NotImplementedError

    @property
    def is_strided(self) -> bool:
        raise NotImplementedError

    def total_bytes(self, nprocs: int) -> int:
        """Aggregate file bytes written by ``nprocs`` processes."""
        return nprocs * self.bytes_per_process


@dataclass(frozen=True)
class Contiguous(AccessPattern):
    """Each process writes one contiguous block (rank-ordered segments)."""

    @property
    def bytes_per_process(self) -> int:
        return self.block_size

    @property
    def is_strided(self) -> bool:
        return False


@dataclass(frozen=True)
class Strided(AccessPattern):
    """Each process writes ``nblocks`` interleaved blocks of ``block_size``.

    E.g. the paper's Fig 6 workload is ``Strided(block_size=2 MB,
    nblocks=8)`` — "16 MB (8 strides of 2 MB) per process".
    """

    nblocks: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nblocks <= 0:
            raise ValueError(f"nblocks must be > 0, got {self.nblocks}")

    @property
    def bytes_per_process(self) -> int:
        return self.block_size * self.nblocks

    @property
    def is_strided(self) -> bool:
        return True
