"""Simulated MPI communicators with analytic collective cost models.

An application's processes are modelled as one :class:`Communicator` rather
than N kernel processes: the quantities the reproduction needs (how long a
barrier, broadcast, or collective-buffering shuffle takes; how much
bandwidth the group wields) are closed-form functions of the process count
and link speeds, so simulating each rank would add cost without adding
fidelity.

Cost models are the standard alpha-beta (latency-bandwidth) forms used in
the MPI literature: log-tree latency terms plus bandwidth terms on the
group's aggregate injection capacity.
"""

from __future__ import annotations

import math
from typing import Optional

from ..simcore import Simulator, Timeout

__all__ = ["Communicator"]


class Communicator:
    """A group of ``nprocs`` ranks with collective time models.

    Parameters
    ----------
    sim:
        The simulator (collectives are timeouts — intra-application traffic
        does not cross the storage fabric, which is precisely why the
        paper's Fig 8b finds communication phases "almost not impacted" by
        file-system interference).
    nprocs:
        Group size.
    alpha:
        Per-message latency, seconds.
    per_proc_bandwidth:
        Injection bandwidth per process, B/s.
    """

    def __init__(self, sim: Simulator, nprocs: int, alpha: float = 20e-6,
                 per_proc_bandwidth: float = 1e9, name: str = "comm"):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.sim = sim
        self.nprocs = int(nprocs)
        self.alpha = float(alpha)
        self.per_proc_bandwidth = float(per_proc_bandwidth)
        self.name = name

    # -- size/rank bookkeeping --------------------------------------------------
    @property
    def size(self) -> int:
        return self.nprocs

    @property
    def aggregate_bandwidth(self) -> float:
        """Total injection bandwidth of the group, B/s."""
        return self.nprocs * self.per_proc_bandwidth

    def _log2p(self) -> int:
        return max(1, math.ceil(math.log2(self.nprocs))) if self.nprocs > 1 else 0

    # -- collective cost models (seconds) -------------------------------------
    def barrier_time(self) -> float:
        """Dissemination barrier: ceil(log2 P) rounds of latency."""
        return self._log2p() * self.alpha

    def bcast_time(self, nbytes: float) -> float:
        """Binomial-tree broadcast."""
        steps = self._log2p()
        return steps * (self.alpha + nbytes / self.per_proc_bandwidth)

    def reduce_time(self, nbytes: float) -> float:
        """Binomial-tree reduction (same shape as bcast)."""
        return self.bcast_time(nbytes)

    def allreduce_time(self, nbytes: float) -> float:
        """Recursive doubling: log2 P rounds of full-vector exchange."""
        steps = self._log2p()
        return steps * (self.alpha + nbytes / self.per_proc_bandwidth)

    def gather_time(self, nbytes_per_proc: float) -> float:
        """Binomial gather; bandwidth term dominated by the root's link."""
        total = nbytes_per_proc * max(0, self.nprocs - 1)
        return self._log2p() * self.alpha + total / self.per_proc_bandwidth

    def alltoall_time(self, nbytes_total: float) -> float:
        """Personalized all-to-all moving ``nbytes_total`` across the group.

        The bisection-limited fluid form: the group moves the data at its
        aggregate injection bandwidth, plus one latency per of ~P messages
        pipelined in log P phases.
        """
        bw = self.aggregate_bandwidth
        return self._log2p() * self.alpha + nbytes_total / bw

    def shuffle_time(self, nbytes_total: float, fraction_remote: float = 1.0) -> float:
        """Two-phase-I/O data exchange: procs -> aggregators.

        ``fraction_remote`` is the share of bytes that actually change
        process (1 for a fully strided pattern, ~0 for contiguous views
        where aggregators already own their file ranges).
        """
        if not 0.0 <= fraction_remote <= 1.0:
            raise ValueError("fraction_remote must be in [0, 1]")
        return self.alltoall_time(nbytes_total * fraction_remote)

    # -- event helpers ----------------------------------------------------------
    def barrier(self) -> Timeout:
        """Event covering one barrier."""
        return self.sim.timeout(self.barrier_time())

    def bcast(self, nbytes: float) -> Timeout:
        return self.sim.timeout(self.bcast_time(nbytes))

    def shuffle(self, nbytes_total: float, fraction_remote: float = 1.0) -> Timeout:
        return self.sim.timeout(self.shuffle_time(nbytes_total, fraction_remote))

    def split(self, nprocs: int, name: Optional[str] = None) -> "Communicator":
        """A sub-communicator of ``nprocs`` ranks (MPI_Comm_split analogue)."""
        if not 1 <= nprocs <= self.nprocs:
            raise ValueError(
                f"sub-communicator size {nprocs} out of range 1..{self.nprocs}"
            )
        return Communicator(self.sim, nprocs, alpha=self.alpha,
                            per_proc_bandwidth=self.per_proc_bandwidth,
                            name=name or f"{self.name}.split")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator {self.name!r} P={self.nprocs}>"
