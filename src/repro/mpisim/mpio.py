"""MPI-IO file facade (MPI_File analogue) over the ADIO layer.

Thin by design — the real decisions happen in :mod:`repro.mpisim.adio` —
but it gives applications the familiar open/write_all/close surface and
tracks per-file write offsets the way an MPI file handle's shared pointer
would.
"""

from __future__ import annotations

from typing import Optional

from ..simcore import SimulationError
from .adio import ADIOLayer
from .datatypes import AccessPattern

__all__ = ["MPIIOFile"]


class MPIIOFile:
    """An open (simulated) MPI file handle for one application."""

    def __init__(self, adio: ADIOLayer, path: str):
        self.adio = adio
        self.path = path
        self.offset = 0
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise SimulationError(f"I/O on closed file {self.path!r}")

    def write_all(self, pattern: AccessPattern,
                  grain: Optional[str] = "round"):
        """Collective write at the current shared offset.  Generator.

        Returns :class:`~repro.mpisim.adio.WriteStats`; advances the offset.
        """
        self._check_open()
        stats = yield from self.adio.write_collective(
            self.path, pattern, grain=grain, base_offset=self.offset
        )
        self.offset += stats.bytes
        return stats

    def write_at_all(self, offset: int, pattern: AccessPattern,
                     grain: Optional[str] = "round"):
        """Collective write at an explicit offset (does not move the pointer)."""
        self._check_open()
        return (yield from self.adio.write_collective(
            self.path, pattern, grain=grain, base_offset=offset
        ))

    def write(self, nbytes: int, guarded: bool = True):
        """Independent contiguous write at the current offset.  Generator."""
        self._check_open()
        stats = yield from self.adio.write_independent(
            self.path, nbytes, offset=self.offset, guarded=guarded
        )
        self.offset += nbytes
        return stats

    def read_all(self, pattern: AccessPattern,
                 grain: Optional[str] = "round"):
        """Collective read at the current shared offset.  Generator."""
        self._check_open()
        stats = yield from self.adio.read_collective(
            self.path, pattern, grain=grain, base_offset=self.offset
        )
        self.offset += stats.bytes
        return stats

    def sync(self):
        """Barrier-equivalent flush; fluid writes land synchronously, so
        this only costs a collective."""
        self._check_open()
        yield self.adio.comm.barrier()

    def close(self) -> None:
        """Invalidate the handle."""
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"offset={self.offset}"
        return f"<MPIIOFile {self.path!r} {state}>"
