"""MPI_Info-like key/value store.

The paper's ``Prepare(MPI_Info info)`` call ships knowledge about upcoming
I/O as (key, value) pairs "in order to be generic".  We mirror that: a thin
string-keyed mapping with typed accessors, so CALCioM strategies consume the
same vocabulary the paper lists (number of files, rounds of collective
buffering, bytes per round, ...).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

__all__ = ["MPIInfo"]


class MPIInfo:
    """A small, ordered, string-keyed info object (mutable mapping subset)."""

    def __init__(self, initial: Optional[Dict[str, Any]] = None, **kwargs: Any):
        self._data: Dict[str, Any] = {}
        if initial:
            self._data.update(initial)
        self._data.update(kwargs)

    def set(self, key: str, value: Any) -> "MPIInfo":
        """Set a key; returns self for chaining."""
        if not isinstance(key, str):
            raise TypeError(f"info keys must be str, got {type(key).__name__}")
        self._data[key] = value
        return self

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def get_float(self, key: str, default: float = 0.0) -> float:
        """Fetch a key coerced to float (for sizes, times, counts)."""
        value = self._data.get(key)
        return default if value is None else float(value)

    def get_int(self, key: str, default: int = 0) -> int:
        value = self._data.get(key)
        return default if value is None else int(value)

    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self.set(key, value)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def keys(self):
        return self._data.keys()

    def items(self):
        return self._data.items()

    def copy(self) -> "MPIInfo":
        return MPIInfo(dict(self._data))

    def merged(self, other: "MPIInfo") -> "MPIInfo":
        """A new info with ``other``'s keys overriding this one's."""
        merged = self.copy()
        for k, v in other.items():
            merged.set(k, v)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v!r}" for k, v in self._data.items())
        return f"MPIInfo({inner})"
