"""Data sieving for independent non-contiguous access (Thakur et al.).

The paper's related work (§V-A) lists data sieving among the
application-side optimizations whose benefit interference destroys: instead
of issuing one small request per non-contiguous piece, ROMIO reads/writes a
single covering extent through an intermediate buffer and patches in
memory.

For writes this is a read-modify-write: each buffer-sized window of the
covering extent is read, patched with the strided pieces, and written back
(holes belonging to other processes must be preserved).  The essence for
this reproduction is the *request and volume transformation*: a strided
pattern of many small pieces becomes few large requests that move more
bytes than the payload — cheap alone, amplifying contention when shared.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from .datatypes import AccessPattern, Strided

__all__ = ["SievePlan", "plan_data_sieving"]


@dataclass(frozen=True)
class SievePlan:
    """Per-process transfer plan produced by data sieving."""

    #: (offset, nbytes, is_write) covering-extent operations of ONE process.
    operations: Tuple[Tuple[int, int, bool], ...]
    payload_bytes_per_process: int   #: bytes the process wanted moved
    transferred_bytes_per_process: int  #: bytes the sieve moves (>= payload)
    buffer_size: int
    nprocs: int

    @property
    def amplification(self) -> float:
        """Transferred / payload per process (1.0 = no overhead)."""
        if self.payload_bytes_per_process == 0:
            return 1.0
        return (self.transferred_bytes_per_process
                / self.payload_bytes_per_process)

    @property
    def nrequests(self) -> int:
        """Requests per process."""
        return len(self.operations)

    @property
    def aggregate_transferred(self) -> int:
        """Bytes moved by all processes together."""
        return self.transferred_bytes_per_process * self.nprocs


def plan_data_sieving(pattern: AccessPattern, nprocs: int,
                      buffer_size: int = 4 * 1024 * 1024,
                      base_offset: int = 0,
                      read_modify_write: bool = True) -> SievePlan:
    """Plan sieved *independent* I/O for one process of ``nprocs`` writing
    ``pattern``.

    Contiguous patterns degenerate to plain buffered writes (amplification
    1.0).  A strided pattern interleaves all processes at block
    granularity, so each process's covering extent is the *entire* region
    ``nprocs * bytes_per_process`` of which it owns ``1/nprocs`` — the
    classic worst case: write amplification ``~2 * nprocs`` with
    read-modify-write.
    """
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    if buffer_size < 1:
        raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
    payload = pattern.bytes_per_process
    ops: List[Tuple[int, int, bool]] = []

    if not pattern.is_strided:
        offset = base_offset
        remaining = payload
        while remaining > 0:
            chunk = min(buffer_size, remaining)
            ops.append((offset, chunk, True))
            offset += chunk
            remaining -= chunk
        return SievePlan(operations=tuple(ops),
                         payload_bytes_per_process=payload,
                         transferred_bytes_per_process=payload,
                         buffer_size=buffer_size, nprocs=nprocs)

    assert isinstance(pattern, Strided)
    extent = pattern.total_bytes(nprocs)  # covering extent per process
    transferred = 0
    windows = math.ceil(extent / buffer_size)
    for w in range(windows):
        offset = base_offset + w * buffer_size
        chunk = min(buffer_size, extent - w * buffer_size)
        if read_modify_write:
            ops.append((offset, chunk, False))  # read the window
            transferred += chunk
        ops.append((offset, chunk, True))       # write it back patched
        transferred += chunk
    return SievePlan(operations=tuple(ops),
                     payload_bytes_per_process=payload,
                     transferred_bytes_per_process=transferred,
                     buffer_size=buffer_size, nprocs=nprocs)
