"""Simulated MPI + MPI-IO: communicators, patterns, two-phase I/O, ADIO."""

from .adio import ADIOLayer, IOGuard, NullGuard, WriteStats
from .communicator import Communicator
from .datatypes import AccessPattern, Contiguous, Strided
from .info import MPIInfo
from .mpio import MPIIOFile
from .sieving import SievePlan, plan_data_sieving
from .twophase import CollectivePlan, CollectiveRound, plan_collective_write

__all__ = [
    "Communicator", "MPIInfo", "AccessPattern", "Contiguous", "Strided",
    "CollectivePlan", "CollectiveRound", "plan_collective_write",
    "ADIOLayer", "IOGuard", "NullGuard", "WriteStats", "MPIIOFile",
    "SievePlan", "plan_data_sieving",
]
