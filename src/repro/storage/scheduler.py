"""Server-side request admission policies.

The paper's §I and §V-C discuss what a parallel file system can do on its
own: service interleaved requests as they come (which fluidly approximates
fair sharing of bandwidth), or try to service one source at a time.  These
policies are the *baseline* CALCioM is compared against — they act on raw
requests with no knowledge of application constraints.

* :class:`SharedScheduler` — every request's flow starts immediately; the
  max-min allocator shares bandwidth in proportion to request weights.
  This models interleaved FIFO servicing of many small requests.
* :class:`FIFOServerScheduler` — strict one-request-at-a-time service.  At
  application-aggregate granularity this serializes whole application
  accesses at each server independently (no cross-server agreement).
* :class:`AppSerialScheduler` — services all queued requests of one
  application together before moving to the next application, emulating the
  "service applications one at a time" goal of server-side schedulers like
  Qian et al.'s network request scheduler.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Tuple

from ..simcore import Event, Simulator, Store
from .requests import IORequest

__all__ = [
    "ServerScheduler", "SharedScheduler", "FIFOServerScheduler",
    "AppSerialScheduler", "make_scheduler",
]

#: signature of the launch function a server provides to its scheduler
LaunchFn = Callable[[IORequest], Event]


class ServerScheduler(ABC):
    """Base class: decides *when* each submitted request's flow starts."""

    def __init__(self) -> None:
        self.sim: Optional[Simulator] = None
        self._launch: Optional[LaunchFn] = None

    def bind(self, sim: Simulator, launch: LaunchFn) -> None:
        """Attach to a server; called once by :class:`StorageServer`."""
        self.sim = sim
        self._launch = launch

    @abstractmethod
    def submit(self, request: IORequest) -> Event:
        """Accept a request; the returned event triggers when it completes."""


class SharedScheduler(ServerScheduler):
    """Start every request immediately — bandwidth is max-min shared."""

    def submit(self, request: IORequest) -> Event:
        return self._launch(request)


class FIFOServerScheduler(ServerScheduler):
    """Strictly serial service: one request runs at a time, arrival order."""

    def bind(self, sim: Simulator, launch: LaunchFn) -> None:
        super().bind(sim, launch)
        self._queue = Store(sim, "fifo-queue")
        sim.process(self._service_loop(), name="fifo-server")

    def submit(self, request: IORequest) -> Event:
        done = self.sim.event()
        self._queue.put((request, done))
        return done

    def _service_loop(self):
        while True:
            request, done = yield self._queue.get()
            try:
                result = yield self._launch(request)
            except Exception as exc:  # propagate per-request failures
                done.fail(exc)
                continue
            done.succeed(result)


class AppSerialScheduler(ServerScheduler):
    """Serve one application's queued requests (concurrently) at a time."""

    def bind(self, sim: Simulator, launch: LaunchFn) -> None:
        super().bind(sim, launch)
        self._pending: List[Tuple[IORequest, Event]] = []
        self._signal: Optional[Event] = None
        sim.process(self._service_loop(), name="app-serial-server")

    def submit(self, request: IORequest) -> Event:
        done = self.sim.event()
        self._pending.append((request, done))
        if self._signal is not None and not self._signal.triggered:
            self._signal.succeed()
        return done

    def _service_loop(self):
        while True:
            if not self._pending:
                self._signal = self.sim.event()
                yield self._signal
                self._signal = None
            # Pick the application of the oldest request, take its whole batch.
            app = self._pending[0][0].app
            batch = [(r, d) for (r, d) in self._pending if r.app == app]
            self._pending = [(r, d) for (r, d) in self._pending if r.app != app]
            launched = [(self._launch(r), d) for r, d in batch]
            for flow_done, done in launched:
                try:
                    result = yield flow_done
                except Exception as exc:
                    done.fail(exc)
                    continue
                done.succeed(result)


_SCHEDULERS = {
    "shared": SharedScheduler,
    "fifo": FIFOServerScheduler,
    "app-serial": AppSerialScheduler,
}


def make_scheduler(spec) -> ServerScheduler:
    """Build a scheduler from a name ('shared', 'fifo', 'app-serial'),
    a class, or pass an instance through."""
    if isinstance(spec, ServerScheduler):
        return spec
    if isinstance(spec, str):
        try:
            return _SCHEDULERS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown scheduler {spec!r}; choose from {sorted(_SCHEDULERS)}"
            ) from None
    if isinstance(spec, type) and issubclass(spec, ServerScheduler):
        return spec()
    raise TypeError(f"cannot build a scheduler from {spec!r}")
