"""Write-back page cache at a storage server, as a fluid integrator.

The paper's Figure 3 shows the backend kernel cache making periodic writers
see far more than disk bandwidth — until two applications collide, the cache
fills, and both collapse to disk speed.  This module reproduces exactly that
mechanism:

* the server's ingest pipe admits bytes at ``cache_bandwidth`` while the
  dirty-page pool has room;
* dirty pages drain to disk continuously at the disk's effective rate;
* when dirty bytes reach ``capacity`` the ingest pipe is throttled to the
  drain rate (writers now run at disk speed);
* once the pool drains back to ``low_watermark`` the fast path reopens.

Dirty volume is integrated piecewise between allocation changes, so the
model costs one observer callback per rate change, not per byte.
"""

from __future__ import annotations

import math
from typing import Optional

from ..simcore import FluidLink, FlowNetwork, Simulator, TimeSeries

__all__ = ["WriteBackCache"]

#: Tolerance (bytes) for boundary comparisons of the dirty integrator.
_EPS = 1e-6


class WriteBackCache:
    """Fluid dirty-page integrator controlling a server ingest link.

    Parameters
    ----------
    sim, net:
        Simulator and flow network (observed for rate changes).
    ingest_link:
        The server's ingest pipe; this object owns its capacity.
    cache_bandwidth:
        Memory-speed admission rate while the pool has room, B/s.
    drain_bandwidth:
        Rate at which dirty bytes retire to disk, B/s.
    capacity:
        Dirty-pool size in bytes.
    low_watermark:
        Dirty level at which a throttled pipe reopens (defaults to half the
        pool, echoing Linux's dirty_background behaviour).
    record:
        If True, keeps a :class:`TimeSeries` of dirty volume in
        :attr:`dirty_series` for experiment plots.
    """

    def __init__(self, sim: Simulator, net: FlowNetwork, ingest_link: FluidLink,
                 cache_bandwidth: float, drain_bandwidth: float, capacity: float,
                 low_watermark: Optional[float] = None, record: bool = False):
        if cache_bandwidth <= drain_bandwidth:
            raise ValueError(
                "cache_bandwidth must exceed drain_bandwidth for the cache "
                f"to matter (got {cache_bandwidth} <= {drain_bandwidth})"
            )
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.sim = sim
        self.net = net
        self.link = ingest_link
        self.cache_bandwidth = float(cache_bandwidth)
        self.drain_bandwidth = float(drain_bandwidth)
        self.capacity = float(capacity)
        self.low_watermark = (
            capacity / 2.0 if low_watermark is None else float(low_watermark)
        )
        if not (0 <= self.low_watermark < self.capacity):
            raise ValueError("low_watermark must lie in [0, capacity)")
        self.dirty = 0.0
        self.throttled = False
        self._last_time = sim.now
        self._inflow = 0.0
        self._boundary_timer = None  #: pending engine Timer for the next wake
        self.dirty_series: Optional[TimeSeries] = (
            TimeSeries("dirty_bytes") if record else None
        )
        ingest_link.set_capacity(self.cache_bandwidth)
        net.add_observer(self._on_rates_changed)

    # -- integration -------------------------------------------------------
    def _advance(self) -> None:
        """Integrate dirty volume from the last checkpoint to now."""
        now = self.sim.now
        dt = now - self._last_time
        if dt > 0:
            net_rate = self._inflow - self.drain_bandwidth
            if net_rate >= 0:
                self.dirty = min(self.capacity, self.dirty + net_rate * dt)
            else:
                self.dirty = max(0.0, self.dirty + net_rate * dt)
            self._last_time = now
            if self.dirty_series is not None:
                self.dirty_series.record(now, self.dirty)
        elif dt == 0 and self.dirty_series is not None and len(self.dirty_series) == 0:
            self.dirty_series.record(now, self.dirty)

    def _on_rates_changed(self, time: float, flows) -> None:
        self._advance()
        self._inflow = self.net.link_rate(self.link)
        self._apply_mode()
        self._schedule_boundary()

    def _apply_mode(self) -> None:
        """Throttle or reopen the ingest pipe based on dirty level."""
        if not self.throttled and self.dirty >= self.capacity - _EPS:
            self.throttled = True
            self.link.set_capacity(self.drain_bandwidth)
        elif self.throttled and self.dirty <= self.low_watermark + _EPS:
            self.throttled = False
            self.link.set_capacity(self.cache_bandwidth)

    def _schedule_boundary(self) -> None:
        """Wake exactly when the dirty level will next cross a threshold."""
        # Whatever happens below, the previously-armed boundary is stale:
        # the rates (and therefore the crossing time) just changed.
        timer = self._boundary_timer
        if timer is not None:
            timer.cancel()
        net_rate = self._inflow - self.drain_bandwidth
        if net_rate > _EPS and not self.throttled:
            target = self.capacity
            horizon = (target - self.dirty) / net_rate
        elif net_rate < -_EPS and self.dirty > 0:
            target = self.low_watermark if self.throttled else 0.0
            if self.dirty <= target + _EPS:
                return
            horizon = (self.dirty - target) / (-net_rate)
        else:
            return
        if not math.isfinite(horizon) or horizon < 0:
            return
        now = self.sim.now
        target = now + horizon
        if target <= now:
            # Below float resolution: nudge one ulp so the wake advances.
            target = now + math.ulp(now if now > 0 else 1.0)

        if timer is not None:
            timer.reschedule(target)  # reuse the handle: cancelled or fired
        else:
            self._boundary_timer = self.sim.call_at(target, self._boundary_fired)

    def _boundary_fired(self) -> None:
        self._advance()
        self._apply_mode()
        self._schedule_boundary()

    # -- inspection ------------------------------------------------------------
    @property
    def dirty_now(self) -> float:
        """Current dirty volume, integrating up to the present instant."""
        dt = self.sim.now - self._last_time
        net_rate = self._inflow - self.drain_bandwidth
        level = self.dirty + net_rate * dt
        return float(min(self.capacity, max(0.0, level)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WriteBackCache dirty={self.dirty_now:.3g}/{self.capacity:.3g}B "
            f"{'throttled' if self.throttled else 'fast'}>"
        )
