"""A storage server: ingest pipe, optional write-back cache, disk, scheduler.

The server owns an internal *ingest link* appended to the path of every
flow that writes to it.  Its capacity is:

* ``disk.effective_rate(active streams)`` when the cache is disabled (the
  Grid'5000 configuration in the paper — "caching disabled in order to
  avoid the huge performance drop observed in Section II"); or
* managed by :class:`~repro.storage.cache.WriteBackCache` when enabled
  (the Figure 3 configuration).

Reads drain from the disk through a separate egress link so write/read
directions don't contend artificially on full-duplex hardware.
"""

from __future__ import annotations

from typing import Optional

from ..network import Fabric
from ..simcore import Event, FluidLink, FlowNetwork, Simulator
from .cache import WriteBackCache
from .disk import Disk
from .requests import IORequest
from .scheduler import ServerScheduler, make_scheduler

__all__ = ["StorageServer"]


class StorageServer:
    """One PVFS/OrangeFS-style data server.

    Parameters
    ----------
    sim, net, fabric:
        Kernel objects.  The server registers itself as a fabric endpoint
        named ``name``; the platform builder is responsible for wiring an
        edge from the fabric core to that endpoint.
    disk:
        The drain-side device model.
    cache_bandwidth, cache_capacity:
        Enable a write-back cache with these parameters (both must be given).
    scheduler:
        Admission policy — name, class, or instance (see
        :mod:`repro.storage.scheduler`).
    """

    def __init__(self, sim: Simulator, net: FlowNetwork, fabric: Fabric,
                 name: str, disk: Disk,
                 cache_bandwidth: Optional[float] = None,
                 cache_capacity: Optional[float] = None,
                 scheduler="shared"):
        self.sim = sim
        self.net = net
        self.fabric = fabric
        self.name = name
        self.disk = disk
        fabric.add_endpoint(name)
        self.ingest_link = FluidLink(disk.bandwidth, name=f"{name}.ingest")
        self.egress_link = FluidLink(disk.bandwidth, name=f"{name}.egress")
        self.cache: Optional[WriteBackCache] = None
        if (cache_bandwidth is None) != (cache_capacity is None):
            raise ValueError(
                "cache_bandwidth and cache_capacity must be given together"
            )
        if cache_bandwidth is not None:
            self.cache = WriteBackCache(
                sim, net, self.ingest_link,
                cache_bandwidth=cache_bandwidth,
                drain_bandwidth=disk.bandwidth,
                capacity=cache_capacity,
            )
        elif disk.seek_penalty > 0:
            net.add_observer(self._update_seek_penalty)
        self.scheduler: ServerScheduler = make_scheduler(scheduler)
        self.scheduler.bind(sim, self._launch)
        self.bytes_written = 0.0
        self.bytes_read = 0.0
        #: Shared :class:`~repro.perf.PerfCounters` (from the flow network).
        self.perf = net.perf

    # -- client interface -----------------------------------------------------
    def submit(self, request: IORequest) -> Event:
        """Queue a request under the admission policy; event fires when done."""
        request.submitted = self.sim.now
        if self.perf is not None:
            self.perf.bump("io_requests")
        return self.scheduler.submit(request)

    # -- internals ---------------------------------------------------------------
    def _launch(self, request: IORequest) -> Event:
        """Start the fluid transfer for a request (called by the scheduler)."""
        if request.kind == "write":
            self.bytes_written += request.size
            return self.fabric.transfer(
                request.client, self.name, request.size,
                weight=request.weight, cap=request.cap,
                extra_links=[self.ingest_link],
                label=request.app,
            )
        self.bytes_read += request.size
        return self.fabric.transfer(
            self.name, request.client, request.size,
            weight=request.weight, cap=request.cap,
            extra_links=[self.egress_link],
            label=request.app,
        )

    def _update_seek_penalty(self, time: float, flows) -> None:
        """Degrade the ingest pipe as distinct applications interleave."""
        # The per-link index makes this O(flows on this server) rather than
        # a scan of every flow in the machine.
        apps = {f.label for f in self.net.link_flows(self.ingest_link)}
        self.ingest_link.set_capacity(
            self.disk.effective_rate(max(1, len(apps)))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "cached" if self.cache else "direct"
        return f"<StorageServer {self.name!r} {mode} {self.disk!r}>"
