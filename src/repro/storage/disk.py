"""Disk model: streaming bandwidth degraded by multi-stream seeking.

Storage-server disks deliver near-peak bandwidth for one sequential stream
and progressively less as unrelated request streams force head movement —
the degradation server-side schedulers exist to avoid (paper §V-C).  We use
the standard concave penalty

    rate(n) = peak / (1 + seek_penalty * (n - 1))

with ``seek_penalty = 0`` recovering an ideal (seek-free / SSD-like) device.
"""

from __future__ import annotations

__all__ = ["Disk"]


class Disk:
    """A storage device's drain-side performance model.

    Parameters
    ----------
    bandwidth:
        Peak sequential bandwidth, bytes/s.
    seek_penalty:
        Fractional slowdown added per extra concurrent stream.  0.15 is a
        reasonable spinning-disk figure; 0 disables the effect.
    """

    def __init__(self, bandwidth: float, seek_penalty: float = 0.0):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        if seek_penalty < 0:
            raise ValueError(f"seek_penalty must be >= 0, got {seek_penalty}")
        self.bandwidth = float(bandwidth)
        self.seek_penalty = float(seek_penalty)

    def effective_rate(self, nstreams: int) -> float:
        """Aggregate bandwidth with ``nstreams`` concurrent request streams."""
        if nstreams <= 1:
            return self.bandwidth
        return self.bandwidth / (1.0 + self.seek_penalty * (nstreams - 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Disk(bandwidth={self.bandwidth:.4g}, seek_penalty={self.seek_penalty})"
