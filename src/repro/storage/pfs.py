"""The parallel file system facade: files, striping, and client operations.

Clients (the simulated MPI-IO layer, or applications directly) address the
file system through :meth:`ParallelFileSystem.write` /
:meth:`ParallelFileSystem.read`, which partition byte ranges across data
servers by the file's stripe layout and submit per-server aggregate
requests.  The returned event completes when every server involved has
absorbed its share — the semantics of a synchronous parallel write.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..network import Fabric
from ..simcore import AllOf, Event, SimulationError, Simulator
from .requests import IORequest
from .server import StorageServer
from .striping import StripeLayout

__all__ = ["ParallelFileSystem", "FileMeta"]


@dataclass
class FileMeta:
    """Metadata for one striped file."""

    path: str
    layout: StripeLayout
    size: int = 0
    created_at: float = 0.0
    writes: int = field(default=0)

    def extend(self, offset: int, nbytes: int) -> None:
        self.size = max(self.size, offset + nbytes)
        self.writes += 1


class ParallelFileSystem:
    """A PVFS2/OrangeFS-style striped parallel file system.

    Parameters
    ----------
    sim, fabric:
        Kernel objects (servers must already be fabric endpoints).
    servers:
        Data servers, in stripe order.
    stripe_size:
        Default stripe unit for newly created files, bytes.
    """

    def __init__(self, sim: Simulator, fabric: Fabric,
                 servers: List[StorageServer], stripe_size: int = 64 * 1024):
        if not servers:
            raise SimulationError("a parallel file system needs >= 1 server")
        self.sim = sim
        self.fabric = fabric
        self.servers = list(servers)
        self.stripe_size = int(stripe_size)
        self._files: Dict[str, FileMeta] = {}
        #: Shared :class:`~repro.perf.PerfCounters` (from the flow network).
        self.perf = fabric.net.perf

    # -- namespace ------------------------------------------------------------
    def create(self, path: str, stripe_size: Optional[int] = None) -> FileMeta:
        """Create a file (round-robin start server chosen by path hash)."""
        if path in self._files:
            raise SimulationError(f"file exists: {path!r}")
        layout = StripeLayout(
            nservers=len(self.servers),
            stripe_size=stripe_size or self.stripe_size,
            # Stable, python-hash-randomization-free start-server choice.
            first_server=sum(path.encode()) % len(self.servers),
        )
        meta = FileMeta(path=path, layout=layout, created_at=self.sim.now)
        self._files[path] = meta
        return meta

    def open(self, path: str, create: bool = True) -> FileMeta:
        """Look a file up, optionally creating it."""
        meta = self._files.get(path)
        if meta is None:
            if not create:
                raise SimulationError(f"no such file: {path!r}")
            meta = self.create(path)
        return meta

    def unlink(self, path: str) -> None:
        """Remove a file from the namespace."""
        if path not in self._files:
            raise SimulationError(f"no such file: {path!r}")
        del self._files[path]

    def stat(self, path: str) -> FileMeta:
        """File metadata (raises if absent)."""
        return self.open(path, create=False)

    def listdir(self) -> List[str]:
        """All file paths, sorted."""
        return sorted(self._files)

    # -- data path ----------------------------------------------------------------
    def write(self, client: str, app: str, path: str, offset: int, nbytes: int,
              weight: float = 1.0, cap: Optional[float] = None) -> Event:
        """Write ``nbytes`` at ``offset``; event fires when all servers finish.

        ``client`` is the fabric endpoint sourcing the data; ``weight`` is
        the process count behind this operation (max-min share at each
        server); ``cap`` optionally rate-limits each per-server request.
        """
        meta = self.open(path)
        meta.extend(offset, nbytes)
        if self.perf is not None:
            self.perf.bump("pfs_writes")
        return self._issue(client, app, path, offset, nbytes, weight, cap, "write")

    def read(self, client: str, app: str, path: str, offset: int, nbytes: int,
             weight: float = 1.0, cap: Optional[float] = None) -> Event:
        """Read ``nbytes`` at ``offset`` into ``client``."""
        meta = self.stat(path)
        if offset + nbytes > meta.size:
            raise SimulationError(
                f"read past EOF on {path!r} ({offset + nbytes} > {meta.size})"
            )
        if self.perf is not None:
            self.perf.bump("pfs_reads")
        return self._issue(client, app, path, offset, nbytes, weight, cap, "read")

    def _issue(self, client: str, app: str, path: str, offset: int,
               nbytes: int, weight: float, cap: Optional[float],
               kind: str) -> Event:
        meta = self._files[path]
        parts = meta.layout.partition(offset, nbytes)
        events = []
        for server_idx, server_bytes in parts.items():
            req = IORequest(
                app=app, client=client, path=path, offset=offset,
                size=server_bytes, kind=kind, weight=weight, cap=cap,
            )
            events.append(self.servers[server_idx].submit(req))
        if not events:  # zero-byte op completes immediately
            ev = self.sim.event()
            ev.succeed(None)
            return ev
        return AllOf(self.sim, events)

    # -- accounting ------------------------------------------------------------------
    @property
    def total_bytes_written(self) -> float:
        return sum(s.bytes_written for s in self.servers)

    @property
    def total_bytes_read(self) -> float:
        return sum(s.bytes_read for s in self.servers)
