"""I/O request descriptors exchanged between clients and storage servers."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

__all__ = ["IORequest"]

_request_ids = count()


@dataclass
class IORequest:
    """One client-side I/O operation as seen by a storage server.

    Requests are *application-level aggregates*: an application writing the
    same amount from each of N processes to one server is one request of
    ``weight=N``.  The fluid allocator treats that identically to N unit
    requests, while keeping the simulated request count (and hence cost)
    proportional to applications x servers instead of processes.
    """

    app: str                       #: application identifier
    client: str                    #: fabric endpoint the bytes come from
    path: str                      #: file path
    offset: int                    #: byte offset within the file
    size: float                    #: bytes to move
    kind: str = "write"            #: "write" or "read"
    weight: float = 1.0            #: max-min weight (typically #processes)
    cap: Optional[float] = None    #: per-request rate ceiling, B/s
    submitted: float = 0.0         #: simulation time of submission
    rid: int = field(default_factory=lambda: next(_request_ids))

    def __post_init__(self) -> None:
        if self.kind not in ("write", "read"):
            raise ValueError(f"kind must be 'write' or 'read', got {self.kind!r}")
        if self.size < 0:
            raise ValueError(f"size must be >= 0, got {self.size}")
        if self.offset < 0:
            raise ValueError(f"offset must be >= 0, got {self.offset}")
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")
