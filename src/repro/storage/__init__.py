"""Parallel file system substrate: servers, striping, caching, scheduling."""

from .cache import WriteBackCache
from .disk import Disk
from .partitioned import PartitionedFileSystem
from .pfs import FileMeta, ParallelFileSystem
from .requests import IORequest
from .scheduler import (
    AppSerialScheduler, FIFOServerScheduler, ServerScheduler, SharedScheduler,
    make_scheduler,
)
from .server import StorageServer
from .striping import StripeLayout

__all__ = [
    "Disk", "WriteBackCache", "StorageServer", "ParallelFileSystem",
    "PartitionedFileSystem", "FileMeta", "IORequest", "StripeLayout",
    "ServerScheduler", "SharedScheduler", "FIFOServerScheduler",
    "AppSerialScheduler", "make_scheduler",
]
