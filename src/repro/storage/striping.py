"""Round-robin file striping across storage servers (PVFS "simple_stripe").

A byte range of a striped file decomposes into per-server extents.  The
partitioner returns both fine-grained chunks (for request-level schedulers)
and per-server aggregates (the fluid default).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

__all__ = ["StripeLayout"]


class StripeLayout:
    """Round-robin striping of a file over ``nservers`` servers.

    Stripe unit ``k`` (0-based, ``stripe_size`` bytes each) lives on server
    ``(first_server + k) % nservers`` — PVFS2's default distribution.
    """

    def __init__(self, nservers: int, stripe_size: int = 64 * 1024,
                 first_server: int = 0):
        if nservers < 1:
            raise ValueError(f"nservers must be >= 1, got {nservers}")
        if stripe_size < 1:
            raise ValueError(f"stripe_size must be >= 1, got {stripe_size}")
        self.nservers = int(nservers)
        self.stripe_size = int(stripe_size)
        self.first_server = int(first_server) % nservers

    def server_of(self, offset: int) -> int:
        """Server index holding the byte at ``offset``."""
        if offset < 0:
            raise ValueError("offset must be >= 0")
        return (self.first_server + offset // self.stripe_size) % self.nservers

    def chunks(self, offset: int, size: int) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(server, server-local file offset, nbytes)`` per stripe unit.

        The server-local offset is the position within that server's portion
        of the file (contiguous per server under round robin).
        """
        if offset < 0 or size < 0:
            raise ValueError("offset and size must be >= 0")
        pos = offset
        end = offset + size
        while pos < end:
            unit = pos // self.stripe_size
            within = pos - unit * self.stripe_size
            take = min(self.stripe_size - within, end - pos)
            server = (self.first_server + unit) % self.nservers
            local = (unit // self.nservers) * self.stripe_size + within
            yield server, local, take
            pos += take

    def partition(self, offset: int, size: int) -> Dict[int, int]:
        """Total bytes landing on each server for a byte range.

        Computed in closed form (no per-stripe loop) so million-stripe
        ranges cost O(nservers).
        """
        if offset < 0 or size < 0:
            raise ValueError("offset and size must be >= 0")
        if size == 0:
            return {}
        ss, n = self.stripe_size, self.nservers
        first_unit = offset // ss
        last_unit = (offset + size - 1) // ss
        nunits = last_unit - first_unit + 1
        # Full bytes if every touched unit were complete:
        units_per_server = np.full(n, nunits // n, dtype=np.int64)
        extra = nunits % n
        # Servers (in rotation order starting at the first touched unit) that
        # get one extra unit.
        start = (self.first_server + first_unit) % n
        for i in range(extra):
            units_per_server[(start + i) % n] += 1
        totals = units_per_server * ss
        # Trim the partial head and tail units.
        head_trim = offset - first_unit * ss
        tail_trim = (last_unit + 1) * ss - (offset + size)
        totals[(self.first_server + first_unit) % n] -= head_trim
        totals[(self.first_server + last_unit) % n] -= tail_trim
        return {int(s): int(b) for s, b in enumerate(totals) if b > 0}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StripeLayout(nservers={self.nservers}, "
            f"stripe_size={self.stripe_size}, first_server={self.first_server})"
        )
