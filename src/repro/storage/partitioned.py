"""A multi-partition file-system namespace over per-partition PFS instances.

Platforms with ``npartitions > 1`` model what production machines expose:
several independent parallel file systems (disjoint server groups), each
striping its own files.  :class:`PartitionedFileSystem` is the client-facing
facade: it owns one :class:`~repro.storage.pfs.ParallelFileSystem` per
partition and routes every namespace/data operation by path, so the ADIO
layer and applications keep calling one object exactly as on unpartitioned
machines.

Routing is stable and declarative: an exact-path pin (:meth:`pin`) wins,
otherwise the path's first component (the per-application directory in
every workload here) hashes to a partition — the same
hash-randomization-free rule the stripe layouts use, so placement is
reproducible across processes and runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..simcore import Event, SimulationError, Simulator
from .pfs import FileMeta, ParallelFileSystem

__all__ = ["PartitionedFileSystem"]


def default_partition(key: str, npartitions: int) -> int:
    """Stable partition choice for a routing key (an app/top-dir name)."""
    return sum(key.encode()) % npartitions


class PartitionedFileSystem:
    """Path-routing facade over one ``ParallelFileSystem`` per partition."""

    def __init__(self, sim: Simulator, partitions: List[ParallelFileSystem]):
        if not partitions:
            raise SimulationError("need >= 1 partition")
        self.sim = sim
        self.partitions = list(partitions)
        self._pins: Dict[str, int] = {}
        self.perf = partitions[0].perf

    @property
    def npartitions(self) -> int:
        return len(self.partitions)

    @property
    def servers(self):
        """All data servers across partitions (partition-major order)."""
        return [s for pfs in self.partitions for s in pfs.servers]

    # -- routing -----------------------------------------------------------
    def pin(self, path: str, partition: int) -> None:
        """Pin an exact path to a partition (before the file exists)."""
        partition = int(partition) % self.npartitions
        current = self._pins.get(path)
        if current is not None and current != partition:
            raise SimulationError(
                f"{path!r} already pinned to partition {current}")
        if current is None:
            owner = self._owner_of(path)
            if owner is not None and owner != partition:
                raise SimulationError(
                    f"{path!r} already exists on partition {owner}")
            self._pins[path] = partition

    def partition_of(self, path: str) -> int:
        """The partition owning ``path`` (pin > existing file > hash)."""
        pinned = self._pins.get(path)
        if pinned is not None:
            return pinned
        owner = self._owner_of(path)
        if owner is not None:
            return owner
        key = next((part for part in path.split("/") if part), path)
        return default_partition(key, self.npartitions)

    def _owner_of(self, path: str) -> Optional[int]:
        for i, pfs in enumerate(self.partitions):
            if path in pfs._files:
                return i
        return None

    def _pfs(self, path: str) -> ParallelFileSystem:
        return self.partitions[self.partition_of(path)]

    # -- namespace ---------------------------------------------------------
    def create(self, path: str, stripe_size: Optional[int] = None) -> FileMeta:
        return self._pfs(path).create(path, stripe_size)

    def open(self, path: str, create: bool = True) -> FileMeta:
        return self._pfs(path).open(path, create)

    def unlink(self, path: str) -> None:
        self._pfs(path).unlink(path)
        self._pins.pop(path, None)

    def stat(self, path: str) -> FileMeta:
        return self._pfs(path).stat(path)

    def listdir(self) -> List[str]:
        return sorted(p for pfs in self.partitions for p in pfs.listdir())

    # -- data path ---------------------------------------------------------
    def write(self, client: str, app: str, path: str, offset: int,
              nbytes: int, weight: float = 1.0,
              cap: Optional[float] = None) -> Event:
        return self._pfs(path).write(client, app, path, offset, nbytes,
                                     weight=weight, cap=cap)

    def read(self, client: str, app: str, path: str, offset: int,
             nbytes: int, weight: float = 1.0,
             cap: Optional[float] = None) -> Event:
        return self._pfs(path).read(client, app, path, offset, nbytes,
                                    weight=weight, cap=cap)

    # -- accounting --------------------------------------------------------
    @property
    def total_bytes_written(self) -> float:
        return sum(pfs.total_bytes_written for pfs in self.partitions)

    @property
    def total_bytes_read(self) -> float:
        return sum(pfs.total_bytes_read for pfs in self.partitions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PartitionedFileSystem npartitions={self.npartitions}>"
