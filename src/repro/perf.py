"""Performance instrumentation for the simulation kernel and experiments.

The incremental allocation kernel's whole point is doing *less work per
event*; this module makes that observable.  A :class:`PerfCounters` bag is
created per :class:`~repro.platforms.Platform` and threaded through the
simulator, the flow network, the storage servers, the parallel file system
and the monitors, which bump named counters as they work:

=========================  ====================================================
counter                    meaning
=========================  ====================================================
``events_processed``       simulator events popped off the queue
``reallocations``          allocator invocations (any trigger)
``rate_recomputations``    progressive-filling runs (per dirty component)
``flows_touched``          flows re-priced across all recomputations
``components_refilled``    dirty components walked (incremental mode only)
``flow_starts``            flows started
``flow_completions``       flows that delivered their last byte
``wakes``                  completion-horizon wakeups handled
``io_requests``            requests admitted by storage servers
``pfs_writes``/``reads``   file-system level operations
``timeseries_samples``     monitor samples recorded
``wall_seconds``           host wall-clock of the run (attached by the engine)
=========================  ====================================================

Derived ratios are what you read: ``flows_touched / rate_recomputations``
is the mean dirty-component size (≈ total active flows under the global
allocator, ≈ per-bottleneck flow count under the incremental one), and
``rate_recomputations / events_processed`` shows how much of the event
stream actually re-priced bandwidth.

:class:`~repro.experiments.engine.ExperimentEngine` snapshots the
platform's counters (plus wall-clock) into every
:class:`~repro.experiments.engine.ExperimentResult.perf`, and
``benchmarks/test_scale_kernel.py`` persists them to
``benchmarks/results/BENCH_kernel.json``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, Mapping, Optional

__all__ = ["PerfCounters", "WallTimer", "merge_counts"]


class PerfCounters:
    """A bag of named monotonic counters.

    Deliberately tiny: ``bump`` is called on the simulator's hot path, so
    there is no per-counter object, no locking, no timestamps — just a dict
    of numbers.  All values are plain ints/floats and therefore
    JSON-serializable as-is.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}

    def bump(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (creating it at zero)."""
        counts = self._counts
        counts[name] = counts.get(name, 0) + n

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 if never bumped)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, float]:
        """Sorted snapshot of all counters."""
        return dict(sorted(self._counts.items()))

    def clear(self) -> None:
        self._counts.clear()

    def merge(self, other: Mapping[str, float]) -> None:
        """Add another snapshot's counts into this bag."""
        for name, value in other.items():
            self.bump(name, value)

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counts.items()))
        return f"<PerfCounters {inner}>"


class WallTimer:
    """Context manager measuring host wall-clock seconds.

    >>> with WallTimer() as timer:
    ...     pass
    >>> timer.seconds >= 0
    True
    """

    __slots__ = ("_start", "seconds")

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.seconds: float = 0.0

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.seconds = time.perf_counter() - self._start


def merge_counts(snapshots: Iterable[Mapping[str, float]]) -> Dict[str, float]:
    """Sum a sequence of counter snapshots (e.g. across a campaign)."""
    merged = PerfCounters()
    for snap in snapshots:
        merged.merge(snap)
    return merged.as_dict()
