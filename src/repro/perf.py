"""Performance instrumentation for the simulation kernel and experiments.

The incremental allocation kernel's whole point is doing *less work per
event*; this module makes that observable.  A :class:`PerfCounters` bag is
created per :class:`~repro.platforms.Platform` and threaded through the
simulator, the flow network, the storage servers, the parallel file system
and the monitors, which bump named counters as they work:

=========================  ====================================================
counter                    meaning
=========================  ====================================================
``events_processed``       simulator events dispatched (timers included)
``events_coincident``      events dispatched as non-leaders of a
                           same-timestamp batch — for every batch of ``n``
                           coincident events the batch dispatcher bumps
                           this by ``n - 1`` (one clock write served them
                           all); high values mean the wave/cohort regimes
                           are hitting the batch fast path
``timers_cancelled``       ``call_at`` timers (and ``Timeout`` events)
                           cancelled or superseded before firing — each one
                           is queue traffic that never reached a callback.
                           Counted when the dead entry is *retired* from
                           the queue (skipped at pop time or swept by bulk
                           compaction), not at ``cancel()`` time, keeping
                           cancellation itself bookkeeping-free; totals
                           match once the queue drains.  Compare with
                           ``wake_stale_pops`` to see guard dispatches
                           converted into cancellations
``timer_fastpath_hits``    timers dispatched through the slotted
                           fast path (no Event allocation, no callback
                           list — just the stored function pointer)
``reallocations``          allocator invocations (any trigger)
``rate_recomputations``    progressive-filling runs (per dirty component)
``flows_touched``          flows re-priced across all recomputations
``components_refilled``    dirty components walked (incremental mode only)
``flow_starts``            flows started
``flow_completions``       flows that delivered their last byte
``wakes``                  completion-horizon wakeups handled
``fill_cache_hits``        refills served entirely from the cached
                           bottleneck order (no fresh bottleneck scan)
``fill_partial_refills``   refills that replayed a prefix of the cached
                           order, then re-derived the tail fresh
``fill_cache_misses``      refills with nothing reusable (first fill of a
                           component, or the first cached step invalidated)
``fill_steps_reused``      cached bottleneck steps replayed across refills
``fill_slot_restores``     refills served from a non-most-recent cache slot
                           (a capacity wiggle returned to a recorded vector)
``wake_stale_pops``        invalidated heap entries lazily popped (repriced,
                           finished, cancelled, or migrated flows; dead
                           component index entries)
``wake_compactions``       wake-heap/garbage compaction passes
``wake_comp_rebuilds``     component-registry rebuilds (merges and splits)
``vec_refills``            vectorized whole-component refills (fill + horizon
                           recomputation over the component's arrays)
``vec_rebuilds``           vectorized state rebuilds — merges, splits, and
                           membership changes that re-pack a component's
                           flows into fresh contiguous arrays
``vec_rebuild_flows``      flows copied across all ``vec_rebuilds`` (the
                           array-repacking volume; compare with
                           ``flows_touched`` to see how often the stale-flag
                           fast path avoided a rebuild)
``vec_appends``            in-place array appends (arrivals whose links all
                           live in one current state — no BFS, no repack of
                           the existing rows)
``vec_append_flows``       flows materialized across all ``vec_appends``
``vec_fill_steps``         bottleneck-fixing steps taken by the vectorized
                           progressive filler (each fixes one link *or* one
                           batch of caps, whole-array arithmetic per step)
``vec_cap_batches``        fill steps that fixed a batch of per-flow caps in
                           one masked vector operation instead of one cap
                           per scan as the scalar loop does
``vec_rate_writebacks``    per-flow rate writebacks from component arrays to
                           flow objects after a refill (only rows whose rate
                           actually changed are written)
``io_requests``            requests admitted by storage servers
``pfs_writes``/``reads``   file-system level operations
``timeseries_samples``     monitor samples recorded
``coord_decisions``        strategy decisions taken by the arbiter
``coord_rounds``           coordination rounds flushed (batched arbiter)
``coord_exchanges``        Inform/Release exchanges coalesced into rounds
``coord_grants``           authorizations granted (initial GO included)
``coord_preemptions``      ACTIVE -> PREEMPTED transitions
``coord_messages``         session-level coordination messages sent
``coord_seconds``          host CPU spent in the arbiter decision loop,
                           summed across shard workers in process mode
``coord_wall_seconds``     caller-side elapsed time of coordination — equal to
                           ``coord_seconds`` inline, router-side blocking time
                           (overlapped workers excluded) in process mode
``wall_seconds``           host wall-clock of the run (attached by the engine)
=========================  ====================================================

The coordination service daemon (:mod:`repro.service`) bumps its own
family into the same bag: ``service_connections`` / ``service_sessions``
(admitted connections and the app sessions they carry),
``service_rejections`` (admission refusals), ``service_frames`` /
``service_exchanges_applied`` (wire frames read and exchanges applied to
the arbiter), ``service_grants_pushed`` (unsolicited authorization
pushes), ``service_reordered_frames`` / ``service_backpressure_stalls``
(replay-sequencer buffering and paused reads),
``service_crash_withdrawals`` / ``service_abnormal_disconnects`` (crash
semantics), ``service_protocol_errors`` and ``service_drains``.

Both inter-process data planes — the service daemon and the
``workers="process"`` shard pool — meter the wire layer
(:mod:`repro.service.protocol`) through the ``wire_*`` family:

==========================  ==================================================
counter                     meaning
==========================  ==================================================
``wire_frames_encoded``     frames serialized (either codec)
``wire_frames_decoded``     frames parsed (either codec)
``wire_bytes_encoded``      bytes produced, length prefixes included
``wire_bytes_decoded``      bytes consumed, length prefixes included
``wire_encode_seconds``     host CPU spent serializing frames
``wire_decode_seconds``     host CPU spent parsing frames
``wire_flushes``            coalesced buffer flushes — each is one
                            ``sendall``/``write`` syscall shipping every
                            frame queued since the previous flush
``wire_coalesced_frames``   frames that rode an earlier frame's flush
                            (``n``-frame batches bump this by ``n - 1``);
                            the mean batch size is
                            ``1 + coalesced/flushes``
``wire_desc_interned``      descriptors sent in full and assigned an
                            intern id (binary codec)
``wire_desc_refs``          descriptors sent as an id reference plus the
                            two mutable fields — each one is a ~250-byte
                            JSON object collapsed to ~30 bytes
``wire_generic_frames``     binary-codec messages that fell back to the
                            tagged canonical-JSON generic path (rare
                            types, off-schema payloads)
==========================  ==================================================

Worker-process counters (including their ``wire_*`` side) are merged into
the router's bag at pool close, so they land in
``ExperimentResult.perf`` and the ops ``/metrics`` endpoint like every
other counter.

Under sharded coordination (see :mod:`repro.core.sharding`) every
``coord_*`` counter above stays the machine-wide total, and each arbiter
shard additionally bumps a ``coord_*_shard<i>`` twin so per-shard load
(balance, hot shards) is visible in the same ``ExperimentResult.perf``.

Derived ratios are what you read: ``flows_touched / rate_recomputations``
is the mean dirty-component size (≈ total active flows under the global
allocator, ≈ per-bottleneck flow count under the incremental one), and
``rate_recomputations / events_processed`` shows how much of the event
stream actually re-priced bandwidth.

:class:`~repro.experiments.engine.ExperimentEngine` snapshots the
platform's counters (plus wall-clock) into every
:class:`~repro.experiments.engine.ExperimentResult.perf`, and
``benchmarks/test_scale_kernel.py`` persists them to
``benchmarks/results/BENCH_kernel.json``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

__all__ = ["PerfCounters", "WallTimer", "check_perf_regression",
           "merge_counts"]


class PerfCounters:
    """A bag of named monotonic counters.

    Deliberately tiny: ``bump`` is called on the simulator's hot path, so
    there is no per-counter object, no locking, no timestamps — just a dict
    of numbers.  All values are plain ints/floats and therefore
    JSON-serializable as-is.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}

    def bump(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (creating it at zero)."""
        counts = self._counts
        counts[name] = counts.get(name, 0) + n

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 if never bumped)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, float]:
        """Sorted snapshot of all counters."""
        return dict(sorted(self._counts.items()))

    def clear(self) -> None:
        self._counts.clear()

    def merge(self, other: Mapping[str, float]) -> None:
        """Add another snapshot's counts into this bag."""
        for name, value in other.items():
            self.bump(name, value)

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counts.items()))
        return f"<PerfCounters {inner}>"


class WallTimer:
    """Context manager measuring host wall-clock seconds.

    >>> with WallTimer() as timer:
    ...     pass
    >>> timer.seconds >= 0
    True
    """

    __slots__ = ("_start", "seconds")

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.seconds: float = 0.0

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.seconds = time.perf_counter() - self._start


def merge_counts(snapshots: Iterable[Mapping[str, float]]) -> Dict[str, float]:
    """Sum a sequence of counter snapshots (e.g. across a campaign)."""
    merged = PerfCounters()
    for snap in snapshots:
        merged.merge(snap)
    return merged.as_dict()


# ---------------------------------------------------------------------------
# CI perf-regression gating over the BENCH_*.json records
# ---------------------------------------------------------------------------

def _without(config: Any, keys: Tuple[str, ...]) -> Any:
    if not isinstance(config, Mapping):
        return config
    return {k: v for k, v in config.items() if k not in keys}


def _kernel_speedup(record: Mapping[str, Any]) -> float:
    return float(record["speedup"])


def _arbiter_speedup(record: Mapping[str, Any], scale: str) -> float:
    return float(record["scales"][scale]["speedup"])


def _shard_speedup(record: Mapping[str, Any], scale: str,
                   nshards: str) -> float:
    return float(record["scales"][scale][nshards]["speedup"])


def check_perf_regression(fresh: Mapping[str, Any],
                          committed: Mapping[str, Any],
                          kind: str,
                          factor: float = 2.0) -> Tuple[bool, str]:
    """Gate a fresh benchmark record against the committed one.

    Returns ``(ok, message)``; ``ok`` is False when the fresh record's
    **achieved speedup** (optimized path vs the retained oracle, measured
    within one run on one machine) collapsed by more than ``factor``
    relative to the committed record's.  Speedups are hardware-independent
    where raw wall-clock is not — a committed record from a developer
    laptop would otherwise gate a CI runner on machine speed — and a
    >``factor``x wall-clock regression of the optimized path alone shows
    up exactly as a >``factor``x speedup collapse.

    Speedups are only comparable at matching workloads, so the kernel gate
    requires equal configs and the arbiter gate compares the largest scale
    the two records share (requiring the per-scale workload parameters to
    match); mismatches skip loudly rather than comparing junk.  Shared
    slowdowns hitting both paths equally are invisible to a speedup ratio
    — the CLI wrapper prints raw wall-clock as a non-fatal advisory for
    eyeballing those.
    """
    if kind == "kernel":
        # Regime sub-records (per-scale {"speedup": ...} maps under a
        # regime key): "churn" gates the cached kernel vs the PR-2
        # incremental baseline, "hyperscale" gates the vectorized kernel
        # vs the incremental oracle.  Each gates at the largest scale the
        # two records share, with matching per-scale workload parameters.
        # A regime present in only one record — the normal state while a
        # new regime rolls out, or on hosts that skipped it — must skip
        # with an explicit note rather than KeyError: the committed
        # record predates the regime, not the other way around.
        notes = []
        for regime in ("churn", "hyperscale"):
            label = f"kernel-{regime}"
            fresh_sub = fresh.get(regime) or {}
            committed_sub = committed.get(regime) or {}
            if bool(fresh_sub) != bool(committed_sub):
                side = "committed" if fresh_sub else "fresh"
                notes.append(f"{label}: {side} record lacks the regime — "
                             "skipping sub-gate")
                continue
            if not fresh_sub:
                continue
            common = sorted(set(fresh_sub.get("scales", {}))
                            & set(committed_sub.get("scales", {})),
                            key=float)
            if common and (_without(fresh_sub.get("config"),
                                    ("scales", "full_scale"))
                           != _without(committed_sub.get("config"),
                                       ("scales", "full_scale"))):
                # Workloads differ: that sub-gate is not comparable, but
                # the base incremental-vs-global gate below still is.
                notes.append(f"{label}: workload parameters differ — "
                             "skipping sub-gate")
                common = []
            elif not common:
                notes.append(f"{label}: records share no scale — "
                             "skipping sub-gate")
            if common:
                scale = common[-1]
                fresh_c = float(fresh_sub["scales"][scale]["speedup"])
                committed_c = float(committed_sub["scales"][scale]
                                    ["speedup"])
                if committed_c > 0:
                    collapse = committed_c / max(fresh_c, 1e-12)
                    if collapse > factor:
                        return False, (
                            f"{label}@{scale}: fresh speedup "
                            f"{fresh_c:.2f}x vs committed "
                            f"{committed_c:.2f}x ({collapse:.2f}x "
                            f"collapse, limit {factor}x)")
        suffix = ("" if not notes else " [" + "; ".join(notes) + "]")
        if "speedup" not in fresh or "speedup" not in committed:
            side = "fresh" if "speedup" not in fresh else "committed"
            return True, (f"kernel: {side} record lacks the base "
                          "decision-free speedup — skipping base gate"
                          + suffix)
        if fresh.get("config") != committed.get("config"):
            return True, ("kernel: configs differ; speedups are not "
                          "comparable — skipping gate (run the committed "
                          "configuration to gate)" + suffix)
        fresh_speedup = _kernel_speedup(fresh)
        committed_speedup = _kernel_speedup(committed)
        if committed_speedup <= 0:
            return True, "kernel: committed speedup is zero; skipping gate"
        collapse = committed_speedup / max(fresh_speedup, 1e-12)
        message = (f"kernel: fresh speedup {fresh_speedup:.2f}x vs "
                   f"committed {committed_speedup:.2f}x "
                   f"({collapse:.2f}x collapse, limit {factor}x)" + suffix)
        return collapse <= factor, message
    elif kind in ("arbiter", "service"):
        # Same record shape: per-scale {"speedup": ...} under "scales".
        # For the service the scale is the client count and the speedup is
        # over-the-wire decision throughput vs the in-process run.
        notes = []
        if kind == "service":
            # Codec sub-record (binary vs JSON wire codec on the pipelined
            # replay at the largest committed client count): gate the
            # binary/JSON throughput ratio the same way the shard gate
            # handles its process sub-record — a sub-record missing on
            # either side, or recorded under different workload
            # parameters, skips loudly instead of KeyError-ing.
            fresh_codec = fresh.get("codec") or {}
            committed_codec = committed.get("codec") or {}
            if bool(fresh_codec) != bool(committed_codec):
                side = "committed" if fresh_codec else "fresh"
                notes.append(f"service-codec: {side} record lacks the "
                             "sub-record — skipping sub-gate")
            elif fresh_codec:
                if (_without(fresh_codec.get("config"), ("full_scale",))
                        != _without(committed_codec.get("config"),
                                    ("full_scale",))):
                    notes.append("service-codec: workload parameters "
                                 "differ — skipping sub-gate")
                else:
                    fresh_c = float(fresh_codec["speedup"])
                    committed_c = float(committed_codec["speedup"])
                    if committed_c > 0:
                        collapse = committed_c / max(fresh_c, 1e-12)
                        if collapse > factor:
                            return False, (
                                f"service-codec: fresh binary/json speedup "
                                f"{fresh_c:.2f}x vs committed "
                                f"{committed_c:.2f}x ({collapse:.2f}x "
                                f"collapse, limit {factor}x)")
        suffix = ("" if not notes else " [" + "; ".join(notes) + "]")
        common = sorted(set(fresh.get("scales", {}))
                        & set(committed.get("scales", {})), key=float)
        if not common:
            return True, (f"{kind} records share no scale; skipping gate"
                          + suffix)
        ignore = ("scales", "full_scale")
        if (_without(fresh.get("config"), ignore)
                != _without(committed.get("config"), ignore)):
            return True, (f"{kind}: per-scale workload parameters differ; "
                          "speedups are not comparable — skipping gate"
                          + suffix)
        scale = common[-1]
        fresh_speedup = _arbiter_speedup(fresh, scale)
        committed_speedup = _arbiter_speedup(committed, scale)
        kind = f"{kind}@{scale}{suffix}"
    elif kind == "sim":
        # Dispatch-core sub-record in BENCH_sim.json: per-scale
        # {"speedup": ...} maps under the "dispatch" regime key, where the
        # speedup is the batch-dispatch/cancellable-timer loop against the
        # retained per-event heap oracle on the same workload.  Mirrors
        # the kernel regime sub-gates: a regime missing on either side —
        # the normal state while the record rolls out — skips loudly
        # instead of KeyError-ing.
        label = "sim-dispatch"
        fresh_sub = fresh.get("dispatch") or {}
        committed_sub = committed.get("dispatch") or {}
        if bool(fresh_sub) != bool(committed_sub):
            side = "committed" if fresh_sub else "fresh"
            return True, (f"{label}: {side} record lacks the regime — "
                          "skipping gate")
        if not fresh_sub:
            return True, (f"{label}: neither record has the regime — "
                          "skipping gate")
        common = sorted(set(fresh_sub.get("scales", {}))
                        & set(committed_sub.get("scales", {})), key=float)
        if not common:
            return True, f"{label}: records share no scale; skipping gate"
        ignore = ("scales", "full_scale")
        if (_without(fresh_sub.get("config"), ignore)
                != _without(committed_sub.get("config"), ignore)):
            return True, (f"{label}: workload parameters differ; speedups "
                          "are not comparable — skipping gate")
        scale = common[-1]
        fresh_speedup = float(fresh_sub["scales"][scale]["speedup"])
        committed_speedup = float(committed_sub["scales"][scale]["speedup"])
        kind = f"{label}@{scale}"
    elif kind == "shard":
        # Process-worker sub-record (one worker process per shard vs the
        # inline router on the wave workload): gate the CPU-seconds
        # speedup — wall-clock depends on the host's core count (the
        # record's "cores" field), so it is advisory-only, printed by the
        # CLI wrapper.
        fresh_proc = fresh.get("process") or {}
        committed_proc = committed.get("process") or {}
        ignore_proc = ("cores", "full_scale")
        if (fresh_proc and committed_proc
                and _without(fresh_proc.get("config"), ignore_proc)
                == _without(committed_proc.get("config"), ignore_proc)):
            fresh_c = float(fresh_proc["speedup_cpu"])
            committed_c = float(committed_proc["speedup_cpu"])
            if committed_c > 0:
                collapse = committed_c / max(fresh_c, 1e-12)
                if collapse > factor:
                    return False, (
                        f"shard-process: fresh cpu speedup {fresh_c:.2f}x "
                        f"vs committed {committed_c:.2f}x "
                        f"({collapse:.2f}x collapse, limit {factor}x)")
        common = sorted(set(fresh.get("scales", {}))
                        & set(committed.get("scales", {})), key=float)
        if not common:
            return True, "shard records share no scale; skipping gate"
        ignore = ("scales", "full_scale")
        if (_without(fresh.get("config"), ignore)
                != _without(committed.get("config"), ignore)):
            return True, ("shard: per-scale workload parameters differ; "
                          "speedups are not comparable — skipping gate")
        scale = common[-1]
        shards = sorted(set(fresh["scales"][scale])
                        & set(committed["scales"][scale]), key=float)
        if not shards:
            return True, "shard records share no shard count; skipping gate"
        nshards = shards[-1]
        fresh_speedup = _shard_speedup(fresh, scale, nshards)
        committed_speedup = _shard_speedup(committed, scale, nshards)
        kind = f"shard@{scale}x{nshards}"
    else:
        raise ValueError(f"unknown benchmark kind {kind!r}")

    if committed_speedup <= 0:
        return True, f"{kind}: committed speedup is zero; skipping gate"
    collapse = committed_speedup / max(fresh_speedup, 1e-12)
    message = (f"{kind}: fresh speedup {fresh_speedup:.2f}x vs committed "
               f"{committed_speedup:.2f}x "
               f"({collapse:.2f}x collapse, limit {factor}x)")
    return collapse <= factor, message
