"""Cluster interconnect topologies.

A :class:`Fabric` is a graph (networkx) of endpoints and switches whose
edges are :class:`~repro.simcore.fairshare.FluidLink` resources.  Both the
paper's platforms reduce to simple fabrics:

* Grid'5000 *parapluie/parapide*: "all nodes ... connected through a common
  InfiniBand switch" — a star; and
* Surveyor (BG/P): a tree of link boards feeding 4 I/O-attached PVFS servers.

Construction helpers build stars and two-level trees; arbitrary graphs can
be assembled edge by edge.  Endpoint-to-endpoint transfers pick shortest
paths and move as fluid flows across every link on the path, so a congested
switch or uplink shows up exactly where it should.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx

from ..simcore import FluidLink, FlowNetwork, SimulationError, Simulator

__all__ = ["Fabric"]


class Fabric:
    """An interconnect: endpoints, switches, and fluid links between them.

    Each edge holds two directed links (one per direction) so full-duplex
    hardware is modelled faithfully: an application writing to storage does
    not steal bandwidth from one reading.

    Parameters
    ----------
    sim, net:
        The simulator and its flow network.
    latency:
        One-way propagation + software latency per message, seconds.  Fluid
        transfers are preceded by one latency; small control messages (the
        CALCioM coordination traffic) cost latency plus size over the
        narrowest link on the path.
    """

    def __init__(self, sim: Simulator, net: FlowNetwork, latency: float = 20e-6):
        self.sim = sim
        self.net = net
        self.latency = float(latency)
        self.graph = nx.Graph()
        self._links: Dict[Tuple[Hashable, Hashable], FluidLink] = {}
        self._path_cache: Dict[Tuple[Hashable, Hashable], List[FluidLink]] = {}

    # -- construction --------------------------------------------------------
    def add_endpoint(self, name: Hashable) -> Hashable:
        """Add a leaf endpoint (compute node group, storage server...)."""
        self.graph.add_node(name, kind="endpoint")
        return name

    def add_switch(self, name: Hashable, kind: str = "switch") -> Hashable:
        """Add an internal routing node."""
        self.graph.add_node(name, kind=kind)
        return name

    def add_edge(self, a: Hashable, b: Hashable, bandwidth: float) -> None:
        """Connect two nodes with a full-duplex link of ``bandwidth`` B/s each way."""
        if a not in self.graph or b not in self.graph:
            raise SimulationError(f"both {a!r} and {b!r} must be added before linking")
        self.graph.add_edge(a, b)
        self._links[(a, b)] = FluidLink(bandwidth, name=f"{a}->{b}")
        self._links[(b, a)] = FluidLink(bandwidth, name=f"{b}->{a}")
        self._path_cache.clear()

    @classmethod
    def star(cls, sim: Simulator, net: FlowNetwork, endpoints: Dict[Hashable, float],
             switch_bandwidth: float = math.inf, latency: float = 20e-6) -> "Fabric":
        """Single-switch fabric: every endpoint hangs off one crossbar.

        ``endpoints`` maps endpoint name to its access-link bandwidth.  An
        ideal (non-blocking) crossbar uses ``switch_bandwidth=inf``; a finite
        value models an oversubscribed core.
        """
        fab = cls(sim, net, latency=latency)
        fab.add_switch("switch")
        for name, bw in endpoints.items():
            fab.add_endpoint(name)
            fab.add_edge(name, "switch", bw)
        fab.switch_limit = switch_bandwidth
        return fab

    @classmethod
    def tree(cls, sim: Simulator, net: FlowNetwork,
             groups: Dict[Hashable, Dict[Hashable, float]],
             uplink_bandwidth: float, latency: float = 20e-6) -> "Fabric":
        """Two-level tree: leaf switches with finite uplinks to one core.

        ``groups`` maps a leaf-switch name to its endpoints (name -> access
        bandwidth); every leaf connects to the core switch with
        ``uplink_bandwidth``.  The BG/P-flavoured topology: traffic staying
        inside a group never crosses the (oversubscribable) uplink, while
        cross-group traffic — e.g. compute racks talking to I/O-attached
        storage — contends on it.
        """
        fab = cls(sim, net, latency=latency)
        fab.add_switch("core")
        for leaf, endpoints in groups.items():
            fab.add_switch(leaf, kind="leaf")
            fab.add_edge(leaf, "core", uplink_bandwidth)
            for name, bw in endpoints.items():
                fab.add_endpoint(name)
                fab.add_edge(name, leaf, bw)
        return fab

    # -- routing --------------------------------------------------------------
    def path_links(self, src: Hashable, dst: Hashable) -> List[FluidLink]:
        """Directed links along the shortest path from ``src`` to ``dst``."""
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        try:
            nodes = nx.shortest_path(self.graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise SimulationError(f"no path {src!r} -> {dst!r}") from exc
        links = [self._links[(a, b)] for a, b in zip(nodes, nodes[1:])]
        self._path_cache[key] = links
        return links

    def link(self, a: Hashable, b: Hashable) -> FluidLink:
        """The directed link for edge ``a -> b``."""
        return self._links[(a, b)]

    # -- data movement -----------------------------------------------------------
    def transfer(self, src: Hashable, dst: Hashable, nbytes: float,
                 weight: float = 1.0, cap: Optional[float] = None,
                 extra_links: Optional[List[FluidLink]] = None,
                 label: str = "transfer"):
        """Move ``nbytes`` from ``src`` to ``dst``; returns the completion event.

        ``extra_links`` appends resources beyond the fabric (e.g. a storage
        server's cache-modulated ingest pipe) to the flow's path.  The flow
        starts after one propagation latency.
        """
        links = list(self.path_links(src, dst))
        if extra_links:
            links.extend(extra_links)
        done = self.sim.event()

        def _launch() -> None:
            flow = self.net.start_flow(nbytes, links, weight=weight, cap=cap,
                                       label=label)
            ev = flow.done
            if ev.processed:
                # Zero-byte transfer: the flow completed inside start_flow
                # and its lazily-materialized event is already processed.
                done.trigger(ev)
            else:
                ev.callbacks.append(done.trigger)

        if self.latency > 0:
            # The Timer handle is dropped deliberately: a launched transfer
            # is never revoked (cancel_flow is the post-launch abort path).
            self.sim.call_at(self.sim.now + self.latency, _launch)
        else:
            _launch()
        return done

    def message_delay(self, src: Hashable, dst: Hashable, nbytes: float = 0.0) -> float:
        """Latency-dominated cost of a small control message.

        Control traffic (CALCioM's Inform/Release exchanges are tens of
        bytes) is far below the fluid regime; model it as latency plus
        serialization on the narrowest path link.
        """
        links = self.path_links(src, dst)
        bw = min((link.capacity for link in links), default=math.inf)
        ser = nbytes / bw if math.isfinite(bw) and bw > 0 else 0.0
        return self.latency + ser

    def send_message(self, src: Hashable, dst: Hashable, nbytes: float = 0.0):
        """Timeout event covering one control message's delivery."""
        return self.sim.timeout(self.message_delay(src, dst, nbytes))
