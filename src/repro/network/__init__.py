"""Interconnect substrate: topologies, fluid transfers, link monitoring."""

from .monitoring import LinkMonitor
from .topology import Fabric

__all__ = ["Fabric", "LinkMonitor"]
