"""Per-link utilization recording.

Attaches to the flow network's observer hook and records every watched
link's aggregate rate as a step-function :class:`TimeSeries` — the raw
material for Fig 3-style throughput plots, server-utilization studies, and
experiment debugging ("who was on the wire when B stalled?").
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..simcore import FluidLink, FlowNetwork, Simulator, TimeSeries

__all__ = ["LinkMonitor"]


class LinkMonitor:
    """Records the aggregate rate of selected links at every reallocation.

    Parameters
    ----------
    sim, net:
        Kernel objects.
    links:
        The links to watch.  More can be added later with :meth:`watch`.

    Samples are taken whenever the allocator reassigns rates, so the series
    is exact (piecewise-constant between samples), not polled.
    """

    def __init__(self, sim: Simulator, net: FlowNetwork,
                 links: Iterable[FluidLink] = ()):
        self.sim = sim
        self.net = net
        self.series: Dict[FluidLink, TimeSeries] = {}
        for link in links:
            self.watch(link)
        net.add_observer(self._sample)

    def watch(self, link: FluidLink) -> TimeSeries:
        """Start recording ``link``; returns its series."""
        if link not in self.series:
            ts = TimeSeries(name=link.name, perf=self.net.perf)
            ts.record(self.sim.now, 0.0)
            self.series[link] = ts
        return self.series[link]

    def _sample(self, time: float, flows) -> None:
        for link, ts in self.series.items():
            ts.record(time, self.net.link_rate(link))

    # -- queries -----------------------------------------------------------
    def utilization(self, link: FluidLink, t0: float, t1: float) -> float:
        """Mean fraction of ``link``'s capacity used over [t0, t1]."""
        ts = self.series[link]
        return ts.time_average(t0, t1) / link.capacity

    def bytes_through(self, link: FluidLink, t0: float, t1: float) -> float:
        """∫ rate dt — bytes carried by ``link`` over the window."""
        return self.series[link].integral(t0, t1)

    def peak_rate(self, link: FluidLink) -> float:
        """Highest recorded aggregate rate."""
        values = self.series[link].values
        return float(values.max()) if len(values) else 0.0
