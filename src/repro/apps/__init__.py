"""Application models: the IOR-like benchmark and paper-motivated profiles."""

from .ior import IORApp, IORConfig, PhaseRecord
from .profiles import checkpoint_like, cm1_like, namd_like

__all__ = [
    "IORApp", "IORConfig", "PhaseRecord",
    "cm1_like", "namd_like", "checkpoint_like",
]
