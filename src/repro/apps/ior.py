"""IOR-like benchmark application.

The paper's evaluation uses "a benchmark similar to IOR ... [that] allows
us to control the access patterns of each group of processes (for example,
contiguous or strided with a specified number of blocks and block sizes)".
:class:`IORApp` is that benchmark: a group of processes that, after an
optional start offset (the Δ-graph ``dt``), performs ``iterations`` I/O
phases of ``nfiles`` collective writes each, with full control over the
pattern, the CALCioM hook grain, and the access scope.

Terminology
-----------
scope:
    What counts as *one access* to the coordination layer — the unit
    FCFS serialization protects.  ``"file"``: each file write is informed
    and completed separately.  ``"phase"``: a whole iteration (all its
    files) is one access (the Fig 10/11 setup, where application A's four
    files form one logical output set).
grain:
    Where the ``Inform/Release`` hook points sit *inside* an access —
    ``"round"`` (each collective-buffering round; the authors' ADIO
    placement), ``"file"`` (between files; the application-level placement
    that yields Fig 10's saw pattern), or ``None`` (no interior hooks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..mpisim import (
    ADIOLayer, AccessPattern, Communicator, IOGuard, MPIInfo, NullGuard,
)
from ..platforms import Platform
from ..simcore import Process

__all__ = ["IORConfig", "PhaseRecord", "IORApp"]


@dataclass(frozen=True)
class IORConfig:
    """Workload description for one IOR-like application instance."""

    name: str
    nprocs: int
    pattern: AccessPattern
    nfiles: int = 1
    iterations: int = 1
    start_time: float = 0.0        #: Δ-graph dt: when the app begins
    period: Optional[float] = None  #: start-to-start spacing of iterations
    think_time: float = 0.0        #: end-to-start compute gap (if no period)
    scope: str = "phase"           #: "phase" or "file" (see module docs)
    grain: Optional[str] = "round"  #: "round", "file", or None
    #: §VI future work, implemented: "an interrupted application can
    #: reorganize some of its internal operations (communications,
    #: compression, data processing) while waiting for its I/O to be
    #: resumed in order to further gain time."  When True, time spent
    #: blocked in CALCioM is credited against the next compute gap.
    overlap_compute: bool = False
    procs_per_node: int = 1
    cb_buffer_size: int = 4 * 1024 * 1024
    naggregators: Optional[int] = None
    #: File-system placement on partitioned platforms: ``None`` puts every
    #: file on the application's stable default partition; a sequence of
    #: partition indices places file ``f`` of each phase on entry
    #: ``f % len`` (several distinct entries make this a *span-partition*
    #: application, coordinated through the cross-shard protocol).
    #: Ignored (any value) on single-partition machines.
    partitions: Optional[Tuple[int, ...]] = None
    #: I/O direction per phase: ``"write"`` (default — every iteration
    #: writes fresh files) or ``"readwrite"`` (even iterations write, odd
    #: iterations read the previous iteration's files back — a
    #: checkpoint/restart-flavoured mix that keeps read traffic on data
    #: that exists).
    operation: str = "write"

    def __post_init__(self) -> None:
        if self.partitions is not None:
            object.__setattr__(self, "partitions",
                               tuple(int(p) for p in self.partitions))
            if not self.partitions:
                raise ValueError("partitions must be None or non-empty")
            if any(p < 0 for p in self.partitions):
                raise ValueError(f"negative partition in {self.partitions}")
        if self.nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {self.nprocs}")
        if self.nfiles < 1:
            raise ValueError(f"nfiles must be >= 1, got {self.nfiles}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if self.scope not in ("phase", "file"):
            raise ValueError(f"scope must be 'phase' or 'file', got {self.scope!r}")
        if self.grain not in (None, "round", "file"):
            raise ValueError(f"grain must be None/'round'/'file', got {self.grain!r}")
        if self.operation not in ("write", "readwrite"):
            raise ValueError(
                f"operation must be 'write' or 'readwrite', got {self.operation!r}")
        if self.start_time < 0:
            raise ValueError("start_time must be >= 0 (shift the other app instead)")

    @property
    def bytes_per_phase(self) -> int:
        """Aggregate bytes one iteration writes."""
        return self.nfiles * self.pattern.total_bytes(self.nprocs)


@dataclass
class PhaseRecord:
    """Measured outcome of one I/O phase (iteration)."""

    iteration: int
    start: float
    end: float
    bytes: int
    wait_time: float = 0.0   #: time blocked in CALCioM
    comm_time: float = 0.0   #: collective-buffering shuffle time
    write_time: float = 0.0  #: time in actual file-system writes

    @property
    def duration(self) -> float:
        """Wall-clock I/O-phase time — the paper's per-phase 'write time'."""
        return self.end - self.start

    @property
    def throughput(self) -> float:
        """Bytes/s observed by the application for this phase."""
        return self.bytes / self.duration if self.duration > 0 else float("inf")


class IORApp:
    """A runnable IOR-like application on a platform.

    Parameters
    ----------
    platform:
        The machine; a client endpoint named after the app is registered.
    config:
        The workload.
    guard:
        A CALCioM session (or any :class:`~repro.mpisim.adio.IOGuard`);
        defaults to the uncoordinated :class:`NullGuard`.

    After :meth:`start` and a simulation run, :attr:`phases` holds one
    :class:`PhaseRecord` per iteration and :attr:`done` is the completion
    event (value = this app).
    """

    def __init__(self, platform: Platform, config: IORConfig,
                 guard: Optional[IOGuard] = None):
        self.platform = platform
        self.config = config
        self.guard = guard if guard is not None else NullGuard()
        self.client = platform.add_client(config.name, config.nprocs)
        self.comm = Communicator(
            platform.sim, config.nprocs,
            alpha=platform.config.latency,
            per_proc_bandwidth=platform.config.mpi_bandwidth_per_core,
            name=config.name,
        )
        self.adio = ADIOLayer(
            platform.sim, platform.pfs, self.client, config.name, self.comm,
            cb_buffer_size=config.cb_buffer_size,
            naggregators=config.naggregators,
            procs_per_node=config.procs_per_node,
            guard=self.guard,
        )
        self.phases: List[PhaseRecord] = []
        #: Partition footprint of this application's accesses (always
        #: ``(0,)`` on unpartitioned machines); matches what its CALCioM
        #: session exchanges for shard routing.
        self.partitions = platform.app_partitions(config.name,
                                                  config.partitions)
        self._process: Optional[Process] = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> Process:
        """Launch the application process; returns it (it is also an event)."""
        if self._process is not None:
            raise RuntimeError(f"{self.config.name} already started")
        self._process = self.platform.sim.process(
            self._run(), name=self.config.name
        )
        return self._process

    @property
    def done(self) -> Process:
        """The app's completion event (call :meth:`start` first)."""
        if self._process is None:
            raise RuntimeError(f"{self.config.name} not started")
        return self._process

    # -- behaviour -------------------------------------------------------------
    def _run(self):
        cfg = self.config
        sim = self.platform.sim
        if cfg.start_time > 0:
            yield sim.timeout(cfg.start_time)
        for it in range(cfg.iterations):
            phase_start = sim.now
            record = yield from self._io_phase(it, phase_start)
            self.phases.append(record)
            if it < cfg.iterations - 1:
                yield sim.timeout(self._gap(phase_start, record))
        return self

    def _gap(self, phase_start: float, record: "PhaseRecord") -> float:
        """Delay before the next iteration starts.

        With ``overlap_compute``, waiting inside CALCioM was spent on
        reorganized internal work, so it shortens the upcoming compute gap
        (bounded at zero — an app cannot bank more credit than it uses).
        """
        cfg = self.config
        now = self.platform.sim.now
        if cfg.period is not None:
            gap = max(0.0, phase_start + cfg.period - now)
        else:
            gap = cfg.think_time
        if cfg.overlap_compute:
            gap = max(0.0, gap - record.wait_time)
        return gap

    def _io_phase(self, iteration: int, phase_start: float):
        cfg = self.config
        sim = self.platform.sim
        record = PhaseRecord(iteration=iteration, start=phase_start,
                             end=phase_start, bytes=cfg.bytes_per_phase)
        phase_scoped = cfg.scope == "phase"
        if phase_scoped:
            plan0 = self.adio.plan(cfg.pattern)
            self.guard.prepare(MPIInfo(
                app=cfg.name, nprocs=cfg.nprocs, files=cfg.nfiles,
                total_bytes=cfg.bytes_per_phase,
                rounds=cfg.nfiles * plan0.nrounds,
            ))
            t0 = sim.now
            yield from self.guard.begin_access()
            record.wait_time += sim.now - t0
        reading = cfg.operation == "readwrite" and iteration % 2 == 1
        try:
            for f in range(cfg.nfiles):
                # Read phases re-read the files the previous (write)
                # iteration produced; write phases create fresh ones.
                source = iteration - 1 if reading else iteration
                path = f"/{cfg.name}/iter{source}/file{f}"
                self.platform.pin_path(path, self.platform.file_partition(
                    cfg.name, f, cfg.partitions))
                if reading:
                    stats = yield from self.adio.read_collective(
                        path, cfg.pattern, grain=cfg.grain
                    )
                else:
                    stats = yield from self.adio.write_collective(
                        path, cfg.pattern, grain=cfg.grain
                    )
                record.wait_time += stats.wait_time
                record.comm_time += stats.comm_time
                record.write_time += stats.write_time
            if phase_scoped:
                yield from self.guard.end_access()
        finally:
            if phase_scoped:
                self.guard.complete()
        record.end = sim.now
        return record

    # -- results ----------------------------------------------------------------
    @property
    def write_times(self) -> List[float]:
        """Per-iteration phase durations (the paper's y-axis)."""
        return [p.duration for p in self.phases]

    def total_io_time(self) -> float:
        """Σ phase durations across iterations."""
        return sum(p.duration for p in self.phases)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<IORApp {self.config.name!r} P={self.config.nprocs}>"
