"""Application profiles from the paper's motivation (§II-E).

The paper contrasts two real workloads to argue that I/O diversity defeats
server-side-only scheduling:

* **CM1** (atmospheric simulation on Blue Waters): "synchronously writes
  snapshot files every 3 minutes, for an amount of 23 MB/core";
* **NAMD** (chemistry): "writes trajectory files of a few bytes per core
  every second through a designated set of output processors".

These factories produce :class:`~repro.apps.ior.IORConfig` workloads with
those shapes (scaled by a ``time_scale`` so experiments need not simulate
minutes of compute to see one interference event).
"""

from __future__ import annotations

from typing import Optional

from ..mpisim import Contiguous
from .ior import IORConfig

__all__ = ["cm1_like", "namd_like", "checkpoint_like"]


def cm1_like(nprocs: int, name: str = "cm1", start_time: float = 0.0,
             iterations: int = 3, mb_per_core: float = 23.0,
             period: float = 180.0, time_scale: float = 1.0) -> IORConfig:
    """CM1-shaped workload: large synchronous periodic snapshots.

    ``time_scale < 1`` shrinks the inter-snapshot period (data sizes are
    untouched so contention physics stay honest).
    """
    return IORConfig(
        name=name, nprocs=nprocs,
        pattern=Contiguous(block_size=int(mb_per_core * 1e6)),
        nfiles=1, iterations=iterations,
        start_time=start_time, period=period * time_scale,
        scope="phase", grain="round",
    )


def namd_like(nprocs: int, name: str = "namd", start_time: float = 0.0,
              iterations: int = 30, bytes_per_core: float = 64.0,
              period: float = 1.0, output_procs: Optional[int] = None) -> IORConfig:
    """NAMD-shaped workload: tiny frequent trajectory appends.

    The "designated set of output processors" becomes a small aggregator
    count; each iteration moves only a few KB, so the workload is latency-
    dominated — the kind of neighbour a snapshot writer barely notices but
    that an unfair share can starve.
    """
    if output_procs is None:
        output_procs = max(1, nprocs // 64)
    return IORConfig(
        name=name, nprocs=nprocs,
        pattern=Contiguous(block_size=max(1, int(bytes_per_core))),
        nfiles=1, iterations=iterations,
        start_time=start_time, period=period,
        scope="phase", grain="file",
        naggregators=output_procs,
    )


def checkpoint_like(nprocs: int, name: str = "ckpt", start_time: float = 0.0,
                    mb_per_core: float = 64.0, nfiles: int = 1,
                    iterations: int = 1) -> IORConfig:
    """Defensive-checkpoint workload: one heavyweight burst, N-1 style."""
    return IORConfig(
        name=name, nprocs=nprocs,
        pattern=Contiguous(block_size=int(mb_per_core * 1e6)),
        nfiles=nfiles, iterations=iterations,
        start_time=start_time,
        scope="phase", grain="round",
    )
