"""Interference-factor arithmetic (§II-C).

    I = T / T(alone)  >= 1

"I is arguably more appropriate to study interference because it gives an
absolute reference for a noninterfering system: I = 1.  Moreover, it allows
the comparison of applications that have different size or different I/O
requirements."
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = [
    "interference_factor", "sum_interference_factors", "cpu_seconds_wasted",
    "efficiency_summary",
]


def interference_factor(measured: float, alone: float) -> float:
    """I = T / T_alone.  Values below 1 (within noise) indicate a
    measurement problem and raise."""
    if alone <= 0:
        raise ValueError(f"standalone time must be positive, got {alone}")
    if measured < 0:
        raise ValueError(f"measured time must be >= 0, got {measured}")
    factor = measured / alone
    if factor < 0.999:
        raise ValueError(
            f"interference factor {factor:.3f} < 1: contention cannot speed "
            "an application up; check the baselines"
        )
    return factor


def sum_interference_factors(measured: Mapping[str, float],
                             alone: Mapping[str, float]) -> float:
    """f = Σ_X I_X over applications (§III-A.4's example objective)."""
    return sum(interference_factor(measured[app], alone[app])
               for app in measured)


def cpu_seconds_wasted(io_times: Mapping[str, float],
                       nprocs: Mapping[str, int]) -> float:
    """f = Σ_X N_X · T_X (the paper's Fig 11 metric)."""
    return sum(nprocs[app] * io_times[app] for app in io_times)


def efficiency_summary(io_times: Mapping[str, float],
                       alone: Mapping[str, float],
                       nprocs: Mapping[str, int]) -> Dict[str, float]:
    """All machine-wide metrics for one experiment, keyed by metric name."""
    factors = {app: interference_factor(io_times[app], alone[app])
               for app in io_times}
    return {
        "cpu-seconds-wasted": cpu_seconds_wasted(io_times, nprocs),
        "sum-interference-factors": sum(factors.values()),
        "max-slowdown": max(factors.values()),
        "total-io-time": sum(io_times.values()),
    }
