"""Replay a job-scheduler trace window onto the simulated I/O stack.

The paper motivates CALCioM with machine-level statistics (Fig 1) and
evaluates it with controlled two-application experiments.  This module
closes the loop between the two: take a window of an SWF trace (real or
synthetic), turn every job into a periodic-writer application, run them
all on one simulated platform under a coordination strategy, and measure
machine-wide efficiency.

Scaling: trace jobs run on up to 131072 cores while the simulated file
systems are calibrated for hundreds; ``core_scale`` divides job sizes
(bandwidth shares are ratios, so shapes survive scaling), and the phase
volume/pacing parameters set each job's I/O duty cycle — the paper's µ.

The incremental allocation kernel makes many-application windows (50-500
concurrent jobs) tractable: :func:`replay_spec` builds the window as a
single declarative :class:`~repro.experiments.spec.ExperimentSpec`, so
replays compose with :class:`~repro.experiments.engine.ExperimentEngine`
campaigns, executors and perf counters like any other experiment — the
``swf-replay`` scenario in :mod:`repro.experiments.scenarios` is exactly
that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..apps import IORConfig
from ..mpisim import Contiguous
from ..platforms import PlatformConfig
from ..traces import JobIOModel, SWFTrace
from .engine import ExperimentResult, default_engine
from .multi import MultiResult
from .spec import ExperimentSpec, WorkloadSpec

__all__ = ["ReplayPlan", "plan_replay", "replay_spec", "replay_trace",
           "replay_result"]


@dataclass(frozen=True)
class ReplayPlan:
    """The applications a trace window maps to."""

    configs: Tuple[IORConfig, ...]
    window: Tuple[float, float]
    core_scale: int

    @property
    def total_procs(self) -> int:
        return sum(c.nprocs for c in self.configs)


def plan_replay(trace: SWFTrace, window: Tuple[float, float],
                core_scale: int = 256,
                bytes_per_process: int = 16_000_000,
                phases_per_job: int = 4,
                max_jobs: Optional[int] = None,
                min_procs: int = 1,
                io_model: Optional[JobIOModel] = None,
                io_seed: int = 0) -> ReplayPlan:
    """Map the jobs active in ``window`` to IOR-like workloads.

    Each job becomes a periodic writer: ``phases_per_job`` I/O phases
    spread evenly over the job's in-window runtime.  Pick the phase volume
    so a standalone phase is short relative to the phase spacing on your
    platform — the resulting I/O duty cycle plays the role of the paper's
    µ, and contention stretches it.

    Without ``io_model`` every job writes one uniform contiguous
    ``bytes_per_process`` phase (the historical behavior, still right for
    controlled scaling studies).  With a
    :class:`~repro.traces.JobIOModel`, each job's access pattern and
    per-process volume are sampled from the model's Fig 1-style
    distributions, deterministically per ``(io_seed, job_id)``.
    """
    t0, t1 = window
    if t1 <= t0:
        raise ValueError("window must have positive length")
    if phases_per_job < 1:
        raise ValueError("phases_per_job must be >= 1")
    jobs = [j for j in trace.valid_jobs()
            if j.start_time < t1 and j.end_time > t0]
    jobs.sort(key=lambda j: j.start_time)
    if max_jobs is not None:
        jobs = jobs[:max_jobs]
    configs: List[IORConfig] = []
    for job in jobs:
        nprocs = max(min_procs, job.allocated_procs // core_scale)
        start = max(0.0, job.start_time - t0)
        in_window = min(job.end_time, t1) - max(job.start_time, t0)
        # Short residents still do at least one phase; long ones pace
        # phases_per_job evenly across their window residence.
        iterations = max(1, min(phases_per_job,
                                math.ceil(in_window / (t1 - t0)
                                          * phases_per_job)))
        period = in_window / iterations if iterations > 1 else None
        if io_model is not None:
            job_rng = np.random.default_rng((int(io_seed), int(job.job_id)))
            pattern, _ = io_model.sample(job_rng, nprocs)
        else:
            pattern = Contiguous(block_size=max(1, int(bytes_per_process)))
        configs.append(IORConfig(
            name=f"job{job.job_id}",
            nprocs=nprocs,
            pattern=pattern,
            iterations=iterations,
            period=period,
            start_time=start,
            grain="round",
        ))
    return ReplayPlan(configs=tuple(configs), window=window,
                      core_scale=core_scale)


def replay_spec(platform_cfg: PlatformConfig, trace: SWFTrace,
                window: Tuple[float, float],
                strategy: Optional[str] = None,
                core_scale: int = 256,
                bytes_per_process: int = 16_000_000,
                phases_per_job: int = 4,
                max_jobs: Optional[int] = None,
                measure_alone: bool = True,
                io_model: Optional[JobIOModel] = None,
                io_seed: int = 0,
                name: str = "trace-replay") -> ExperimentSpec:
    """Plan a trace window and package it as one declarative spec.

    The returned spec carries ``meta["napps"]``/``meta["window"]`` so
    campaign fan-outs can be regrouped by window coordinates.
    """
    plan = plan_replay(trace, window, core_scale=core_scale,
                       bytes_per_process=bytes_per_process,
                       phases_per_job=phases_per_job, max_jobs=max_jobs,
                       io_model=io_model, io_seed=io_seed)
    if not plan.configs:
        raise ValueError("no jobs active in the requested window")
    workloads = tuple(WorkloadSpec.from_ior(cfg) for cfg in plan.configs)
    return ExperimentSpec(
        platform=platform_cfg, workloads=workloads, strategy=strategy,
        name=name, measure_alone=measure_alone,
        meta={"napps": len(workloads),
              "window": [float(window[0]), float(window[1])],
              "core_scale": core_scale},
    )


def replay_trace(platform_cfg: PlatformConfig, trace: SWFTrace,
                 window: Tuple[float, float],
                 strategy: Optional[str] = None,
                 core_scale: int = 256,
                 bytes_per_process: int = 16_000_000,
                 phases_per_job: int = 4,
                 max_jobs: Optional[int] = None,
                 measure_alone: bool = True) -> MultiResult:
    """Plan and run a trace window under one coordination strategy."""
    spec = replay_spec(platform_cfg, trace, window, strategy=strategy,
                       core_scale=core_scale,
                       bytes_per_process=bytes_per_process,
                       phases_per_job=phases_per_job, max_jobs=max_jobs,
                       measure_alone=measure_alone)
    return default_engine().run(spec).as_multi()


def replay_result(platform_cfg: PlatformConfig, trace: SWFTrace,
                  window: Tuple[float, float],
                  **kwargs) -> ExperimentResult:
    """Like :func:`replay_trace` but returning the uniform engine result
    (with perf counters attached)."""
    spec = replay_spec(platform_cfg, trace, window, **kwargs)
    return default_engine().run(spec)
