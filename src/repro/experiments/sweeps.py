"""Parameter-sweep helpers shared by Fig 4/6/9 benchmarks.

:func:`split_pairs` is the pure helper; the sweep runners are thin shims
over :class:`~repro.experiments.engine.ExperimentEngine`, which runs the
whole campaign through one executor fan-out (and one baseline cache).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..apps import IORConfig
from ..platforms import PlatformConfig
from .deltagraph import DeltaGraph
from .engine import default_engine
from .runner import PairResult, _deprecated

__all__ = ["split_pairs", "size_split_sweep", "strategy_comparison"]


def split_pairs(total_cores: int, sizes_b: Sequence[int]
                ) -> List[Tuple[int, int]]:
    """Fig 6/9 style splits: (N_A, N_B) with N_A = total - N_B.

    E.g. ``split_pairs(768, [24, 48, 96, 192, 384])`` reproduces the
    paper's G5K division of 768 cores.
    """
    pairs = []
    for nb in sizes_b:
        if not 0 < nb < total_cores:
            raise ValueError(f"invalid split: B={nb} of {total_cores}")
        pairs.append((total_cores - nb, nb))
    return pairs


def size_split_sweep(platform_cfg: PlatformConfig, base_a: IORConfig,
                     base_b: IORConfig, total_cores: int,
                     sizes_b: Sequence[int], dts: Sequence[float],
                     strategy: Optional[str] = None) -> Dict[int, DeltaGraph]:
    """One Δ-graph per (N_A, N_B) split — the full Fig 6 experiment.

    .. deprecated:: use ``ExperimentEngine.size_split_sweep``.
    """
    _deprecated("size_split_sweep()", "ExperimentEngine.size_split_sweep()")
    return default_engine().size_split_sweep(
        platform_cfg, base_a, base_b, total_cores, sizes_b, dts,
        strategy=strategy)


def strategy_comparison(platform_cfg: PlatformConfig, cfg_a: IORConfig,
                        cfg_b: IORConfig, dt: float,
                        strategies: Sequence[Optional[str]] = (
                            None, "fcfs", "interrupt", "dynamic",
                        )) -> Dict[Optional[str], PairResult]:
    """The same pair under each coordination strategy (Fig 9/11 columns).

    .. deprecated:: use ``ExperimentEngine.strategy_comparison``.
    """
    _deprecated("strategy_comparison()",
                "ExperimentEngine.strategy_comparison()")
    return default_engine().strategy_comparison(platform_cfg, cfg_a, cfg_b,
                                                dt, strategies=strategies)
