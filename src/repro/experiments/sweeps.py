"""Parameter-sweep helpers shared by Fig 4/6/9 benchmarks."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps import IORConfig
from ..platforms import PlatformConfig
from .deltagraph import DeltaGraph, run_delta_graph
from .runner import PairResult, run_pair

__all__ = ["split_pairs", "size_split_sweep", "strategy_comparison"]


def split_pairs(total_cores: int, sizes_b: Sequence[int]
                ) -> List[Tuple[int, int]]:
    """Fig 6/9 style splits: (N_A, N_B) with N_A = total - N_B.

    E.g. ``split_pairs(768, [24, 48, 96, 192, 384])`` reproduces the
    paper's G5K division of 768 cores.
    """
    pairs = []
    for nb in sizes_b:
        if not 0 < nb < total_cores:
            raise ValueError(f"invalid split: B={nb} of {total_cores}")
        pairs.append((total_cores - nb, nb))
    return pairs


def size_split_sweep(platform_cfg: PlatformConfig, base_a: IORConfig,
                     base_b: IORConfig, total_cores: int,
                     sizes_b: Sequence[int], dts: Sequence[float],
                     strategy: Optional[str] = None) -> Dict[int, DeltaGraph]:
    """One Δ-graph per (N_A, N_B) split — the full Fig 6 experiment.

    ``base_a``/``base_b`` supply everything but the core counts.
    """
    graphs: Dict[int, DeltaGraph] = {}
    for na, nb in split_pairs(total_cores, sizes_b):
        cfg_a = replace(base_a, nprocs=na)
        cfg_b = replace(base_b, nprocs=nb)
        graphs[nb] = run_delta_graph(platform_cfg, cfg_a, cfg_b, dts,
                                     strategy=strategy)
    return graphs


def strategy_comparison(platform_cfg: PlatformConfig, cfg_a: IORConfig,
                        cfg_b: IORConfig, dt: float,
                        strategies: Sequence[Optional[str]] = (
                            None, "fcfs", "interrupt", "dynamic",
                        )) -> Dict[Optional[str], PairResult]:
    """The same pair under each coordination strategy (Fig 9/11 columns)."""
    return {
        s: run_pair(platform_cfg, cfg_a, cfg_b, dt=dt, strategy=s)
        for s in strategies
    }
