"""Declarative experiment descriptions.

Every figure in the paper is "run a set of applications under a
coordination setup and compare against standalone baselines".  This module
captures that as data: a :class:`WorkloadSpec` describes one application
(mirroring :class:`~repro.apps.IORConfig` field for field), and an
:class:`ExperimentSpec` bundles a platform, a workload list, and a
strategy into one runnable, JSON-round-trippable unit.  Campaigns
(Δ-graphs, size-split sweeps, policy comparisons) are plain lists of
specs, which is what lets the engine fan them out across processes.

Serialization rules
-------------------
``to_dict``/``from_dict`` round-trip through plain dicts of JSON types
(``to_json``/``from_json`` wrap :mod:`json`).  Access patterns serialize
as ``{"kind": "contiguous"|"strided", ...}``; infinite bandwidths encode
as the string ``"inf"``.  Strategies must be *named* (``"fcfs"``,
``"dynamic"``, ...) to serialize — :class:`~repro.core.Strategy`
instances are accepted at runtime but rejected by ``to_dict``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Tuple, Union

from ..apps import IORConfig
from ..mpisim import AccessPattern, Contiguous, Strided
from ..platforms import PlatformConfig

__all__ = [
    "WorkloadSpec", "ExperimentSpec",
    "pattern_to_dict", "pattern_from_dict",
    "platform_to_dict", "platform_from_dict",
]

BASELINE_NAME = "_alone"  #: canonical workload name for standalone runs


# ---------------------------------------------------------------------------
# Pattern and platform (de)serialization
# ---------------------------------------------------------------------------

def pattern_to_dict(pattern: AccessPattern) -> Dict[str, Any]:
    """Serialize an access pattern to a plain dict."""
    if isinstance(pattern, Strided):
        return {"kind": "strided", "block_size": pattern.block_size,
                "nblocks": pattern.nblocks}
    if isinstance(pattern, Contiguous):
        return {"kind": "contiguous", "block_size": pattern.block_size}
    raise TypeError(f"cannot serialize pattern {pattern!r}")


def pattern_from_dict(data: Dict[str, Any]) -> AccessPattern:
    """Inverse of :func:`pattern_to_dict`."""
    kind = data.get("kind")
    if kind == "contiguous":
        return Contiguous(block_size=int(data["block_size"]))
    if kind == "strided":
        return Strided(block_size=int(data["block_size"]),
                       nblocks=int(data.get("nblocks", 1)))
    raise ValueError(f"unknown pattern kind {kind!r}")


def _encode_value(value: Any) -> Any:
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return value


def _decode_float(value: Any) -> float:
    if value == "inf":
        return math.inf
    return float(value)


def platform_to_dict(cfg: PlatformConfig) -> Dict[str, Any]:
    """Serialize a :class:`~repro.platforms.PlatformConfig`."""
    return {f.name: _encode_value(getattr(cfg, f.name))
            for f in fields(PlatformConfig)}


#: Fields decoded through :func:`_decode_float` — derived from the
#: dataclass annotations so new float fields round-trip automatically.
_PLATFORM_FLOAT_FIELDS = frozenset(
    f.name for f in fields(PlatformConfig) if "float" in str(f.type))


def platform_from_dict(data: Dict[str, Any]) -> PlatformConfig:
    """Inverse of :func:`platform_to_dict`."""
    known = {f.name for f in fields(PlatformConfig)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown platform fields: {sorted(unknown)}")
    kwargs = dict(data)
    for key in _PLATFORM_FLOAT_FIELDS:
        if key in kwargs and kwargs[key] is not None:
            kwargs[key] = _decode_float(kwargs[key])
    return PlatformConfig(**kwargs)


# ---------------------------------------------------------------------------
# WorkloadSpec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one application in an experiment.

    Mirrors :class:`~repro.apps.IORConfig` field for field (a module-level
    assertion keeps them in sync) but adds serialization, so experiment
    descriptions can live in JSON files and cross process boundaries.
    """

    name: str
    nprocs: int
    pattern: AccessPattern
    nfiles: int = 1
    iterations: int = 1
    start_time: float = 0.0
    period: Optional[float] = None
    think_time: float = 0.0
    scope: str = "phase"
    grain: Optional[str] = "round"
    overlap_compute: bool = False
    procs_per_node: int = 1
    cb_buffer_size: int = 4 * 1024 * 1024
    naggregators: Optional[int] = None
    partitions: Optional[Tuple[int, ...]] = None
    operation: str = "write"

    def __post_init__(self) -> None:
        # Normalize so JSON round-trips (lists) compare equal to literals.
        if self.partitions is not None:
            object.__setattr__(self, "partitions",
                               tuple(int(p) for p in self.partitions))
        # Eager validation: constructing the IORConfig runs its checks.
        self.to_ior()

    # -- conversion --------------------------------------------------------
    def to_ior(self) -> IORConfig:
        """The runnable :class:`~repro.apps.IORConfig` this spec describes."""
        return IORConfig(**{f.name: getattr(self, f.name)
                            for f in fields(IORConfig)})

    @classmethod
    def from_ior(cls, cfg: IORConfig) -> "WorkloadSpec":
        return cls(**{f.name: getattr(cfg, f.name)
                      for f in fields(IORConfig)})

    def with_(self, **changes) -> "WorkloadSpec":
        """A modified copy (e.g. ``w.with_(nprocs=384)``)."""
        return replace(self, **changes)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["pattern"] = pattern_to_dict(self.pattern)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown workload fields: {sorted(unknown)}")
        kwargs = dict(data)
        kwargs["pattern"] = pattern_from_dict(kwargs["pattern"])
        return cls(**kwargs)


_SPEC_FIELDS = tuple(f.name for f in fields(WorkloadSpec))
_IOR_FIELDS = tuple(f.name for f in fields(IORConfig))
assert set(_SPEC_FIELDS) == set(_IOR_FIELDS), (
    "WorkloadSpec must mirror IORConfig: "
    f"{set(_SPEC_FIELDS) ^ set(_IOR_FIELDS)}"
)


def as_workload(obj: Union[WorkloadSpec, IORConfig]) -> WorkloadSpec:
    """Coerce an IORConfig (or pass through a WorkloadSpec)."""
    if isinstance(obj, WorkloadSpec):
        return obj
    if isinstance(obj, IORConfig):
        return WorkloadSpec.from_ior(obj)
    raise TypeError(f"expected WorkloadSpec or IORConfig, got {type(obj)!r}")


# ---------------------------------------------------------------------------
# ExperimentSpec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment: N workloads on a fresh platform under one strategy.

    ``meta`` carries free-form campaign coordinates (``{"dt": 2.0,
    "split": 24}``) that survive serialization and let
    :class:`~repro.experiments.engine.ResultSet` regroup fan-out results.

    ``arbiter`` carries coordination-layer options forwarded to
    :class:`~repro.core.CalciomRuntime` (``{"batched": False}`` selects
    the unbatched oracle path, ``{"decision_log_limit": 10000}`` caps the
    decision log for scale scenarios, ``{"shards": 8, "workers":
    "process"}`` runs each arbiter shard in its own worker process —
    the engine closes the worker pool on both the clean and the error
    path — and ``{"span_delay": "hold"}`` retains the historical
    pin-the-prefix cross-shard DELAY behavior).  Ignored when
    ``strategy`` is None.
    """

    platform: PlatformConfig
    workloads: Tuple[WorkloadSpec, ...]
    strategy: Optional[Any] = None     #: strategy name, Strategy, or None
    name: str = ""
    measure_alone: bool = True
    meta: Dict[str, Any] = field(default_factory=dict)
    arbiter: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        workloads = tuple(as_workload(w) for w in self.workloads)
        object.__setattr__(self, "workloads", workloads)
        if not workloads:
            raise ValueError("an experiment needs at least one workload")
        names = [w.name for w in workloads]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate application names in {names}")

    # -- constructors ------------------------------------------------------
    @classmethod
    def single(cls, platform: PlatformConfig,
               workload: Union[WorkloadSpec, IORConfig],
               strategy: Optional[Any] = None, **kw) -> "ExperimentSpec":
        return cls(platform=platform, workloads=(as_workload(workload),),
                   strategy=strategy, **kw)

    @classmethod
    def pair(cls, platform: PlatformConfig,
             a: Union[WorkloadSpec, IORConfig],
             b: Union[WorkloadSpec, IORConfig],
             dt: float = 0.0, strategy: Optional[Any] = None,
             **kw) -> "ExperimentSpec":
        """A two-application experiment with B offset by ``dt``.

        Negative ``dt`` shifts A instead (start times must be >= 0); the
        signed dt is kept in ``meta["dt"]`` — the Δ-graph x-coordinate.
        """
        a, b = as_workload(a), as_workload(b)
        dt = float(dt)
        if dt >= 0:
            a, b = a.with_(start_time=0.0), b.with_(start_time=dt)
        else:
            a, b = a.with_(start_time=-dt), b.with_(start_time=0.0)
        meta = dict(kw.pop("meta", ()) or {})
        meta.setdefault("dt", dt)
        return cls(platform=platform, workloads=(a, b), strategy=strategy,
                   meta=meta, **kw)

    # -- accessors ---------------------------------------------------------
    @property
    def names(self) -> List[str]:
        return [w.name for w in self.workloads]

    @property
    def dt(self) -> Optional[float]:
        """The Δ-graph offset, when this spec belongs to a dt sweep."""
        return self.meta.get("dt")

    def workload(self, name: str) -> WorkloadSpec:
        for w in self.workloads:
            if w.name == name:
                return w
        raise KeyError(name)

    def with_(self, **changes) -> "ExperimentSpec":
        return replace(self, **changes)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        if not (self.strategy is None or isinstance(self.strategy, str)):
            raise TypeError(
                f"strategy {self.strategy!r} is not JSON-serializable; "
                "use a named strategy ('fcfs', 'interrupt', 'dynamic', ...)"
            )
        return {
            "name": self.name,
            "platform": platform_to_dict(self.platform),
            "workloads": [w.to_dict() for w in self.workloads],
            "strategy": self.strategy,
            "measure_alone": self.measure_alone,
            "meta": dict(self.meta),
            "arbiter": dict(self.arbiter),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        return cls(
            name=data.get("name", ""),
            platform=platform_from_dict(data["platform"]),
            workloads=tuple(WorkloadSpec.from_dict(w)
                            for w in data["workloads"]),
            strategy=data.get("strategy"),
            measure_alone=data.get("measure_alone", True),
            meta=dict(data.get("meta", {})),
            arbiter=dict(data.get("arbiter", {})),
        )

    def to_json(self, **dumps_kw) -> str:
        return json.dumps(self.to_dict(), **dumps_kw)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))


def baseline_spec(platform: PlatformConfig,
                  workload: Union[WorkloadSpec, IORConfig]) -> ExperimentSpec:
    """The normalized standalone run for one workload (cache key shape)."""
    w = as_workload(workload).with_(start_time=0.0, name=BASELINE_NAME)
    return ExperimentSpec(platform=platform, workloads=(w,), strategy=None,
                          name="baseline", measure_alone=False,
                          meta={"baseline": True})
