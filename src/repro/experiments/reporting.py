"""Plain-text reporting for benchmark output.

Every benchmark prints the same rows/series the paper's figure shows, so a
reader can diff shapes against the paper without plotting.  Tables are
fixed-width ASCII; series are ``x: value`` lines with an optional sparkline
for quick shape reading in terminal output.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "sparkline", "banner"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def banner(title: str, width: int = 72) -> str:
    """A section header line."""
    pad = max(0, width - len(title) - 4)
    return f"== {title} {'=' * pad}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 floatfmt: str = "{:.3g}") -> str:
    """Fixed-width table; floats formatted with ``floatfmt``."""
    def cell(v) -> str:
        if isinstance(v, float) or isinstance(v, np.floating):
            return floatfmt.format(float(v))
        return str(v)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, s in enumerate(row):
            widths[i] = max(widths[i], len(s))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(s.rjust(w) for s, w in zip(row, widths)))
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of a series (constant series -> flat line)."""
    arr = np.asarray(list(values), dtype=float)
    if len(arr) == 0:
        return ""
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return _SPARK_CHARS[3] * len(arr)
    idx = np.round((arr - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)).astype(int)
    return "".join(_SPARK_CHARS[i] for i in idx)


def format_series(name: str, xs: Sequence, ys: Sequence[float],
                  xlabel: str = "x", ylabel: str = "y",
                  floatfmt: str = "{:.3g}") -> str:
    """A labelled series with sparkline plus the raw rows."""
    lines = [f"{name}  [{ylabel} vs {xlabel}]  {sparkline(ys)}"]
    for x, y in zip(xs, ys):
        xcell = floatfmt.format(float(x)) if isinstance(x, (float, np.floating)) else str(x)
        lines.append(f"  {xlabel}={xcell:>8}  {ylabel}={floatfmt.format(float(y))}")
    return "\n".join(lines)
