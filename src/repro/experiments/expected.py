"""Closed-form expected interference under proportional sharing (§II-C).

The paper overlays its Δ-graphs with "the expected interference as a
piecewise linear function, assuming a proportional sharing of resources
between the two applications".  This module computes that curve exactly for
two applications with arbitrary sizes:

* each application alone drains at ``min(N·c, S)`` (client-limited or
  file-system-limited);
* while both are writing, rates are weighted max-min shares of S with
  weights N_A, N_B and per-application caps N·c;
* integrate piecewise until both are done.

The result is both the "Expected" series of Figs 2/7/8 and the default
interference estimator the extended dynamic strategy can use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..platforms import PlatformConfig

__all__ = ["expected_pair_times", "expected_delta_curve", "TwoFlowModel"]


@dataclass(frozen=True)
class TwoFlowModel:
    """Analytic two-application fluid model on one shared bottleneck."""

    capacity: float    #: shared file-system bandwidth S, B/s
    weight_a: float    #: application A's share weight (its core count)
    weight_b: float
    cap_a: float       #: A's client-side bandwidth ceiling, B/s
    cap_b: float

    def shared_rates(self) -> Tuple[float, float]:
        """Weighted max-min rates while both applications are writing."""
        # Start from proportional shares, then water-fill around caps.
        wa, wb = self.weight_a, self.weight_b
        ra = self.capacity * wa / (wa + wb)
        rb = self.capacity * wb / (wa + wb)
        if ra > self.cap_a:
            ra = self.cap_a
            rb = min(self.cap_b, self.capacity - ra)
        elif rb > self.cap_b:
            rb = self.cap_b
            ra = min(self.cap_a, self.capacity - rb)
        return ra, rb

    def alone_rate_a(self) -> float:
        return min(self.cap_a, self.capacity)

    def alone_rate_b(self) -> float:
        return min(self.cap_b, self.capacity)

    def pair_times(self, bytes_a: float, bytes_b: float,
                   dt: float) -> Tuple[float, float]:
        """Write times of A and B when B starts ``dt`` after A.

        Returns (T_A, T_B) measured from each application's own start.
        Negative ``dt`` means B starts first (by symmetry).
        """
        if dt < 0:
            tb, ta = TwoFlowModel(
                self.capacity, self.weight_b, self.weight_a,
                self.cap_b, self.cap_a,
            ).pair_times(bytes_b, bytes_a, -dt)
            return ta, tb
        rem_a, rem_b = float(bytes_a), float(bytes_b)
        # Phase 1: A alone for dt seconds.
        ra = self.alone_rate_a()
        solo = min(dt, rem_a / ra if ra > 0 else np.inf)
        rem_a -= ra * solo
        t = solo
        if rem_a <= 1e-9:
            # A finished before B even started: both run alone.
            ta = bytes_a / ra
            tb = bytes_b / self.alone_rate_b()
            return ta, tb
        t = dt  # B starts now (A idled any gap, but solo == dt here)
        # Phase 2: both share until one finishes.
        ra_s, rb_s = self.shared_rates()
        dt_a = rem_a / ra_s if ra_s > 0 else np.inf
        dt_b = rem_b / rb_s if rb_s > 0 else np.inf
        if dt_a <= dt_b:
            # A drains first; B continues alone.
            t_a_done = t + dt_a
            rem_b -= rb_s * dt_a
            t_b_done = t_a_done + rem_b / self.alone_rate_b()
        else:
            t_b_done = t + dt_b
            rem_a -= ra_s * dt_b
            t_a_done = t_b_done + rem_a / self.alone_rate_a()
        return t_a_done, t_b_done - dt

    @classmethod
    def from_platform(cls, cfg: PlatformConfig, nprocs_a: int,
                      nprocs_b: int) -> "TwoFlowModel":
        return cls(
            capacity=cfg.aggregate_bandwidth,
            weight_a=nprocs_a,
            weight_b=nprocs_b,
            cap_a=nprocs_a * cfg.per_core_bandwidth,
            cap_b=nprocs_b * cfg.per_core_bandwidth,
        )


def expected_pair_times(cfg: PlatformConfig, nprocs_a: int, bytes_a: float,
                        nprocs_b: int, bytes_b: float,
                        dt: float) -> Tuple[float, float]:
    """Expected (T_A, T_B) under proportional sharing on platform ``cfg``."""
    model = TwoFlowModel.from_platform(cfg, nprocs_a, nprocs_b)
    return model.pair_times(bytes_a, bytes_b, dt)


def expected_delta_curve(cfg: PlatformConfig, nprocs_a: int, bytes_a: float,
                         nprocs_b: int, bytes_b: float,
                         dts) -> Tuple[np.ndarray, np.ndarray]:
    """Expected Δ-graph series: arrays (T_A(dt), T_B(dt)) over ``dts``."""
    model = TwoFlowModel.from_platform(cfg, nprocs_a, nprocs_b)
    ta = np.empty(len(dts))
    tb = np.empty(len(dts))
    for i, dt in enumerate(dts):
        ta[i], tb[i] = model.pair_times(bytes_a, bytes_b, float(dt))
    return ta, tb
