"""Experiment harness: Δ-graphs, pairwise runs, expected curves, reporting."""

from .deltagraph import DeltaGraph, run_delta_graph
from .expected import TwoFlowModel, expected_delta_curve, expected_pair_times
from .export import delta_graph_csv, multi_result_csv
from .interference import (
    cpu_seconds_wasted, efficiency_summary, interference_factor,
    sum_interference_factors,
)
from .multi import MultiResult, run_many
from .replay import ReplayPlan, plan_replay, replay_trace
from .reporting import banner, format_series, format_table, sparkline
from .runner import AppRecord, PairResult, run_pair, run_single, standalone_time
from .sweeps import size_split_sweep, split_pairs, strategy_comparison

__all__ = [
    "DeltaGraph", "run_delta_graph",
    "TwoFlowModel", "expected_pair_times", "expected_delta_curve",
    "interference_factor", "sum_interference_factors", "cpu_seconds_wasted",
    "efficiency_summary",
    "AppRecord", "PairResult", "run_single", "run_pair", "standalone_time",
    "MultiResult", "run_many", "ReplayPlan", "plan_replay", "replay_trace",
    "delta_graph_csv", "multi_result_csv",
    "split_pairs", "size_split_sweep", "strategy_comparison",
    "format_table", "format_series", "sparkline", "banner",
]
