"""Experiment harness: declarative specs, pluggable engines, Δ-graphs.

The declarative API (:class:`ExperimentSpec` + :class:`ExperimentEngine`)
is the canonical path: describe a campaign as data, run it through a
serial or process-parallel executor, and get a uniform :class:`ResultSet`.
The old free functions (``run_pair``, ``run_many``, ``run_delta_graph``,
the sweep helpers) remain as thin shims over the default engine.
"""

from .deltagraph import DeltaGraph, run_delta_graph
from .engine import (
    BaselineCache, Executor, ExperimentEngine, ExperimentResult,
    ParallelExecutor, ResultSet, SerialExecutor, clear_baseline_cache,
    default_engine,
)
from .expected import TwoFlowModel, expected_delta_curve, expected_pair_times
from .export import (
    delta_graph_csv, multi_result_csv, result_set_csv, result_set_json,
)
from .interference import (
    cpu_seconds_wasted, efficiency_summary, interference_factor,
    sum_interference_factors,
)
from .multi import MultiResult, run_many
from .replay import (
    ReplayPlan, plan_replay, replay_result, replay_spec, replay_trace,
)
from .reporting import banner, format_series, format_table, sparkline
from .runner import AppRecord, PairResult, run_pair, run_single, standalone_time
from .scenarios import (
    Scenario, build_scenario, get_scenario, list_scenarios,
    register_scenario,
)
from .spec import (
    ExperimentSpec, WorkloadSpec, pattern_from_dict, pattern_to_dict,
    platform_from_dict, platform_to_dict,
)
from .sweeps import size_split_sweep, split_pairs, strategy_comparison

__all__ = [
    # declarative API
    "ExperimentSpec", "WorkloadSpec",
    "pattern_to_dict", "pattern_from_dict",
    "platform_to_dict", "platform_from_dict",
    "ExperimentEngine", "ExperimentResult", "ResultSet",
    "Executor", "SerialExecutor", "ParallelExecutor",
    "BaselineCache", "default_engine", "clear_baseline_cache",
    # scenarios
    "Scenario", "register_scenario", "get_scenario", "build_scenario",
    "list_scenarios",
    # Δ-graphs and analytics
    "DeltaGraph", "run_delta_graph",
    "TwoFlowModel", "expected_pair_times", "expected_delta_curve",
    "interference_factor", "sum_interference_factors", "cpu_seconds_wasted",
    "efficiency_summary",
    # legacy entry points
    "AppRecord", "PairResult", "run_single", "run_pair", "standalone_time",
    "MultiResult", "run_many", "ReplayPlan", "plan_replay", "replay_spec",
    "replay_result", "replay_trace",
    # export and reporting
    "delta_graph_csv", "multi_result_csv", "result_set_csv",
    "result_set_json",
    "split_pairs", "size_split_sweep", "strategy_comparison",
    "format_table", "format_series", "sparkline", "banner",
]
