"""Δ-graph experiments (§II-C).

"Application A starts writing at a reference date t = 0, application B
starts at a date t = dt, and we measure the performance of A and B.  A set
of experiments with different values of dt allows us to plot the measured
performance as a function of dt."

:func:`run_delta_graph` sweeps dt for a pair of workloads under one
coordination setup and returns the full series — write times, interference
factors, and (optionally) the analytic expected curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..apps import IORConfig
from ..platforms import PlatformConfig
from .runner import PairResult

__all__ = ["DeltaGraph", "run_delta_graph"]


@dataclass
class DeltaGraph:
    """One Δ-graph: per-dt measurements for a pair of applications."""

    dts: np.ndarray
    t_a: np.ndarray             #: A's first-phase write times
    t_b: np.ndarray
    t_alone_a: float
    t_alone_b: float
    strategy: Optional[str]
    expected_a: Optional[np.ndarray] = None
    expected_b: Optional[np.ndarray] = None
    pairs: List[PairResult] = field(default_factory=list)

    @property
    def interference_a(self) -> np.ndarray:
        """A's interference factor I(dt) = T_A(dt) / T_A(alone)."""
        return self.t_a / self.t_alone_a

    @property
    def interference_b(self) -> np.ndarray:
        return self.t_b / self.t_alone_b

    def max_interference_b(self) -> float:
        return float(self.interference_b.max())

    def rows(self):
        """(dt, T_A, T_B, I_A, I_B) tuples, for table printing."""
        return list(zip(self.dts, self.t_a, self.t_b,
                        self.interference_a, self.interference_b))


def run_delta_graph(platform_cfg: PlatformConfig, cfg_a: IORConfig,
                    cfg_b: IORConfig, dts: Sequence[float],
                    strategy: Optional[str] = None,
                    with_expected: bool = False) -> DeltaGraph:
    """Sweep ``dts`` for (A, B) under ``strategy`` (None = uncoordinated).

    .. deprecated:: use ``ExperimentEngine.delta_graph`` — it shares the
        standalone baselines through the engine's cache and can fan the
        independent per-dt simulations out across processes.
    """
    from .engine import default_engine
    from .runner import _deprecated
    _deprecated("run_delta_graph()", "ExperimentEngine.delta_graph()")
    return default_engine().delta_graph(platform_cfg, cfg_a, cfg_b, dts,
                                        strategy=strategy,
                                        with_expected=with_expected)
