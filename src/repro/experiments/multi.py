"""Experiments with more than two applications.

§III-A: "these strategies naturally extend to more than two applications.
The adaptive strategy would then consist in either choosing a place in a
queue of applications that have requested access to the system, or
interrupting the one currently accessing it."  :class:`MultiResult` is the
legacy N-application result shape; :func:`run_many` is now a thin shim
over the declarative engine — build an
:class:`~repro.experiments.spec.ExperimentSpec` with N workloads and run
it through an :class:`~repro.experiments.engine.ExperimentEngine` for the
uniform :class:`~repro.experiments.engine.ResultSet` path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..apps import IORConfig
from ..core import DecisionRecord
from ..platforms import PlatformConfig
from .engine import default_engine
from .runner import AppRecord, _deprecated
from .spec import ExperimentSpec

__all__ = ["MultiResult", "run_many"]


@dataclass
class MultiResult:
    """Outcome of an N-application experiment."""

    records: Dict[str, AppRecord]
    strategy: Optional[str]
    decisions: List[DecisionRecord] = field(default_factory=list)
    makespan: float = 0.0

    def record(self, name: str) -> AppRecord:
        return self.records[name]

    def interference_factors(self) -> Dict[str, float]:
        return {name: rec.interference_factor
                for name, rec in self.records.items()}

    def cpu_seconds_wasted(self) -> float:
        """Σ N_X · T_X over first phases."""
        return sum(rec.nprocs * rec.write_time
                   for rec in self.records.values())

    def sum_interference_factors(self) -> float:
        return sum(self.interference_factors().values())


def run_many(platform_cfg: PlatformConfig, configs: Sequence[IORConfig],
             strategy: Optional[str] = None,
             measure_alone: bool = True) -> MultiResult:
    """Run every workload in ``configs`` together on a fresh platform.

    .. deprecated:: use ``ExperimentEngine.run(ExperimentSpec(...))``.

    Start offsets come from each config's ``start_time``.  With a strategy,
    every application gets a CALCioM session under one shared runtime (and
    arbiter), exactly as on a production machine.
    """
    _deprecated("run_many()",
                "ExperimentEngine.run(ExperimentSpec(...)).as_multi()")
    spec = ExperimentSpec(platform=platform_cfg, workloads=tuple(configs),
                          strategy=strategy, measure_alone=measure_alone)
    return default_engine().run(spec).as_multi()
