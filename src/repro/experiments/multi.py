"""Experiments with more than two applications.

§III-A: "these strategies naturally extend to more than two applications.
The adaptive strategy would then consist in either choosing a place in a
queue of applications that have requested access to the system, or
interrupting the one currently accessing it."  The pairwise runner covers
the paper's figures; this module runs arbitrary application sets so the
queueing behaviour (FCFS chains, preemption stacks, decision logs with
several waiters) is exercised and testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..apps import IORApp, IORConfig
from ..core import CalciomRuntime, DecisionRecord
from ..platforms import Platform, PlatformConfig
from .runner import AppRecord, standalone_time

__all__ = ["MultiResult", "run_many"]


@dataclass
class MultiResult:
    """Outcome of an N-application experiment."""

    records: Dict[str, AppRecord]
    strategy: Optional[str]
    decisions: List[DecisionRecord] = field(default_factory=list)
    makespan: float = 0.0

    def record(self, name: str) -> AppRecord:
        return self.records[name]

    def interference_factors(self) -> Dict[str, float]:
        return {name: rec.interference_factor
                for name, rec in self.records.items()}

    def cpu_seconds_wasted(self) -> float:
        """Σ N_X · T_X over first phases."""
        return sum(rec.nprocs * rec.write_time
                   for rec in self.records.values())

    def sum_interference_factors(self) -> float:
        return sum(self.interference_factors().values())


def run_many(platform_cfg: PlatformConfig, configs: Sequence[IORConfig],
             strategy: Optional[str] = None,
             measure_alone: bool = True) -> MultiResult:
    """Run every workload in ``configs`` together on a fresh platform.

    Start offsets come from each config's ``start_time``.  With a strategy,
    every application gets a CALCioM session under one shared runtime (and
    arbiter), exactly as on a production machine.
    """
    names = [c.name for c in configs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate application names in {names}")
    platform = Platform(platform_cfg)
    runtime: Optional[CalciomRuntime] = None
    if strategy is not None:
        runtime = CalciomRuntime(platform, strategy=strategy)
    apps: List[IORApp] = []
    for cfg in configs:
        app = IORApp(platform, cfg)
        if runtime is not None:
            session = runtime.session(cfg.name, app.client, cfg.nprocs,
                                      app.comm)
            app.guard = session
            app.adio.guard = session
        apps.append(app)
    for app in apps:
        app.start()
    platform.sim.run()

    records: Dict[str, AppRecord] = {}
    for app in apps:
        t_alone = (standalone_time(platform_cfg, app.config)
                   if measure_alone else None)
        records[app.config.name] = AppRecord.from_app(app, t_alone)
    makespan = max(p.end for app in apps for p in app.phases)
    return MultiResult(
        records=records,
        strategy=strategy,
        decisions=list(runtime.decision_log) if runtime else [],
        makespan=makespan,
    )
