"""Legacy experiment entry points: standalone and pairwise application runs.

.. deprecated::
    The free functions here (``run_pair``, ``standalone_time``) are thin
    shims over the declarative API — build an
    :class:`~repro.experiments.spec.ExperimentSpec` and run it through an
    :class:`~repro.experiments.engine.ExperimentEngine` instead.  The
    engine owns an explicit, clearable
    :class:`~repro.experiments.engine.BaselineCache` (this module's old
    hidden ``_alone_cache`` global is gone) and can fan campaigns out
    across processes.

The result shapes (:class:`AppRecord`, :class:`PairResult`) remain the
canonical per-application records used throughout the system.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional

from ..apps import IORApp, IORConfig
from ..core import CalciomRuntime, DecisionRecord
from ..platforms import Platform, PlatformConfig

__all__ = ["AppRecord", "PairResult", "run_single", "run_pair",
           "standalone_time"]


def _deprecated(old: str, new: str) -> None:
    """Emit the legacy-shim deprecation warning (PR-1 migration)."""
    warnings.warn(
        f"{old} is deprecated; build an ExperimentSpec and use {new} "
        "(see repro.experiments.spec / repro.experiments.engine)",
        DeprecationWarning, stacklevel=3,
    )


@dataclass
class AppRecord:
    """Measured outcome of one application in one experiment."""

    name: str
    nprocs: int
    write_times: List[float]      #: per-iteration I/O-phase durations
    wait_times: List[float]       #: per-iteration time blocked in CALCioM
    comm_times: List[float]       #: per-iteration shuffle time
    io_write_times: List[float]   #: per-iteration pure write time
    t_alone: Optional[float] = None  #: standalone single-phase baseline

    @property
    def write_time(self) -> float:
        """First-phase duration (the Δ-graph y-value)."""
        return self.write_times[0]

    @property
    def interference_factor(self) -> float:
        """I = T / T(alone) for the first phase (>= 1 under contention)."""
        if self.t_alone is None or self.t_alone <= 0:
            raise ValueError(f"no standalone baseline for {self.name!r}")
        return self.write_time / self.t_alone

    @classmethod
    def from_app(cls, app: IORApp, t_alone: Optional[float] = None) -> "AppRecord":
        return cls(
            name=app.config.name,
            nprocs=app.config.nprocs,
            write_times=[p.duration for p in app.phases],
            wait_times=[p.wait_time for p in app.phases],
            comm_times=[p.comm_time for p in app.phases],
            io_write_times=[p.write_time for p in app.phases],
            t_alone=t_alone,
        )


@dataclass
class PairResult:
    """Outcome of a two-application interference experiment."""

    a: AppRecord
    b: AppRecord
    strategy: Optional[str]       #: None = uncoordinated baseline
    dt: float                     #: B's start offset relative to A
    decisions: List[DecisionRecord] = field(default_factory=list)

    def record(self, name: str) -> AppRecord:
        if name == self.a.name:
            return self.a
        if name == self.b.name:
            return self.b
        raise KeyError(name)

    def cpu_seconds_wasted(self) -> float:
        """Fig 11's metric over the first phase: Σ N_X · T_X."""
        return (self.a.nprocs * self.a.write_time
                + self.b.nprocs * self.b.write_time)

    def sum_interference_factors(self) -> float:
        return self.a.interference_factor + self.b.interference_factor


def run_single(platform_cfg: PlatformConfig, cfg: IORConfig,
               strategy: Optional[str] = None) -> IORApp:
    """Run one application alone on a fresh platform; returns the live app.

    This is the low-level primitive (the engine's spec runs return records
    rather than app objects); keep it for experiments that inspect phase
    internals directly.
    """
    platform = Platform(platform_cfg)
    if strategy is not None:
        runtime = CalciomRuntime(platform, strategy=strategy)
        app = IORApp(platform, cfg)
        # Replace the guard after client registration (session needs the
        # client name, which IORApp creates).
        session = runtime.session(cfg.name, app.client, cfg.nprocs, app.comm)
        app.guard = session
        app.adio.guard = session
    else:
        app = IORApp(platform, cfg)
    app.start()
    platform.sim.run()
    return app


def standalone_time(platform_cfg: PlatformConfig, cfg: IORConfig,
                    use_cache: bool = True) -> float:
    """Measured single-phase duration of ``cfg`` running alone.

    .. deprecated:: use ``ExperimentEngine.baseline``.  This shim hits the
        default engine's :class:`~repro.experiments.engine.BaselineCache`
        (clear it with :func:`repro.experiments.engine.clear_baseline_cache`);
        ``use_cache=False`` bypasses the cache entirely, as before.
    """
    from .engine import default_engine
    _deprecated("standalone_time()", "ExperimentEngine.baseline()")
    return default_engine().baseline(platform_cfg, cfg, use_cache=use_cache)


def run_pair(platform_cfg: PlatformConfig, cfg_a: IORConfig, cfg_b: IORConfig,
             dt: float = 0.0, strategy: Optional[str] = None,
             measure_alone: bool = True) -> PairResult:
    """Run two applications with B offset by ``dt`` (negative: B first).

    .. deprecated:: build ``ExperimentSpec.pair(...)`` and run it through
        an :class:`~repro.experiments.engine.ExperimentEngine`.

    ``strategy=None`` runs the uncoordinated baseline (no CALCioM layer at
    all); otherwise both applications get CALCioM sessions under the named
    strategy ('interfere' exercises the layer with GO-always decisions,
    isolating pure coordination overhead).
    """
    from .engine import default_engine
    from .spec import ExperimentSpec
    _deprecated("run_pair()",
                "ExperimentEngine.run(ExperimentSpec.pair(...)).as_pair()")
    spec = ExperimentSpec.pair(platform_cfg, cfg_a, cfg_b, dt=dt,
                               strategy=strategy,
                               measure_alone=measure_alone)
    return default_engine().run(spec).as_pair()
