"""Experiment orchestration: standalone and pairwise application runs.

Every figure in the paper reduces to "run application A (and maybe B) on a
fresh machine under some coordination setup and record phase times".  The
runner builds a clean platform per run (experiments never share simulator
state, mirroring the authors reserving the full machine per experiment),
wires CALCioM if requested, runs to completion, and returns records with
standalone baselines attached so interference factors are immediate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..apps import IORApp, IORConfig
from ..core import CalciomRuntime, DecisionRecord
from ..platforms import Platform, PlatformConfig

__all__ = ["AppRecord", "PairResult", "run_single", "run_pair",
           "standalone_time"]


@dataclass
class AppRecord:
    """Measured outcome of one application in one experiment."""

    name: str
    nprocs: int
    write_times: List[float]      #: per-iteration I/O-phase durations
    wait_times: List[float]       #: per-iteration time blocked in CALCioM
    comm_times: List[float]       #: per-iteration shuffle time
    io_write_times: List[float]   #: per-iteration pure write time
    t_alone: Optional[float] = None  #: standalone single-phase baseline

    @property
    def write_time(self) -> float:
        """First-phase duration (the Δ-graph y-value)."""
        return self.write_times[0]

    @property
    def interference_factor(self) -> float:
        """I = T / T(alone) for the first phase (>= 1 under contention)."""
        if self.t_alone is None or self.t_alone <= 0:
            raise ValueError(f"no standalone baseline for {self.name!r}")
        return self.write_time / self.t_alone

    @classmethod
    def from_app(cls, app: IORApp, t_alone: Optional[float] = None) -> "AppRecord":
        return cls(
            name=app.config.name,
            nprocs=app.config.nprocs,
            write_times=[p.duration for p in app.phases],
            wait_times=[p.wait_time for p in app.phases],
            comm_times=[p.comm_time for p in app.phases],
            io_write_times=[p.write_time for p in app.phases],
            t_alone=t_alone,
        )


@dataclass
class PairResult:
    """Outcome of a two-application interference experiment."""

    a: AppRecord
    b: AppRecord
    strategy: Optional[str]       #: None = uncoordinated baseline
    dt: float                     #: B's start offset relative to A
    decisions: List[DecisionRecord] = field(default_factory=list)

    def record(self, name: str) -> AppRecord:
        if name == self.a.name:
            return self.a
        if name == self.b.name:
            return self.b
        raise KeyError(name)

    def cpu_seconds_wasted(self) -> float:
        """Fig 11's metric over the first phase: Σ N_X · T_X."""
        return (self.a.nprocs * self.a.write_time
                + self.b.nprocs * self.b.write_time)

    def sum_interference_factors(self) -> float:
        return self.a.interference_factor + self.b.interference_factor


def run_single(platform_cfg: PlatformConfig, cfg: IORConfig,
               strategy: Optional[str] = None) -> IORApp:
    """Run one application alone on a fresh platform; returns the app."""
    platform = Platform(platform_cfg)
    if strategy is not None:
        runtime = CalciomRuntime(platform, strategy=strategy)
        app = IORApp(platform, cfg)
        # Replace the guard after client registration (session needs the
        # client name, which IORApp creates).
        session = runtime.session(cfg.name, app.client, cfg.nprocs, app.comm)
        app.guard = session
        app.adio.guard = session
    else:
        app = IORApp(platform, cfg)
    app.start()
    platform.sim.run()
    return app


_alone_cache: Dict[tuple, float] = {}


def standalone_time(platform_cfg: PlatformConfig, cfg: IORConfig,
                    use_cache: bool = True) -> float:
    """Measured single-phase duration of ``cfg`` running alone.

    Memoized on (platform, workload) — Δ-graph sweeps reuse the same
    baseline for every dt.
    """
    key = (platform_cfg, replace(cfg, start_time=0.0, name="_alone"))
    if use_cache and key in _alone_cache:
        return _alone_cache[key]
    app = run_single(platform_cfg, key[1])
    value = app.phases[0].duration
    if use_cache:
        _alone_cache[key] = value
    return value


def run_pair(platform_cfg: PlatformConfig, cfg_a: IORConfig, cfg_b: IORConfig,
             dt: float = 0.0, strategy: Optional[str] = None,
             measure_alone: bool = True) -> PairResult:
    """Run two applications with B offset by ``dt`` (negative: B first).

    ``strategy=None`` runs the uncoordinated baseline (no CALCioM layer at
    all); otherwise both applications get CALCioM sessions under the named
    strategy ('interfere' exercises the layer with GO-always decisions,
    isolating pure coordination overhead).
    """
    if dt >= 0:
        cfg_a = replace(cfg_a, start_time=0.0)
        cfg_b = replace(cfg_b, start_time=dt)
    else:
        cfg_a = replace(cfg_a, start_time=-dt)
        cfg_b = replace(cfg_b, start_time=0.0)

    platform = Platform(platform_cfg)
    runtime: Optional[CalciomRuntime] = None
    app_a = IORApp(platform, cfg_a)
    app_b = IORApp(platform, cfg_b)
    if strategy is not None:
        runtime = CalciomRuntime(platform, strategy=strategy)
        for app in (app_a, app_b):
            session = runtime.session(app.config.name, app.client,
                                      app.config.nprocs, app.comm)
            app.guard = session
            app.adio.guard = session
    app_a.start()
    app_b.start()
    platform.sim.run()

    t_alone_a = standalone_time(platform_cfg, cfg_a) if measure_alone else None
    t_alone_b = standalone_time(platform_cfg, cfg_b) if measure_alone else None
    return PairResult(
        a=AppRecord.from_app(app_a, t_alone_a),
        b=AppRecord.from_app(app_b, t_alone_b),
        strategy=strategy,
        dt=dt,
        decisions=list(runtime.decision_log) if runtime else [],
    )
