"""The experiment engine: executors, baseline cache, uniform results.

:class:`ExperimentEngine` turns declarative
:class:`~repro.experiments.spec.ExperimentSpec`\\ s into
:class:`ResultSet`\\ s.  Campaigns — Δ-graphs, size-split sweeps, policy
comparisons — are lists of *independent fresh-platform* simulations, so
the engine fans them out through a pluggable executor:

* :class:`SerialExecutor` — in-process, the default;
* :class:`ParallelExecutor` — a ``ProcessPoolExecutor`` fan-out that
  saturates all cores.  Simulations are deterministic, so the parallel
  result set is *identical* to the serial one.

Standalone baselines are owned by an explicit, injectable
:class:`BaselineCache` (replacing the old module-global in ``runner.py``,
which was unclearable and invisible to worker processes).  The engine
computes every missing baseline *before* fanning out, so workers never
race on shared state.
"""

from __future__ import annotations

import os
import warnings
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import (
    Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence,
    Tuple, Union,
)

import numpy as np

from ..apps import IORApp, IORConfig
from ..core import CalciomRuntime, DecisionRecord
from ..perf import WallTimer, merge_counts
from ..platforms import Platform, PlatformConfig
from .deltagraph import DeltaGraph
from .expected import expected_delta_curve
from .runner import AppRecord, PairResult
from .spec import (
    BASELINE_NAME, ExperimentSpec, WorkloadSpec, as_workload, baseline_spec,
)

__all__ = [
    "BaselineCache", "Executor", "SerialExecutor", "ParallelExecutor",
    "ExperimentResult", "ResultSet", "ExperimentEngine", "default_engine",
    "clear_baseline_cache",
]

Workload = Union[WorkloadSpec, IORConfig]


# ---------------------------------------------------------------------------
# Baseline cache
# ---------------------------------------------------------------------------

class BaselineCache:
    """Memo of standalone single-phase durations, keyed by (platform, workload).

    The key normalizes away the workload's name and start offset — a
    Δ-graph sweep reuses one baseline for every dt.  Unlike the old
    module-global dict this is injectable (each engine owns one, tests can
    isolate theirs) and clearable.
    """

    def __init__(self) -> None:
        self._values: Dict[tuple, float] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(platform: PlatformConfig, workload: Workload) -> tuple:
        cfg = as_workload(workload).to_ior()
        return (platform, replace(cfg, start_time=0.0, name=BASELINE_NAME))

    def get(self, platform: PlatformConfig,
            workload: Workload) -> Optional[float]:
        value = self._values.get(self.key(platform, workload))
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, platform: PlatformConfig, workload: Workload,
            value: float) -> None:
        self._values[self.key(platform, workload)] = value

    def clear(self) -> None:
        self._values.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: tuple) -> bool:
        return key in self._values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<BaselineCache entries={len(self)} hits={self.hits} "
                f"misses={self.misses}>")


# ---------------------------------------------------------------------------
# Execution primitives
# ---------------------------------------------------------------------------

def execute_spec(spec: ExperimentSpec,
                 coordinator_wrap: Optional[Callable[[Any], Any]] = None
                 ) -> "ExperimentResult":
    """Run one spec on a fresh platform (module-level: picklable for pools).

    Baselines are *not* attached here — the engine owns those, so worker
    processes never touch shared cache state.

    ``coordinator_wrap`` is an interception seam for the service layer:
    when given, the runtime's coordinator is replaced by
    ``coordinator_wrap(coordinator)`` *before any session is created*, so
    a proxy (e.g. :class:`repro.service.trace.RecordingRouter`) observes
    every Inform/Release/Complete exchange of the run.  The wrapper must
    present the coordinator's protocol surface; sessions capture it at
    creation time.
    """
    with WallTimer() as timer:
        platform = Platform(spec.platform)
        runtime: Optional[CalciomRuntime] = None
        try:
            if spec.strategy is not None:
                runtime = CalciomRuntime(platform, strategy=spec.strategy,
                                         **dict(spec.arbiter))
                if coordinator_wrap is not None:
                    runtime.coordinator = coordinator_wrap(
                        runtime.coordinator)
            apps: List[IORApp] = []
            for workload in spec.workloads:
                cfg = workload.to_ior()
                app = IORApp(platform, cfg)
                if runtime is not None:
                    session = runtime.session(cfg.name, app.client,
                                              cfg.nprocs, app.comm,
                                              partitions=cfg.partitions)
                    app.guard = session
                    app.adio.guard = session
                apps.append(app)
            for app in apps:
                app.start()
            platform.sim.run()
        finally:
            # Shard worker processes (arbiter={"workers": "process"}) must
            # come down whether the run finished or died — and, on the
            # clean path, *before* the perf snapshot and decision-log read
            # so per-worker counters and logs are shipped back and merged.
            # RecordingRouter and friends forward close() to the router.
            if runtime is not None:
                closer = getattr(runtime.coordinator, "close", None)
                if closer is not None:
                    closer()

    records = {app.config.name: AppRecord.from_app(app) for app in apps}
    makespan = max(p.end for app in apps for p in app.phases)
    perf = platform.perf.as_dict()
    perf["wall_seconds"] = timer.seconds
    return ExperimentResult(
        spec=spec,
        records=records,
        decisions=list(runtime.decision_log) if runtime else [],
        makespan=makespan,
        worker_pid=os.getpid(),
        perf=perf,
    )


class Executor(ABC):
    """How a list of independent experiments gets executed."""

    @abstractmethod
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every item, preserving order."""


class SerialExecutor(Executor):
    """Run experiments one after another in this process."""

    def map(self, fn, items):
        return [fn(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


class ParallelExecutor(Executor):
    """Fan independent experiments out across worker processes.

    Falls back to serial execution (with a warning) when process pools are
    unavailable — sandboxed CI runners, restricted interpreters — so
    campaigns always complete.  Results are identical either way: the
    simulations are deterministic and share no state.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 chunksize: int = 1) -> None:
        self.max_workers = max_workers
        self.chunksize = chunksize

    def map(self, fn, items):
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        try:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(fn, items, chunksize=self.chunksize))
        except (OSError, PermissionError, BrokenProcessPool) as exc:
            warnings.warn(
                f"process pool unavailable ({exc!r}); running serially",
                RuntimeWarning, stacklevel=2,
            )
            return [fn(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelExecutor(max_workers={self.max_workers})"


# ---------------------------------------------------------------------------
# Uniform results
# ---------------------------------------------------------------------------

@dataclass
class ExperimentResult:
    """Measured outcome of one spec: per-app records plus the decision log."""

    spec: ExperimentSpec
    records: Dict[str, AppRecord]
    decisions: List[DecisionRecord] = field(default_factory=list)
    makespan: float = 0.0
    #: Process that ran the simulation (excluded from equality so parallel
    #: and serial result sets compare equal).
    worker_pid: int = field(default=0, compare=False)
    #: Kernel instrumentation snapshot for this run — the platform's
    #: :class:`~repro.perf.PerfCounters` plus ``wall_seconds``.  Excluded
    #: from equality: wall-clock (and scheduling noise) varies per host.
    perf: Dict[str, float] = field(default_factory=dict, compare=False)

    # -- accessors ---------------------------------------------------------
    @property
    def strategy(self):
        return self.spec.strategy

    @property
    def dt(self) -> Optional[float]:
        return self.spec.dt

    def record(self, name: str) -> AppRecord:
        return self.records[name]

    # -- metrics -----------------------------------------------------------
    def interference_factors(self) -> Dict[str, float]:
        return {name: rec.interference_factor
                for name, rec in self.records.items()}

    def cpu_seconds_wasted(self) -> float:
        """Fig 11's machine-wide metric over first phases: Σ N_X · T_X."""
        return sum(rec.nprocs * rec.write_time
                   for rec in self.records.values())

    def sum_interference_factors(self) -> float:
        return sum(self.interference_factors().values())

    # -- legacy views ------------------------------------------------------
    def as_pair(self) -> PairResult:
        """This result as the legacy two-application shape."""
        if len(self.spec.workloads) != 2:
            raise ValueError(
                f"as_pair() needs exactly 2 workloads, got {self.spec.names}")
        name_a, name_b = self.spec.names
        dt = self.spec.meta.get("dt")
        if dt is None:
            dt = (self.spec.workload(name_b).start_time
                  - self.spec.workload(name_a).start_time)
        return PairResult(
            a=self.records[name_a], b=self.records[name_b],
            strategy=self.spec.strategy, dt=float(dt),
            decisions=list(self.decisions),
        )

    def as_multi(self):
        """This result as the legacy N-application shape."""
        from .multi import MultiResult
        return MultiResult(records=dict(self.records),
                           strategy=self.spec.strategy,
                           decisions=list(self.decisions),
                           makespan=self.makespan)


@dataclass
class ResultSet:
    """Ordered collection of experiment results — one campaign's output.

    Subsumes the legacy ``PairResult``/``MultiResult``/``DeltaGraph``
    shapes: convert with :meth:`ExperimentResult.as_pair` /
    :meth:`~ExperimentResult.as_multi` / :meth:`delta_graph`, regroup a
    fan-out with :meth:`group_by_meta`, and export through
    :func:`repro.experiments.export.result_set_csv` / ``result_set_json``.
    """

    results: List[ExperimentResult] = field(default_factory=list)

    def __iter__(self) -> Iterator[ExperimentResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ResultSet(self.results[index])
        return self.results[index]

    def filter(self, predicate: Callable[[ExperimentResult], bool]
               ) -> "ResultSet":
        return ResultSet([r for r in self.results if predicate(r)])

    def group_by_meta(self, key: str) -> Dict[Any, "ResultSet"]:
        """Partition by a ``meta`` coordinate, preserving order."""
        groups: Dict[Any, ResultSet] = {}
        for result in self.results:
            groups.setdefault(result.spec.meta.get(key),
                              ResultSet()).results.append(result)
        return groups

    def worker_pids(self) -> List[int]:
        """Distinct simulation process ids (diagnostics for fan-out)."""
        return sorted({r.worker_pid for r in self.results})

    def total_perf(self) -> Dict[str, float]:
        """Summed perf counters over the campaign (see :mod:`repro.perf`)."""
        return merge_counts(r.perf for r in self.results)

    def delta_graph(self, with_expected: bool = False) -> DeltaGraph:
        """Assemble a Δ-graph from pair results carrying ``meta["dt"]``.

        Requires homogeneous two-application specs run with baselines
        (``measure_alone=True``), ordered as the sweep was declared.
        """
        if not self.results:
            raise ValueError("empty result set")
        pairs = [r.as_pair() for r in self.results]
        first = self.results[0].spec

        def shape(spec: ExperimentSpec) -> tuple:
            # The same (A, B) pair modulo the dt-induced start offsets.
            return tuple(w.with_(start_time=0.0) for w in spec.workloads)

        homogeneous = all(
            shape(r.spec) == shape(first)
            and r.spec.strategy == first.strategy
            and r.spec.platform == first.platform
            for r in self.results)
        if not homogeneous:
            raise ValueError("delta_graph() needs one identical (A, B) pair "
                             "per dt under one platform and strategy; "
                             "regroup heterogeneous campaigns with "
                             "group_by_meta() or filter() first")
        t_alone_a = pairs[0].a.t_alone
        t_alone_b = pairs[0].b.t_alone
        if t_alone_a is None or t_alone_b is None:
            raise ValueError("delta_graph() needs standalone baselines; "
                             "run the specs with measure_alone=True")
        dts = np.array([p.dt for p in pairs], dtype=float)
        graph = DeltaGraph(
            dts=dts,
            t_a=np.array([p.a.write_time for p in pairs]),
            t_b=np.array([p.b.write_time for p in pairs]),
            t_alone_a=t_alone_a, t_alone_b=t_alone_b,
            strategy=first.strategy, pairs=pairs,
        )
        if with_expected:
            cfg_a = first.workloads[0].to_ior()
            cfg_b = first.workloads[1].to_ior()
            graph.expected_a, graph.expected_b = expected_delta_curve(
                first.platform,
                cfg_a.nprocs, cfg_a.bytes_per_phase,
                cfg_b.nprocs, cfg_b.bytes_per_phase,
                dts,
            )
        return graph


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class ExperimentEngine:
    """Executes experiment specs and owns the baseline cache.

    Parameters
    ----------
    executor:
        How independent simulations run; defaults to
        :class:`SerialExecutor`.  Pass :class:`ParallelExecutor` to fan a
        campaign out across cores.
    cache:
        The :class:`BaselineCache` for standalone times.  Injectable so
        tests and long-lived services control the memo's lifetime.
    """

    def __init__(self, executor: Optional[Executor] = None,
                 cache: Optional[BaselineCache] = None) -> None:
        self.executor = executor if executor is not None else SerialExecutor()
        # NOT ``cache or ...``: an empty BaselineCache is falsy (len == 0)
        # and must still be honoured when injected.
        self.cache = cache if cache is not None else BaselineCache()

    # -- baselines ---------------------------------------------------------
    def baseline(self, platform: PlatformConfig, workload: Workload,
                 use_cache: bool = True) -> float:
        """Standalone single-phase duration of ``workload`` on ``platform``."""
        if use_cache:
            cached = self.cache.get(platform, workload)
            if cached is not None:
                return cached
        result = execute_spec(baseline_spec(platform, workload))
        value = result.records[BASELINE_NAME].write_time
        if use_cache:
            self.cache.put(platform, workload, value)
        return value

    def _prime_baselines(self, specs: Sequence[ExperimentSpec]) -> None:
        """Compute every missing baseline, fanned out via the executor."""
        needed: List[Tuple[PlatformConfig, WorkloadSpec]] = []
        seen = set()
        for spec in specs:
            if not spec.measure_alone:
                continue
            for workload in spec.workloads:
                key = BaselineCache.key(spec.platform, workload)
                if key in self.cache or key in seen:
                    continue
                seen.add(key)
                needed.append((spec.platform, workload))
        if not needed:
            return
        runs = self.executor.map(
            execute_spec, [baseline_spec(p, w) for p, w in needed])
        for (platform, workload), result in zip(needed, runs):
            self.cache.put(platform, workload,
                           result.records[BASELINE_NAME].write_time)

    def _attach_baselines(self, result: ExperimentResult) -> None:
        for name, record in result.records.items():
            record.t_alone = self.cache.get(result.spec.platform,
                                            result.spec.workload(name))

    # -- execution ---------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        """Run one experiment (always in-process)."""
        result = execute_spec(spec)
        if spec.measure_alone:
            self._prime_baselines([spec])
            self._attach_baselines(result)
        return result

    def run_all(self, specs: Iterable[ExperimentSpec]) -> ResultSet:
        """Run a campaign: baselines first (shared), then every spec.

        With a :class:`ParallelExecutor` both stages fan out across worker
        processes; the ordered :class:`ResultSet` is identical to a serial
        run because each spec is an independent deterministic simulation.
        """
        specs = list(specs)
        self._prime_baselines(specs)
        results = self.executor.map(execute_spec, specs)
        for result in results:
            if result.spec.measure_alone:
                self._attach_baselines(result)
        return ResultSet(list(results))

    # -- campaign helpers --------------------------------------------------
    def delta_graph(self, platform: PlatformConfig, a: Workload, b: Workload,
                    dts: Sequence[float], strategy: Optional[Any] = None,
                    with_expected: bool = False) -> DeltaGraph:
        """Sweep ``dts`` for (A, B) under ``strategy`` (None = uncoordinated)."""
        specs = [ExperimentSpec.pair(platform, a, b, dt=float(dt),
                                     strategy=strategy)
                 for dt in dts]
        return self.run_all(specs).delta_graph(with_expected=with_expected)

    def size_split_sweep(self, platform: PlatformConfig, base_a: Workload,
                         base_b: Workload, total_cores: int,
                         sizes_b: Sequence[int], dts: Sequence[float],
                         strategy: Optional[Any] = None
                         ) -> Dict[int, DeltaGraph]:
        """One Δ-graph per (N_A, N_B) split — the full Fig 6 campaign.

        All splits and dts go through *one* fan-out, so a parallel
        executor sees the whole campaign at once.
        """
        from .sweeps import split_pairs
        base_a, base_b = as_workload(base_a), as_workload(base_b)
        specs = []
        for na, nb in split_pairs(total_cores, sizes_b):
            for dt in dts:
                specs.append(ExperimentSpec.pair(
                    platform, base_a.with_(nprocs=na),
                    base_b.with_(nprocs=nb), dt=float(dt),
                    strategy=strategy, meta={"split": nb}))
        grouped = self.run_all(specs).group_by_meta("split")
        return {nb: rs.delta_graph() for nb, rs in grouped.items()}

    def strategy_comparison(self, platform: PlatformConfig, a: Workload,
                            b: Workload, dt: float,
                            strategies: Sequence[Optional[Any]] = (
                                None, "fcfs", "interrupt", "dynamic",
                            )) -> Dict[Optional[Any], PairResult]:
        """The same pair under each coordination strategy (Fig 9/11 columns)."""
        specs = [ExperimentSpec.pair(platform, a, b, dt=dt, strategy=s)
                 for s in strategies]
        results = self.run_all(specs)
        return {s: r.as_pair() for s, r in zip(strategies, results)}


# ---------------------------------------------------------------------------
# Default engine (backs the legacy free-function API)
# ---------------------------------------------------------------------------

_default_engine: Optional[ExperimentEngine] = None


def default_engine() -> ExperimentEngine:
    """The process-wide engine behind ``run_pair``/``run_many``/etc. shims."""
    global _default_engine
    if _default_engine is None:
        _default_engine = ExperimentEngine()
    return _default_engine


def clear_baseline_cache() -> None:
    """Drop every memoized standalone baseline of the default engine."""
    default_engine().cache.clear()
