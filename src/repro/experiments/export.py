"""Result export: turn experiment objects into CSV for external tooling.

The benchmarks print ASCII series; downstream users plotting against the
paper want machine-readable output.  These helpers are intentionally
dependency-free (plain ``csv``-style strings) so results can be shipped
anywhere.
"""

from __future__ import annotations

import io

from .deltagraph import DeltaGraph
from .multi import MultiResult

__all__ = ["delta_graph_csv", "multi_result_csv"]


def _write_rows(header, rows) -> str:
    buf = io.StringIO()
    buf.write(",".join(header) + "\n")
    for row in rows:
        buf.write(",".join(_cell(v) for v in row) + "\n")
    return buf.getvalue()


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.9g}"
    text = str(value)
    if "," in text or '"' in text:
        text = '"' + text.replace('"', '""') + '"'
    return text


def delta_graph_csv(graph: DeltaGraph) -> str:
    """One row per dt: write times, interference factors, expected curve."""
    header = ["dt", "t_a", "t_b", "i_a", "i_b"]
    has_expected = graph.expected_a is not None
    if has_expected:
        header += ["expected_a", "expected_b"]
    rows = []
    for i in range(len(graph.dts)):
        row = [float(graph.dts[i]), float(graph.t_a[i]), float(graph.t_b[i]),
               float(graph.interference_a[i]), float(graph.interference_b[i])]
        if has_expected:
            row += [float(graph.expected_a[i]), float(graph.expected_b[i])]
        rows.append(row)
    return _write_rows(header, rows)


def multi_result_csv(result: MultiResult) -> str:
    """One row per application: first-phase time, baseline, factor."""
    header = ["app", "nprocs", "write_time", "t_alone",
              "interference_factor", "wait_time"]
    rows = []
    for name in sorted(result.records):
        rec = result.records[name]
        rows.append([
            name, rec.nprocs, rec.write_time,
            rec.t_alone if rec.t_alone is not None else "",
            rec.interference_factor if rec.t_alone else "",
            rec.wait_times[0] if rec.wait_times else 0.0,
        ])
    return _write_rows(header, rows)
