"""Result export: turn experiment objects into CSV/JSON for external tooling.

The benchmarks print ASCII series; downstream users plotting against the
paper want machine-readable output.  Everything funnels through one
row-building path: a :class:`~repro.experiments.engine.ResultSet` exports
per-(experiment, application) rows, and the legacy ``DeltaGraph`` /
``MultiResult`` helpers remain for their specific shapes.  These helpers
are intentionally dependency-free (plain ``csv``-style strings) so results
can be shipped anywhere.
"""

from __future__ import annotations

import io
import json
from typing import Optional

from .deltagraph import DeltaGraph
from .engine import ExperimentResult, ResultSet
from .multi import MultiResult
from .runner import AppRecord

__all__ = ["delta_graph_csv", "multi_result_csv", "result_set_csv",
           "result_set_json"]

#: Marker for cells whose value cannot be computed (e.g. no baseline).
MISSING = "n/a"


def _write_rows(header, rows) -> str:
    buf = io.StringIO()
    buf.write(",".join(header) + "\n")
    for row in rows:
        buf.write(",".join(_cell(v) for v in row) + "\n")
    return buf.getvalue()


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.9g}"
    text = str(value)
    if "," in text or '"' in text:
        text = '"' + text.replace('"', '""') + '"'
    return text


def _record_cells(rec: AppRecord) -> list:
    """The shared per-application cell block: time, baseline, factor, wait.

    A missing baseline (``t_alone is None``) or a degenerate one
    (``t_alone <= 0``, where the factor is undefined) yields an explicit
    :data:`MISSING` cell rather than being silently dropped — note
    ``is not None``: a legitimate ``t_alone == 0.0`` still exports as 0.
    """
    has_baseline = rec.t_alone is not None
    return [
        rec.write_time,
        rec.t_alone if has_baseline else MISSING,
        (rec.interference_factor
         if has_baseline and rec.t_alone > 0 else MISSING),
        rec.wait_times[0] if rec.wait_times else 0.0,
    ]


def delta_graph_csv(graph: DeltaGraph) -> str:
    """One row per dt: write times, interference factors, expected curve."""
    header = ["dt", "t_a", "t_b", "i_a", "i_b"]
    has_expected = graph.expected_a is not None
    if has_expected:
        header += ["expected_a", "expected_b"]
    rows = []
    for i in range(len(graph.dts)):
        row = [float(graph.dts[i]), float(graph.t_a[i]), float(graph.t_b[i]),
               float(graph.interference_a[i]), float(graph.interference_b[i])]
        if has_expected:
            row += [float(graph.expected_a[i]), float(graph.expected_b[i])]
        rows.append(row)
    return _write_rows(header, rows)


def multi_result_csv(result: MultiResult) -> str:
    """One row per application: first-phase time, baseline, factor."""
    header = ["app", "nprocs", "write_time", "t_alone",
              "interference_factor", "wait_time"]
    rows = []
    for name in sorted(result.records):
        rec = result.records[name]
        rows.append([name, rec.nprocs] + _record_cells(rec))
    return _write_rows(header, rows)


def result_set_csv(results: ResultSet) -> str:
    """The uniform export: one row per (experiment, application).

    Campaign coordinates surface as ``dt``; ``experiment`` is the spec's
    name or its index in the set.
    """
    header = ["experiment", "strategy", "dt", "app", "nprocs", "write_time",
              "t_alone", "interference_factor", "wait_time", "makespan"]
    rows = []
    for index, result in enumerate(results):
        spec = result.spec
        label = spec.name or str(index)
        if spec.strategy is None:
            strategy = "none"
        elif isinstance(spec.strategy, str):
            strategy = spec.strategy
        else:
            # Strategy instances have no stable string form; export the
            # class name rather than a repr with a memory address.
            strategy = type(spec.strategy).__name__
        dt = spec.meta.get("dt")
        for name in spec.names:
            rec = result.records[name]
            rows.append([label, strategy,
                         dt if dt is not None else MISSING,
                         name, rec.nprocs]
                        + _record_cells(rec) + [result.makespan])
    return _write_rows(header, rows)


def _record_dict(rec: AppRecord) -> dict:
    return {
        "name": rec.name,
        "nprocs": rec.nprocs,
        "write_times": list(rec.write_times),
        "wait_times": list(rec.wait_times),
        "comm_times": list(rec.comm_times),
        "io_write_times": list(rec.io_write_times),
        "t_alone": rec.t_alone,
    }


def _result_dict(result: ExperimentResult) -> dict:
    return {
        "spec": result.spec.to_dict(),
        "makespan": result.makespan,
        "records": {name: _record_dict(rec)
                    for name, rec in result.records.items()},
        "decisions": [
            {"time": d.time, "app": d.app, "action": d.action.value,
             "active": list(d.active), "waiting": list(d.waiting),
             "costs": dict(d.costs)}
            for d in result.decisions
        ],
    }


def result_set_json(results: ResultSet, indent: Optional[int] = None) -> str:
    """Full-fidelity JSON export: specs, records, and decision logs.

    Specs serialize through ``ExperimentSpec.to_dict`` — named strategies
    only (a :class:`~repro.core.Strategy` instance raises ``TypeError``).
    """
    return json.dumps({"results": [_result_dict(r) for r in results]},
                      indent=indent)
