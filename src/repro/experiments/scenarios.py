"""Named experiment scenarios: declare workload mixes, don't hand-wire them.

Benchmarks, examples, and services pick a scenario by name and get back a
*campaign* — a list of :class:`~repro.experiments.spec.ExperimentSpec`\\ s
ready for :meth:`ExperimentEngine.run_all
<repro.experiments.engine.ExperimentEngine.run_all>`.  Every builder
returns a list (single-run scenarios return a list of one) so callers
compose uniformly; campaign coordinates (dt, split, policy) ride in each
spec's ``meta`` for regrouping via ``ResultSet.group_by_meta``.

Register your own with :func:`register_scenario`::

    @register_scenario("my-mix", "two bursty writers on Rennes")
    def my_mix(dt=0.0, strategy=None):
        ...
        return [ExperimentSpec.pair(platform, a, b, dt=dt,
                                    strategy=strategy)]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..mpisim import Contiguous, Strided
from ..platforms import (
    PlatformConfig, grid5000_nancy, grid5000_rennes, surveyor,
)
from ..simcore import ensure_rng
from ..traces import IntrepidModel, JobIOModel, generate_intrepid_like
from .replay import replay_spec
from .spec import ExperimentSpec, WorkloadSpec
from .sweeps import split_pairs

__all__ = [
    "Scenario", "register_scenario", "get_scenario", "build_scenario",
    "list_scenarios", "many_writers_platform",
]


@dataclass(frozen=True)
class Scenario:
    """A named campaign builder."""

    name: str
    description: str
    build: Callable[..., List[ExperimentSpec]]

    def __call__(self, **kwargs) -> List[ExperimentSpec]:
        return self.build(**kwargs)


_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(name: str, description: str = ""):
    """Decorator: register a campaign builder under ``name``."""
    def decorator(build: Callable[..., List[ExperimentSpec]]):
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} already registered")
        _REGISTRY[name] = Scenario(name=name, description=description,
                                   build=build)
        return build
    return decorator


def get_scenario(name: str) -> Scenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"available: {list_scenarios()}") from None


def build_scenario(name: str, **kwargs) -> List[ExperimentSpec]:
    """Build the named campaign with scenario-specific overrides."""
    return get_scenario(name).build(**kwargs)


def list_scenarios() -> List[str]:
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Built-in scenarios (the paper's experiment setups)
# ---------------------------------------------------------------------------

@register_scenario(
    "rennes-big-small",
    "Quickstart mix: a 600-core simulation against a 24-core analysis "
    "writer on Grid'5000 Rennes (strided 8 x 2 MB).")
def rennes_big_small(dt: float = 2.0, strategy: Optional[Any] = None,
                     big_procs: int = 600, small_procs: int = 24
                     ) -> List[ExperimentSpec]:
    pattern = Strided(block_size=2_000_000, nblocks=8)
    big = WorkloadSpec(name="big-sim", nprocs=big_procs, pattern=pattern,
                       procs_per_node=24)
    small = WorkloadSpec(name="small-analysis", nprocs=small_procs,
                         pattern=pattern, procs_per_node=24)
    return [ExperimentSpec.pair(grid5000_rennes(), big, small, dt=dt,
                                strategy=strategy, name="rennes-big-small")]


@register_scenario(
    "fig02-contiguous-pair",
    "Fig 2: two equal 336-process applications, 16 MB/process contiguous, "
    "on Grid'5000 Nancy — the canonical Δ-graph.")
def fig02_contiguous_pair(dts: Sequence[float] = (-14.0, -10.0, -6.0, -2.0,
                                                  0.0, 2.0, 6.0, 10.0, 14.0),
                          strategy: Optional[Any] = None,
                          ) -> List[ExperimentSpec]:
    pattern = Contiguous(block_size=16_000_000)
    a = WorkloadSpec(name="A", nprocs=336, pattern=pattern,
                     procs_per_node=24, grain=None)
    b = a.with_(name="B")
    return [ExperimentSpec.pair(grid5000_nancy(), a, b, dt=float(dt),
                                strategy=strategy, name="fig02")
            for dt in dts]


@register_scenario(
    "fig06-size-split",
    "Fig 6: 768 Rennes cores split between A and B (B in {24..384}), "
    "strided 8 x 2 MB — one Δ-graph per split (meta: split, dt).")
def fig06_size_split(total_cores: int = 768,
                     sizes_b: Sequence[int] = (24, 48, 96, 192, 384),
                     dts: Sequence[float] = (-10.0, -5.0, -2.0, 0.0, 2.0,
                                             5.0, 10.0, 15.0),
                     strategy: Optional[Any] = None) -> List[ExperimentSpec]:
    pattern = Strided(block_size=2_000_000, nblocks=8)
    base_a = WorkloadSpec(name="A", nprocs=1, pattern=pattern,
                          procs_per_node=24, grain=None)
    base_b = base_a.with_(name="B")
    specs = []
    for na, nb in split_pairs(total_cores, sizes_b):
        for dt in dts:
            specs.append(ExperimentSpec.pair(
                grid5000_rennes(), base_a.with_(nprocs=na),
                base_b.with_(nprocs=nb), dt=float(dt), strategy=strategy,
                name=f"fig06-split{nb}", meta={"split": nb}))
    return specs


@register_scenario(
    "fig09-policies",
    "Fig 9: the three policies across (744, 24) and (384, 384) splits on "
    "Rennes, strided 8 x 1 MB (meta: split, policy, dt).")
def fig09_policies(splits: Sequence[Tuple[int, int]] = ((744, 24),
                                                        (384, 384)),
                   dts: Sequence[float] = (-10.0, -5.0, 0.0, 5.0, 10.0,
                                           15.0, 20.0),
                   strategies: Sequence[Optional[str]] = (None, "fcfs",
                                                          "interrupt"),
                   ) -> List[ExperimentSpec]:
    pattern = Strided(block_size=1_000_000, nblocks=8)
    specs = []
    for na, nb in splits:
        a = WorkloadSpec(name="A", nprocs=na, pattern=pattern,
                         procs_per_node=24, grain="round")
        b = WorkloadSpec(name="B", nprocs=nb, pattern=pattern,
                         procs_per_node=24, grain="round")
        for strategy in strategies:
            policy = strategy if strategy is not None else "interfere"
            for dt in dts:
                specs.append(ExperimentSpec.pair(
                    grid5000_rennes(), a, b, dt=float(dt), strategy=strategy,
                    name=f"fig09-{nb}-{policy}",
                    meta={"split": nb, "policy": policy}))
    return specs


@register_scenario(
    "surveyor-four-files",
    "Fig 10/11 workload: on Surveyor, A (2048 cores) writes four 4 MB/proc "
    "files, B one — the dynamic-decision scenario (meta: dt).")
def surveyor_four_files(dts: Sequence[float] = (0.0,),
                        strategy: Optional[Any] = "dynamic",
                        grain: Optional[str] = "round",
                        ) -> List[ExperimentSpec]:
    pattern = Contiguous(block_size=4_000_000)
    a = WorkloadSpec(name="A", nprocs=2048, pattern=pattern, nfiles=4,
                     procs_per_node=4, scope="phase", grain=grain)
    b = a.with_(name="B", nfiles=1)
    return [ExperimentSpec.pair(surveyor(), a, b, dt=float(dt),
                                strategy=strategy, name="surveyor-4files")
            for dt in dts]


@register_scenario(
    "three-way-contention",
    "Three equal writers saturating a small file system — the N>2 "
    "queueing scenario (FCFS chains, preemption stacks).")
def three_way_contention(nprocs: int = 100,
                         offsets: Sequence[float] = (0.0, 0.1, 0.2),
                         strategy: Optional[Any] = None,
                         ) -> List[ExperimentSpec]:
    from ..platforms import PlatformConfig
    platform = PlatformConfig(name="three-way", nservers=2,
                              disk_bandwidth=500.0, per_core_bandwidth=10.0,
                              stripe_size=1000, latency=1e-6)
    workloads = tuple(
        WorkloadSpec(name=name, nprocs=nprocs,
                     pattern=Contiguous(block_size=1000),
                     start_time=float(offset), grain="round",
                     cb_buffer_size=2000)
        for name, offset in zip("abc", offsets))
    return [ExperimentSpec(platform=platform, workloads=workloads,
                           strategy=strategy, name="three-way-contention")]


# ---------------------------------------------------------------------------
# Large-scale trace scenarios (the incremental-kernel workloads)
# ---------------------------------------------------------------------------

def many_writers_platform(nservers: int = 32,
                          allocator: str = "incremental",
                          npartitions: int = 1) -> PlatformConfig:
    """A wide machine for many-application runs: per-server components.

    ``pool_servers=False`` keeps every data server a distinct endpoint, and
    the huge stripe unit places each file wholly on one (path-hashed)
    server — so applications writing different files form *disjoint*
    link/flow components, the regime the incremental allocator exploits.
    ``npartitions > 1`` splits the servers into that many independent file
    systems (the sharded-coordination scenarios' machines).
    """
    return PlatformConfig(
        name=f"many-writers-{nservers}s"
             + (f"-{npartitions}p" if npartitions > 1 else ""),
        nservers=nservers,
        disk_bandwidth=100e6,
        per_core_bandwidth=10e6,
        mpi_per_core_bandwidth=100e6,
        stripe_size=1 << 30,
        latency=1e-5,
        pool_servers=False,
        allocator=allocator,
        npartitions=npartitions,
        description=f"{nservers} independent servers, one file per server",
    )


#: Scale scenarios cap the arbiter's decision log: at 10^3+ applications a
#: full audit trail of every decision is memory, not information.  Figure
#: scenarios keep the unbounded default.
SCALE_DECISION_LOG_LIMIT = 10_000


@register_scenario(
    "many-writers",
    "Scale scenario: N staggered periodic writers (50-500) spread over a "
    "wide multi-server machine — the incremental kernel's home turf "
    "(meta: napps).")
def many_writers(napps: int = 200, nservers: int = 32,
                 strategy: Optional[Any] = None, phases: int = 3,
                 bytes_per_process: int = 4_000_000,
                 spread: float = 60.0, period: float = 30.0,
                 seed: int = 7, measure_alone: bool = False,
                 allocator: str = "incremental",
                 arbiter: Optional[Dict[str, Any]] = None
                 ) -> List[ExperimentSpec]:
    """Synthetic trace-flavoured mix: ``napps`` writers with random sizes
    (4-32 processes), staggered starts over ``spread`` seconds, ``phases``
    periodic I/O phases each.  Runs under any coordination strategy;
    ``arbiter`` overrides the coordination-layer options (e.g.
    ``{"batched": False}`` for the oracle path)."""
    if napps < 1:
        raise ValueError(f"napps must be >= 1, got {napps}")
    rng = ensure_rng(seed)
    platform = many_writers_platform(nservers, allocator=allocator)
    workloads = []
    for i in range(napps):
        nprocs = int(rng.choice([4, 8, 16, 32]))
        workloads.append(WorkloadSpec(
            name=f"app{i:03d}",
            nprocs=nprocs,
            pattern=Contiguous(block_size=bytes_per_process),
            iterations=phases,
            period=float(period),
            start_time=float(rng.uniform(0.0, spread)),
            grain="round",
        ))
    arbiter_opts = {"decision_log_limit": SCALE_DECISION_LOG_LIMIT}
    arbiter_opts.update(arbiter or {})
    return [ExperimentSpec(
        platform=platform, workloads=tuple(workloads), strategy=strategy,
        name="many-writers", measure_alone=measure_alone,
        meta={"napps": napps, "scenario": "many-writers"},
        arbiter=arbiter_opts,
    )]


@register_scenario(
    "service-many-writers",
    "Coordination-as-a-service load: the many-writers mix served over the "
    "wire — record the in-process coordination trace, replay it through N "
    "concurrent daemon clients (meta: napps, nclients).")
def service_many_writers(napps: int = 24, nservers: int = 8,
                         strategy: Optional[Any] = "fcfs", phases: int = 2,
                         nclients: int = 4,
                         bytes_per_process: int = 4_000_000,
                         spread: float = 60.0, period: float = 30.0,
                         seed: int = 7,
                         arbiter: Optional[Dict[str, Any]] = None
                         ) -> List[ExperimentSpec]:
    """The ``many-writers`` workload shaped for the coordination daemon
    (:mod:`repro.service`): same generator, same seed discipline, with the
    intended client fan-out riding in ``meta["service"]``.  A coordinated
    strategy is mandatory — an uncoordinated mix has no decisions to
    serve.  The default strategy avoids DELAY verdicts, the one action
    whose hold timers a recorded trace cannot replay bit-exactly."""
    if strategy is None:
        raise ValueError("service-many-writers needs a coordination "
                         "strategy (got None)")
    if nclients < 1:
        raise ValueError(f"nclients must be >= 1, got {nclients}")
    (spec,) = many_writers(
        napps=napps, nservers=nservers, strategy=strategy, phases=phases,
        bytes_per_process=bytes_per_process, spread=spread, period=period,
        seed=seed, measure_alone=False, arbiter=arbiter)
    meta = dict(spec.meta)
    meta.update({"scenario": "service-many-writers",
                 "service": {"nclients": int(nclients)}})
    return [spec.with_(name="service-many-writers", meta=meta)]


@register_scenario(
    "swf-replay",
    "Trace-driven scale scenario: a synthetic Intrepid-like SWF window "
    "replayed as 50-500 concurrent periodic writers under any strategy "
    "(meta: napps, window).")
def swf_replay(napps: int = 100, hours: float = 6.0,
               strategy: Optional[Any] = None, core_scale: int = 512,
               bytes_per_process: int = 4_000_000, phases_per_job: int = 2,
               seed: int = 2014, measure_alone: bool = False,
               platform: Optional[PlatformConfig] = None,
               sampled_io: bool = True,
               arbiter: Optional[Dict[str, Any]] = None,
               ) -> List[ExperimentSpec]:
    """Generate a dense synthetic SWF trace, take an ``hours``-long window
    and replay the first ``napps`` resident jobs (see
    :func:`repro.experiments.replay.replay_spec`).

    ``sampled_io`` (default True) draws each job's access pattern and
    per-process volume from :class:`~repro.traces.JobIOModel`'s Fig
    1-style distributions instead of the old one-uniform-contiguous-write
    placeholder; pass False to recover the uniform population."""
    if napps < 1:
        raise ValueError(f"napps must be >= 1, got {napps}")
    if hours <= 0:
        raise ValueError(f"hours must be > 0, got {hours}")
    # Arrival rate sized so the window holds ~1.3x the requested job count
    # (dispatch and validity filtering thin the population a little).
    rate = max(14.0, 1.3 * napps / hours)
    model = IntrepidModel(duration_days=max(1.0, 2.0 * hours / 24.0),
                          jobs_per_hour=rate)
    trace = generate_intrepid_like(model=model, seed=seed)
    io_model = (JobIOModel(median_bytes_per_process=float(bytes_per_process))
                if sampled_io else None)
    spec = replay_spec(
        platform if platform is not None else grid5000_rennes(),
        trace, window=(0.0, hours * 3600.0), strategy=strategy,
        core_scale=core_scale, bytes_per_process=bytes_per_process,
        phases_per_job=phases_per_job, max_jobs=napps,
        measure_alone=measure_alone, io_model=io_model, io_seed=seed,
        name="swf-replay",
    )
    spec.meta["scenario"] = "swf-replay"
    arbiter_opts = {"decision_log_limit": SCALE_DECISION_LOG_LIMIT}
    arbiter_opts.update(arbiter or {})
    return [spec.with_(arbiter=arbiter_opts)]


@register_scenario(
    "checkpoint-waves",
    "High-churn kernel scenario: cohorts of writers checkpointing in "
    "synchronized waves over a wide machine, with span-server bridge "
    "apps that merge and split link/flow components "
    "(meta: napps, ncohorts, nbridges).")
def checkpoint_waves(napps: int = 120, nservers: int = 16,
                     ncohorts: int = 4, strategy: Optional[Any] = None,
                     phases: int = 3, bytes_per_process: int = 2_000_000,
                     period: float = 30.0, jitter: float = 0.5,
                     bridge_every: int = 5, seed: int = 13,
                     allocator: str = "incremental",
                     arbiter: Optional[Dict[str, Any]] = None
                     ) -> List[ExperimentSpec]:
    """Synchronized bursty cohorts — the bottleneck-incremental kernel's
    stress case.  Application ``i`` belongs to cohort ``i % ncohorts``;
    every cohort checkpoints together (same period, wave-staggered starts
    plus a small jitter), so each wave floods its servers with near-
    simultaneous arrivals and drains them with near-simultaneous
    completions — exactly the churn the cached bottleneck orders absorb.
    Every ``bridge_every``-th application writes two files (hashing onto
    two servers), bridging otherwise disjoint per-server components so
    the component registry exercises union on the wave's rise and split
    on its fall."""
    if napps < 1:
        raise ValueError(f"napps must be >= 1, got {napps}")
    if ncohorts < 1:
        raise ValueError(f"ncohorts must be >= 1, got {ncohorts}")
    rng = ensure_rng(seed)
    platform = many_writers_platform(nservers, allocator=allocator)
    workloads = []
    nbridges = 0
    wave_gap = period / ncohorts
    for i in range(napps):
        cohort = i % ncohorts
        nprocs = int(rng.choice([4, 8, 16]))
        nfiles = 1
        if bridge_every > 0 and i % bridge_every == 0:
            nfiles = 2
            nbridges += 1
        workloads.append(WorkloadSpec(
            name=f"app{i:03d}",
            nprocs=nprocs,
            pattern=Contiguous(block_size=bytes_per_process),
            nfiles=nfiles,
            iterations=phases,
            period=float(period),
            start_time=float(cohort * wave_gap + rng.uniform(0.0, jitter)),
            grain="round",
        ))
    arbiter_opts = {"decision_log_limit": SCALE_DECISION_LOG_LIMIT}
    arbiter_opts.update(arbiter or {})
    return [ExperimentSpec(
        platform=platform, workloads=tuple(workloads), strategy=strategy,
        name="checkpoint-waves", measure_alone=False,
        meta={"napps": napps, "ncohorts": ncohorts, "nbridges": nbridges,
              "scenario": "checkpoint-waves"},
        arbiter=arbiter_opts,
    )]


@register_scenario(
    "read-write-mix",
    "High-churn kernel scenario: checkpoint/restart-flavoured mix — half "
    "the applications alternate write and read-back phases while the "
    "rest write continuously (meta: napps, nreaders).")
def read_write_mix(napps: int = 80, nservers: int = 16,
                   strategy: Optional[Any] = None, phases: int = 4,
                   bytes_per_process: int = 2_000_000,
                   spread: float = 30.0, period: float = 20.0,
                   read_every: int = 2, seed: int = 17,
                   allocator: str = "incremental",
                   arbiter: Optional[Dict[str, Any]] = None
                   ) -> List[ExperimentSpec]:
    """Every ``read_every``-th application runs ``operation='readwrite'``
    (even iterations write a checkpoint, odd iterations read it back), so
    server ingest and drain flows interleave on the same components and
    the perturbation mix differs from the pure-writer scenarios.  Needs
    ``phases >= 2`` for any read phase to happen."""
    if napps < 1:
        raise ValueError(f"napps must be >= 1, got {napps}")
    rng = ensure_rng(seed)
    platform = many_writers_platform(nservers, allocator=allocator)
    workloads = []
    nreaders = 0
    for i in range(napps):
        nprocs = int(rng.choice([4, 8, 16, 32]))
        operation = "write"
        if read_every > 0 and i % read_every == 0:
            operation = "readwrite"
            nreaders += 1
        workloads.append(WorkloadSpec(
            name=f"app{i:03d}",
            nprocs=nprocs,
            pattern=Contiguous(block_size=bytes_per_process),
            iterations=phases,
            period=float(period),
            start_time=float(rng.uniform(0.0, spread)),
            grain="round",
            operation=operation,
        ))
    arbiter_opts = {"decision_log_limit": SCALE_DECISION_LOG_LIMIT}
    arbiter_opts.update(arbiter or {})
    return [ExperimentSpec(
        platform=platform, workloads=tuple(workloads), strategy=strategy,
        name="read-write-mix", measure_alone=False,
        meta={"napps": napps, "nreaders": nreaders,
              "scenario": "read-write-mix"},
        arbiter=arbiter_opts,
    )]


# ---------------------------------------------------------------------------
# Sharded-coordination scenarios (multi-partition platforms)
# ---------------------------------------------------------------------------

@register_scenario(
    "sharded-writers",
    "Sharded coordination scale scenario: N staggered writers pinned "
    "round-robin onto a multi-partition machine, one arbiter shard per "
    "partition (arbiter={'shards': 1} for the single-arbiter baseline) "
    "(meta: napps, npartitions, shards).")
def sharded_writers(napps: int = 200, npartitions: int = 8,
                    nservers: int = 32, strategy: Optional[Any] = "fcfs",
                    shards: Optional[int] = None, phases: int = 3,
                    bytes_per_process: int = 4_000_000,
                    spread: float = 60.0, period: float = 30.0,
                    seed: int = 7, measure_alone: bool = False,
                    arbiter: Optional[Dict[str, Any]] = None
                    ) -> List[ExperimentSpec]:
    """The many-writers mix on a partitioned machine: application ``i`` is
    pinned (data *and* coordination) to partition ``i % npartitions``, so
    with one shard per partition the decision load divides evenly and no
    access ever crosses shards.  ``shards=1`` runs the identical workload
    under a single machine-wide arbiter — the scale-out comparison pair
    ``benchmarks/test_scale_shards.py`` measures."""
    if napps < 1:
        raise ValueError(f"napps must be >= 1, got {napps}")
    if npartitions < 1:
        raise ValueError(f"npartitions must be >= 1, got {npartitions}")
    nshards = npartitions if shards is None else int(shards)
    rng = ensure_rng(seed)
    platform = many_writers_platform(nservers, npartitions=npartitions)
    workloads = []
    for i in range(napps):
        nprocs = int(rng.choice([4, 8, 16, 32]))
        workloads.append(WorkloadSpec(
            name=f"app{i:03d}",
            nprocs=nprocs,
            pattern=Contiguous(block_size=bytes_per_process),
            iterations=phases,
            period=float(period),
            start_time=float(rng.uniform(0.0, spread)),
            grain="round",
            partitions=(i % npartitions,),
        ))
    arbiter_opts = {"decision_log_limit": SCALE_DECISION_LOG_LIMIT,
                    "shards": nshards}
    arbiter_opts.update(arbiter or {})
    return [ExperimentSpec(
        platform=platform, workloads=tuple(workloads), strategy=strategy,
        name="sharded-writers", measure_alone=measure_alone,
        meta={"napps": napps, "npartitions": npartitions,
              "shards": arbiter_opts.get("shards"),
              "scenario": "sharded-writers"},
        arbiter=arbiter_opts,
    )]


@register_scenario(
    "cross-partition",
    "Cross-shard protocol scenario: pinned writers plus span-partition "
    "applications whose two files live on adjacent partitions, exercising "
    "the ordered-lock two-phase grant (meta: napps, npartitions, nspan).")
def cross_partition(napps: int = 24, npartitions: int = 4,
                    nservers: int = 16, strategy: Optional[Any] = "fcfs",
                    span_every: int = 3, phases: int = 2,
                    bytes_per_process: int = 2_000_000,
                    spread: float = 20.0, period: float = 15.0,
                    seed: int = 11, measure_alone: bool = False,
                    arbiter: Optional[Dict[str, Any]] = None
                    ) -> List[ExperimentSpec]:
    """Every ``span_every``-th application writes two files on *adjacent*
    partitions (``partitions=(p, p+1)``, ``nfiles=2``) and must therefore
    hold grants on both owning shards at once; the rest stay pinned.  The
    mix keeps every shard busy while span accesses thread the ordered
    two-phase grant through them."""
    if napps < 1:
        raise ValueError(f"napps must be >= 1, got {napps}")
    if npartitions < 2:
        raise ValueError("cross-partition needs npartitions >= 2, "
                         f"got {npartitions}")
    rng = ensure_rng(seed)
    platform = many_writers_platform(nservers, npartitions=npartitions)
    workloads = []
    nspan = 0
    for i in range(napps):
        nprocs = int(rng.choice([4, 8, 16]))
        start = float(rng.uniform(0.0, spread))
        p = i % npartitions
        if span_every > 0 and i % span_every == 0:
            nspan += 1
            partitions = (p, (p + 1) % npartitions)
            nfiles = 2
        else:
            partitions = (p,)
            nfiles = 1
        workloads.append(WorkloadSpec(
            name=f"app{i:03d}",
            nprocs=nprocs,
            pattern=Contiguous(block_size=bytes_per_process),
            nfiles=nfiles,
            iterations=phases,
            period=float(period),
            start_time=start,
            grain="round",
            partitions=partitions,
        ))
    arbiter_opts = {"decision_log_limit": SCALE_DECISION_LOG_LIMIT}
    arbiter_opts.update(arbiter or {})
    return [ExperimentSpec(
        platform=platform, workloads=tuple(workloads), strategy=strategy,
        name="cross-partition", measure_alone=measure_alone,
        meta={"napps": napps, "npartitions": npartitions, "nspan": nspan,
              "scenario": "cross-partition"},
        arbiter=arbiter_opts,
    )]
