"""Operations sidecar: health probes and metrics over plain HTTP.

The daemon binds a second listener (``ServiceConfig.ops_port``) speaking
just enough HTTP/1.0 for probes and scrapers — hand-rolled on asyncio
because the repo takes no dependencies:

``GET /healthz``
    ``200`` with a JSON body while serving (``{"status": "ok", ...}``),
    ``503`` with ``{"status": "draining", ...}`` once a drain started —
    the shape a readiness probe wants (stop routing new clients, keep the
    process alive while connections finish).

``GET /metrics``
    Prometheus text exposition of the daemon's
    :class:`~repro.perf.PerfCounters` (coordination counters, simulator
    counters, ``service_*`` accounting) plus live gauges.  Counter names
    pass through unchanged — they are already ``snake_case``.

``POST /drain``
    Triggers a graceful drain (idempotent); responds immediately with
    ``202`` and the current health snapshot.  This is how an operator (or
    the CI smoke job) asks a running daemon to finish up and exit.
"""

from __future__ import annotations

import asyncio
import json
import numbers
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .server import CoordinationService

__all__ = ["handle_ops", "render_metrics"]

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 503: "Service Unavailable"}


def render_metrics(service: "CoordinationService") -> str:
    """The daemon's counters in Prometheus text exposition format."""
    lines = []
    for name, value in sorted(service.metrics_snapshot().items()):
        if not isinstance(value, numbers.Real):  # pragma: no cover - guard
            continue
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {float(value):g}")
    return "\n".join(lines) + "\n"


def _response(status: int, body: str, content_type: str) -> bytes:
    payload = body.encode("utf-8")
    head = (f"HTTP/1.0 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n")
    return head.encode("ascii") + payload


def _route(service: "CoordinationService", method: str,
           path: str) -> Tuple[int, str, str]:
    if method == "GET" and path == "/healthz":
        health = service.health()
        status = 503 if service.draining else 200
        return status, json.dumps(health), "application/json"
    if method == "GET" and path == "/metrics":
        return 200, render_metrics(service), "text/plain; version=0.0.4"
    if method == "POST" and path == "/drain":
        if not service.draining:
            # Fire-and-forget: the drain outlives this HTTP exchange.
            asyncio.ensure_future(service.drain())
        return 202, json.dumps(service.health()), "application/json"
    return 404, json.dumps({"error": f"no route {method} {path}"}), \
        "application/json"


async def handle_ops(service: "CoordinationService",
                     reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
    """Serve one HTTP exchange (HTTP/1.0: one request per connection)."""
    try:
        request_line = await reader.readline()
        parts = request_line.decode("ascii", "replace").split()
        if len(parts) < 2:
            writer.write(_response(400, json.dumps({"error": "bad request"}),
                                   "application/json"))
            await writer.drain()
            return
        method, path = parts[0].upper(), parts[1]
        # Drain (and discard) the request headers.
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        status, body, ctype = _route(service, method, path)
        writer.write(_response(status, body, ctype))
        await writer.drain()
    except ConnectionError:  # pragma: no cover - probe vanished
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except Exception:  # pragma: no cover - probe vanished
            pass
