"""Recording coordination traffic: the bridge from engine runs to the wire.

:class:`RecordingRouter` is a transparent proxy over the runtime's
coordinator (:class:`~repro.core.sharding.ShardRouter` or a bare
:class:`~repro.core.arbiter.Arbiter` — same protocol surface).  Installed
through :func:`repro.experiments.engine.execute_spec`'s
``coordinator_wrap`` seam, it observes every Inform/Release/Complete
exchange of a run and appends it — globally sequenced, timestamped,
payload snapshotted — to a :class:`CoordinationTrace`.

Why call order is application order
-----------------------------------
The batched arbiter queues exchanges into same-timestamp coordination
rounds, but every synchronous entry point flushes the pending round
*before* acting, and a flush applies queued entries strictly in arrival
order.  So the global sequence this proxy records (call order) is exactly
the order in which the arbiter applies exchanges — which is what lets the
service replay a trace one exchange at a time (seq-gated) and reproduce
the in-process decision log bit for bit.  The one fidelity boundary:
DELAY hold-expiry timers interleave with same-timestamp exchanges by
event id, which a trace cannot capture — replay equivalence is guaranteed
for strategies that never return ``Action.DELAY`` (all defaults).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Mapping, Optional

from ..experiments.engine import execute_spec
from ..experiments.spec import ExperimentSpec
from .protocol import descriptor_to_dict

__all__ = ["CoordinationTrace", "RecordingRouter", "record_trace",
           "spec_fingerprint"]


def spec_fingerprint(spec: ExperimentSpec) -> str:
    """Stable digest of a spec — lets the daemon reject mismatched clients."""
    canonical = json.dumps(spec.to_dict(), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class CoordinationTrace:
    """A run's coordination traffic as an ordered, replayable entry list.

    Entries are plain dicts (JSON types only)::

        {"seq": 17, "t": 30.0001, "op": "inform",
         "app": "app003", "descriptor": {...}}
        {"seq": 18, "t": 30.2,    "op": "release",
         "app": "app003", "remaining": 2.0e6}
        {"seq": 19, "t": 30.4,    "op": "complete", "app": "app003"}

    ``seq`` is the global application order (dense, from 0); ``t`` is the
    simulated time of the exchange, non-decreasing with ``seq``.
    """

    def __init__(self, meta: Optional[Dict[str, Any]] = None):
        self.meta: Dict[str, Any] = dict(meta or {})
        self.entries: List[Dict[str, Any]] = []

    # -- building ----------------------------------------------------------
    def add(self, op: str, app: str, t: float, **payload: Any) -> None:
        entry = {"seq": len(self.entries), "t": float(t), "op": op,
                 "app": app}
        entry.update(payload)
        self.entries.append(entry)

    # -- views -------------------------------------------------------------
    @property
    def apps(self) -> List[str]:
        """Distinct application names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for entry in self.entries:
            seen.setdefault(entry["app"])
        return list(seen)

    def entries_for(self, apps) -> List[Dict[str, Any]]:
        """The sub-trace of ``apps``, still in global ``seq`` order."""
        wanted = set(apps)
        return [e for e in self.entries if e["app"] in wanted]

    def __len__(self) -> int:
        return len(self.entries)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"meta": dict(self.meta), "entries": list(self.entries)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CoordinationTrace":
        trace = cls(meta=dict(data.get("meta", {})))
        trace.entries = [dict(e) for e in data.get("entries", [])]
        return trace

    def to_json(self, **dumps_kw: Any) -> str:
        return json.dumps(self.to_dict(), **dumps_kw)

    @classmethod
    def from_json(cls, text: str) -> "CoordinationTrace":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CoordinationTrace entries={len(self.entries)} "
                f"apps={len(self.apps)}>")


class RecordingRouter:
    """Coordinator proxy appending every mutating exchange to a trace.

    Mutating protocol calls (`inform`/`release`/`complete`/`withdraw`,
    sync and batched variants alike) are recorded *then* forwarded;
    queries and attributes pass straight through, so sessions cannot tell
    the difference.  Descriptors are snapshotted at call time — the
    arbiter mutates them afterwards.
    """

    def __init__(self, inner, trace: CoordinationTrace):
        self._inner = inner
        self._trace = trace
        self._sim = inner.sim

    # -- recorded entry points ---------------------------------------------
    def submit_inform(self, descriptor):
        self._trace.add("inform", descriptor.app, self._sim.now,
                        descriptor=descriptor_to_dict(descriptor))
        return self._inner.submit_inform(descriptor)

    def on_inform(self, descriptor):
        self._trace.add("inform", descriptor.app, self._sim.now,
                        descriptor=descriptor_to_dict(descriptor))
        return self._inner.on_inform(descriptor)

    def submit_release(self, app, remaining_bytes=None):
        self._trace.add("release", app, self._sim.now,
                        remaining=remaining_bytes)
        return self._inner.submit_release(app, remaining_bytes)

    def on_release(self, app, remaining_bytes=None):
        self._trace.add("release", app, self._sim.now,
                        remaining=remaining_bytes)
        return self._inner.on_release(app, remaining_bytes)

    def on_complete(self, app):
        self._trace.add("complete", app, self._sim.now)
        return self._inner.on_complete(app)

    def withdraw(self, app):
        self._trace.add("withdraw", app, self._sim.now)
        return self._inner.withdraw(app)

    # -- passthrough -------------------------------------------------------
    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RecordingRouter over {self._inner!r}>"


def record_trace(spec: ExperimentSpec):
    """Run ``spec`` in-process, recording its coordination traffic.

    Returns ``(trace, result)`` — the replayable
    :class:`CoordinationTrace` (meta carries the spec fingerprint and
    strategy) and the :class:`~repro.experiments.engine.ExperimentResult`
    whose ``decisions`` are the reference log a replay must reproduce.
    """
    if spec.strategy is None:
        raise ValueError("record_trace() needs a coordinated spec "
                         "(strategy is None)")
    trace = CoordinationTrace(meta={
        "spec_sha": spec_fingerprint(spec),
        "strategy": (spec.strategy if isinstance(spec.strategy, str)
                     else getattr(spec.strategy, "name", "custom")),
        "spec_name": spec.name,
    })
    result = execute_spec(
        spec, coordinator_wrap=lambda inner: RecordingRouter(inner, trace))
    trace.meta["decisions"] = len(result.decisions)
    trace.meta["makespan"] = result.makespan
    return trace, result
