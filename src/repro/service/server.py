"""The coordination daemon: an arbiter serving sessions over the wire.

:class:`CoordinationService` hosts the exact coordination stack an
in-process run uses — a :class:`~repro.platforms.Platform` (for the
capacity/latency/estimator configuration the runtime injects into
strategies) plus a :class:`~repro.core.CalciomRuntime` whose
:class:`~repro.core.sharding.ShardRouter` takes the decisions — behind an
asyncio TCP listener speaking the :mod:`repro.service.protocol` framing.

Two serving modes, chosen per connection at ``hello``:

``replay``
    Deterministic: every exchange carries the global sequence number and
    simulated timestamp of a recorded :class:`~repro.service.trace.
    CoordinationTrace`.  A strict sequencer applies entry ``seq`` only
    once entries ``0..seq-1`` are applied (out-of-order arrivals are
    buffered, bounded per connection — the backpressure policy), and the
    daemon's *virtual clock* — the simulator that owns the arbiter — is
    advanced to each entry's recorded time before applying it.  Because
    the batched arbiter's decisions are invariant to round partitioning,
    replaying one exchange at a time reproduces the in-process decision
    log bit for bit (``tests/test_service_equivalence.py``).

``live``
    Exchanges apply on arrival at the current virtual clock (monotonic:
    a client-supplied ``t`` may only move it forward).  A connection that
    drops mid-session gets its applications withdrawn — the crash
    semantics a real deployment needs.

Admission control rejects ``hello``\\ s beyond ``max_sessions`` (or once
draining); :meth:`CoordinationService.drain` stops accepting, lets
connected clients finish and say ``bye``, then settles the simulator.
The ops surface (``/healthz``/``/metrics``) lives in
:mod:`repro.service.ops`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from ..core import CalciomRuntime
from ..experiments.spec import ExperimentSpec
from ..platforms import Platform
from .protocol import (
    CODECS, ProtocolError, WireDecoder, WireEncoder, decisions_to_json,
    default_wire_codec, descriptor_from_dict, read_message, write_message,
)

__all__ = ["ServiceConfig", "CoordinationService"]

_OPS = ("inform", "release", "complete", "withdraw")


@dataclass(frozen=True)
class ServiceConfig:
    """Daemon tuning knobs (the admission/backpressure policy)."""

    host: str = "127.0.0.1"
    port: int = 0              #: 0 = ephemeral (bound port in ``address``)
    ops_port: Optional[int] = None  #: None disables the ops endpoints
    #: Admission: total concurrent coordination sessions (apps) served.
    max_sessions: int = 1024
    #: Backpressure: out-of-order replay entries buffered per connection
    #: before the daemon stops reading from it.
    max_pending: int = 64
    #: Reject clients whose hello carries a different spec fingerprint
    #: (None = accept any).
    spec_sha: Optional[str] = None


class _Connection:
    """Per-connection state: sessions, outbox, backpressure accounting."""

    __slots__ = ("cid", "mode", "apps", "writer", "outbox", "buffered",
                 "unblocked", "closed", "frames", "applied", "encoder",
                 "decoder")

    def __init__(self, cid: int, mode: str, apps: Set[str],
                 writer: asyncio.StreamWriter, encoder: WireEncoder,
                 decoder: WireDecoder):
        self.cid = cid
        self.mode = mode
        self.apps = apps
        self.writer = writer
        #: Frames queued for the writer task (acks, grants, errors).
        self.outbox: "asyncio.Queue[Optional[dict]]" = asyncio.Queue()
        self.buffered = 0          #: out-of-order entries held by the sequencer
        self.unblocked = asyncio.Event()
        self.unblocked.set()
        self.closed = False
        self.frames = 0
        self.applied = 0
        self.encoder = encoder     #: negotiated codec, server->client frames
        self.decoder = decoder     #: universal (self-describing payloads)


class CoordinationService:
    """An asyncio daemon serving Inform/Release/Complete over the wire."""

    def __init__(self, spec: ExperimentSpec,
                 config: Optional[ServiceConfig] = None):
        if spec.strategy is None:
            raise ValueError("the coordination service needs a strategy "
                             "(spec.strategy is None)")
        self.spec = spec
        self.config = config or ServiceConfig()
        self.platform = Platform(spec.platform)
        self.runtime = CalciomRuntime(self.platform, strategy=spec.strategy,
                                      **dict(spec.arbiter))
        self.sim = self.platform.sim
        self.coordinator = self.runtime.coordinator
        self.perf = self.platform.perf

        self.draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._ops_server: Optional[asyncio.AbstractServer] = None
        self._connections: Dict[int, _Connection] = {}
        self._sessions: Dict[str, int] = {}   #: app -> owning connection id
        self._next_cid = 0
        #: Replay sequencer: next global seq to apply, plus the buffer of
        #: early arrivals (seq -> (entry, owning connection)).
        self._next_seq = 0
        self._pending: Dict[int, Tuple[dict, _Connection]] = {}
        self._granted_subs: Set[str] = set()
        self._drained = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the coordination listener (and the ops sidecar, if any)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        if self.config.ops_port is not None:
            from .ops import handle_ops
            self._ops_server = await asyncio.start_server(
                lambda r, w: handle_ops(self, r, w),
                self.config.host, self.config.ops_port)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound coordination endpoint (resolves ephemeral ports)."""
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    @property
    def ops_address(self) -> Optional[Tuple[str, int]]:
        if self._ops_server is None:
            return None
        sock = self._ops_server.sockets[0]
        return sock.getsockname()[:2]

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: stop admitting, let clients finish, settle.

        Returns True if every connection ended cleanly within ``timeout``
        (None = wait forever); on timeout the stragglers are dropped and
        False is returned.
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        clean = True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
        except asyncio.TimeoutError:
            clean = False
            await self._drop_all()
        # Settle the virtual clock: in-flight grant notifications, span
        # chains, hold timers.
        self.sim.run()
        self._drained.set()
        self.perf.bump("service_drains")
        return clean

    async def close(self) -> None:
        """Hard stop: drop every connection and both listeners."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._drop_all()
        if self._ops_server is not None:
            self._ops_server.close()
            await self._ops_server.wait_closed()
        self._drained.set()

    async def _drop_all(self) -> None:
        for conn in list(self._connections.values()):
            await self._finish_connection(conn, abnormal=True)

    # ------------------------------------------------------------------
    # Introspection (shared with the ops endpoints)
    # ------------------------------------------------------------------
    @property
    def decision_log(self):
        return self.runtime.decision_log

    def decision_digest(self) -> Tuple[str, int]:
        """(sha256 of the canonical decision-log serialization, count)."""
        import hashlib
        log = self.decision_log
        canonical = decisions_to_json(log)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest(), len(log)

    def health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.draining else "ok",
            "sessions": len(self._sessions),
            "max_sessions": self.config.max_sessions,
            "connections": len(self._connections),
            "draining": self.draining,
            "next_seq": self._next_seq,
            "pending": len(self._pending),
            "sim_time": self.sim.now,
            "decisions": len(self.decision_log),
        }

    def metrics_snapshot(self) -> Dict[str, float]:
        """Perf counters plus live gauges, one flat namespace."""
        snap = dict(self.perf.as_dict())
        snap["service_sessions_active"] = len(self._sessions)
        snap["service_connections_active"] = len(self._connections)
        snap["service_pending_entries"] = len(self._pending)
        snap["service_draining"] = 1.0 if self.draining else 0.0
        return snap

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn: Optional[_Connection] = None
        writer_task: Optional[asyncio.Task] = None
        try:
            conn = await self._admit(reader, writer)
            if conn is None:
                return
            writer_task = asyncio.ensure_future(self._writer_loop(conn))
            await self._reader_loop(conn, reader)
        except (ProtocolError, ConnectionError, asyncio.CancelledError) as exc:
            self.perf.bump("service_protocol_errors")
            if conn is not None and not conn.closed:
                try:
                    conn.outbox.put_nowait(
                        {"type": "error", "reason": str(exc)})
                except Exception:  # pragma: no cover - raced shutdown
                    pass
        finally:
            if conn is not None:
                await self._finish_connection(conn, abnormal=not conn.closed)
                if writer_task is not None:
                    conn.outbox.put_nowait(None)
                    try:
                        await writer_task
                    except Exception:  # pragma: no cover - peer vanished
                        pass
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # pragma: no cover - peer vanished
                pass

    async def _admit(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> Optional[_Connection]:
        """The hello handshake: admission control and codec negotiation."""
        hello = await read_message(reader)
        if hello is None:
            return None
        if hello.get("type") != "hello":
            raise ProtocolError(f"expected hello, got {hello.get('type')!r}")
        apps = [str(a) for a in hello.get("apps", [])]
        mode = hello.get("mode", "live")
        # Codec negotiation: grant the client's proposal when we speak it,
        # else fall back to the JSON oracle.  Hello/welcome are always
        # JSON; only post-handshake *encoders* switch (payloads are
        # self-describing, so decoders never need to).
        codec = hello.get("codec", "json")
        if codec not in CODECS:
            codec = "json"
        reason = None
        if mode not in ("replay", "live"):
            reason = f"unknown mode {mode!r}"
        elif self.draining:
            reason = "draining"
        elif not apps:
            reason = "hello declares no apps"
        elif len(self._sessions) + len(apps) > self.config.max_sessions:
            reason = "at-capacity"
        elif any(a in self._sessions for a in apps):
            reason = "duplicate-app"
        elif (self.config.spec_sha is not None
              and hello.get("spec_sha") not in (None, self.config.spec_sha)):
            reason = "spec-mismatch"
        if reason is not None:
            self.perf.bump("service_rejections")
            await write_message(writer, {"type": "rejected",
                                         "reason": reason})
            return None
        cid = self._next_cid
        self._next_cid += 1
        conn = _Connection(cid, mode, set(apps), writer,
                           WireEncoder(codec, perf=self.perf),
                           WireDecoder(perf=self.perf))
        self._connections[cid] = conn
        for app in apps:
            self._sessions[app] = cid
        self._idle.clear()
        self.perf.bump("service_connections")
        self.perf.bump("service_sessions", len(apps))
        await write_message(writer, {"type": "welcome", "mode": mode,
                                     "next_seq": self._next_seq,
                                     "codec": codec})
        return conn

    async def _writer_loop(self, conn: _Connection) -> None:
        """Drain the connection's outbox in order; None is the sentinel.

        Coalescing happens here: every frame already queued is encoded
        into one buffer and shipped with a single ``write``/``drain`` —
        the replies of a whole coordination wave (a pipelined replay
        round's acks, a grant burst) cost one syscall, not one each.
        """
        outbox = conn.outbox
        writer = conn.writer
        encoder = conn.encoder
        while True:
            frame = await outbox.get()
            if frame is None:
                return
            batch = bytearray(encoder.encode(frame))
            batched = 1
            done = False
            while not outbox.empty():
                frame = outbox.get_nowait()
                if frame is None:
                    done = True
                    break
                batch += encoder.encode(frame)
                batched += 1
            writer.write(bytes(batch))
            await writer.drain()
            self._note_flush(batched)
            if done:
                return

    def _note_flush(self, batched: int) -> None:
        self.perf.bump("wire_flushes")
        if batched > 1:
            self.perf.bump("wire_coalesced_frames", batched - 1)

    async def _reader_loop(self, conn: _Connection,
                           reader: asyncio.StreamReader) -> None:
        while True:
            # Backpressure: a connection whose out-of-order entries fill
            # the buffer is not read again until the sequencer drains it.
            await conn.unblocked.wait()
            message = await read_message(reader, conn.decoder)
            if message is None:
                # EOF without bye: abnormal (peer vanished).
                return
            conn.frames += 1
            self.perf.bump("service_frames")
            mtype = message.get("type")
            if mtype == "bye":
                conn.closed = True
                await self._finish_connection(conn, abnormal=False)
                conn.outbox.put_nowait({"type": "bye-ack"})
                return
            if mtype == "decision-digest":
                sha, count = self.decision_digest()
                conn.outbox.put_nowait({"type": "decision-digest",
                                        "sha256": sha, "decisions": count})
                continue
            if mtype not in _OPS:
                raise ProtocolError(f"unknown message type {mtype!r}")
            self._ingest(conn, message)

    # ------------------------------------------------------------------
    # The sequencer and the virtual clock
    # ------------------------------------------------------------------
    def _ingest(self, conn: _Connection, entry: dict) -> None:
        app = (entry.get("app")
               or (entry.get("descriptor") or {}).get("app"))
        if app not in conn.apps:
            raise ProtocolError(
                f"exchange for {app!r} on a connection serving "
                f"{sorted(conn.apps)}")
        if conn.mode == "live":
            self._apply(conn, entry)
            return
        seq = entry.get("seq")
        if not isinstance(seq, int) or seq < 0:
            raise ProtocolError(f"replay exchange without a seq: {entry!r}")
        if seq < self._next_seq or seq in self._pending:
            raise ProtocolError(f"duplicate seq {seq}")
        if seq == self._next_seq:
            self._apply(conn, entry)
            self._next_seq += 1
            self._drain_pending()
        else:
            self._pending[seq] = (entry, conn)
            conn.buffered += 1
            self.perf.bump("service_reordered_frames")
            if conn.buffered >= self.config.max_pending:
                conn.unblocked.clear()
                self.perf.bump("service_backpressure_stalls")

    def _drain_pending(self) -> None:
        """Apply every buffered entry the sequencer has caught up to."""
        while self._next_seq in self._pending:
            entry, owner = self._pending.pop(self._next_seq)
            owner.buffered -= 1
            if owner.buffered < self.config.max_pending:
                owner.unblocked.set()
            self._apply(owner, entry)
            self._next_seq += 1

    def _apply(self, conn: _Connection, entry: dict) -> None:
        """Apply one exchange to the arbiter at its simulated time.

        Synchronous — the arbiter's ``on_*`` entry points decide
        immediately (round partitioning does not change decisions), and
        running inside one event-loop task step makes each apply atomic.
        """
        op = entry["op"] if "op" in entry else entry["type"]
        t = entry.get("t")
        if t is not None and float(t) > self.sim.now:
            # Advance the virtual clock, firing grant notifications, span
            # chains and hold timers scheduled before the new time.
            self.sim.run(until=float(t))
        ack: Dict[str, Any] = {"type": f"{op}-ack", "t": self.sim.now}
        if "seq" in entry:
            ack["seq"] = entry["seq"]
        if op == "inform":
            descriptor = descriptor_from_dict(entry.get("descriptor") or {})
            authorized = self.coordinator.on_inform(descriptor)
            self._settle(conn)
            app = descriptor.app
            if not authorized:
                self._subscribe_grant(conn, app)
            ack["app"] = app
            ack["authorized"] = bool(authorized)
        elif op == "release":
            remaining = entry.get("remaining")
            self.coordinator.on_release(
                entry["app"],
                None if remaining is None else float(remaining))
            ack["app"] = entry["app"]
        else:  # complete / withdraw
            self.coordinator.withdraw(entry["app"])
            self._settle(conn)
            ack["app"] = entry["app"]
        conn.applied += 1
        self.perf.bump("service_exchanges_applied")
        conn.outbox.put_nowait(ack)

    def _settle(self, conn: _Connection) -> None:
        """Drive the simulator after an exchange, mode-appropriately.

        Replay: only same-timestamp followups (multi-shard span chains) —
        the recorded timeline advances the clock between exchanges, and
        hold timers must fire exactly where the recording put them.
        Live: to exhaustion — there is no recorded timeline, so virtual
        time is event-driven (grant latencies and hold timers elapse
        between client exchanges); the clock stays monotonic because a
        client ``t`` may only move it forward.
        """
        if conn.mode == "live":
            self.sim.run()
        else:
            self.sim.run(until=self.sim.now)

    def _subscribe_grant(self, conn: _Connection, app: str) -> None:
        """Push a grant frame when a queued app's authorization fires."""
        if app in self._granted_subs:
            return
        self._granted_subs.add(app)
        event = self.coordinator.authorization_event(app)

        def _on_grant(_ev: object, app: str = app) -> None:
            self._granted_subs.discard(app)
            owner = self._connections.get(self._sessions.get(app, -1))
            if owner is not None and not owner.closed:
                self.perf.bump("service_grants_pushed")
                owner.outbox.put_nowait(
                    {"type": "grant", "app": app, "t": self.sim.now})

        if event.processed:
            _on_grant(event)
        else:
            event.callbacks.append(_on_grant)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    async def _finish_connection(self, conn: _Connection,
                                 abnormal: bool) -> None:
        if conn.cid not in self._connections:
            return
        del self._connections[conn.cid]
        for app in conn.apps:
            self._sessions.pop(app, None)
            if abnormal and conn.mode == "live":
                # Crash semantics: a vanished client's accesses must not
                # hold authorizations forever.
                self.coordinator.withdraw(app)
                self._settle(conn)
                self.perf.bump("service_crash_withdrawals")
        if abnormal:
            self.perf.bump("service_abnormal_disconnects")
        if not self._connections:
            self._idle.set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CoordinationService sessions={len(self._sessions)} "
                f"next_seq={self._next_seq} draining={self.draining}>")
