"""The ``service-many-writers`` load generator.

Replays a recorded ``many-writers`` coordination trace through N
concurrent :class:`~repro.service.client.ServiceClient` connections
against a :class:`~repro.service.server.CoordinationService`, measuring
what the daemon sustains:

* **decisions/sec** — the reference decision count over the replay's
  wall-clock (the daemon's decision loop plus framing, sequencing and
  event-loop scheduling);
* **p99 round latency** — per-exchange round-trip (send → ack), which
  for out-of-order arrivals includes time parked in the sequencer — the
  tail a real client would observe;
* **equivalence** — the daemon's decision log must be *bit-identical*
  to the in-process run that produced the trace (digest-checked over the
  wire; the benchmark additionally string-compares the full logs).

Apps are dealt round-robin to clients, each client sends its sub-trace
lockstep (one in-flight exchange per connection), and the sequencer
serializes globally — so N clients reproduce exactly the recorded
exchange order while exercising real interleaving on the wire.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..experiments.spec import ExperimentSpec
from .client import ServiceClient
from .protocol import decisions_to_json
from .server import CoordinationService, ServiceConfig
from .trace import CoordinationTrace, record_trace, spec_fingerprint

__all__ = ["LoadgenStats", "replay_trace", "run_service_benchmark"]


@dataclass
class LoadgenStats:
    """One replay's measurements (one client-count scale)."""

    nclients: int
    decisions: int
    exchanges: int
    wall_seconds: float
    service_rate: float          #: decisions/sec sustained over the wire
    inproc_rate: float           #: decisions/sec of the recording run
    p50_latency_s: float
    p99_latency_s: float
    max_latency_s: float
    equivalent: bool             #: decision log matches the reference
    digest: str
    latencies: List[float] = field(default_factory=list, repr=False)

    @property
    def speedup(self) -> float:
        """Relative throughput (service vs in-process decision rate).

        Hardware-independent — both rates are measured on the same host in
        the same process — which is what lets the CI gate compare records
        across machines (see ``repro.perf.check_perf_regression``).
        """
        if self.inproc_rate <= 0:
            return 0.0
        return self.service_rate / self.inproc_rate

    def as_record(self) -> Dict[str, float]:
        """The ``BENCH_service.json`` per-scale record."""
        return {
            "speedup": self.speedup,
            "service_rate": self.service_rate,
            "inproc_rate": self.inproc_rate,
            "p50_latency_s": self.p50_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "decisions": self.decisions,
            "exchanges": self.exchanges,
            "wall_seconds": self.wall_seconds,
        }


def _deal(apps: List[str], nclients: int) -> List[List[str]]:
    """Round-robin apps across clients (clients may end up empty)."""
    hands: List[List[str]] = [[] for _ in range(nclients)]
    for i, app in enumerate(apps):
        hands[i % nclients].append(app)
    return hands


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = int(round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _entry_message(entry: dict) -> dict:
    op = entry["op"]
    if op == "inform":
        return {"type": "inform", "descriptor": dict(entry["descriptor"])}
    if op == "release":
        return {"type": "release", "app": entry["app"],
                "remaining": entry.get("remaining")}
    return {"type": op, "app": entry["app"]}


async def _client_worker(host: str, port: int, apps: List[str],
                         entries: List[dict], spec_sha: Optional[str],
                         latencies: List[float],
                         codec: Optional[str] = None,
                         pipeline: int = 1) -> None:
    """One connection's replay: its sub-trace, in seq order.

    ``pipeline=1`` is the lockstep mode (one in-flight exchange, the
    latency a synchronous client observes).  ``pipeline=n`` queues up to
    ``n`` exchanges per flush and awaits the acks as a wave — valid in
    replay mode because a connection's sub-trace is seq-ascending and
    acks stay FIFO; throughput becomes wire/codec-bound instead of
    RTT-bound, which is what the codec-comparison regime measures.
    Wave latencies are recorded per exchange from the wave's start.
    """
    client = await ServiceClient.connect(host, port, apps, mode="replay",
                                         spec_sha=spec_sha, codec=codec)
    try:
        if pipeline <= 1:
            for entry in entries:
                t0 = time.perf_counter()
                ack = await client.request(_entry_message(entry),
                                           seq=entry["seq"], t=entry["t"])
                latencies.append(time.perf_counter() - t0)
                del ack
            return
        for start in range(0, len(entries), pipeline):
            wave = entries[start:start + pipeline]
            t0 = time.perf_counter()
            futures = [client.request_nowait(_entry_message(entry),
                                             seq=entry["seq"], t=entry["t"])
                       for entry in wave]
            await client.flush()
            for future in futures:
                await future
                latencies.append(time.perf_counter() - t0)
    finally:
        await client.close()


async def replay_trace(trace: CoordinationTrace, host: str, port: int,
                       nclients: int,
                       reference_decisions: Optional[list] = None,
                       inproc_wall_seconds: float = 0.0,
                       codec: Optional[str] = None,
                       pipeline: int = 1) -> LoadgenStats:
    """Replay a recorded trace through ``nclients`` concurrent clients.

    ``codec`` proposes the wire codec in each client's hello (``None`` =
    the process default); ``pipeline`` > 1 switches clients from lockstep
    to windowed pipelining (see :func:`_client_worker`).
    """
    if nclients < 1:
        raise ValueError(f"nclients must be >= 1, got {nclients}")
    apps = trace.apps
    spec_sha = trace.meta.get("spec_sha")
    hands = [h for h in _deal(apps, nclients) if h]
    latencies: List[float] = []
    wall_t0 = time.perf_counter()
    await asyncio.gather(*[
        _client_worker(host, port, hand, trace.entries_for(hand), spec_sha,
                       latencies, codec=codec, pipeline=pipeline)
        for hand in hands])
    wall = time.perf_counter() - wall_t0

    # Equivalence: ask the daemon for its decision-log digest.
    probe = await ServiceClient.connect(host, port, ["_loadgen_probe"],
                                        mode="live", spec_sha=spec_sha)
    try:
        digest = await probe.decision_digest()
    finally:
        await probe.close()
    sha = digest.get("sha256", "")
    decisions = int(digest.get("decisions", 0))
    equivalent = True
    if reference_decisions is not None:
        reference_sha = hashlib.sha256(
            decisions_to_json(reference_decisions).encode("utf-8")
        ).hexdigest()
        equivalent = (sha == reference_sha
                      and decisions == len(reference_decisions))

    ordered = sorted(latencies)
    inproc_rate = (decisions / inproc_wall_seconds
                   if inproc_wall_seconds > 0 else 0.0)
    return LoadgenStats(
        nclients=nclients,
        decisions=decisions,
        exchanges=len(trace),
        wall_seconds=wall,
        service_rate=decisions / wall if wall > 0 else 0.0,
        inproc_rate=inproc_rate,
        p50_latency_s=_percentile(ordered, 0.50),
        p99_latency_s=_percentile(ordered, 0.99),
        max_latency_s=ordered[-1] if ordered else 0.0,
        equivalent=equivalent,
        digest=sha,
        latencies=latencies,
    )


async def run_service_benchmark(
        spec: ExperimentSpec, nclients: int,
        config: Optional[ServiceConfig] = None,
        trace_and_reference: Optional[Tuple[CoordinationTrace, list, float]]
        = None,
        codec: Optional[str] = None,
        pipeline: int = 1,
) -> Tuple[LoadgenStats, CoordinationService]:
    """Record (or reuse) a trace, serve it, replay it, drain — one scale.

    Self-hosted: a fresh :class:`CoordinationService` on an ephemeral
    port in this event loop.  ``trace_and_reference`` lets a multi-scale
    sweep record the in-process run once: ``(trace, reference_decisions,
    inproc_wall_seconds)``.  The (drained) service is returned so callers
    can string-compare full decision logs against the reference.
    """
    if trace_and_reference is None:
        trace, result = record_trace(spec)
        reference = result.decisions
        inproc_wall = float(result.perf.get("wall_seconds", 0.0))
    else:
        trace, reference, inproc_wall = trace_and_reference
    config = config or ServiceConfig()
    if config.spec_sha is None:
        # The probe/benchmark clients always send the trace's fingerprint.
        config = ServiceConfig(
            host=config.host, port=config.port, ops_port=config.ops_port,
            max_sessions=config.max_sessions,
            max_pending=config.max_pending,
            spec_sha=spec_fingerprint(spec))
    service = CoordinationService(spec, config)
    await service.start()
    host, port = service.address
    try:
        stats = await replay_trace(trace, host, port, nclients,
                                   reference_decisions=reference,
                                   inproc_wall_seconds=inproc_wall,
                                   codec=codec, pipeline=pipeline)
    finally:
        await service.drain(timeout=10.0)
        await service.close()
    return stats, service
