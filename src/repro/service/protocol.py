"""Wire protocol: length-prefixed JSON frames and coordination schemas.

Framing
-------
Every message is one JSON object encoded as UTF-8, prefixed by its byte
length as a 4-byte big-endian unsigned integer.  Length-prefixed framing
(rather than newline-delimited) keeps the payload format unconstrained
and makes partial-read handling explicit; JSON (rather than a binary
encoding) keeps the protocol inspectable and dependency-free.  Frames
are capped at :data:`MAX_FRAME` to bound a malicious or broken peer.

Message schemas (client → server)
---------------------------------
``hello``     ``{"type": "hello", "apps": [...], "mode": "replay"|"live",
              "spec_sha": str|None}`` — first frame on a connection;
              declares the coordination sessions the connection will
              multiplex.  Answered by ``welcome`` or ``rejected``.
``inform``    ``{"type": "inform", "seq": int, "t": float,
              "descriptor": {...}}`` — one Inform exchange; answered by
              ``inform-ack`` carrying the authorization verdict.
``release``   ``{"type": "release", "seq": int, "t": float, "app": str,
              "remaining": float|null}`` — end of a guarded step.
``complete``  ``{"type": "complete", "seq": int, "t": float,
              "app": str}`` — the access is finished.
``withdraw``  like ``complete`` (job teardown semantics).
``bye``       clean end of the connection.

Server → client
---------------
Acks echo the request ``seq``; ``grant`` frames are *pushed* when a
previously-queued app's authorization fires (the wire analogue of
:meth:`~repro.core.session.CalciomSession.wait` returning).

Float fidelity
--------------
Python's :mod:`json` serializes floats via ``repr``, which round-trips
every finite ``float`` exactly — the property that lets a replayed trace
reproduce the in-process decision log *bit for bit*.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Mapping, Optional

from ..core.arbiter import DecisionRecord
from ..core.metrics import AccessDescriptor

__all__ = [
    "MAX_FRAME", "ProtocolError",
    "encode_message", "decode_message", "read_message", "write_message",
    "read_frame", "write_frame",
    "descriptor_to_dict", "descriptor_from_dict",
    "decision_to_dict", "decisions_to_json",
]

_LEN = struct.Struct(">I")

#: Upper bound on one frame's payload, bytes (a descriptor is ~200 B).
MAX_FRAME = 1 << 20


class ProtocolError(Exception):
    """A malformed frame or an out-of-contract message."""


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def encode_message(message: Mapping[str, Any]) -> bytes:
    """One wire frame: 4-byte big-endian length + UTF-8 JSON payload."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds "
                            f"MAX_FRAME ({MAX_FRAME})")
    return _LEN.pack(len(payload)) + payload


def decode_message(payload: bytes) -> Dict[str, Any]:
    """Parse one frame's payload (sans length prefix)."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"frame is not a typed object: {message!r}")
    return message


async def read_message(reader: asyncio.StreamReader
                       ) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection dropped mid-frame") from None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"announced frame of {length} bytes exceeds "
                            f"MAX_FRAME ({MAX_FRAME})")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection dropped mid-frame") from None
    return decode_message(payload)


async def write_message(writer: asyncio.StreamWriter,
                        message: Mapping[str, Any]) -> None:
    """Write one frame and drain (the back of the backpressure story)."""
    writer.write(encode_message(message))
    await writer.drain()


# ---------------------------------------------------------------------------
# Synchronous framing (blocking sockets)
# ---------------------------------------------------------------------------
#
# The shard-worker transport (:mod:`repro.core.shardproc`) speaks the same
# frames over blocking ``socketpair`` endpoints — a worker process has no
# event loop, it just alternates read/apply/write.  ``None`` on clean EOF
# at a frame boundary mirrors :func:`read_message`.

def _recv_exactly(sock, n: int) -> bytes:
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got:
                raise ProtocolError("connection dropped mid-frame")
            return b""
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock) -> Optional[Dict[str, Any]]:
    """Blocking read of one frame; ``None`` on clean EOF at a boundary."""
    header = _recv_exactly(sock, _LEN.size)
    if not header:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"announced frame of {length} bytes exceeds "
                            f"MAX_FRAME ({MAX_FRAME})")
    payload = _recv_exactly(sock, length)
    if len(payload) != length:
        raise ProtocolError("connection dropped mid-frame")
    return decode_message(payload)


def write_frame(sock, message: Mapping[str, Any]) -> None:
    """Blocking write of one frame (``sendall``)."""
    sock.sendall(encode_message(message))


# ---------------------------------------------------------------------------
# Coordination schemas
# ---------------------------------------------------------------------------

def descriptor_to_dict(d: AccessDescriptor) -> Dict[str, Any]:
    """Snapshot an :class:`AccessDescriptor`'s exchanged fields.

    A *snapshot*: the arbiter mutates live descriptors (``remaining_bytes``
    on release, ``access_started`` on activation), so recording keeps
    values, never references.
    """
    return {
        "app": d.app,
        "nprocs": d.nprocs,
        "total_bytes": d.total_bytes,
        "t_alone": d.t_alone,
        "remaining_bytes": d.remaining_bytes,
        "access_started": d.access_started,
        "files": d.files,
        "rounds": d.rounds,
        "partitions": list(d.partitions),
    }


def descriptor_from_dict(data: Mapping[str, Any]) -> AccessDescriptor:
    """Inverse of :func:`descriptor_to_dict`, exact on every field.

    ``remaining_bytes``/``access_started`` are restored *after*
    construction: ``__post_init__`` coerces a zero ``remaining_bytes`` to
    ``total_bytes``, which must not rewrite a genuinely-drained snapshot.
    """
    try:
        desc = AccessDescriptor(
            app=str(data["app"]),
            nprocs=int(data["nprocs"]),
            total_bytes=float(data["total_bytes"]),
            t_alone=float(data["t_alone"]),
            files=int(data.get("files", 1)),
            rounds=int(data.get("rounds", 1)),
            partitions=tuple(int(p) for p in data.get("partitions", (0,))),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad descriptor {data!r}: {exc}") from None
    desc.remaining_bytes = float(data.get("remaining_bytes",
                                          desc.remaining_bytes))
    started = data.get("access_started")
    desc.access_started = None if started is None else float(started)
    return desc


def decision_to_dict(record: DecisionRecord) -> Dict[str, Any]:
    """One decision-log entry as plain JSON types (for wire + diffing)."""
    return {
        "time": record.time,
        "app": record.app,
        "action": record.action.value,
        "active": list(record.active),
        "waiting": list(record.waiting),
        "costs": dict(record.costs),
    }


def decisions_to_json(records) -> str:
    """Canonical serialization of a decision log.

    Two logs are *bit-identical* iff their canonical serializations are
    equal strings — the equality the service's replay guarantees against
    the in-process run.
    """
    return json.dumps([decision_to_dict(r) for r in records],
                      separators=(",", ":"), sort_keys=True)
