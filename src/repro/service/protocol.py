"""Wire protocol: length-prefixed frames, two codecs, coordination schemas.

Framing
-------
Every message is one *frame*: a payload prefixed by its byte length as a
4-byte big-endian unsigned integer.  Length-prefixed framing (rather than
newline-delimited) keeps the payload format unconstrained and makes
partial-read handling explicit; frames are capped at :data:`MAX_FRAME` to
bound a malicious or broken peer.

Two codecs produce payloads, and every payload is *self-describing* —
the first byte distinguishes them, so one decoder handles both:

``json`` (the oracle)
    The payload is one canonical-JSON object encoded as UTF-8 (first byte
    ``{`` = 0x7B).  Python's :mod:`json` serializes floats via ``repr``,
    which round-trips every finite ``float`` exactly — the property that
    lets a replayed trace reproduce the in-process decision log *bit for
    bit*.  JSON stays the default and the cross-checked reference: the
    binary codec must be observationally equivalent to it (equal decoded
    messages, string-equal decision logs), asserted by
    ``tests/test_wire_codec.py``.

``binary``
    The payload starts with a tag byte >= 0x80 followed by a
    struct-packed body.  The hot message types of both data planes —
    service Inform/Release/Complete/Withdraw and their acks, pushed
    grants, shard-worker ops and transition replies — have fixed fast
    paths (IEEE-754 doubles are bit-exact by construction); anything
    else, and any message that fails a fast path's preconditions, falls
    back to tag ``0x80`` + canonical JSON, so coverage is total.
    :class:`AccessDescriptor` payloads are *interned*: the first time a
    descriptor's static fields cross a connection they are sent in full
    and assigned an id; subsequent informs for the same static tuple send
    only the id plus the two mutable fields (``remaining_bytes``,
    ``access_started``) — the dominant message of both planes shrinks
    from ~250 JSON bytes to ~30.

Because interning is *stateful per connection and direction*, encoding
and decoding live in :class:`WireEncoder` / :class:`WireDecoder`
instances (a decoder accepts both codecs; an encoder produces exactly
one).  The module-level :func:`encode_message` / :func:`decode_message`
remain the stateless JSON primitives.

Codec negotiation
-----------------
The ``hello``/``welcome`` handshake is always JSON.  A client that can
decode binary sends ``{"codec": "binary"}`` inside its hello; the daemon
answers with the codec it will actually speak in the ``welcome`` (an
unknown proposal falls back to ``"json"``), and both sides switch their
*encoders* after the handshake.  Decoders need no switch — payloads are
self-describing.  The shard-worker plane has one owner on both ends, so
it skips negotiation: the router passes the codec name to each worker at
spawn (``REPRO_WIRE_CODEC``, default ``json``).

Message schemas (client → server)
---------------------------------
``hello``     ``{"type": "hello", "apps": [...], "mode": "replay"|"live",
              "spec_sha": str|None, "codec": "json"|"binary"}`` — first
              frame on a connection; declares the coordination sessions
              the connection will multiplex.  Answered by ``welcome`` or
              ``rejected``.
``inform``    ``{"type": "inform", "seq": int, "t": float,
              "descriptor": {...}}`` — one Inform exchange; answered by
              ``inform-ack`` carrying the authorization verdict.
``release``   ``{"type": "release", "seq": int, "t": float, "app": str,
              "remaining": float|null}`` — end of a guarded step.
``complete``  ``{"type": "complete", "seq": int, "t": float,
              "app": str}`` — the access is finished.
``withdraw``  like ``complete`` (job teardown semantics).
``bye``       clean end of the connection.

Server → client
---------------
Acks echo the request ``seq``; ``grant`` frames are *pushed* when a
previously-queued app's authorization fires (the wire analogue of
:meth:`~repro.core.session.CalciomSession.wait` returning).
"""

from __future__ import annotations

import asyncio
import json
import os
import struct
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.arbiter import DecisionRecord
from ..core.metrics import AccessDescriptor

__all__ = [
    "MAX_FRAME", "CODECS", "ProtocolError", "FrameError",
    "canonical_json", "default_wire_codec",
    "WireEncoder", "WireDecoder", "FrameReader",
    "encode_message", "decode_message", "read_message", "write_message",
    "read_frame", "write_frame",
    "descriptor_to_dict", "descriptor_from_dict",
    "decision_to_dict", "decisions_to_json",
]

_LEN = struct.Struct(">I")

#: Upper bound on one frame's payload, bytes (a descriptor is ~200 B).
MAX_FRAME = 1 << 20

#: The codecs an encoder can speak (a decoder always accepts both).
CODECS = ("json", "binary")


def default_wire_codec() -> str:
    """The process-wide default codec: ``REPRO_WIRE_CODEC`` or ``json``."""
    codec = os.environ.get("REPRO_WIRE_CODEC", "").strip().lower()
    return codec if codec in CODECS else "json"


class ProtocolError(Exception):
    """A malformed frame or an out-of-contract message."""


class FrameError(ProtocolError):
    """A frame died on the wire: truncation, interrupt, transport failure.

    The single surface for every low-level framing failure — partial
    reads, EINTR-adjacent socket errors, oversized announcements — so
    callers never see a mix of ``ConnectionError`` / ``struct.error`` /
    raw ``OSError`` leaking out of the read path.  Messages carry byte
    offsets (``got X of Y bytes``) because "dropped mid-frame" alone is
    useless when diagnosing a desynchronized stream.
    """


# ---------------------------------------------------------------------------
# Canonical JSON (the shared float/separator policy)
# ---------------------------------------------------------------------------

def canonical_json(obj: Any, *, sort_keys: bool = False) -> str:
    """The one canonical JSON serialization policy of the wire.

    Compact separators, ``repr``-exact floats (the :mod:`json` default —
    every finite float round-trips bit for bit).  Both
    :func:`encode_message` (every JSON payload on the wire) and
    :func:`decisions_to_json` (the bit-identity contract) go through this
    single helper, so the two call sites cannot drift apart.
    """
    return json.dumps(obj, separators=(",", ":"), sort_keys=sort_keys)


# ---------------------------------------------------------------------------
# Stateless JSON framing primitives
# ---------------------------------------------------------------------------

def _frame(payload: bytes) -> bytes:
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds "
                            f"MAX_FRAME ({MAX_FRAME})")
    return _LEN.pack(len(payload)) + payload


def encode_message(message: Mapping[str, Any]) -> bytes:
    """One JSON wire frame: 4-byte big-endian length + UTF-8 payload."""
    return _frame(canonical_json(message).encode("utf-8"))


def decode_message(payload: bytes) -> Dict[str, Any]:
    """Parse one JSON frame's payload (sans length prefix)."""
    try:
        message = json.loads(
            payload.decode("utf-8") if isinstance(payload, (bytes, bytearray,
                                                            memoryview))
            else payload)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"frame is not a typed object: {message!r}")
    return message


# ---------------------------------------------------------------------------
# Binary codec internals
# ---------------------------------------------------------------------------

class _Unrepresentable(Exception):
    """Internal: this message needs the generic JSON fallback."""


_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_I32 = struct.Struct(">i")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_TAG_GENERIC = 0x80
_TAG_INFORM = 0x81
_TAG_RELEASE = 0x82
_TAG_COMPLETE = 0x83
_TAG_WITHDRAW = 0x84
_TAG_ACK = 0x85
_TAG_GRANT = 0x86
_TAG_OP = 0x87
_TAG_REPLY = 0x88

_ACK_TYPES = ("inform-ack", "release-ack", "complete-ack", "withdraw-ack")
_OP_NAMES = ("inform", "release", "complete", "withdraw", "advance")
_STATE_NAMES = ("idle", "active", "waiting", "preempted")
_ACTION_NAMES = ("go", "wait", "interrupt", "delay")

_ACK_CODES = {name: i for i, name in enumerate(_ACK_TYPES)}
_OP_CODES = {name: i for i, name in enumerate(_OP_NAMES)}
_STATE_CODES = {name: i for i, name in enumerate(_STATE_NAMES)}
_ACTION_CODES = {name: i for i, name in enumerate(_ACTION_NAMES)}

_DESC_KEYS = frozenset((
    "app", "nprocs", "total_bytes", "t_alone", "remaining_bytes",
    "access_started", "files", "rounds", "partitions"))

#: Interned-descriptor id meaning "do not store" (encoder table full).
_NO_ID = 0xFFFFFFFF
#: Per-direction intern table bound (ids are assigned densely below it).
_MAX_INTERNED = 1 << 16

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1
_I32_MIN, _I32_MAX = -(1 << 31), (1 << 31) - 1


def _is_int(v: Any) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


def _is_num(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _pstr(out: bytearray, s: Any) -> None:
    if not isinstance(s, str):
        raise _Unrepresentable
    data = s.encode("utf-8")
    if len(data) > 0xFFFF:
        raise _Unrepresentable
    out += _U16.pack(len(data))
    out += data


def _put_opt_float(out: bytearray, v: Any) -> None:
    if v is None:
        out += b"\x00"
    elif _is_num(v):
        out += b"\x01"
        out += _F64.pack(v)
    else:
        raise _Unrepresentable


def _put_seq_t(out: bytearray, m: Mapping[str, Any]) -> int:
    """Append the optional ``seq``/``t`` fields; return their flag bits."""
    flags = 0
    if "seq" in m:
        seq = m["seq"]
        if not _is_int(seq) or not 0 <= seq <= 0xFFFFFFFFFFFFFFFF:
            raise _Unrepresentable
        flags |= 1
        out += _U64.pack(seq)
    if "t" in m:
        t = m["t"]
        if not _is_num(t):
            raise _Unrepresentable
        flags |= 2
        out += _F64.pack(t)
    return flags


class WireEncoder:
    """One direction's frame encoder (codec fixed, interning stateful).

    ``encode()`` always returns a complete frame (length prefix
    included); with ``codec="binary"`` the hot message types take the
    struct fast paths and descriptors are interned, while anything
    off-schema falls back to tagged canonical JSON.  Counter bumps go to
    ``perf`` when given: ``wire_frames_encoded`` / ``wire_bytes_encoded``
    / ``wire_encode_seconds``, plus ``wire_desc_interned`` /
    ``wire_desc_refs`` / ``wire_generic_frames`` on the binary paths.
    """

    __slots__ = ("codec", "perf", "_desc_ids")

    def __init__(self, codec: str = "json", perf=None):
        if codec not in CODECS:
            raise ValueError(f"unknown wire codec {codec!r} "
                             f"(expected one of {CODECS})")
        self.codec = codec
        self.perf = perf
        #: static-descriptor tuple -> interned id (binary codec only).
        self._desc_ids: Dict[tuple, int] = {}

    def encode(self, message: Mapping[str, Any]) -> bytes:
        perf = self.perf
        t0 = time.perf_counter() if perf is not None else 0.0
        if self.codec == "binary":
            try:
                payload = self._binary_payload(message)
            except (_Unrepresentable, struct.error, OverflowError,
                    UnicodeEncodeError, TypeError, KeyError, ValueError):
                payload = (_U8.pack(_TAG_GENERIC)
                           + canonical_json(message).encode("utf-8"))
                if perf is not None:
                    perf.bump("wire_generic_frames")
        else:
            payload = canonical_json(message).encode("utf-8")
        frame = _frame(payload)
        if perf is not None:
            perf.bump("wire_encode_seconds", time.perf_counter() - t0)
            perf.bump("wire_frames_encoded")
            perf.bump("wire_bytes_encoded", len(frame))
        return frame

    # -- binary fast paths --------------------------------------------------
    def _binary_payload(self, m: Mapping[str, Any]) -> bytes:
        mtype = m.get("type")
        if mtype == "inform":
            return self._enc_inform(m)
        if mtype == "release":
            return self._enc_release(m)
        if mtype in ("complete", "withdraw"):
            return self._enc_complete(m)
        if mtype in _ACK_CODES:
            return self._enc_ack(m)
        if mtype == "grant":
            return self._enc_grant(m)
        if mtype == "op":
            return self._enc_op(m)
        if mtype == "r":
            return self._enc_reply(m)
        raise _Unrepresentable

    def _enc_inform(self, m: Mapping[str, Any]) -> bytes:
        if set(m) - {"seq", "t"} != {"type", "descriptor"}:
            raise _Unrepresentable
        out = bytearray((_TAG_INFORM, 0))
        out[1] = _put_seq_t(out, m)
        self._put_descriptor(out, m["descriptor"])
        return bytes(out)

    def _enc_release(self, m: Mapping[str, Any]) -> bytes:
        if set(m) - {"seq", "t"} != {"type", "app", "remaining"}:
            raise _Unrepresentable
        out = bytearray((_TAG_RELEASE, 0))
        flags = _put_seq_t(out, m)
        remaining = m["remaining"]
        _pstr(out, m["app"])
        if remaining is not None:
            if not _is_num(remaining):
                raise _Unrepresentable
            flags |= 4
            out += _F64.pack(remaining)
        out[1] = flags
        return bytes(out)

    def _enc_complete(self, m: Mapping[str, Any]) -> bytes:
        if set(m) - {"seq", "t"} != {"type", "app"}:
            raise _Unrepresentable
        tag = _TAG_COMPLETE if m["type"] == "complete" else _TAG_WITHDRAW
        out = bytearray((tag, 0))
        out[1] = _put_seq_t(out, m)
        _pstr(out, m["app"])
        return bytes(out)

    def _enc_ack(self, m: Mapping[str, Any]) -> bytes:
        mtype = m["type"]
        expected = ({"type", "t", "app", "authorized"}
                    if mtype == "inform-ack" else {"type", "t", "app"})
        if set(m) - {"seq"} != expected:
            raise _Unrepresentable
        t = m["t"]
        if not _is_num(t):
            raise _Unrepresentable
        flags = 0
        if "authorized" in m:
            if not isinstance(m["authorized"], bool):
                raise _Unrepresentable
            flags |= 2
            if m["authorized"]:
                flags |= 4
        out = bytearray((_TAG_ACK, _ACK_CODES[mtype], flags))
        out += _F64.pack(t)
        if "seq" in m:
            seq = m["seq"]
            if not _is_int(seq) or not 0 <= seq <= 0xFFFFFFFFFFFFFFFF:
                raise _Unrepresentable
            out[2] = flags | 1
            out += _U64.pack(seq)
        _pstr(out, m["app"])
        return bytes(out)

    def _enc_grant(self, m: Mapping[str, Any]) -> bytes:
        if set(m) != {"type", "app", "t"} or not _is_num(m["t"]):
            raise _Unrepresentable
        out = bytearray((_TAG_GRANT,))
        out += _F64.pack(m["t"])
        _pstr(out, m["app"])
        return bytes(out)

    def _enc_op(self, m: Mapping[str, Any]) -> bytes:
        op = m.get("op")
        code = _OP_CODES.get(op)
        if code is None:
            raise _Unrepresentable
        base = set(m) - {"t", "r"}
        if op == "inform":
            expected = {"type", "op", "d"}
        elif op == "release":
            expected = {"type", "op", "app", "rem"}
        elif op == "advance":
            expected = {"type", "op"}
        else:
            expected = {"type", "op", "app"}
        if base != expected:
            raise _Unrepresentable
        flags = 0
        out = bytearray((_TAG_OP, code, 0))
        if "t" in m:
            if not _is_num(m["t"]):
                raise _Unrepresentable
            flags |= 1
            out += _F64.pack(m["t"])
        if "r" in m:
            r = m["r"]
            if not _is_int(r) or r not in (0, 1):
                raise _Unrepresentable
            flags |= 2
            if r:
                flags |= 4
        if op == "inform":
            self._put_descriptor(out, m["d"])
        elif op == "release":
            _pstr(out, m["app"])
            rem = m["rem"]
            if rem is not None:
                if not _is_num(rem):
                    raise _Unrepresentable
                flags |= 8
                out += _F64.pack(rem)
        elif op != "advance":
            _pstr(out, m["app"])
        out[2] = flags
        return bytes(out)

    def _enc_reply(self, m: Mapping[str, Any]) -> bytes:
        if set(m) - {"ok", "dec"} != {"type", "tr", "nw"}:
            raise _Unrepresentable
        nw = m["nw"]
        tr = m["tr"]
        if not isinstance(tr, (list, tuple)) or len(tr) > 0xFFFF:
            raise _Unrepresentable
        flags = 0
        body = bytearray()
        if nw is not None:
            if not _is_num(nw):
                raise _Unrepresentable
            flags |= 1
            body += _F64.pack(nw)
        if "ok" in m:
            if not isinstance(m["ok"], bool):
                raise _Unrepresentable
            flags |= 2
            if m["ok"]:
                flags |= 4
        if "dec" in m:
            flags |= 8
            dec = m["dec"]
            if dec is not None:
                if (not isinstance(dec, (list, tuple)) or len(dec) != 2
                        or dec[0] not in _ACTION_CODES
                        or not _is_num(dec[1])):
                    raise _Unrepresentable
                flags |= 16
                body += _U8.pack(_ACTION_CODES[dec[0]])
                body += _F64.pack(dec[1])
        body += _U16.pack(len(tr))
        for entry in tr:
            if (not isinstance(entry, (list, tuple)) or len(entry) != 2
                    or entry[1] not in _STATE_CODES):
                raise _Unrepresentable
            _pstr(body, entry[0])
            body += _U8.pack(_STATE_CODES[entry[1]])
        return bytes(bytearray((_TAG_REPLY, flags)) + body)

    def _put_descriptor(self, out: bytearray, d: Any) -> None:
        if not isinstance(d, Mapping) or set(d) != _DESC_KEYS:
            raise _Unrepresentable
        app = d["app"]
        nprocs, files, rounds = d["nprocs"], d["files"], d["rounds"]
        parts = d["partitions"]
        if not isinstance(parts, (list, tuple)):
            raise _Unrepresentable
        parts_t = tuple(parts)
        for v in (nprocs, files, rounds):
            if not _is_int(v) or not _I64_MIN <= v <= _I64_MAX:
                raise _Unrepresentable
        if len(parts_t) > 0xFFFF or not all(
                _is_int(p) and _I32_MIN <= p <= _I32_MAX for p in parts_t):
            raise _Unrepresentable
        total, t_alone = d["total_bytes"], d["t_alone"]
        remaining, started = d["remaining_bytes"], d["access_started"]
        if not (_is_num(total) and _is_num(t_alone) and _is_num(remaining)):
            raise _Unrepresentable

        ids = self._desc_ids
        key = (app, nprocs, files, rounds, parts_t,
               float(total), float(t_alone))
        did = ids.get(key)
        if did is not None:
            out += b"\x01"
            out += _U32.pack(did)
            out += _F64.pack(remaining)
            _put_opt_float(out, started)
            if self.perf is not None:
                self.perf.bump("wire_desc_refs")
            return
        # Build the full body before committing the intern id: a failing
        # field must not leave the encoder table ahead of the decoder's.
        body = bytearray()
        _pstr(body, app)
        body += _I64.pack(nprocs)
        body += _I64.pack(files)
        body += _I64.pack(rounds)
        body += _U16.pack(len(parts_t))
        for p in parts_t:
            body += _I32.pack(p)
        body += _F64.pack(total)
        body += _F64.pack(t_alone)
        body += _F64.pack(remaining)
        _put_opt_float(body, started)
        if len(ids) < _MAX_INTERNED:
            did = len(ids)
            ids[key] = did
            if self.perf is not None:
                self.perf.bump("wire_desc_interned")
        else:
            did = _NO_ID
        out += b"\x00"
        out += _U32.pack(did)
        out += body


class WireDecoder:
    """One direction's frame decoder — accepts both codecs.

    Payloads are self-describing (first byte >= 0x80 means binary), so a
    single decoder instance serves a connection regardless of what was
    negotiated; the instance carries the interned-descriptor table the
    peer's encoder builds up.  Counter bumps (when ``perf`` is given):
    ``wire_frames_decoded`` / ``wire_bytes_decoded`` /
    ``wire_decode_seconds``.
    """

    __slots__ = ("perf", "_desc_static")

    def __init__(self, perf=None):
        self.perf = perf
        #: interned id -> static descriptor fields, mirrored from the peer.
        self._desc_static: Dict[int, tuple] = {}

    def decode(self, payload) -> Dict[str, Any]:
        perf = self.perf
        t0 = time.perf_counter() if perf is not None else 0.0
        if not payload:
            raise ProtocolError("empty frame")
        data = bytes(payload)
        if data[0] >= 0x80:
            try:
                message = self._decode_binary(data)
            except ProtocolError:
                raise
            except (struct.error, IndexError, UnicodeDecodeError,
                    KeyError) as exc:
                raise ProtocolError(
                    f"undecodable binary frame: {exc}") from None
        else:
            message = decode_message(data)
        if perf is not None:
            perf.bump("wire_decode_seconds", time.perf_counter() - t0)
            perf.bump("wire_frames_decoded")
            perf.bump("wire_bytes_decoded", len(data) + _LEN.size)
        return message

    # -- binary parsing -----------------------------------------------------
    def _decode_binary(self, data: bytes) -> Dict[str, Any]:
        tag = data[0]
        if tag == _TAG_GENERIC:
            return decode_message(data[1:])
        if tag == _TAG_INFORM:
            message, pos = self._dec_inform(data)
        elif tag == _TAG_RELEASE:
            message, pos = self._dec_release(data)
        elif tag in (_TAG_COMPLETE, _TAG_WITHDRAW):
            message, pos = self._dec_complete(data, tag)
        elif tag == _TAG_ACK:
            message, pos = self._dec_ack(data)
        elif tag == _TAG_GRANT:
            message, pos = self._dec_grant(data)
        elif tag == _TAG_OP:
            message, pos = self._dec_op(data)
        elif tag == _TAG_REPLY:
            message, pos = self._dec_reply(data)
        else:
            raise ProtocolError(f"unknown binary frame tag 0x{tag:02x}")
        if pos != len(data):
            raise ProtocolError(
                f"binary frame has {len(data) - pos} trailing bytes")
        return message

    @staticmethod
    def _get_str(data: bytes, pos: int) -> Tuple[str, int]:
        (n,) = _U16.unpack_from(data, pos)
        pos += 2
        end = pos + n
        if end > len(data):
            raise ProtocolError("truncated string in binary frame")
        return data[pos:end].decode("utf-8"), end

    @staticmethod
    def _get_seq_t(data: bytes, pos: int, flags: int,
                   message: Dict[str, Any]) -> int:
        if flags & 1:
            (seq,) = _U64.unpack_from(data, pos)
            pos += 8
            message["seq"] = seq
        if flags & 2:
            (t,) = _F64.unpack_from(data, pos)
            pos += 8
            message["t"] = t
        return pos

    def _dec_inform(self, data: bytes) -> Tuple[Dict[str, Any], int]:
        flags = data[1]
        message: Dict[str, Any] = {"type": "inform"}
        pos = self._get_seq_t(data, 2, flags, message)
        message["descriptor"], pos = self._get_descriptor(data, pos)
        return message, pos

    def _dec_release(self, data: bytes) -> Tuple[Dict[str, Any], int]:
        flags = data[1]
        message: Dict[str, Any] = {"type": "release"}
        pos = self._get_seq_t(data, 2, flags, message)
        message["app"], pos = self._get_str(data, pos)
        if flags & 4:
            (remaining,) = _F64.unpack_from(data, pos)
            pos += 8
            message["remaining"] = remaining
        else:
            message["remaining"] = None
        return message, pos

    def _dec_complete(self, data: bytes,
                      tag: int) -> Tuple[Dict[str, Any], int]:
        flags = data[1]
        message: Dict[str, Any] = {
            "type": "complete" if tag == _TAG_COMPLETE else "withdraw"}
        pos = self._get_seq_t(data, 2, flags, message)
        message["app"], pos = self._get_str(data, pos)
        return message, pos

    def _dec_ack(self, data: bytes) -> Tuple[Dict[str, Any], int]:
        subtype, flags = data[1], data[2]
        if subtype >= len(_ACK_TYPES):
            raise ProtocolError(f"unknown ack subtype {subtype}")
        message: Dict[str, Any] = {"type": _ACK_TYPES[subtype]}
        (t,) = _F64.unpack_from(data, 3)
        message["t"] = t
        pos = 11
        if flags & 1:
            (seq,) = _U64.unpack_from(data, pos)
            pos += 8
            message["seq"] = seq
        message["app"], pos = self._get_str(data, pos)
        if flags & 2:
            message["authorized"] = bool(flags & 4)
        return message, pos

    def _dec_grant(self, data: bytes) -> Tuple[Dict[str, Any], int]:
        (t,) = _F64.unpack_from(data, 1)
        app, pos = self._get_str(data, 9)
        return {"type": "grant", "app": app, "t": t}, pos

    def _dec_op(self, data: bytes) -> Tuple[Dict[str, Any], int]:
        code, flags = data[1], data[2]
        if code >= len(_OP_NAMES):
            raise ProtocolError(f"unknown op code {code}")
        op = _OP_NAMES[code]
        message: Dict[str, Any] = {"type": "op", "op": op}
        pos = 3
        if flags & 1:
            (t,) = _F64.unpack_from(data, pos)
            pos += 8
            message["t"] = t
        if flags & 2:
            message["r"] = 1 if flags & 4 else 0
        if op == "inform":
            message["d"], pos = self._get_descriptor(data, pos)
        elif op == "release":
            message["app"], pos = self._get_str(data, pos)
            if flags & 8:
                (rem,) = _F64.unpack_from(data, pos)
                pos += 8
                message["rem"] = rem
            else:
                message["rem"] = None
        elif op != "advance":
            message["app"], pos = self._get_str(data, pos)
        return message, pos

    def _dec_reply(self, data: bytes) -> Tuple[Dict[str, Any], int]:
        flags = data[1]
        message: Dict[str, Any] = {"type": "r"}
        pos = 2
        if flags & 1:
            (nw,) = _F64.unpack_from(data, pos)
            pos += 8
        else:
            nw = None
        if flags & 2:
            message["ok"] = bool(flags & 4)
        if flags & 8:
            if flags & 16:
                action = data[pos]
                if action >= len(_ACTION_NAMES):
                    raise ProtocolError(f"unknown action code {action}")
                (value,) = _F64.unpack_from(data, pos + 1)
                pos += 9
                message["dec"] = [_ACTION_NAMES[action], value]
            else:
                message["dec"] = None
        (ntr,) = _U16.unpack_from(data, pos)
        pos += 2
        tr: List[List[Any]] = []
        for _ in range(ntr):
            app, pos = self._get_str(data, pos)
            state = data[pos]
            pos += 1
            if state >= len(_STATE_NAMES):
                raise ProtocolError(f"unknown state code {state}")
            tr.append([app, _STATE_NAMES[state]])
        message["tr"] = tr
        message["nw"] = nw
        return message, pos

    def _get_descriptor(self, data: bytes,
                        pos: int) -> Tuple[Dict[str, Any], int]:
        kind = data[pos]
        pos += 1
        if kind == 1:
            (did,) = _U32.unpack_from(data, pos)
            pos += 4
            static = self._desc_static.get(did)
            if static is None:
                raise ProtocolError(
                    f"descriptor ref to unknown intern id {did}")
            (remaining,) = _F64.unpack_from(data, pos)
            pos += 8
            started, pos = self._get_opt_float(data, pos)
            app, nprocs, files, rounds, parts, total, t_alone = static
            return {
                "app": app,
                "nprocs": nprocs,
                "total_bytes": total,
                "t_alone": t_alone,
                "remaining_bytes": remaining,
                "access_started": started,
                "files": files,
                "rounds": rounds,
                "partitions": list(parts),
            }, pos
        if kind != 0:
            raise ProtocolError(f"unknown descriptor kind {kind}")
        (did,) = _U32.unpack_from(data, pos)
        pos += 4
        app, pos = self._get_str(data, pos)
        (nprocs,) = _I64.unpack_from(data, pos)
        (files,) = _I64.unpack_from(data, pos + 8)
        (rounds,) = _I64.unpack_from(data, pos + 16)
        (npart,) = _U16.unpack_from(data, pos + 24)
        pos += 26
        parts = []
        for _ in range(npart):
            (p,) = _I32.unpack_from(data, pos)
            pos += 4
            parts.append(p)
        (total,) = _F64.unpack_from(data, pos)
        (t_alone,) = _F64.unpack_from(data, pos + 8)
        (remaining,) = _F64.unpack_from(data, pos + 16)
        pos += 24
        started, pos = self._get_opt_float(data, pos)
        if did != _NO_ID:
            self._desc_static[did] = (app, nprocs, files, rounds,
                                      tuple(parts), total, t_alone)
        return {
            "app": app,
            "nprocs": nprocs,
            "total_bytes": total,
            "t_alone": t_alone,
            "remaining_bytes": remaining,
            "access_started": started,
            "files": files,
            "rounds": rounds,
            "partitions": parts,
        }, pos

    @staticmethod
    def _get_opt_float(data: bytes, pos: int) -> Tuple[Optional[float], int]:
        has = data[pos]
        pos += 1
        if not has:
            return None, pos
        (v,) = _F64.unpack_from(data, pos)
        return v, pos + 8


# ---------------------------------------------------------------------------
# Asynchronous framing (asyncio streams)
# ---------------------------------------------------------------------------

async def read_message(reader: asyncio.StreamReader,
                       decoder: Optional[WireDecoder] = None
                       ) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    With a :class:`WireDecoder` the payload may be either codec (and the
    decoder's intern table is maintained); without one the payload must
    be JSON — the pre-negotiation and legacy-caller path.
    """
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError(f"connection dropped mid-frame: got "
                         f"{len(exc.partial)} of {_LEN.size} header bytes"
                         ) from None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(f"announced frame of {length} bytes exceeds "
                         f"MAX_FRAME ({MAX_FRAME})")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(f"connection dropped mid-frame: got "
                         f"{len(exc.partial)} of {length} payload bytes"
                         ) from None
    if decoder is not None:
        return decoder.decode(payload)
    return decode_message(payload)


async def write_message(writer: asyncio.StreamWriter,
                        message: Mapping[str, Any],
                        encoder: Optional[WireEncoder] = None) -> None:
    """Write one frame and drain (the back of the backpressure story)."""
    writer.write(encoder.encode(message) if encoder is not None
                 else encode_message(message))
    await writer.drain()


# ---------------------------------------------------------------------------
# Synchronous framing (blocking sockets)
# ---------------------------------------------------------------------------
#
# The shard-worker transport (:mod:`repro.core.shardproc`) speaks the same
# frames over blocking ``socketpair`` endpoints — a worker process has no
# event loop, it just alternates read/apply/write.  ``None`` on clean EOF
# at a frame boundary mirrors :func:`read_message`.

class FrameReader:
    """Buffered blocking frame reader over one socket.

    One ``recv`` pulls as many bytes as the kernel has ready, so a
    pipelined stretch of frames (a coordination wave) costs one syscall,
    not two recv loops per frame.  All transport failures surface as
    :class:`FrameError` with byte offsets; ``EINTR`` is retried.
    """

    __slots__ = ("_sock", "_decoder", "_buf", "_pos")

    #: recv size — large enough that a whole coalesced wave arrives at once.
    CHUNK = 1 << 16

    def __init__(self, sock, decoder: Optional[WireDecoder] = None):
        self._sock = sock
        self._decoder = decoder if decoder is not None else WireDecoder()
        self._buf = bytearray()
        self._pos = 0

    def _available(self) -> int:
        return len(self._buf) - self._pos

    def has_buffered_frame(self) -> bool:
        """True when a complete frame is already parseable from the buffer.

        The worker loop uses this to decide when to flush its pending
        replies: only before a read that will actually hit the socket —
        the flush-before-block rule that keeps both ends deadlock-free
        while still coalescing a whole wave's replies into one send.
        """
        avail = self._available()
        if avail < _LEN.size:
            return False
        (length,) = _LEN.unpack_from(self._buf, self._pos)
        return avail >= _LEN.size + length

    def _fill(self, need: int, what: str) -> bool:
        """Ensure ``need`` bytes are buffered; False on clean EOF at 0."""
        while self._available() < need:
            try:
                chunk = self._sock.recv(max(self.CHUNK,
                                            need - self._available()))
            except InterruptedError:  # pragma: no cover - EINTR straggler
                continue
            except OSError as exc:
                raise FrameError(
                    f"transport failed with {self._available()} of {need} "
                    f"{what} bytes buffered: {exc}") from None
            if not chunk:
                if self._available() == 0:
                    return False
                raise FrameError(
                    f"connection dropped mid-frame: got "
                    f"{self._available()} of {need} {what} bytes")
            self._buf += chunk
        return True

    def read_frame(self) -> Optional[Dict[str, Any]]:
        """Read one frame; ``None`` on clean EOF at a frame boundary."""
        if self._pos and self._pos == len(self._buf):
            del self._buf[:]
            self._pos = 0
        elif self._pos > self.CHUNK:
            del self._buf[:self._pos]
            self._pos = 0
        if not self._fill(_LEN.size, "header"):
            return None
        (length,) = _LEN.unpack_from(self._buf, self._pos)
        if length > MAX_FRAME:
            raise FrameError(f"announced frame of {length} bytes exceeds "
                             f"MAX_FRAME ({MAX_FRAME})")
        if not self._fill(_LEN.size + length, "frame"):
            raise FrameError(  # pragma: no cover - _fill raises first
                "connection dropped mid-frame")
        start = self._pos + _LEN.size
        payload = bytes(self._buf[start:start + length])
        self._pos = start + length
        return self._decoder.decode(payload)


def _recv_exactly(sock, n: int) -> bytes:
    """Receive exactly ``n`` bytes, retrying EINTR; ``b""`` on clean EOF.

    Every failure mode — a connection dropped mid-read, a transport
    error — raises :class:`FrameError` carrying the byte offsets, never a
    bare ``ConnectionError`` or ``struct.error``.
    """
    chunks = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(n - got)
        except InterruptedError:  # pragma: no cover - EINTR straggler
            continue
        except OSError as exc:
            raise FrameError(
                f"transport failed after {got} of {n} bytes: {exc}"
            ) from None
        if not chunk:
            if got:
                raise FrameError(
                    f"connection dropped mid-frame: got {got} of {n} bytes")
            return b""
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock, decoder: Optional[WireDecoder] = None
               ) -> Optional[Dict[str, Any]]:
    """Blocking read of one frame; ``None`` on clean EOF at a boundary.

    Unbuffered (two recv loops per frame) — kept for one-shot callers;
    the data planes hold a :class:`FrameReader` per socket instead.
    """
    header = _recv_exactly(sock, _LEN.size)
    if not header:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(f"announced frame of {length} bytes exceeds "
                         f"MAX_FRAME ({MAX_FRAME})")
    payload = _recv_exactly(sock, length)
    if len(payload) != length:
        raise FrameError(f"connection dropped mid-frame: got "
                         f"{len(payload)} of {length} payload bytes")
    if decoder is not None:
        return decoder.decode(payload)
    return decode_message(payload)


def write_frame(sock, message: Mapping[str, Any],
                encoder: Optional[WireEncoder] = None) -> None:
    """Blocking write of one frame (``sendall``)."""
    sock.sendall(encoder.encode(message) if encoder is not None
                 else encode_message(message))


# ---------------------------------------------------------------------------
# Coordination schemas
# ---------------------------------------------------------------------------

def descriptor_to_dict(d: AccessDescriptor) -> Dict[str, Any]:
    """Snapshot an :class:`AccessDescriptor`'s exchanged fields.

    A *snapshot*: the arbiter mutates live descriptors (``remaining_bytes``
    on release, ``access_started`` on activation), so recording keeps
    values, never references.
    """
    return {
        "app": d.app,
        "nprocs": d.nprocs,
        "total_bytes": d.total_bytes,
        "t_alone": d.t_alone,
        "remaining_bytes": d.remaining_bytes,
        "access_started": d.access_started,
        "files": d.files,
        "rounds": d.rounds,
        "partitions": list(d.partitions),
    }


def descriptor_from_dict(data: Mapping[str, Any]) -> AccessDescriptor:
    """Inverse of :func:`descriptor_to_dict`, exact on every field.

    ``remaining_bytes``/``access_started`` are restored *after*
    construction: ``__post_init__`` coerces a zero ``remaining_bytes`` to
    ``total_bytes``, which must not rewrite a genuinely-drained snapshot.
    """
    try:
        desc = AccessDescriptor(
            app=str(data["app"]),
            nprocs=int(data["nprocs"]),
            total_bytes=float(data["total_bytes"]),
            t_alone=float(data["t_alone"]),
            files=int(data.get("files", 1)),
            rounds=int(data.get("rounds", 1)),
            partitions=tuple(int(p) for p in data.get("partitions", (0,))),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad descriptor {data!r}: {exc}") from None
    desc.remaining_bytes = float(data.get("remaining_bytes",
                                          desc.remaining_bytes))
    started = data.get("access_started")
    desc.access_started = None if started is None else float(started)
    return desc


def decision_to_dict(record: DecisionRecord) -> Dict[str, Any]:
    """One decision-log entry as plain JSON types (for wire + diffing)."""
    return {
        "time": record.time,
        "app": record.app,
        "action": record.action.value,
        "active": list(record.active),
        "waiting": list(record.waiting),
        "costs": dict(record.costs),
    }


def decisions_to_json(records) -> str:
    """Canonical serialization of a decision log.

    Two logs are *bit-identical* iff their canonical serializations are
    equal strings — the equality the service's replay guarantees against
    the in-process run.  The float/separator policy is
    :func:`canonical_json`, the same helper every JSON payload on the
    wire goes through, so the two contracts cannot drift apart.
    """
    return canonical_json([decision_to_dict(r) for r in records],
                          sort_keys=True)
