"""Client library: the session surface of CALCioM, over the wire.

:class:`ServiceClient` owns one connection to a
:class:`~repro.service.server.CoordinationService` and multiplexes any
number of :class:`RemoteSession`\\ s over it (one per application — the
paper's "coordinator process, typically rank 0").  A remote session
mirrors :class:`~repro.core.session.CalciomSession`'s protocol verbs:

=====================  ====================================================
in-process             over the wire
=====================  ====================================================
``inform()``           :meth:`RemoteSession.inform` — ships the descriptor,
                       returns the authorization verdict
``release()``          :meth:`RemoteSession.release`
``complete()``         :meth:`RemoteSession.complete`
``withdraw`` (arbiter)  :meth:`RemoteSession.withdraw`
``wait()``             :meth:`RemoteSession.wait_grant` — blocks on the
                       pushed ``grant`` frame
=====================  ====================================================

Responses are matched FIFO per request (the daemon acks in application
order, and a connection's requests apply in the order they were sent);
pushed ``grant`` frames are routed to the owning session's grant queue.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Union

from ..core.metrics import AccessDescriptor
from .protocol import (
    ProtocolError, WireDecoder, WireEncoder, default_wire_codec,
    descriptor_to_dict, read_message, write_message,
)

__all__ = ["ServiceClient", "RemoteSession", "AdmissionRejected"]


class AdmissionRejected(Exception):
    """The daemon refused the hello (at-capacity, draining, mismatch)."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class RemoteSession:
    """One application's coordination session, served remotely."""

    def __init__(self, client: "ServiceClient", app: str):
        self.client = client
        self.app = app
        self.grants: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()

    # -- the protocol verbs ------------------------------------------------
    async def inform(self, descriptor: Union[AccessDescriptor, Dict[str, Any]],
                     seq: Optional[int] = None,
                     t: Optional[float] = None) -> bool:
        """Ship (fresh or refreshed) access knowledge; True = authorized."""
        if isinstance(descriptor, AccessDescriptor):
            descriptor = descriptor_to_dict(descriptor)
        if descriptor.get("app") != self.app:
            raise ProtocolError(f"descriptor for {descriptor.get('app')!r} "
                                f"sent through session {self.app!r}")
        ack = await self.client.request(
            {"type": "inform", "descriptor": descriptor}, seq=seq, t=t)
        return bool(ack.get("authorized"))

    async def release(self, remaining: Optional[float] = None,
                      seq: Optional[int] = None,
                      t: Optional[float] = None) -> None:
        await self.client.request(
            {"type": "release", "app": self.app, "remaining": remaining},
            seq=seq, t=t)

    async def complete(self, seq: Optional[int] = None,
                       t: Optional[float] = None) -> None:
        await self.client.request({"type": "complete", "app": self.app},
                                  seq=seq, t=t)

    async def withdraw(self, seq: Optional[int] = None,
                       t: Optional[float] = None) -> None:
        await self.client.request({"type": "withdraw", "app": self.app},
                                  seq=seq, t=t)

    async def wait_grant(self, timeout: Optional[float] = None
                         ) -> Dict[str, Any]:
        """Block until the daemon pushes this app's authorization grant."""
        return await asyncio.wait_for(self.grants.get(), timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RemoteSession {self.app!r} via {self.client!r}>"


class ServiceClient:
    """One framed connection to the coordination daemon.

    Usage::

        client = await ServiceClient.connect(host, port,
                                             apps=["appA", "appB"],
                                             mode="live")
        session = client.session("appA")
        authorized = await session.inform(descriptor)
        ...
        await client.close()          # says bye, waits for the ack
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, apps: List[str], mode: str,
                 codec: str = "json", perf=None):
        self._reader = reader
        self._writer = writer
        self.apps = list(apps)
        self.mode = mode
        self.codec = codec          #: what the daemon granted in welcome
        self._encoder = WireEncoder(codec, perf=perf)
        self._decoder = WireDecoder(perf=perf)
        self._sessions = {app: RemoteSession(self, app) for app in apps}
        #: FIFO of futures awaiting acks (requests apply in send order).
        self._acks: "asyncio.Queue[asyncio.Future]" = asyncio.Queue()
        #: Encoded-but-unsent frames (the request_nowait/flush pipeline).
        self._sendbuf = bytearray()
        self._bye_ack: Optional[asyncio.Future] = None
        self._pump: Optional[asyncio.Task] = None
        self._broken: Optional[Exception] = None

    # -- lifecycle ---------------------------------------------------------
    @classmethod
    async def connect(cls, host: str, port: int, apps: List[str],
                      mode: str = "live",
                      spec_sha: Optional[str] = None,
                      codec: Optional[str] = None,
                      perf=None) -> "ServiceClient":
        """Open a connection; ``codec`` proposes the wire codec.

        ``None`` asks for the process default (``REPRO_WIRE_CODEC``, JSON
        when unset).  The daemon's ``welcome`` names the codec it
        actually granted — ``client.codec`` after connect.
        """
        if codec is None:
            codec = default_wire_codec()
        reader, writer = await asyncio.open_connection(host, port)
        await write_message(writer, {"type": "hello", "apps": list(apps),
                                     "mode": mode, "spec_sha": spec_sha,
                                     "codec": codec})
        answer = await read_message(reader)
        if answer is None:
            raise ConnectionError("daemon closed during handshake")
        if answer.get("type") == "rejected":
            writer.close()
            raise AdmissionRejected(answer.get("reason", "unknown"))
        if answer.get("type") != "welcome":
            raise ProtocolError(f"expected welcome, got {answer!r}")
        granted = answer.get("codec", "json")
        client = cls(reader, writer, apps, mode, codec=granted, perf=perf)
        client._pump = asyncio.ensure_future(client._pump_loop())
        return client

    async def close(self) -> None:
        """Clean shutdown: ``bye``, wait for the ack, drop the link."""
        if self._broken is None and self._bye_ack is None:
            loop = asyncio.get_event_loop()
            self._bye_ack = loop.create_future()
            try:
                self._sendbuf += self._encoder.encode({"type": "bye"})
                await self.flush()
                await asyncio.wait_for(self._bye_ack, 5.0)
            except (ConnectionError, asyncio.TimeoutError):
                pass
        await self.abort()

    async def abort(self) -> None:
        """Drop the connection without the bye handshake (crash client)."""
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except (asyncio.CancelledError, Exception):
                pass
            self._pump = None
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except Exception:
            pass

    # -- sessions ----------------------------------------------------------
    def session(self, app: str) -> RemoteSession:
        return self._sessions[app]

    # -- request plumbing --------------------------------------------------
    async def request(self, message: Dict[str, Any],
                      seq: Optional[int] = None,
                      t: Optional[float] = None) -> Dict[str, Any]:
        """Send one frame and await its ack (FIFO-matched)."""
        future = self.request_nowait(message, seq=seq, t=t)
        await self.flush()
        return await future

    def request_nowait(self, message: Dict[str, Any],
                       seq: Optional[int] = None,
                       t: Optional[float] = None) -> "asyncio.Future":
        """Queue one frame without sending; the pipelined half of request.

        The frame is encoded into the client's send buffer and its ack
        future returned; nothing hits the socket until :meth:`flush`.
        Queue a whole wave, flush once, then await the futures — one
        syscall per wave instead of one write+drain per exchange.  Valid
        whenever exchanges need no interleaved responses: replay traces
        (acks stay FIFO per connection; the daemon's sequencer orders
        across connections by ``seq``), or a live fire-and-await burst.
        """
        if self._broken is not None:
            raise ConnectionError(f"connection is broken: {self._broken}")
        if seq is not None:
            message["seq"] = int(seq)
        if t is not None:
            message["t"] = float(t)
        future = asyncio.get_event_loop().create_future()
        self._acks.put_nowait(future)
        self._sendbuf += self._encoder.encode(message)
        return future

    async def flush(self) -> None:
        """Ship every queued frame in one write (no-op when empty)."""
        if not self._sendbuf:
            return
        data = bytes(self._sendbuf)
        del self._sendbuf[:]
        self._writer.write(data)
        await self._writer.drain()

    async def decision_digest(self) -> Dict[str, Any]:
        """The daemon's current decision-log digest (equivalence checks)."""
        return await self.request({"type": "decision-digest"})

    async def _pump_loop(self) -> None:
        """Route inbound frames: grants to sessions, acks FIFO, errors up."""
        try:
            while True:
                frame = await read_message(self._reader, self._decoder)
                if frame is None:
                    raise ConnectionError("daemon closed the connection")
                ftype = frame.get("type")
                if ftype == "grant":
                    session = self._sessions.get(frame.get("app"))
                    if session is not None:
                        session.grants.put_nowait(frame)
                elif ftype == "bye-ack":
                    if self._bye_ack is not None \
                            and not self._bye_ack.done():
                        self._bye_ack.set_result(frame)
                    return
                elif ftype == "error":
                    raise ProtocolError(frame.get("reason", "unknown"))
                else:
                    future = self._acks.get_nowait()
                    if not future.done():
                        future.set_result(frame)
        except asyncio.CancelledError:  # pragma: no cover - teardown
            raise
        except Exception as exc:
            self._broken = exc
            while not self._acks.empty():
                future = self._acks.get_nowait()
                if not future.done():
                    future.set_exception(
                        ConnectionError(f"connection lost: {exc}"))
            if self._bye_ack is not None and not self._bye_ack.done():
                self._bye_ack.set_exception(
                    ConnectionError(f"connection lost: {exc}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ServiceClient apps={len(self.apps)} mode={self.mode!r} "
                f"broken={self._broken is not None}>")
