"""Command-line entry points for the coordination daemon.

::

    # a daemon serving the many-writers mix's coordination traffic
    python -m repro.service serve --scenario many-writers --napps 24 \
        --port 7421 --ops-port 7422

    # replay the (identically parameterized) recorded trace through it
    python -m repro.service loadgen --scenario many-writers --napps 24 \
        --connect 127.0.0.1:7421 --nclients 4

    # ask a running daemon to drain and exit
    python -m repro.service drain --ops 127.0.0.1:7422

    # the whole loop in one process (CI smoke)
    python -m repro.service smoke

``serve`` runs until drained (``POST /drain`` on the ops port) and exits
0 after a clean drain.  ``loadgen`` exits non-zero if the daemon's
decision log is not bit-identical to the in-process reference.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from ..experiments.scenarios import build_scenario
from .loadgen import replay_trace, run_service_benchmark
from .protocol import CODECS
from .server import CoordinationService, ServiceConfig
from .trace import record_trace, spec_fingerprint

_SCENARIO_ARGS = ("napps", "nservers", "phases", "seed")


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", default="service-many-writers")
    parser.add_argument("--napps", type=int, default=24)
    parser.add_argument("--nservers", type=int, default=8)
    parser.add_argument("--phases", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--strategy", default="fcfs")


def _build_spec(args: argparse.Namespace):
    kwargs = {name: getattr(args, name) for name in _SCENARIO_ARGS}
    kwargs["strategy"] = args.strategy
    specs = build_scenario(args.scenario, **kwargs)
    if len(specs) != 1:
        raise SystemExit(f"scenario {args.scenario!r} builds {len(specs)} "
                         "specs; the daemon serves exactly one")
    return specs[0]


def _add_wire_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--codec", choices=list(CODECS), default=None,
                        help="wire codec to propose in the hello (default: "
                             "REPRO_WIRE_CODEC, json when unset)")
    parser.add_argument("--pipeline", type=int, default=1,
                        help="exchanges queued per flush; 1 = lockstep")


def _split_endpoint(value: str):
    host, _, port = value.rpartition(":")
    return host or "127.0.0.1", int(port)


async def _serve(args: argparse.Namespace) -> int:
    spec = _build_spec(args)
    config = ServiceConfig(host=args.host, port=args.port,
                           ops_port=args.ops_port,
                           max_sessions=args.max_sessions,
                           max_pending=args.max_pending,
                           spec_sha=spec_fingerprint(spec))
    service = CoordinationService(spec, config)
    await service.start()
    print(json.dumps({"event": "listening",
                      "endpoint": list(service.address),
                      "ops": (list(service.ops_address)
                              if service.ops_address else None),
                      "spec_sha": config.spec_sha}), flush=True)
    await service._drained.wait()
    await service.close()
    health = service.health()
    print(json.dumps({"event": "drained",
                      "clean": True,
                      "decisions": health["decisions"],
                      "sim_time": health["sim_time"]}), flush=True)
    return 0


async def _loadgen(args: argparse.Namespace) -> int:
    spec = _build_spec(args)
    trace, result = record_trace(spec)
    host, port = _split_endpoint(args.connect)
    stats = await replay_trace(
        trace, host, port, args.nclients,
        reference_decisions=result.decisions,
        inproc_wall_seconds=float(result.perf.get("wall_seconds", 0.0)),
        codec=args.codec, pipeline=args.pipeline)
    record = stats.as_record()
    record.update({"event": "loadgen", "nclients": stats.nclients,
                   "codec": args.codec, "pipeline": args.pipeline,
                   "equivalent": stats.equivalent})
    print(json.dumps(record), flush=True)
    if not stats.equivalent:
        print("decision log over the wire DIVERGED from the in-process "
              "reference", file=sys.stderr)
        return 1
    return 0


async def _drain(args: argparse.Namespace) -> int:
    host, port = _split_endpoint(args.ops)
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b"POST /drain HTTP/1.0\r\n\r\n")
    await writer.drain()
    response = await reader.read()
    writer.close()
    status = response.split(b" ", 2)[1:2]
    ok = status and status[0] in (b"202", b"200")
    print(response.decode("utf-8", "replace").rsplit("\r\n", 1)[-1],
          flush=True)
    return 0 if ok else 1


async def _smoke(args: argparse.Namespace) -> int:
    """Daemon + loadgen + drain in one process; asserts the whole loop."""
    spec = _build_spec(args)
    stats, service = await run_service_benchmark(
        spec, args.nclients, codec=args.codec, pipeline=args.pipeline)
    ok = stats.equivalent and service._drained.is_set()
    print(json.dumps({"event": "smoke", "ok": ok,
                      "codec": args.codec,
                      "decisions": stats.decisions,
                      "exchanges": stats.exchanges,
                      "service_rate": stats.service_rate,
                      "p99_latency_s": stats.p99_latency_s,
                      "equivalent": stats.equivalent,
                      "clean_drain": service._drained.is_set()}),
          flush=True)
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.service")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the coordination daemon")
    _add_scenario_args(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--ops-port", type=int, default=0)
    serve.add_argument("--max-sessions", type=int, default=1024)
    serve.add_argument("--max-pending", type=int, default=64)
    serve.set_defaults(run=_serve)

    loadgen = sub.add_parser("loadgen", help="replay a trace over the wire")
    _add_scenario_args(loadgen)
    loadgen.add_argument("--connect", required=True,
                         help="daemon endpoint, host:port")
    loadgen.add_argument("--nclients", type=int, default=4)
    _add_wire_args(loadgen)
    loadgen.set_defaults(run=_loadgen)

    drain = sub.add_parser("drain", help="gracefully drain a daemon")
    drain.add_argument("--ops", required=True,
                       help="ops endpoint, host:port")
    drain.set_defaults(run=_drain)

    smoke = sub.add_parser("smoke", help="daemon+loadgen+drain, one process")
    _add_scenario_args(smoke)
    smoke.add_argument("--nclients", type=int, default=3)
    _add_wire_args(smoke)
    smoke.set_defaults(run=_smoke)

    args = parser.parse_args(argv)
    return asyncio.run(args.run(args))


if __name__ == "__main__":
    sys.exit(main())
