"""Coordination-as-a-service: the CALCioM arbiter behind a network daemon.

Every experiment so far ran the arbiter *inside* the simulation process.
This package turns the coordination layer into a long-running service —
the deployment shape the paper implies for a production machine, where
applications are separate jobs and the arbiter is machine infrastructure:

* :mod:`repro.service.protocol` — length-prefixed message framing with
  two negotiated payload codecs (canonical JSON, the oracle, and a
  struct-packed binary codec with descriptor interning) plus the wire
  schemas for :class:`~repro.core.metrics.AccessDescriptor` and
  :class:`~repro.core.arbiter.DecisionRecord`;
* :mod:`repro.service.trace` — :class:`RecordingRouter`, a transparent
  coordinator proxy recording every Inform/Release/Complete exchange of
  an in-process run as a replayable :class:`CoordinationTrace`;
* :mod:`repro.service.server` — :class:`CoordinationService`, the asyncio
  daemon hosting an arbiter/:class:`~repro.core.sharding.ShardRouter`
  with admission control, per-connection backpressure and graceful drain;
* :mod:`repro.service.ops` — the operations sidecar (``/healthz`` +
  ``/metrics`` HTTP endpoints over the daemon's perf counters);
* :mod:`repro.service.client` — :class:`ServiceClient` /
  :class:`RemoteSession`, the over-the-wire mirror of
  :class:`~repro.core.session.CalciomSession`'s protocol surface;
* :mod:`repro.service.loadgen` — the ``service-many-writers`` load
  generator (N concurrent clients replaying the ``many-writers`` mix,
  sustained decisions/sec + tail latency, decision-log equivalence).

The correctness anchor: a trace recorded from an in-process run and
replayed through the daemon produces a **bit-identical decision log** —
the batched arbiter's decisions are invariant to how same-timestamp
exchanges are partitioned into rounds, so the wire's serialization of a
round into single-exchange applications changes nothing (asserted on
randomized traces in ``tests/test_service_equivalence.py``).
"""

from .client import RemoteSession, ServiceClient
from .protocol import (
    CODECS, FrameError, FrameReader, ProtocolError, WireDecoder,
    WireEncoder, canonical_json, decision_to_dict, default_wire_codec,
    descriptor_from_dict, descriptor_to_dict, read_message, write_message,
)
from .server import CoordinationService, ServiceConfig
from .trace import CoordinationTrace, RecordingRouter, record_trace

__all__ = [
    "CoordinationService", "ServiceConfig",
    "ServiceClient", "RemoteSession",
    "CoordinationTrace", "RecordingRouter", "record_trace",
    "ProtocolError", "FrameError", "read_message", "write_message",
    "CODECS", "WireEncoder", "WireDecoder", "FrameReader",
    "canonical_json", "default_wire_codec",
    "descriptor_to_dict", "descriptor_from_dict", "decision_to_dict",
]
