"""repro — reproduction of CALCioM (Dorier et al., IPDPS 2014).

Cross-application I/O coordination on a from-scratch simulated HPC I/O
stack.  Subpackages, bottom-up:

* :mod:`repro.simcore` — discrete-event kernel + fluid max-min bandwidth.
* :mod:`repro.network` — interconnect fabric.
* :mod:`repro.storage` — PVFS-like parallel file system (striping, caches,
  server schedulers).
* :mod:`repro.mpisim` — simulated MPI, MPI-IO, two-phase I/O, ADIO.
* :mod:`repro.core` — **CALCioM**: the paper's contribution.
* :mod:`repro.apps` — IOR-like benchmark and application profiles.
* :mod:`repro.traces` — workload traces and the Fig 1 statistics.
* :mod:`repro.experiments` — Δ-graphs and the evaluation harness.
* :mod:`repro.platforms` — the simulated testbeds (Surveyor, Grid'5000).
"""

__version__ = "0.1.0"

from . import apps, core, experiments, mpisim, network, perf, platforms
from . import simcore, storage, traces

__all__ = [
    "simcore", "network", "storage", "mpisim", "core", "apps", "traces",
    "experiments", "platforms", "perf", "__version__",
]
