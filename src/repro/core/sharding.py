"""Sharded coordination: one arbiter per file-system partition.

The paper's arbiter mediates *all* access to *the* shared storage system.
Real platforms expose several file-system partitions (our
:class:`~repro.platforms.Platform` models them as disjoint server groups,
each with its own :class:`~repro.storage.ParallelFileSystem`), and a single
machine-wide decision point becomes the coordination bottleneck long before
the storage does.  This module scales the decision loop out:

* :class:`ArbiterShard` — one indexed/batched
  :class:`~repro.core.arbiter.Arbiter` owning one partition;
* :class:`ShardRouter` — the session-facing coordinator.  It routes each
  application's Inform/Release/Complete to the shard(s) owning the
  access's target partitions (``AccessDescriptor.partitions``, exchanged
  knowledge like everything else) and merges per-shard decision logs.

Cross-shard protocol (span accesses)
------------------------------------
An access touching several partitions must hold an authorization on every
involved shard at once.  The router uses an **ordered-lock two-phase
grant**: shards are engaged strictly in ascending shard order, and the
next shard is only informed once the previous one granted.  Because every
span access acquires in the same global order, no cycle of
"holds i, waits for j" can form — the protocol is deadlock-free by the
classic ordered-resource argument, and per-shard FIFO arbitration keeps it
deterministic.  A shard preempting a span access mid-flight simply makes
the application's next guarded step block until that shard re-grants
(interruption at guard boundaries, exactly the single-arbiter semantics);
a withdraw mid-acquisition releases the already-held shards and abandons
the rest of the chain.

Single-shard transparency
-------------------------
With one shard the router is a pure pass-through to its arbiter — same
objects, same call sequence — so ``shards=1`` runs are decision-log- and
completion-time-identical to the unsharded coordination layer.  That is
the correctness anchor ``tests/test_sharded_coordination.py`` and
``benchmarks/test_scale_shards.py`` assert.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple

from ..simcore import AllOf, Event, SimulationError, Simulator
from .arbiter import AccessState, Arbiter, DecisionRecord
from .metrics import AccessDescriptor
from .strategies import Action, Strategy, make_strategy

__all__ = ["ArbiterShard", "ShardRouter", "ShardWorkerError"]


class ShardWorkerError(SimulationError):
    """A shard worker process died or misbehaved mid-run.

    Raised out of the simulation by the process-parallel backend
    (:mod:`repro.core.shardproc`) after it has withdrawn in-flight
    grants on the surviving workers and torn the pool down — the
    experiment fails cleanly instead of hanging on a dead pipe.
    """


class _ShardPerf:
    """Per-shard perf proxy: bumps the global counter and a per-shard one.

    ``coord_decisions`` stays the machine-wide total (so sharded and
    unsharded runs read the same way) while ``coord_decisions_shard3``
    makes per-shard load visible in ``ExperimentResult.perf``.
    """

    __slots__ = ("_perf", "_suffix")

    def __init__(self, perf, index: int):
        self._perf = perf
        self._suffix = f"_shard{index}"

    def bump(self, name: str, n: float = 1) -> None:
        self._perf.bump(name, n)
        self._perf.bump(name + self._suffix, n)


class ArbiterShard:
    """One partition's arbiter plus its identity in the shard set."""

    __slots__ = ("index", "arbiter")

    def __init__(self, index: int, arbiter: Arbiter):
        self.index = index
        self.arbiter = arbiter

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ArbiterShard {self.index} {self.arbiter.strategy!r}>"


class _Span:
    """In-flight ordered acquisition state of one multi-shard access."""

    __slots__ = ("app", "shards", "engaged", "cancelled", "complete",
                 "auth_event")

    def __init__(self, app: str, shards: Tuple[int, ...], auth_event: Event):
        self.app = app
        self.shards = shards
        self.engaged: List[int] = []   #: shards already informed, in order
        self.cancelled = False
        self.complete = False
        #: Fires when the whole chain holds (wakes the session's Wait()).
        self.auth_event = auth_event


class ShardRouter:
    """Routes one machine's coordination traffic to per-partition arbiters.

    Implements the same session-facing protocol surface as
    :class:`~repro.core.arbiter.Arbiter` (``submit_inform`` /
    ``on_inform`` / ``on_release`` / ``submit_release`` / ``on_complete``
    / ``withdraw`` / ``authorization_event`` / queries), so
    :class:`~repro.core.session.CalciomSession` and
    :class:`~repro.core.api.CalciomRuntime` use either interchangeably.

    Parameters
    ----------
    sim:
        The simulator shared by every shard.
    nshards:
        Number of arbiter shards.  Partition ``p`` is owned by shard
        ``p % nshards`` — with one shard per partition that is the
        identity map, with ``nshards=1`` everything routes to the single
        arbiter (the unsharded baseline).
    strategy:
        Name, class, or :class:`~repro.core.strategies.Strategy` instance.
        Names/classes build one independent instance per shard; an
        instance is used as-is with one shard and shallow-copied per
        shard otherwise, so per-shard configuration (e.g. the capacity a
        runtime injects) never aliases across shards.
    grant_latency, batched, decision_log_limit:
        Forwarded to every shard's :class:`Arbiter`.
    perf:
        Optional :class:`~repro.perf.PerfCounters`; with several shards
        each arbiter additionally bumps ``coord_*_shard<i>`` counters.
    workers:
        ``"inline"`` (default) hosts every shard's arbiter in this
        process; ``"process"`` runs each shard in its own worker process
        behind :class:`~repro.core.shardproc.ShardProcessPool` (lazy
        fork/spawn on the first exchange, so runtime-injected strategy
        capacity ships with the worker).  Inline mode is the
        cross-checked oracle: process mode produces bit-identical merged
        decision logs on the committed scenarios.
    span_delay:
        Cross-shard DELAY negotiation.  ``"requeue"`` (default) releases
        every already-held shard when a later shard in the engagement
        order answers with a DELAY hold, waits out the hold, and
        re-acquires the full chain in ascending order (no capacity is
        pinned idle; the ordered-resource deadlock argument is
        re-entered from scratch each attempt).  ``"hold"`` keeps the
        historical behavior of sitting on the granted prefix.  The two
        are decision-log-equivalent whenever strategies never DELAY.
    codec:
        Wire codec for the worker-process data plane (``"json"`` or
        ``"binary"``); ``None`` defers to ``REPRO_WIRE_CODEC`` (JSON when
        unset).  Ignored for inline workers, which never serialize.
    """

    def __init__(self, sim: Simulator, nshards: int, strategy,
                 grant_latency: float = 0.0, batched: bool = True,
                 decision_log_limit: Optional[int] = None, perf=None,
                 workers: str = "inline", span_delay: str = "requeue",
                 codec: Optional[str] = None):
        if nshards < 1:
            raise ValueError(f"nshards must be >= 1, got {nshards}")
        if workers not in ("inline", "process"):
            raise ValueError(f"workers must be 'inline' or 'process', "
                             f"got {workers!r}")
        if span_delay not in ("requeue", "hold"):
            raise ValueError(f"span_delay must be 'requeue' or 'hold', "
                             f"got {span_delay!r}")
        self.sim = sim
        self.nshards = int(nshards)
        self.batched = bool(batched)
        self.perf = perf
        self.workers = workers
        self.span_delay = span_delay
        is_instance = isinstance(strategy, Strategy)

        def _strat() -> Strategy:
            if not is_instance:
                return make_strategy(strategy)
            if self.nshards == 1:
                return strategy
            return copy.copy(strategy)

        self.shards: List[ArbiterShard] = []
        self._pool = None
        if workers == "process":
            # Imported lazily: shardproc pulls in repro.service.protocol,
            # which must not load while repro.core is still initializing.
            from .shardproc import ShardProcessPool, WorkerShardProxy
            self._pool = ShardProcessPool(
                sim, self.nshards, grant_latency=grant_latency,
                batched=batched, decision_log_limit=decision_log_limit,
                perf=perf, codec=codec)
            for i in range(self.nshards):
                proxy = WorkerShardProxy(self._pool, i, _strat(),
                                         batched=batched)
                self.shards.append(ArbiterShard(i, proxy))
        else:
            for i in range(self.nshards):
                shard_perf = (perf if (perf is None or self.nshards == 1)
                              else _ShardPerf(perf, i))
                self.shards.append(ArbiterShard(i, Arbiter(
                    sim, _strat(), grant_latency=grant_latency,
                    batched=batched, decision_log_limit=decision_log_limit,
                    perf=shard_perf)))
        #: Pure pass-through target when unsharded (bit-identical runs).
        #: A single-shard worker proxy passes through the same way — its
        #: protocol surface is the arbiter's.
        self._solo = self.shards[0].arbiter if self.nshards == 1 else None
        self._targets: Dict[str, Tuple[int, ...]] = {}
        self._span: Dict[str, _Span] = {}

    def close(self) -> None:
        """Tear down worker processes (no-op for inline shards).

        With ``workers="process"`` this drains outstanding replies,
        ships every worker's decision log and perf counters back to the
        router side, and joins the pool — call it after ``sim.run()``
        and before reading ``decision_log`` for the last time.
        """
        if self._pool is not None:
            self._pool.close()

    # -- routing -----------------------------------------------------------
    def shard_of(self, partition: int) -> int:
        """The shard owning file-system ``partition``."""
        return int(partition) % self.nshards

    def _shards_for(self, descriptor: AccessDescriptor) -> Tuple[int, ...]:
        partitions = descriptor.partitions or (0,)
        return tuple(sorted({self.shard_of(p) for p in partitions}))

    def _involved(self, app: str) -> Tuple[int, ...]:
        span = self._span.get(app)
        if span is not None and not span.complete:
            return tuple(span.engaged)
        return self._targets.get(app, ())

    def _arb(self, index: int) -> Arbiter:
        return self.shards[index].arbiter

    # -- queries -----------------------------------------------------------
    @property
    def strategy(self) -> Strategy:
        return self.shards[0].arbiter.strategy

    @property
    def decision_log(self) -> List[DecisionRecord]:
        """All shards' decision records merged in time order.

        With one shard this is *the* arbiter's live log object; across
        shards it is a merged snapshot (stable: ties keep shard order).
        """
        if self._solo is not None:
            return self._solo.decision_log
        merged: List[DecisionRecord] = []
        for shard in self.shards:
            merged.extend(shard.arbiter.decision_log)
        merged.sort(key=lambda record: record.time)
        return merged

    def state_of(self, app: str) -> AccessState:
        if self._solo is not None:
            return self._solo.state_of(app)
        involved = self._targets.get(app)
        if not involved:
            return AccessState.IDLE
        states = [self._arb(s).state_of(app) for s in self._involved(app)]
        span = self._span.get(app)
        if span is not None and not span.complete:
            # Mid-acquisition: holding a prefix of the chain is waiting.
            return AccessState.WAITING
        if states and all(s is AccessState.ACTIVE for s in states):
            return AccessState.ACTIVE
        if any(s is AccessState.PREEMPTED for s in states):
            return AccessState.PREEMPTED
        if all(s is AccessState.IDLE for s in states):
            return AccessState.IDLE
        return AccessState.WAITING

    def is_authorized(self, app: str) -> bool:
        if self._solo is not None:
            return self._solo.is_authorized(app)
        return self.state_of(app) is AccessState.ACTIVE

    def descriptor_of(self, app: str) -> Optional[AccessDescriptor]:
        if self._solo is not None:
            return self._solo.descriptor_of(app)
        for s in self._involved(app):
            desc = self._arb(s).descriptor_of(app)
            if desc is not None:
                return desc
        return None

    def active_descriptors(self) -> List[AccessDescriptor]:
        if self._solo is not None:
            return self._solo.active_descriptors()
        out: List[AccessDescriptor] = []
        for shard in self.shards:
            out.extend(shard.arbiter.active_descriptors())
        return out

    def waiting_descriptors(self) -> List[AccessDescriptor]:
        if self._solo is not None:
            return self._solo.waiting_descriptors()
        out: List[AccessDescriptor] = []
        for shard in self.shards:
            out.extend(shard.arbiter.waiting_descriptors())
        return out

    def grant_in_flight(self, app: str) -> bool:
        if self._solo is not None:
            return self._solo.grant_in_flight(app)
        return any(self._arb(s).grant_in_flight(app)
                   for s in self._involved(app))

    def authorization_event(self, app: str) -> Event:
        if self._solo is not None:
            return self._solo.authorization_event(app)
        span = self._span.get(app)
        if span is not None and not span.complete:
            return span.auth_event
        involved = self._targets.get(app)
        if not involved:
            return self.shards[0].arbiter.authorization_event(app)
        events = [self._arb(s).authorization_event(app) for s in involved]
        if len(events) == 1:
            return events[0]
        return AllOf(self.sim, events)

    # -- protocol entry points ---------------------------------------------
    def submit_inform(self, descriptor: AccessDescriptor) -> Event:
        if self._solo is not None:
            return self._solo.submit_inform(descriptor)
        app = descriptor.app
        if app in self._targets:   # continuation / knowledge refresh
            involved = self._involved(app)
            if len(involved) == 1:
                return self._arb(involved[0]).submit_inform(descriptor)
            return self._and_events(
                [self._arb(s).submit_inform(descriptor.copy())
                 for s in involved])
        involved = self._shards_for(descriptor)
        self._targets[app] = involved
        if len(involved) == 1:
            return self._arb(involved[0]).submit_inform(descriptor)
        return self._begin_span(app, descriptor, involved)

    def on_inform(self, descriptor: AccessDescriptor) -> bool:
        if self._solo is not None:
            return self._solo.on_inform(descriptor)
        app = descriptor.app
        if app in self._targets:
            involved = self._involved(app)
            results = [self._arb(s).on_inform(
                descriptor if len(involved) == 1 else descriptor.copy())
                for s in involved]
            return bool(results) and all(results)
        involved = self._shards_for(descriptor)
        self._targets[app] = involved
        if len(involved) == 1:
            return self._arb(involved[0]).on_inform(descriptor)
        # Ordered acquisition is inherently asynchronous: report
        # unauthorized now, let the chain run, and wake the session's
        # Wait() through the span's authorization event.
        self._begin_span(app, descriptor, involved)
        return False

    def on_release(self, app: str,
                   remaining_bytes: Optional[float] = None) -> None:
        if self._solo is not None:
            self._solo.on_release(app, remaining_bytes)
            return
        for s in self._involved(app):
            self._arb(s).on_release(app, remaining_bytes)

    def submit_release(self, app: str,
                       remaining_bytes: Optional[float] = None) -> None:
        if self._solo is not None:
            self._solo.submit_release(app, remaining_bytes)
            return
        for s in self._involved(app):
            self._arb(s).submit_release(app, remaining_bytes)

    def on_complete(self, app: str) -> None:
        if self._solo is not None:
            self._solo.on_complete(app)
            return
        span = self._span.pop(app, None)
        if span is not None:
            span.cancelled = True
        involved = self._targets.pop(app, None)
        for s in involved or ():
            # Shards the chain never engaged see an IDLE app: no-op.
            self._arb(s).on_complete(app)

    def withdraw(self, app: str) -> None:
        self.on_complete(app)

    # -- the ordered-lock two-phase grant ----------------------------------
    def _begin_span(self, app: str, descriptor: AccessDescriptor,
                    involved: Tuple[int, ...]) -> Event:
        span = _Span(app, involved, self.sim.event())
        self._span[app] = span
        result = self.sim.event()
        self.sim.process(self._acquire(span, descriptor, result),
                         name=f"span-grant:{app}")
        return result

    def _acquire(self, span: _Span, descriptor: AccessDescriptor,
                 result: Event):
        """Engage each involved shard in ascending order, holding grants.

        ``result`` reports the Inform outcome to the session: True only
        if every shard granted without queueing, otherwise False as soon
        as the first shard queues us (the session then blocks in Wait()
        on the span's authorization event, which fires when the full
        chain is held).

        DELAY negotiation (``span_delay="requeue"``): when a *later*
        shard in the chain answers with a DELAY hold while earlier
        shards are already granted, holding that prefix would pin their
        capacity idle for the whole hold.  Instead the chain retreats —
        withdraws from every engaged shard — waits out the hold, and
        re-acquires the full chain in ascending order.  Each attempt
        acquires in the same global order, so deadlock-freedom is
        preserved; a DELAY on the *first* shard holds nothing and simply
        waits, as does ``span_delay="hold"`` mode.
        """
        app = span.app
        while True:
            requeue_delay = None
            for s in span.shards:
                if span.cancelled:
                    break
                arb = self._arb(s)
                span.engaged.append(s)
                if self.batched:
                    ok = yield arb.submit_inform(descriptor.copy())
                else:
                    ok = arb.on_inform(descriptor.copy())
                if span.cancelled:
                    break
                if not ok:
                    if not result.triggered:
                        result.succeed(False)
                    if self.span_delay == "requeue" and len(span.engaged) > 1:
                        dec = arb.last_decision_for(app)
                        if (dec is not None and dec[0] is Action.DELAY
                                and dec[1] > 0.0):
                            requeue_delay = dec[1]
                            break
                    yield arb.authorization_event(app)
            if span.cancelled:
                if not result.triggered:
                    result.succeed(False)
                return
            if requeue_delay is None:
                break
            # Retreat: release every engaged shard (the delaying one's
            # hold is epoch-cancelled by its withdraw), sleep the hold
            # out, then restart the whole ascending chain.
            for s in span.engaged:
                self._arb(s).withdraw(app)
            del span.engaged[:]
            yield self.sim.timeout(requeue_delay)
            if span.cancelled:
                if not result.triggered:
                    result.succeed(False)
                return
        span.complete = True
        if not result.triggered:
            # Every shard granted synchronously: the session never waits.
            result.succeed(True)
        if not span.auth_event.triggered:
            span.auth_event.succeed(None)

    # -- internals ---------------------------------------------------------
    def _and_events(self, events: List[Event]) -> Event:
        """An event firing (same timestamp) with the AND of all values."""
        out = self.sim.event()
        state = {"pending": len(events), "ok": True}

        def _collect(ev: Event) -> None:
            state["ok"] = state["ok"] and bool(ev.value)
            state["pending"] -= 1
            if state["pending"] == 0:
                out.succeed(state["ok"])

        for ev in events:
            ev.callbacks.append(_collect)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ShardRouter nshards={self.nshards} batched={self.batched}>"
