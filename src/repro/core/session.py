"""Per-application CALCioM session: the paper's API, wired to the arbiter.

A session is the application's *coordinator* (the paper's "one process in
each application, typically rank 0"): it gathers knowledge about upcoming
I/O from inside the application (:meth:`prepare`), exchanges it with the
other applications (:meth:`inform`), and steers the application's I/O
through authorization checks (:meth:`check`, :meth:`wait`) and step
boundaries (:meth:`release`).

The session also implements the :class:`~repro.mpisim.adio.IOGuard`
protocol, so dropping it into an ADIO layer CALCioM-enables the whole I/O
stack of that application — the transparent-integration story of §III-B.

Costs: every ``inform``/``release`` exchange pays round-trip coordination
latency; an intra-application gather (coordinator collecting knowledge from
its ranks) is charged on ``prepare`` via the communicator model.  These
costs are real (and measured by the coordination-overhead ablation bench)
but tiny next to I/O phases, matching the paper's "negligible cost" claim.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from ..mpisim import Communicator, IOGuard, MPIInfo
from ..simcore import SimulationError, Simulator
from .arbiter import AccessState, Arbiter
from .metrics import AccessDescriptor

__all__ = ["CalciomSession"]


class CalciomSession(IOGuard):
    """One application's handle on the CALCioM coordination layer.

    Created by :meth:`CalciomRuntime.session`; not instantiated directly.
    """

    def __init__(self, sim: Simulator, arbiter: Arbiter, app: str,
                 client: str, nprocs: int, estimator,
                 comm: Optional[Communicator] = None,
                 coordination_latency: float = 50e-6,
                 perf=None, partitions: Optional[Tuple[int, ...]] = None):
        self.sim = sim
        #: The coordination endpoint: an :class:`~repro.core.arbiter.Arbiter`
        #: or a :class:`~repro.core.sharding.ShardRouter` (same protocol
        #: surface) — the session never needs to know which.
        self.arbiter = arbiter
        self.app = app
        self.client = client
        self.nprocs = int(nprocs)
        self._estimate_t_alone = estimator
        self.comm = comm
        self.coordination_latency = float(coordination_latency)
        self.perf = perf
        #: File-system partitions this application's accesses target —
        #: exchanged on every fresh Inform so a sharded coordination layer
        #: can route to the owning arbiter shard(s).
        self.partitions: Tuple[int, ...] = (tuple(int(p) for p in partitions)
                                            if partitions else (0,))
        self._info_stack: List[MPIInfo] = []
        self._descriptor: Optional[AccessDescriptor] = None
        self.total_wait_time = 0.0
        self.coordination_messages = 0

    # ------------------------------------------------------------------
    # The paper's API (§III-C)
    # ------------------------------------------------------------------
    def prepare(self, info: MPIInfo) -> None:
        """``Prepare(MPI_Info)`` — stack knowledge about future accesses.

        The coordinator's intra-application gather is modelled as a cost on
        the next :meth:`inform` (rank 0 collects a few bytes per rank).
        """
        self._info_stack.append(info)
        if self._descriptor is None:
            self._descriptor = self._build_descriptor(info)
        # Nested Prepare calls (e.g. the ADIO layer inside an application
        # -scoped phase) describe a *part* of the outer access; the
        # outermost description stays authoritative.

    def complete(self) -> None:
        """``Complete()`` — unstack; outermost pop ends the access."""
        if not self._info_stack:
            raise SimulationError(f"{self.app}: Complete() without Prepare()")
        self._info_stack.pop()
        if not self._info_stack:
            self.arbiter.on_complete(self.app)
            self._descriptor = None

    def inform(self, step_info: Optional[MPIInfo] = None
               ) -> Generator[object, object, bool]:
        """``Inform()`` — ship current knowledge to the other applications.

        Returns (via StopIteration value) whether the application is
        authorized after the exchange.
        """
        if self._descriptor is None:
            raise SimulationError(f"{self.app}: Inform() without Prepare()")
        if step_info is not None:
            self._refresh_descriptor(step_info)
        cost = 2 * self.coordination_latency  # request + responses
        if self.comm is not None and self._fresh_access():
            # Rank-0 gathers a few tens of bytes of I/O knowledge from its
            # ranks: latency-dominated, so charge the log-tree term only.
            cost += self.comm.gather_time(0.0)
        self.coordination_messages += 1
        if self.perf is not None:
            self.perf.bump("coord_messages")
        yield self.sim.timeout(cost)
        if self.arbiter.batched:
            # Join the same-timestamp coordination round; the result event
            # fires (still at this timestamp) when the round is flushed.
            return (yield self.arbiter.submit_inform(self._descriptor))
        return self.arbiter.on_inform(self._descriptor)

    def check(self) -> bool:
        """``Check(int*)`` — non-blocking: are we allowed to access?"""
        return self.arbiter.is_authorized(self.app)

    def wait(self) -> Generator[object, object, None]:
        """``Wait()`` — block until the other applications agree we may go."""
        if self.check() and not self.arbiter.grant_in_flight(self.app):
            return
        t0 = self.sim.now
        yield self.arbiter.authorization_event(self.app)
        self.total_wait_time += self.sim.now - t0

    def release(self) -> Generator[object, object, None]:
        """``Release()`` — end a step; let the strategy be re-evaluated."""
        self.coordination_messages += 1
        if self.perf is not None:
            self.perf.bump("coord_messages")
        yield self.sim.timeout(self.coordination_latency)
        remaining = (self._descriptor.remaining_bytes
                     if self._descriptor is not None else None)
        if self.arbiter.batched:
            self.arbiter.submit_release(self.app, remaining)
        else:
            self.arbiter.on_release(self.app, remaining)

    # ------------------------------------------------------------------
    # IOGuard protocol (what the ADIO layer calls)
    # ------------------------------------------------------------------
    def begin_access(self, step_info: Optional[MPIInfo] = None):
        """Inform + wait-until-authorized, one guarded step about to start."""
        authorized = yield from self.inform(step_info)
        if not authorized:
            yield from self.wait()

    def end_access(self):
        """Release after a guarded step."""
        if self._descriptor is not None and self._descriptor.rounds > 0:
            per_round = self._descriptor.total_bytes / self._descriptor.rounds
            self._descriptor.remaining_bytes = max(
                0.0, self._descriptor.remaining_bytes - per_round
            )
        yield from self.release()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _fresh_access(self) -> bool:
        return self.arbiter.state_of(self.app) is AccessState.IDLE

    def _build_descriptor(self, info: MPIInfo) -> AccessDescriptor:
        total = info.get_float("total_bytes")
        partitions = info.get("partitions")
        return AccessDescriptor(
            app=self.app,
            nprocs=info.get_int("nprocs", self.nprocs),
            total_bytes=total,
            t_alone=self._estimate_t_alone(self.nprocs, total),
            files=info.get_int("files", 1),
            rounds=info.get_int("rounds", 1),
            partitions=(tuple(int(p) for p in partitions)
                        if partitions else self.partitions),
        )

    def _refresh_descriptor(self, info: MPIInfo) -> None:
        d = self._descriptor
        if d is None:
            return
        if "remaining_bytes" in info:
            d.remaining_bytes = info.get_float("remaining_bytes")
        if "rounds" in info:
            d.rounds = info.get_int("rounds", d.rounds)
        if "total_bytes" in info and d.total_bytes == 0:
            d.total_bytes = info.get_float("total_bytes")
            d.remaining_bytes = d.total_bytes
            d.t_alone = self._estimate_t_alone(self.nprocs, d.total_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CalciomSession {self.app!r} state={self.arbiter.state_of(self.app).value}>"
