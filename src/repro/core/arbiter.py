"""The CALCioM arbiter: tracks access states and enforces strategy decisions.

The paper leaves open whether decisions are taken by the applications
themselves (peer to peer) or by "a system-provided entity"; the mechanism is
the same information either way.  We implement the entity form — one
:class:`Arbiter` per machine — because it makes the decision point explicit
and auditable (every decision is logged with its predicted costs, which
EXPERIMENTS.md quotes for Fig 11).

State machine per application access::

    IDLE --inform--> ACTIVE                    (strategy says GO)
    IDLE --inform--> WAITING                   (strategy says WAIT)
    ACTIVE --(another app's INTERRUPT)--> PREEMPTED
    PREEMPTED/WAITING --grant--> ACTIVE
    ACTIVE --complete--> IDLE  (grants: preempted first, then FIFO waiters)

A *preempted* application keeps its in-flight request (interruption happens
at the next guard hook — the round/file boundary, exactly like the paper's
ADIO placement) and resumes with priority once the interrupter completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..simcore import Event, Simulator
from .metrics import AccessDescriptor
from .strategies import Action, Strategy, make_strategy

__all__ = ["AccessState", "Arbiter", "DecisionRecord"]


class AccessState(Enum):
    IDLE = "idle"
    ACTIVE = "active"
    WAITING = "waiting"
    PREEMPTED = "preempted"


@dataclass
class DecisionRecord:
    """Audit-log entry for one strategy decision."""

    time: float
    app: str                 #: the informing application
    action: Action
    active: List[str]        #: apps active at decision time
    waiting: List[str]
    costs: Dict[str, float] = field(default_factory=dict)


class Arbiter:
    """Decision-maker and authorization bookkeeper."""

    def __init__(self, sim: Simulator, strategy, grant_latency: float = 0.0):
        self.sim = sim
        self.strategy: Strategy = make_strategy(strategy)
        self.grant_latency = float(grant_latency)
        self._state: Dict[str, AccessState] = {}
        self._desc: Dict[str, AccessDescriptor] = {}
        self._waiting: List[str] = []     # FIFO arrival order
        self._preempted: List[str] = []   # FIFO preemption order
        self._auth_events: Dict[str, Event] = {}
        self.decision_log: List[DecisionRecord] = []

    # -- queries -----------------------------------------------------------
    def state_of(self, app: str) -> AccessState:
        return self._state.get(app, AccessState.IDLE)

    def is_authorized(self, app: str) -> bool:
        """Whether ``app`` may issue file-system requests right now."""
        return self.state_of(app) is AccessState.ACTIVE

    def descriptor_of(self, app: str) -> Optional[AccessDescriptor]:
        return self._desc.get(app)

    def active_descriptors(self) -> List[AccessDescriptor]:
        return [self._desc[a] for a, s in self._state.items()
                if s is AccessState.ACTIVE]

    def waiting_descriptors(self) -> List[AccessDescriptor]:
        return [self._desc[a] for a in self._waiting]

    def authorization_event(self, app: str) -> Event:
        """Event that fires when ``app`` becomes (or already is) authorized."""
        if self.is_authorized(app):
            ev = self.sim.event()
            ev.succeed(None)
            return ev
        ev = self._auth_events.get(app)
        if ev is None or ev.triggered:
            ev = self.sim.event()
            self._auth_events[app] = ev
        return ev

    # -- protocol entry points -----------------------------------------------
    def on_inform(self, descriptor: AccessDescriptor) -> bool:
        """An application announces (or refreshes) an access.

        Returns True if the application is authorized after the call.
        """
        app = descriptor.app
        state = self.state_of(app)
        if state in (AccessState.ACTIVE, AccessState.WAITING,
                     AccessState.PREEMPTED):
            # Continuation or refresh: update knowledge, no new decision.
            self._merge_descriptor(app, descriptor)
            return state is AccessState.ACTIVE

        decision = self.strategy.decide(
            self.sim.now,
            self.active_descriptors(),
            self.waiting_descriptors(),
            descriptor,
        )
        self.decision_log.append(DecisionRecord(
            time=self.sim.now, app=app, action=decision.action,
            active=[d.app for d in self.active_descriptors()],
            waiting=list(self._waiting), costs=dict(decision.costs),
        ))
        self._desc[app] = descriptor
        if decision.action is Action.GO:
            self._activate(app)
            return True
        if decision.action is Action.WAIT:
            self._state[app] = AccessState.WAITING
            self._waiting.append(app)
            return False
        if decision.action is Action.DELAY:
            # Fig 12's tradeoff: hold the newcomer briefly, then let it
            # share.  An earlier grant (actives completing) still wins.
            self._state[app] = AccessState.WAITING
            self._waiting.append(app)

            def _hold_expired() -> None:
                if self.state_of(app) is AccessState.WAITING:
                    if app in self._waiting:
                        self._waiting.remove(app)
                    self._activate(app)

            self.sim.call_at(self.sim.now + max(0.0, decision.delay),
                             _hold_expired)
            return False
        # INTERRUPT: revoke targets' authorization, then run.
        targets = decision.preempt
        if targets is None:
            targets = [d.app for d in self.active_descriptors()]
        for victim in targets:
            if self.state_of(victim) is AccessState.ACTIVE:
                self._state[victim] = AccessState.PREEMPTED
                self._preempted.append(victim)
        self._activate(app)
        return True

    def on_release(self, app: str, remaining_bytes: Optional[float] = None) -> None:
        """End of one guarded step: refresh remaining-work knowledge."""
        desc = self._desc.get(app)
        if desc is not None and remaining_bytes is not None:
            desc.remaining_bytes = max(0.0, float(remaining_bytes))

    def on_complete(self, app: str) -> None:
        """The whole access finished: free the slot, grant successors."""
        state = self.state_of(app)
        if state is AccessState.IDLE:
            return
        if app in self._waiting:
            self._waiting.remove(app)
        if app in self._preempted:
            self._preempted.remove(app)
        self._state[app] = AccessState.IDLE
        self._desc.pop(app, None)
        self._grant_next()

    def withdraw(self, app: str) -> None:
        """Remove an application entirely (job end, error paths)."""
        self.on_complete(app)

    # -- internals --------------------------------------------------------------
    def _merge_descriptor(self, app: str, incoming: AccessDescriptor) -> None:
        current = self._desc.get(app)
        if current is None:
            self._desc[app] = incoming
            return
        current.remaining_bytes = incoming.remaining_bytes
        current.rounds = incoming.rounds

    def _activate(self, app: str) -> None:
        self._state[app] = AccessState.ACTIVE
        desc = self._desc.get(app)
        if desc is not None and desc.access_started is None:
            desc.access_started = self.sim.now
        ev = self._auth_events.pop(app, None)
        if ev is not None and not ev.triggered:
            ev.succeed(None, delay=self.grant_latency)

    def _grant_next(self) -> None:
        """Grant priority to preempted apps, then the FIFO waiter queue."""
        if self.active_descriptors():
            return  # someone is still running; nothing to grant
        if self._preempted:
            app = self._preempted.pop(0)
            self._activate(app)
            return
        if self._waiting:
            app = self._waiting.pop(0)
            self._activate(app)
