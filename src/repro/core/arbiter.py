"""The CALCioM arbiter: tracks access states and enforces strategy decisions.

The paper leaves open whether decisions are taken by the applications
themselves (peer to peer) or by "a system-provided entity"; the mechanism is
the same information either way.  We implement the entity form — one
:class:`Arbiter` per machine — because it makes the decision point explicit
and auditable (every decision is logged with its predicted costs, which
EXPERIMENTS.md quotes for Fig 11).

State machine per application access::

    IDLE --inform--> ACTIVE                    (strategy says GO)
    IDLE --inform--> WAITING                   (strategy says WAIT)
    ACTIVE --(another app's INTERRUPT)--> PREEMPTED
    PREEMPTED/WAITING --grant--> ACTIVE
    ACTIVE --complete--> IDLE  (grants: preempted first, then FIFO waiters)

A *preempted* application keeps its in-flight request (interruption happens
at the next guard hook — the round/file boundary, exactly like the paper's
ADIO placement) and resumes with priority once the interrupter completes.

Scaling (the indexed/batched coordination layer)
------------------------------------------------
The default arbiter keeps **maintained indexes** — an O(1)-membership
active set iterated in first-decision order, FIFO waiting/preempted queues
with O(1) removal and O(log n) pop-first — instead of rebuilding lists by
scanning every application ever seen, and **coalesces same-timestamp
Inform/Release exchanges** from sessions into one :class:`CoordinationRound`
flushed through a single :meth:`~repro.core.strategies.Strategy.decide_batch`
invocation.  Arrival order is preserved exactly, so decision logs and
simulated timing are bit-identical to the historical per-inform path, which
is retained behind ``Arbiter(..., batched=False)`` as a cross-checked
oracle (mirroring the incremental-kernel/global-allocator pattern) and as
the baseline for ``benchmarks/test_scale_arbiter.py``.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from itertools import count
from typing import Dict, List, Optional

from ..simcore import Event, SimulationError, Simulator
from .metrics import AccessDescriptor, DescriptorSetView
from .strategies import (
    Action, Decision, Strategy, _accepts_preempted, make_strategy,
)

__all__ = ["AccessState", "Arbiter", "CoordinationRound", "DecisionRecord"]


class AccessState(Enum):
    IDLE = "idle"
    ACTIVE = "active"
    WAITING = "waiting"
    PREEMPTED = "preempted"


@dataclass
class DecisionRecord:
    """Audit-log entry for one strategy decision."""

    time: float
    app: str                 #: the informing application
    action: Action
    active: List[str]        #: apps active at decision time
    waiting: List[str]
    costs: Dict[str, float] = field(default_factory=dict)


class _FifoIndex:
    """Insertion-ordered app set: O(1) membership/removal, O(log n) pop-first.

    Dict iteration order equals arrival order because entries are only ever
    appended with a monotonically increasing sequence number (a re-added app
    goes to the back, like the old list's remove-then-append).  A lazily
    invalidated heap gives pop-first without the O(n) tombstone scans a
    bare dict would accumulate under sustained FIFO traffic.
    """

    __slots__ = ("_members", "_heap", "_seq")

    def __init__(self) -> None:
        self._members: Dict[str, int] = {}
        self._heap: List[tuple] = []
        self._seq = count()

    def add(self, app: str) -> None:
        if app in self._members:
            return
        seq = next(self._seq)
        self._members[app] = seq
        heapq.heappush(self._heap, (seq, app))

    def discard(self, app: str) -> None:
        self._members.pop(app, None)

    def pop_first(self) -> str:
        members, heap = self._members, self._heap
        while heap:
            seq, app = heapq.heappop(heap)
            if members.get(app) == seq:
                del members[app]
                return app
        raise IndexError("pop_first() on an empty index")

    def __contains__(self, app: str) -> bool:
        return app in self._members

    def __iter__(self):
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __bool__(self) -> bool:
        return bool(self._members)


class _Exchange:
    """One session message queued in a :class:`CoordinationRound`."""

    __slots__ = ("kind", "app", "descriptor", "remaining", "event")

    INFORM = "inform"
    RELEASE = "release"

    def __init__(self, kind, app, descriptor=None, remaining=None, event=None):
        self.kind = kind
        self.app = app
        self.descriptor = descriptor
        self.remaining = remaining
        self.event = event


class CoordinationRound:
    """All Inform/Release exchanges submitted at one simulated timestamp.

    Sessions enqueue here instead of invoking the strategy N independent
    times; the arbiter flushes the round (in arrival order) either at the
    scheduled same-timestamp flush event or eagerly, whenever a synchronous
    state change (``on_complete``, ``withdraw``, a direct ``on_inform``)
    must observe every exchange already submitted.
    """

    __slots__ = ("time", "entries")

    def __init__(self, time_: float):
        self.time = time_
        self.entries: List[_Exchange] = []

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CoordinationRound t={self.time:g} entries={len(self.entries)}>"


class Arbiter:
    """Decision-maker and authorization bookkeeper.

    Parameters
    ----------
    strategy:
        Name, class, or :class:`~repro.core.strategies.Strategy` instance.
    grant_latency:
        Seconds between a grant decision and the granted application
        observing it (the authorization message crossing the fabric).
    batched:
        True (default): indexed state + :class:`CoordinationRound`
        message coalescing.  False: the historical per-inform decision
        loop over scanned lists — kept as the equivalence oracle and the
        "old cost" baseline for the scale benchmark.
    decision_log_limit:
        ``None`` (default) keeps every :class:`DecisionRecord` — required
        for figure reproduction.  An integer bounds the log to the most
        recent N records (a ring buffer) so 10^5-decision scale scenarios
        don't retain 10^5 snapshots.
    perf:
        Optional :class:`~repro.perf.PerfCounters`; when set the arbiter
        bumps ``coord_decisions`` / ``coord_rounds`` / ``coord_exchanges``
        / ``coord_grants`` / ``coord_preemptions`` and accumulates
        ``coord_seconds`` of host wall-clock spent in the decision loop.
    """

    def __init__(self, sim: Simulator, strategy, grant_latency: float = 0.0,
                 batched: bool = True,
                 decision_log_limit: Optional[int] = None,
                 perf=None):
        self.sim = sim
        self.strategy: Strategy = make_strategy(strategy)
        self.grant_latency = float(grant_latency)
        self.batched = bool(batched)
        self.perf = perf
        self._state: Dict[str, AccessState] = {}
        self._desc: Dict[str, AccessDescriptor] = {}
        self._auth_events: Dict[str, Event] = {}
        #: Granted-but-unprocessed authorization events (grant_latency in
        #: flight); lets late ``authorization_event`` callers observe the
        #: delayed grant instead of an instant one.
        self._inflight: Dict[str, Event] = {}
        #: Per-app access generation; bumped on every return to IDLE so
        #: stale DELAY-hold timers can detect a withdraw+re-inform cycle.
        #: Kept as a belt-and-braces cross-check even though stale hold
        #: timers are now *cancelled* outright (see ``_hold_timers``).
        self._epoch: Dict[str, int] = {}
        #: Pending DELAY-hold timer per app; cancelled (not just outrun by
        #: the epoch guard) when the access ends or a new hold supersedes.
        self._hold_timers: Dict[str, object] = {}
        #: Most recent strategy decision per app: ``(Action, delay)``.
        #: Cleared on return to IDLE; lets the shard router distinguish a
        #: DELAY-hold from a plain WAIT when negotiating span accesses.
        self._last_decision: Dict[str, tuple] = {}
        #: Optional callback ``(app, AccessState)`` fired on every state
        #: transition, in apply order.  The process-shard worker uses it to
        #: ship an ordered transition stream back to the router so the
        #: router-side mirror replays grants (and their latency) exactly.
        self.transition_observer = None
        self.decision_log_limit = decision_log_limit
        self.decision_log = ([] if decision_log_limit is None
                             else deque(maxlen=int(decision_log_limit)))
        #: Whether the strategy's decide/decide_batch ask for the
        #: preempted-queue view (an optional keyword, see Strategy docs).
        self._batch_preempted = _accepts_preempted(self.strategy.decide_batch)
        self._decide_preempted = _accepts_preempted(self.strategy.decide)
        if self.batched:
            #: First-decision order (never reset) — the iteration order the
            #: old ``_state``-scanning ``active_descriptors()`` produced.
            self._order: Dict[str, int] = {}
            self._order_seq = count()
            self._active: Dict[str, None] = {}
            self._waiting = _FifoIndex()
            self._preempted = _FifoIndex()
            self._round: Optional[CoordinationRound] = None
            self._active_view = DescriptorSetView(
                self._active, self._desc, sort_key=self._order.__getitem__)
            # track_totals: the waiting view maintains the backlog
            # aggregates (Σ t_alone, Σ nprocs·t_alone, ...) deep-queue
            # strategies read in O(1); every mutation of the waiting index
            # below reports through note_append/note_remove.
            self._waiting_view = DescriptorSetView(self._waiting, self._desc,
                                                   track_totals=True)
            #: Read-only preempted queue (preemption order) for strategies
            #: whose cost models price deep preemption stacks.
            self._preempted_view = DescriptorSetView(self._preempted,
                                                     self._desc)
        else:
            self._waiting: List[str] = []     # FIFO arrival order
            self._preempted: List[str] = []   # FIFO preemption order

    # -- queries -----------------------------------------------------------
    def state_of(self, app: str) -> AccessState:
        return self._state.get(app, AccessState.IDLE)

    def is_authorized(self, app: str) -> bool:
        """Whether ``app`` may issue file-system requests right now."""
        return self.state_of(app) is AccessState.ACTIVE

    def descriptor_of(self, app: str) -> Optional[AccessDescriptor]:
        return self._desc.get(app)

    def active_descriptors(self) -> List[AccessDescriptor]:
        if self.batched:
            return list(self._active_view)
        return [self._desc[a] for a, s in self._state.items()
                if s is AccessState.ACTIVE]

    def waiting_descriptors(self) -> List[AccessDescriptor]:
        if self.batched:
            return list(self._waiting_view)
        return [self._desc[a] for a in self._waiting]

    def preempted_descriptors(self) -> List[AccessDescriptor]:
        """Preempted accesses, in preemption (FIFO re-grant) order."""
        if self.batched:
            return list(self._preempted_view)
        return [self._desc[a] for a in self._preempted]

    def grant_in_flight(self, app: str) -> bool:
        """Whether ``app``'s grant notification is still crossing the fabric.

        True between a grant decision and the granted application observing
        it (``grant_latency`` later).  Sessions consult this so a batched
        round's deferred continuation still pays the authorization-message
        latency the unbatched path charged.
        """
        ev = self._inflight.get(app)
        return ev is not None and not ev.processed

    def authorization_event(self, app: str) -> Event:
        """Event that fires when ``app`` becomes (or already is) authorized."""
        inflight = self._inflight.get(app)
        if inflight is not None and not inflight.processed:
            return inflight  # grant_latency still in flight
        if self.is_authorized(app):
            ev = self.sim.event()
            ev.succeed(None)
            return ev
        ev = self._auth_events.get(app)
        if ev is None or ev.triggered:
            ev = self.sim.event()
            self._auth_events[app] = ev
        return ev

    def last_decision_for(self, app: str):
        """``(Action, delay)`` of ``app``'s most recent strategy decision.

        ``None`` once the access returned to IDLE (or was never seen).
        Continuations don't re-decide, so this is the verdict that put the
        app in its current queue — the shard router reads it to tell a
        DELAY-hold apart from a plain WAIT.
        """
        return self._last_decision.get(app)

    def _note_transition(self, app: str, state: AccessState) -> None:
        observer = self.transition_observer
        if observer is not None:
            observer(app, state)

    def _bump_seconds(self, dt: float) -> None:
        self.perf.bump("coord_seconds", dt)
        self.perf.bump("coord_wall_seconds", dt)

    # -- protocol entry points (synchronous) -------------------------------
    def on_inform(self, descriptor: AccessDescriptor) -> bool:
        """An application announces (or refreshes) an access.

        Returns True if the application is authorized after the call.
        Synchronous: any pending coordination round is flushed first so the
        decision observes every exchange submitted before this call.
        """
        if not self.batched:
            return self._on_inform_unbatched(descriptor)
        self._flush_pending()
        t0 = time.perf_counter() if self.perf is not None else 0.0
        app = descriptor.app
        if self.state_of(app) is not AccessState.IDLE:
            # Continuation or refresh: update knowledge, no new decision.
            self._merge_descriptor(app, descriptor)
            authorized = self.state_of(app) is AccessState.ACTIVE
        else:
            authorized = self._decide_fresh([descriptor], events=None)[0]
        if self.perf is not None:
            self._bump_seconds(time.perf_counter() - t0)
        return authorized

    def submit_inform(self, descriptor: AccessDescriptor) -> Event:
        """Queue an Inform into the current round; fires with the result.

        The returned event succeeds (at the same timestamp) with the value
        :meth:`on_inform` would have returned.  Sessions use this in
        batched mode; unbatched arbiters resolve it immediately.
        """
        ev = self.sim.event()
        if not self.batched:
            ev.succeed(self.on_inform(descriptor))
            return ev
        t0 = time.perf_counter() if self.perf is not None else 0.0
        app = descriptor.app
        if self._round is None and self.state_of(app) is not AccessState.IDLE:
            # Continuation with no pending round: there is nothing to
            # preserve ordering against, so skip the round machinery and
            # apply the knowledge refresh immediately (the bulk of session
            # traffic is exactly this).  Fresh informs always queue — they
            # are the decisions coordination rounds batch.
            self._merge_descriptor(app, descriptor)
            ev.succeed(self.state_of(app) is AccessState.ACTIVE)
            if self.perf is not None:
                self.perf.bump("coord_exchanges")
        else:
            self._open_round().entries.append(_Exchange(
                _Exchange.INFORM, app, descriptor=descriptor, event=ev))
        if self.perf is not None:
            self._bump_seconds(time.perf_counter() - t0)
        return ev

    def on_release(self, app: str, remaining_bytes: Optional[float] = None) -> None:
        """End of one guarded step: refresh remaining-work knowledge."""
        if self.batched:
            self._flush_pending()
        t0 = time.perf_counter() if self.perf is not None else 0.0
        desc = self._desc.get(app)
        if desc is not None and remaining_bytes is not None:
            desc.remaining_bytes = max(0.0, float(remaining_bytes))
        if self.perf is not None:
            self._bump_seconds(time.perf_counter() - t0)

    def submit_release(self, app: str,
                       remaining_bytes: Optional[float] = None) -> None:
        """Queue a Release into the current round (batched mode).

        With no round pending there is nothing to order against, so the
        refresh applies immediately (same fast path as continuation
        informs).
        """
        if not self.batched:
            self.on_release(app, remaining_bytes)
            return
        t0 = time.perf_counter() if self.perf is not None else 0.0
        if self._round is None:
            desc = self._desc.get(app)
            if desc is not None and remaining_bytes is not None:
                desc.remaining_bytes = max(0.0, float(remaining_bytes))
            if self.perf is not None:
                self.perf.bump("coord_exchanges")
        else:
            self._open_round().entries.append(_Exchange(
                _Exchange.RELEASE, app, remaining=remaining_bytes))
        if self.perf is not None:
            self._bump_seconds(time.perf_counter() - t0)

    def on_complete(self, app: str) -> None:
        """The whole access finished: free the slot, grant successors."""
        if not self.batched:
            self._on_complete_unbatched(app)
            return
        self._flush_pending()
        state = self.state_of(app)
        if state is AccessState.IDLE:
            return
        t0 = time.perf_counter() if self.perf is not None else 0.0
        if app in self._waiting:
            self._waiting.discard(app)
            self._waiting_view.note_remove()
        self._preempted.discard(app)
        self._active.pop(app, None)
        self._state[app] = AccessState.IDLE
        self._note_transition(app, AccessState.IDLE)
        self._last_decision.pop(app, None)
        self._epoch[app] = self._epoch.get(app, 0) + 1
        self._cancel_hold(app)
        # A grant notification still in flight belongs to the access that
        # just ended; the next access must not observe it.
        self._inflight.pop(app, None)
        self._desc.pop(app, None)
        self._grant_next()
        if self.perf is not None:
            self._bump_seconds(time.perf_counter() - t0)

    def withdraw(self, app: str) -> None:
        """Remove an application entirely (job end, error paths)."""
        self.on_complete(app)

    # -- coordination rounds (batched mode) --------------------------------
    def _open_round(self) -> CoordinationRound:
        rnd = self._round
        if rnd is None:
            rnd = self._round = CoordinationRound(self.sim.now)
            self.sim.call_at(self.sim.now, self._flush_pending)
        return rnd

    def _flush_pending(self) -> None:
        """Apply every queued exchange, in arrival order.

        Runs at the round's scheduled flush event, and eagerly from any
        synchronous entry point — whichever comes first.  Idempotent.
        """
        rnd = self._round
        if rnd is None:
            return
        self._round = None
        entries = rnd.entries
        perf = self.perf
        t0 = time.perf_counter() if perf is not None else 0.0
        if perf is not None:
            perf.bump("coord_rounds")
            perf.bump("coord_exchanges", len(entries))
        i, n = 0, len(entries)
        while i < n:
            e = entries[i]
            if e.kind == _Exchange.RELEASE:
                desc = self._desc.get(e.app)
                if desc is not None and e.remaining is not None:
                    desc.remaining_bytes = max(0.0, float(e.remaining))
                i += 1
                continue
            if self.state_of(e.app) is not AccessState.IDLE:
                # Continuation or refresh: no strategy decision.
                self._merge_descriptor(e.app, e.descriptor)
                e.event.succeed(self.state_of(e.app) is AccessState.ACTIVE)
                i += 1
                continue
            # Maximal run of fresh informs (distinct apps) -> one batched
            # strategy invocation.  A repeated app or an interleaved
            # release breaks the run: later entries must observe the
            # earlier ones' effects exactly as the unbatched path would.
            batch = [e]
            seen = {e.app}
            j = i + 1
            while j < n:
                nxt = entries[j]
                if (nxt.kind != _Exchange.INFORM or nxt.app in seen
                        or self.state_of(nxt.app) is not AccessState.IDLE):
                    break
                batch.append(nxt)
                seen.add(nxt.app)
                j += 1
            self._decide_fresh([b.descriptor for b in batch],
                               events=[b.event for b in batch])
            i = j
        if perf is not None:
            self._bump_seconds(time.perf_counter() - t0)

    def _decide_fresh(self, descriptors: List[AccessDescriptor],
                      events: Optional[List[Event]]) -> List[bool]:
        """One batched strategy invocation over fresh informs, in order.

        Decisions are pulled lazily and applied one at a time, so a
        strategy observing the live views sees each earlier decision's
        effect — bit-identical to N independent unbatched calls.
        """
        if self._batch_preempted:
            decisions = iter(self.strategy.decide_batch(
                self.sim.now, self._active_view, self._waiting_view,
                descriptors, preempted=self._preempted_view))
        else:
            decisions = iter(self.strategy.decide_batch(
                self.sim.now, self._active_view, self._waiting_view,
                descriptors))
        results: List[bool] = []
        for k, descriptor in enumerate(descriptors):
            try:
                decision = next(decisions)
            except StopIteration:
                raise SimulationError(
                    f"{self.strategy!r}.decide_batch yielded {k} decisions "
                    f"for {len(descriptors)} incoming accesses") from None
            authorized = self._apply_decision(descriptor, decision)
            results.append(authorized)
            if events is not None:
                events[k].succeed(authorized)
        return results

    def _apply_decision(self, descriptor: AccessDescriptor,
                        decision: Decision) -> bool:
        app = descriptor.app
        if app not in self._order:
            self._order[app] = next(self._order_seq)
        self._log_decision(app, decision,
                           active=self._active_view.names(),
                           waiting=list(self._waiting))
        self._desc[app] = descriptor
        if decision.action is Action.GO:
            self._activate(app)
            return True
        if decision.action is Action.WAIT:
            self._enqueue_waiting(app)
            return False
        if decision.action is Action.DELAY:
            # Fig 12's tradeoff: hold the newcomer briefly, then let it
            # share.  An earlier grant (actives completing) still wins.
            self._enqueue_waiting(app)
            self._schedule_hold(app, decision.delay)
            return False
        # INTERRUPT: revoke targets' authorization, then run.
        targets = decision.preempt
        if targets is None:
            targets = self._active_view.names()
        for victim in targets:
            if self.state_of(victim) is AccessState.ACTIVE:
                self._state[victim] = AccessState.PREEMPTED
                self._note_transition(victim, AccessState.PREEMPTED)
                self._active.pop(victim, None)
                self._preempted.add(victim)
                if self.perf is not None:
                    self.perf.bump("coord_preemptions")
        self._activate(app)
        return True

    def _enqueue_waiting(self, app: str) -> None:
        self._state[app] = AccessState.WAITING
        self._note_transition(app, AccessState.WAITING)
        self._waiting.add(app)
        self._waiting_view.note_append(self._desc[app])
        # Register the authorization event now (not lazily in wait()):
        # a same-timestamp grant must deliver grant_latency even if the
        # session's continuation has not resumed yet.
        self._register_auth_event(app)

    def _schedule_hold(self, app: str, delay: float) -> None:
        epoch = self._epoch.get(app, 0)

        def _hold_expired() -> None:
            self._hold_timers.pop(app, None)
            if self.batched:
                self._flush_pending()
            # Guard on the access generation: a stale timer is cancelled at
            # the epoch bump, so a fire from a previous access would mean
            # the cancellation contract broke — never activate from one.
            if self._epoch.get(app, 0) != epoch:
                return
            if self.state_of(app) is not AccessState.WAITING:
                return
            if self.batched:
                self._waiting.discard(app)
                self._waiting_view.note_remove()
            elif app in self._waiting:
                self._waiting.remove(app)
            self._activate(app)

        self._cancel_hold(app)
        self._hold_timers[app] = self.sim.call_at(
            self.sim.now + max(0.0, delay), _hold_expired)

    def _cancel_hold(self, app: str) -> None:
        timer = self._hold_timers.pop(app, None)
        if timer is not None:
            timer.cancel()

    # -- internals ---------------------------------------------------------
    def _log_decision(self, app: str, decision: Decision,
                      active: List[str], waiting: List[str]) -> None:
        self._last_decision[app] = (decision.action, decision.delay)
        self.decision_log.append(DecisionRecord(
            time=self.sim.now, app=app, action=decision.action,
            active=active, waiting=waiting, costs=dict(decision.costs),
        ))
        if self.perf is not None:
            self.perf.bump("coord_decisions")

    def _merge_descriptor(self, app: str, incoming: AccessDescriptor) -> None:
        current = self._desc.get(app)
        if current is None:
            self._desc[app] = incoming
            return
        current.remaining_bytes = incoming.remaining_bytes
        current.rounds = incoming.rounds

    def _activate(self, app: str) -> None:
        # Granted by any route (hold expiry, slot free, preemption refill):
        # a still-pending hold timer for this access is now moot.
        self._cancel_hold(app)
        self._state[app] = AccessState.ACTIVE
        if self.batched:
            self._active[app] = None
        self._note_transition(app, AccessState.ACTIVE)
        desc = self._desc.get(app)
        if desc is not None and desc.access_started is None:
            desc.access_started = self.sim.now
        if self.perf is not None:
            self.perf.bump("coord_grants")
        ev = self._auth_events.pop(app, None)
        if ev is not None and not ev.triggered:
            ev.succeed(None, delay=self.grant_latency)
            if self.grant_latency > 0:
                self._inflight[app] = ev

                def _clear(_processed, app=app, ev=ev):
                    # Only this grant's entry: a withdraw + re-grant may
                    # have installed a successor event meanwhile.
                    if self._inflight.get(app) is ev:
                        del self._inflight[app]

                ev.callbacks.append(_clear)

    def _grant_next(self) -> None:
        """Grant priority to preempted apps, then the FIFO waiter queue."""
        if self.batched:
            if self._active:
                return  # someone is still running; nothing to grant
            if self._preempted:
                self._activate(self._preempted.pop_first())
                return
            if self._waiting:
                app = self._waiting.pop_first()
                self._waiting_view.note_remove()
                self._activate(app)
            return
        if self.active_descriptors():
            return
        if self._preempted:
            self._activate(self._preempted.pop(0))
            return
        if self._waiting:
            self._activate(self._waiting.pop(0))

    # -- the historical per-inform path (the oracle) ------------------------
    def _on_inform_unbatched(self, descriptor: AccessDescriptor) -> bool:
        """The pre-index decision loop: list rebuilds, O(n) scans."""
        t0 = time.perf_counter() if self.perf is not None else 0.0
        try:
            app = descriptor.app
            state = self.state_of(app)
            if state in (AccessState.ACTIVE, AccessState.WAITING,
                         AccessState.PREEMPTED):
                self._merge_descriptor(app, descriptor)
                return state is AccessState.ACTIVE

            if self._decide_preempted:
                decision = self.strategy.decide(
                    self.sim.now,
                    self.active_descriptors(),
                    self.waiting_descriptors(),
                    descriptor,
                    preempted=self.preempted_descriptors(),
                )
            else:
                decision = self.strategy.decide(
                    self.sim.now,
                    self.active_descriptors(),
                    self.waiting_descriptors(),
                    descriptor,
                )
            self._log_decision(
                app, decision,
                active=[d.app for d in self.active_descriptors()],
                waiting=list(self._waiting))
            self._desc[app] = descriptor
            if decision.action is Action.GO:
                self._activate(app)
                return True
            if decision.action is Action.WAIT:
                self._state[app] = AccessState.WAITING
                self._note_transition(app, AccessState.WAITING)
                self._waiting.append(app)
                self._register_auth_event(app)
                return False
            if decision.action is Action.DELAY:
                self._state[app] = AccessState.WAITING
                self._note_transition(app, AccessState.WAITING)
                self._waiting.append(app)
                self._register_auth_event(app)
                self._schedule_hold(app, decision.delay)
                return False
            targets = decision.preempt
            if targets is None:
                targets = [d.app for d in self.active_descriptors()]
            for victim in targets:
                if self.state_of(victim) is AccessState.ACTIVE:
                    self._state[victim] = AccessState.PREEMPTED
                    self._note_transition(victim, AccessState.PREEMPTED)
                    self._preempted.append(victim)
                    if self.perf is not None:
                        self.perf.bump("coord_preemptions")
            self._activate(app)
            return True
        finally:
            if self.perf is not None:
                self._bump_seconds(time.perf_counter() - t0)

    def _register_auth_event(self, app: str) -> None:
        ev = self._auth_events.get(app)
        if ev is None or ev.triggered:
            self._auth_events[app] = self.sim.event()

    def _on_complete_unbatched(self, app: str) -> None:
        state = self.state_of(app)
        if state is AccessState.IDLE:
            return
        t0 = time.perf_counter() if self.perf is not None else 0.0
        if app in self._waiting:
            self._waiting.remove(app)
        if app in self._preempted:
            self._preempted.remove(app)
        self._state[app] = AccessState.IDLE
        self._note_transition(app, AccessState.IDLE)
        self._last_decision.pop(app, None)
        self._epoch[app] = self._epoch.get(app, 0) + 1
        self._cancel_hold(app)
        self._inflight.pop(app, None)
        self._desc.pop(app, None)
        self._grant_next()
        if self.perf is not None:
            self._bump_seconds(time.perf_counter() - t0)
