"""CALCioM runtime: the machine-level entry point.

Typical usage::

    from repro.platforms import Platform, grid5000_rennes
    from repro.core import CalciomRuntime

    platform = Platform(grid5000_rennes())
    runtime = CalciomRuntime(platform, strategy="dynamic")
    client = platform.add_client("appA", nprocs=336)
    session = runtime.session("appA", client, nprocs=336)
    # hand `session` to an ADIOLayer (guard=session) — done.

The runtime owns the arbiter (strategy enforcement), the application
registry (job-scheduler integration), and builds per-application sessions
wired with the platform's coordination latency and standalone-time
estimator.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

from ..mpisim import Communicator
from ..platforms import Platform
from ..simcore import SimulationError
from .arbiter import Arbiter
from .registry import ApplicationRegistry
from .session import CalciomSession
from .sharding import ShardRouter
from .strategies import Strategy

__all__ = ["CalciomRuntime"]


class CalciomRuntime:
    """Cross-Application Layer for Coordinated I/O Management.

    Parameters
    ----------
    platform:
        The machine the applications run on (provides the simulator, the
        coordination-message latency, and the standalone-time estimator
        CALCioM sessions use for exchanged predictions).
    strategy:
        'interfere', 'fcfs', 'interrupt', 'dynamic', or a
        :class:`~repro.core.strategies.Strategy` instance.
    coordination_latency:
        Override for the cross-application message latency (defaults to
        twice the platform's link latency: coordinator -> peer coordinator
        crosses the fabric once, through the switch).
    batched:
        Passed to :class:`~repro.core.arbiter.Arbiter`: True (default)
        uses the indexed state and same-timestamp coordination rounds;
        False retains the historical per-inform decision loop (the
        equivalence oracle).
    decision_log_limit:
        Ring-buffer bound on the arbiter's decision log (None = unbounded,
        the figure-reproduction default; scale scenarios cap it).
    shards:
        Arbiter shards: ``None`` (default) runs one arbiter per platform
        partition (= the single machine-wide arbiter on unpartitioned
        machines), ``1`` forces one arbiter coordinating every partition
        (the unsharded baseline on partitioned machines).  Explicit values
        must be 1 or the platform's partition count — a shard owns whole
        partitions.  See :mod:`repro.core.sharding`.
    workers:
        ``"inline"`` (default) or ``"process"`` — forwarded to
        :class:`~repro.core.sharding.ShardRouter`.  Process mode runs
        each shard in its own worker process; call :meth:`close` (or let
        the experiment engine do it) after the run.
    span_delay:
        ``"requeue"`` (default) or ``"hold"`` — cross-shard DELAY
        negotiation, forwarded to the router.
    """

    def __init__(self, platform: Platform, strategy="dynamic",
                 coordination_latency: Optional[float] = None,
                 batched: bool = True,
                 decision_log_limit: Optional[int] = None,
                 shards: Optional[int] = None,
                 workers: Optional[str] = None,
                 span_delay: Optional[str] = None):
        self.platform = platform
        self.sim = platform.sim
        latency = (2 * platform.config.latency
                   if coordination_latency is None else coordination_latency)
        self.coordination_latency = float(latency)
        npartitions = getattr(platform.config, "npartitions", 1)
        nshards = npartitions if shards is None else int(shards)
        if nshards not in (1, npartitions):
            raise SimulationError(
                f"shards must be 1 or the platform's partition count "
                f"({npartitions}), got {nshards}")
        router_kwargs = {}
        if workers is not None:
            router_kwargs["workers"] = workers
        if span_delay is not None:
            router_kwargs["span_delay"] = span_delay
        self.coordinator = ShardRouter(
            self.sim, nshards, strategy,
            grant_latency=self.coordination_latency,
            batched=batched,
            decision_log_limit=decision_log_limit,
            perf=getattr(platform, "perf", None),
            **router_kwargs)
        # A system-provided arbiter knows its machine: give a dynamic
        # strategy the file-system bandwidth its decisions govern — the
        # whole machine for a single arbiter, the owned partition per
        # shard — so interference predictions honour client-side caps.
        for shard in self.coordinator.shards:
            strat = shard.arbiter.strategy
            if getattr(strat, "capacity", "absent") is None:
                strat.capacity = (
                    platform.config.aggregate_bandwidth if nshards == 1
                    else platform.config.partition_bandwidth(shard.index))
        self.registry = ApplicationRegistry()
        self._sessions: Dict[str, CalciomSession] = {}

    @property
    def arbiter(self) -> Union[Arbiter, ShardRouter]:
        """The decision point: the single arbiter when unsharded (the
        historical attribute, bit-compatible), else the shard router."""
        if self.coordinator.nshards == 1:
            return self.coordinator.shards[0].arbiter
        return self.coordinator

    @property
    def strategy(self) -> Strategy:
        return self.coordinator.strategy

    def session(self, app: str, client: str, nprocs: int,
                comm: Optional[Communicator] = None,
                partitions: Optional[Sequence[int]] = None) -> CalciomSession:
        """Create (and register) the CALCioM session for one application.

        ``partitions`` is the application's declared file-system placement
        (as in :meth:`Platform.app_partitions`); ``None`` resolves to the
        platform's stable default for ``app``.
        """
        if app in self._sessions:
            raise SimulationError(f"application {app!r} already has a session")
        self.registry.register(app, nprocs, client, self.sim.now)
        session = CalciomSession(
            self.sim, self.coordinator, app=app, client=client, nprocs=nprocs,
            estimator=self.platform.standalone_write_time,
            comm=comm,
            coordination_latency=self.coordination_latency,
            perf=getattr(self.platform, "perf", None),
            partitions=self._resolve_partitions(app, partitions),
        )
        self._sessions[app] = session
        return session

    def _resolve_partitions(self, app: str,
                            requested: Optional[Sequence[int]]
                            ) -> Tuple[int, ...]:
        resolver = getattr(self.platform, "app_partitions", None)
        if resolver is not None:
            return resolver(app, requested)
        return tuple(int(p) for p in requested) if requested else (0,)

    def end_job(self, app: str) -> None:
        """Job termination: deregister and withdraw any access state."""
        if app not in self._sessions:
            raise SimulationError(f"unknown application {app!r}")
        self.registry.unregister(app, self.sim.now)
        self.coordinator.withdraw(app)
        del self._sessions[app]

    def sessions(self) -> Dict[str, CalciomSession]:
        """Live sessions by application name."""
        return dict(self._sessions)

    def close(self) -> None:
        """Release coordinator resources (shard worker processes).

        Idempotent; a no-op for inline coordination.  Call after
        ``sim.run()`` and before the final ``decision_log`` read so
        per-worker logs and perf counters are shipped back and merged.
        """
        closer = getattr(self.coordinator, "close", None)
        if closer is not None:
            closer()

    @property
    def decision_log(self):
        """The audit log of strategy decisions (merged across shards)."""
        return self.coordinator.decision_log
