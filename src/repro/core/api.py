"""CALCioM runtime: the machine-level entry point.

Typical usage::

    from repro.platforms import Platform, grid5000_rennes
    from repro.core import CalciomRuntime

    platform = Platform(grid5000_rennes())
    runtime = CalciomRuntime(platform, strategy="dynamic")
    client = platform.add_client("appA", nprocs=336)
    session = runtime.session("appA", client, nprocs=336)
    # hand `session` to an ADIOLayer (guard=session) — done.

The runtime owns the arbiter (strategy enforcement), the application
registry (job-scheduler integration), and builds per-application sessions
wired with the platform's coordination latency and standalone-time
estimator.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..mpisim import Communicator
from ..platforms import Platform
from ..simcore import SimulationError
from .arbiter import Arbiter
from .registry import ApplicationRegistry
from .session import CalciomSession
from .strategies import Strategy

__all__ = ["CalciomRuntime"]


class CalciomRuntime:
    """Cross-Application Layer for Coordinated I/O Management.

    Parameters
    ----------
    platform:
        The machine the applications run on (provides the simulator, the
        coordination-message latency, and the standalone-time estimator
        CALCioM sessions use for exchanged predictions).
    strategy:
        'interfere', 'fcfs', 'interrupt', 'dynamic', or a
        :class:`~repro.core.strategies.Strategy` instance.
    coordination_latency:
        Override for the cross-application message latency (defaults to
        twice the platform's link latency: coordinator -> peer coordinator
        crosses the fabric once, through the switch).
    batched:
        Passed to :class:`~repro.core.arbiter.Arbiter`: True (default)
        uses the indexed state and same-timestamp coordination rounds;
        False retains the historical per-inform decision loop (the
        equivalence oracle).
    decision_log_limit:
        Ring-buffer bound on the arbiter's decision log (None = unbounded,
        the figure-reproduction default; scale scenarios cap it).
    """

    def __init__(self, platform: Platform, strategy="dynamic",
                 coordination_latency: Optional[float] = None,
                 batched: bool = True,
                 decision_log_limit: Optional[int] = None):
        self.platform = platform
        self.sim = platform.sim
        latency = (2 * platform.config.latency
                   if coordination_latency is None else coordination_latency)
        self.coordination_latency = float(latency)
        self.arbiter = Arbiter(self.sim, strategy,
                               grant_latency=self.coordination_latency,
                               batched=batched,
                               decision_log_limit=decision_log_limit,
                               perf=getattr(platform, "perf", None))
        # A system-provided arbiter knows its machine: give a dynamic
        # strategy the file system's aggregate bandwidth so its
        # interference predictions can honour client-side caps.
        strat = self.arbiter.strategy
        if getattr(strat, "capacity", "absent") is None:
            strat.capacity = platform.config.aggregate_bandwidth
        self.registry = ApplicationRegistry()
        self._sessions: Dict[str, CalciomSession] = {}

    @property
    def strategy(self) -> Strategy:
        return self.arbiter.strategy

    def session(self, app: str, client: str, nprocs: int,
                comm: Optional[Communicator] = None) -> CalciomSession:
        """Create (and register) the CALCioM session for one application."""
        if app in self._sessions:
            raise SimulationError(f"application {app!r} already has a session")
        self.registry.register(app, nprocs, client, self.sim.now)
        session = CalciomSession(
            self.sim, self.arbiter, app=app, client=client, nprocs=nprocs,
            estimator=self.platform.standalone_write_time,
            comm=comm,
            coordination_latency=self.coordination_latency,
            perf=getattr(self.platform, "perf", None),
        )
        self._sessions[app] = session
        return session

    def end_job(self, app: str) -> None:
        """Job termination: deregister and withdraw any access state."""
        if app not in self._sessions:
            raise SimulationError(f"unknown application {app!r}")
        self.registry.unregister(app, self.sim.now)
        self.arbiter.withdraw(app)
        del self._sessions[app]

    def sessions(self) -> Dict[str, CalciomSession]:
        """Live sessions by application name."""
        return dict(self._sessions)

    @property
    def decision_log(self):
        """The arbiter's audit log of strategy decisions."""
        return self.arbiter.decision_log
