"""Running-application registry (the "job scheduler" integration point).

The paper: "Retrieving the list of other running applications is done
through communications with the machine's job scheduler when the job starts
and finishes."  This registry plays that role: applications (their
CALCioM coordinators) appear here for the lifetime of the job, and the
arbiter consults it to know who can be coordinated with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..simcore import SimulationError

__all__ = ["ApplicationRecord", "ApplicationRegistry"]


@dataclass
class ApplicationRecord:
    """One running application as the job scheduler sees it."""

    name: str
    nprocs: int
    client: str          #: fabric endpoint
    registered_at: float
    finished_at: Optional[float] = None

    @property
    def running(self) -> bool:
        return self.finished_at is None


class ApplicationRegistry:
    """Job-scheduler view of what is running on the machine."""

    def __init__(self) -> None:
        self._records: Dict[str, ApplicationRecord] = {}

    def register(self, name: str, nprocs: int, client: str,
                 now: float) -> ApplicationRecord:
        """Record a job start."""
        existing = self._records.get(name)
        if existing is not None and existing.running:
            raise SimulationError(f"application {name!r} already registered")
        record = ApplicationRecord(name=name, nprocs=nprocs, client=client,
                                   registered_at=now)
        self._records[name] = record
        return record

    def unregister(self, name: str, now: float) -> None:
        """Record a job end."""
        record = self._records.get(name)
        if record is None or not record.running:
            raise SimulationError(f"application {name!r} is not running")
        record.finished_at = now

    def lookup(self, name: str) -> ApplicationRecord:
        try:
            return self._records[name]
        except KeyError:
            raise SimulationError(f"unknown application {name!r}") from None

    def running(self) -> List[ApplicationRecord]:
        """All currently running applications."""
        return [r for r in self._records.values() if r.running]

    def peers_of(self, name: str) -> List[ApplicationRecord]:
        """Every running application except ``name``."""
        return [r for r in self.running() if r.name != name]

    def __len__(self) -> int:
        return len(self.running())
