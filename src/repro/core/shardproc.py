"""Process-parallel shard execution: one worker process per ArbiterShard.

The in-process :class:`~repro.core.sharding.ShardRouter` made the decision
loop *algorithmically* cheap — each shard's arbiter only scans its own
partition's backlog — but every shard still runs interleaved in one Python
process, so wall-clock stays GIL-bound.  This module runs each shard in
its own worker process:

* :func:`_shard_worker_main` — the worker loop.  Hosts one batched
  :class:`~repro.core.arbiter.Arbiter` (``grant_latency=0``) on its own
  virtual clock, applies Inform/Release/Complete/Withdraw ops shipped
  over a blocking ``socketpair`` speaking the length-prefixed
  canonical-JSON framing of :mod:`repro.service.protocol`, and replies
  with the ordered stream of state transitions each op caused plus its
  next pending virtual-clock event (``nw``).
* :class:`ShardProcessPool` — the router-side end.  Buffers and
  pipelines sends (independent shards overlap instead of round-tripping
  serially), reads replies at a same-timestamp drain (the process
  analogue of the batched arbiter's coordination-round flush), arms
  virtual-clock timers from reported ``nw`` values so DELAY holds expire
  on schedule, and meters router-side elapsed wall time into
  ``coord_wall_seconds``.
* :class:`WorkerShardProxy` — presents the :class:`Arbiter` protocol
  surface for one remote shard.  A router-side *mirror* (state map,
  authorization events, in-flight grants, last decisions) is replayed
  from the ordered transition streams, applying the router-level
  ``grant_latency`` exactly where the in-process arbiter would.

Clock discipline and bit-identity
---------------------------------
Every op carries the router's virtual time ``t``; the worker catches its
own clock up (``sim.run(until=t)``), applies the exchange through the
synchronous ``on_inform``/``on_release``/``on_complete`` entry points
(bit-identical to batched rounds by the round-partitioning invariance the
batched arbiter guarantees), then settles same-timestamp events.  Grants
carry no latency inside the worker; the mirror applies ``grant_latency``
when it replays the ACTIVE transition, so sessions observe authorization
exactly when they would in-process.  The remaining divergence window is
an exact-timestamp collision between a DELAY-hold expiry and an
unrelated arrival (event-id ordering inside one timestamp), which has
measure zero under the continuous arrival processes of the committed
scenarios — and the equivalence tests assert bit-identical logs there.

Failure semantics
-----------------
A worker that dies mid-run (killed process, broken pipe, stall past
``REPRO_SHARD_TIMEOUT`` seconds) surfaces as a :class:`ShardWorkerError`
out of the simulation; the pool first fire-and-forgets Withdraw for every
non-IDLE application on the surviving shards, then tears every worker
down without hanging (exit frame, bounded join, terminate, kill).

Environment knobs: ``REPRO_SHARD_START_METHOD`` (``fork`` where
available, else ``spawn``) and ``REPRO_SHARD_TIMEOUT`` (seconds, default
120) — both read at pool start.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import socket
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from ..perf import PerfCounters
from ..simcore import Event, Simulator
from .arbiter import AccessState, Arbiter, DecisionRecord
from .metrics import AccessDescriptor
from .sharding import ShardWorkerError
from .strategies import Action

# NOTE: imported at module level deliberately — this module is only ever
# imported lazily (ShardRouter pulls it in when workers="process"), after
# the repro.core package finished initializing, so the
# service -> server -> core import chain is safe here.
from ..service.protocol import (
    FrameReader, ProtocolError, WireDecoder, WireEncoder, decision_to_dict,
    default_wire_codec, descriptor_from_dict, descriptor_to_dict,
    encode_message, write_frame,
)

__all__ = ["ShardProcessPool", "WorkerShardProxy", "ShardWorkerError"]

#: Outstanding unread replies across all shards before an intermediate
#: drain; bounds the worker->router socket-buffer footprint well under
#: the kernel's default buffer so neither side ever blocks on a full pipe.
REPLY_WINDOW = 256

#: Flush the per-worker send buffer past this size even with no reply
#: pending (keeps fire-and-forget stretches memory-bounded).
SEND_BUFFER_FLUSH = 1 << 16

_LOG_CHUNK_BYTES = 400_000


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _queue_reply(out: bytearray, encoder: WireEncoder, sim: Simulator,
                 transitions: List, **extra: Any) -> None:
    peek = sim.peek()
    msg: Dict[str, Any] = {
        "type": "r",
        "tr": [list(tr) for tr in transitions],
        "nw": None if math.isinf(peek) else peek,
    }
    msg.update(extra)
    out += encoder.encode(msg)
    del transitions[:]


def _shard_worker_main(sock, index: int, strategy, batched: bool,
                       decision_log_limit: Optional[int],
                       codec: str = "json") -> None:
    """One shard's worker loop: read op, catch up clock, apply, reply.

    Replies are *buffered*: a pipelined stretch of ops (one coordination
    wave) produces one coalesced ``sendall``, flushed only before a read
    that would actually block on the socket — the router flushes its
    sends before reading replies, so this never deadlocks.
    """
    try:
        sim = Simulator()
        perf = PerfCounters()
        encoder = WireEncoder(codec, perf=perf)
        reader = FrameReader(sock, WireDecoder(perf=perf))
        out = bytearray()
        arb = Arbiter(sim, strategy, grant_latency=0.0, batched=batched,
                      decision_log_limit=decision_log_limit, perf=perf)
        transitions: List = []
        arb.transition_observer = (
            lambda app, state: transitions.append((app, state.value)))

        queued = [0]

        def _send_reply(_sock, sim, transitions, **extra):
            _queue_reply(out, encoder, sim, transitions, **extra)
            queued[0] += 1

        def _flush():
            if out:
                data = bytes(out)
                del out[:]
                sock.sendall(data)
                perf.bump("wire_flushes")
                if queued[0] > 1:
                    perf.bump("wire_coalesced_frames", queued[0] - 1)
                queued[0] = 0

        while True:
            if out and not reader.has_buffered_frame():
                # Flush-before-block: the wave is over (nothing more is
                # parseable from the buffer), ship the coalesced replies.
                _flush()
            msg = reader.read_frame()
            if msg is None:
                break
            op = msg.get("op")
            if op == "exit":
                break
            t = msg.get("t")
            if t is not None and t > sim.now:
                sim.run(until=t)
            if op == "inform":
                desc = descriptor_from_dict(msg["d"])
                ok = arb.on_inform(desc)
                sim.run(until=sim.now)
                if msg.get("r"):
                    dec = arb.last_decision_for(desc.app)
                    _send_reply(sock, sim, transitions, ok=ok,
                                dec=(None if dec is None
                                     else [dec[0].value, dec[1]]))
            elif op == "release":
                arb.on_release(msg["app"], msg.get("rem"))
                sim.run(until=sim.now)
            elif op in ("complete", "withdraw"):
                if op == "complete":
                    arb.on_complete(msg["app"])
                else:
                    arb.withdraw(msg["app"])
                sim.run(until=sim.now)
                if msg.get("r", 1):
                    _send_reply(sock, sim, transitions)
            elif op == "advance":
                sim.run(until=sim.now)
                _send_reply(sock, sim, transitions)
            elif op == "snapshot":
                sim.run(until=sim.now)
                _send_reply(
                    sock, sim, transitions,
                    active=[descriptor_to_dict(d)
                            for d in arb.active_descriptors()],
                    waiting=[descriptor_to_dict(d)
                             for d in arb.waiting_descriptors()],
                    preempted=[descriptor_to_dict(d)
                               for d in arb.preempted_descriptors()])
            elif op == "desc":
                d = arb.descriptor_of(msg["app"])
                _send_reply(sock, sim, transitions,
                            desc=None if d is None else descriptor_to_dict(d))
            elif op == "log":
                _flush()
                chunk: List[Dict[str, Any]] = []
                size = 0
                for rec in arb.decision_log:
                    d = decision_to_dict(rec)
                    s = len(json.dumps(d))
                    if chunk and size + s > _LOG_CHUNK_BYTES:
                        write_frame(sock, {"type": "log", "records": chunk,
                                           "more": True})
                        chunk, size = [], 0
                    chunk.append(d)
                    size += s
                write_frame(sock, {"type": "log", "records": chunk,
                                   "more": False})
            elif op == "perf":
                _send_reply(sock, sim, transitions, perf=perf.as_dict())
            else:
                raise ProtocolError(f"unknown op {op!r}")
        _flush()
    except Exception as exc:  # noqa: BLE001 - ship the failure to the router
        try:
            write_frame(sock, {"type": "error",
                               "msg": f"{type(exc).__name__}: {exc}"})
        except Exception:  # noqa: BLE001 - peer already gone
            pass
    finally:
        try:
            sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Router side
# ---------------------------------------------------------------------------

class _WorkerHandle:
    """One live worker: its process and the router's socket end."""

    __slots__ = ("proc", "sock", "out", "queued", "encoder", "reader")

    def __init__(self, proc, sock, encoder: WireEncoder,
                 reader: FrameReader):
        self.proc = proc
        self.sock = sock
        self.out = bytearray()   #: buffered, not-yet-sent frames
        self.queued = 0          #: frames in ``out`` (coalescing stats)
        self.encoder = encoder   #: router->worker, pool codec + interning
        self.reader = reader     #: buffered reads, universal decoder


class _Pending:
    """One op awaiting its worker reply, in global send order."""

    __slots__ = ("shard", "kind", "event", "app", "reply")

    def __init__(self, shard: int, kind: str, event: Optional[Event],
                 app: Optional[str]):
        self.shard = shard
        self.kind = kind
        self.event = event
        self.app = app
        self.reply: Optional[Dict[str, Any]] = None


class ShardProcessPool:
    """Lifecycle + transport for one router's set of shard workers.

    Started lazily on the first coordination exchange — after
    :class:`~repro.core.api.CalciomRuntime` injected per-shard strategy
    capacity, so the pickled strategy instances carry it.
    """

    def __init__(self, sim: Simulator, nshards: int,
                 grant_latency: float = 0.0, batched: bool = True,
                 decision_log_limit: Optional[int] = None, perf=None,
                 codec: Optional[str] = None):
        self.sim = sim
        self.nshards = int(nshards)
        self.grant_latency = float(grant_latency)
        self.batched = bool(batched)
        self.decision_log_limit = decision_log_limit
        self.perf = perf
        #: Wire codec for both directions; None = the process default
        #: (``REPRO_WIRE_CODEC``, JSON when unset), resolved at pool start.
        self.codec = codec
        self.proxies: List[WorkerShardProxy] = []
        self.handles: Optional[List[_WorkerHandle]] = None
        self.broken = False
        self.closed = False
        self.start_method: Optional[str] = None
        self._pending: deque = deque()
        self._pending_per_shard: Dict[int, int] = {}
        self._draining = False
        self._depth = 0
        #: Virtual time each shard's wake timer is armed for.
        self._armed: Dict[int, Optional[float]] = {}
        #: The engine Timer handle backing each armed wake; superseded
        #: timers are cancelled instead of dispatched-and-ignored.
        self._wake_timers: Dict[int, object] = {}

    # -- wall-clock metering ------------------------------------------------
    @contextmanager
    def _meter(self):
        t0 = time.perf_counter()
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            if self._depth == 0 and self.perf is not None:
                self.perf.bump("coord_wall_seconds",
                               time.perf_counter() - t0)

    # -- lifecycle ----------------------------------------------------------
    def _ensure_started(self) -> None:
        if self.handles is not None:
            return
        if self.closed or self.broken:
            raise ShardWorkerError("shard worker pool is closed")
        method = os.environ.get("REPRO_SHARD_START_METHOD") or (
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        timeout = float(os.environ.get("REPRO_SHARD_TIMEOUT", "120"))
        ctx = multiprocessing.get_context(method)
        self.start_method = method
        if self.codec is None:
            self.codec = default_wire_codec()
        handles: List[_WorkerHandle] = []
        try:
            for proxy in self.proxies:
                parent, child = socket.socketpair()
                proc = ctx.Process(
                    target=_shard_worker_main,
                    args=(child, proxy.index, proxy.strategy, self.batched,
                          self.decision_log_limit, self.codec),
                    daemon=True, name=f"arbiter-shard-{proxy.index}")
                proc.start()
                child.close()
                parent.settimeout(timeout)
                handles.append(_WorkerHandle(
                    proc, parent, WireEncoder(self.codec, perf=self.perf),
                    FrameReader(parent, WireDecoder(perf=self.perf))))
        except BaseException:
            for handle in handles:
                handle.sock.close()
                handle.proc.terminate()
            raise
        self.handles = handles

    def close(self) -> None:
        """Drain, ship per-worker logs/perf back, and tear the pool down."""
        if self.closed:
            return
        if self.handles is None or self.broken:
            self.closed = True
            return
        try:
            self.drain()
            for proxy in self.proxies:
                proxy._log_cache = self._fetch_log(proxy.index)
            if self.perf is not None:
                for proxy in self.proxies:
                    reply = self._direct(proxy.index, {"op": "perf"})
                    for key, value in reply.get("perf", {}).items():
                        # Per-worker elapsed time is *concurrent* — the
                        # router-side meter is the honest wall counter.
                        if key.startswith("coord_wall_seconds"):
                            continue
                        self.perf.bump(key, value)
                        if self.nshards > 1:
                            self.perf.bump(f"{key}_shard{proxy.index}", value)
        finally:
            self._shutdown()
            self.closed = True

    def _shutdown(self) -> None:
        for timer in self._wake_timers.values():
            timer.cancel()
        self._wake_timers.clear()
        if self.handles is None:
            return
        for handle in self.handles:
            try:
                handle.sock.sendall(
                    encode_message({"type": "op", "op": "exit"}))
            except OSError:
                pass
            try:
                handle.sock.close()
            except OSError:
                pass
        for handle in self.handles:
            handle.proc.join(timeout=5)
            if handle.proc.is_alive():
                handle.proc.terminate()
                handle.proc.join(timeout=1)
            if handle.proc.is_alive():  # pragma: no cover - last resort
                handle.proc.kill()
                handle.proc.join(timeout=1)

    def _fail(self, shard: int, reason: str) -> None:
        """A worker died: withdraw on survivors, tear down, raise."""
        self.broken = True
        now = self.sim.now
        assert self.handles is not None
        for proxy in self.proxies:
            if proxy.index == shard:
                continue
            handle = self.handles[proxy.index]
            if not handle.proc.is_alive():
                continue
            try:
                for app in list(proxy._state):
                    handle.sock.sendall(encode_message(
                        {"type": "op", "op": "withdraw", "t": now, "r": 0,
                         "app": app}))
            except OSError:
                continue
        self._shutdown()
        self.closed = True
        raise ShardWorkerError(
            f"shard {shard} worker died mid-run: {reason}")

    # -- transport ----------------------------------------------------------
    def _send(self, shard: int, msg: Dict[str, Any]) -> None:
        self._ensure_started()
        assert self.handles is not None
        handle = self.handles[shard]
        msg.setdefault("type", "op")
        handle.out += handle.encoder.encode(msg)
        handle.queued += 1
        if len(handle.out) >= SEND_BUFFER_FLUSH:
            self._flush_handle(shard, handle)

    def _flush_handle(self, shard: int, handle: _WorkerHandle) -> None:
        if not handle.out:
            return
        data = bytes(handle.out)
        queued = handle.queued
        del handle.out[:]
        handle.queued = 0
        if self.perf is not None:
            self.perf.bump("wire_flushes")
            if queued > 1:
                self.perf.bump("wire_coalesced_frames", queued - 1)
        try:
            handle.sock.sendall(data)
        except OSError as exc:
            self._fail(shard, f"send failed: {exc}")

    def _flush_sends(self) -> None:
        if self.handles is None:
            return
        for shard, handle in enumerate(self.handles):
            self._flush_handle(shard, handle)

    def _read_reply(self, shard: int) -> Dict[str, Any]:
        assert self.handles is not None
        try:
            msg = self.handles[shard].reader.read_frame()
        except (ProtocolError, OSError) as exc:
            self._fail(shard, str(exc))
        if msg is None:
            self._fail(shard, "worker closed the connection")
        if msg.get("type") == "error":
            self._fail(shard, msg.get("msg", "worker error"))
        return msg

    # -- op submission ------------------------------------------------------
    def pending_for(self, shard: int) -> int:
        return self._pending_per_shard.get(shard, 0)

    def _enqueue(self, entry: _Pending) -> None:
        if not self._pending and not self._draining:
            self.sim.call_at(self.sim.now, self.drain)
        self._pending.append(entry)
        per = self._pending_per_shard
        per[entry.shard] = per.get(entry.shard, 0) + 1
        if len(self._pending) >= REPLY_WINDOW:
            self.drain()

    def send_inform(self, shard: int, descriptor: AccessDescriptor,
                    reply: bool, event: Optional[Event] = None,
                    app: Optional[str] = None) -> Optional[_Pending]:
        with self._meter():
            self._send(shard, {"op": "inform", "t": self.sim.now,
                               "r": 1 if reply else 0,
                               "d": descriptor_to_dict(descriptor)})
            if not reply:
                return None
            entry = _Pending(shard, "inform", event, app)
            self._enqueue(entry)
            return entry

    def send_release(self, shard: int, app: str,
                     remaining: Optional[float]) -> None:
        with self._meter():
            self._send(shard, {"op": "release", "t": self.sim.now,
                               "app": app, "rem": remaining})

    def send_complete(self, shard: int, app: str, withdraw: bool) -> None:
        with self._meter():
            self._send(shard, {"op": "withdraw" if withdraw else "complete",
                               "t": self.sim.now, "r": 1, "app": app})
            self._enqueue(_Pending(shard, "complete", None, app))

    # -- the same-timestamp drain ------------------------------------------
    def drain(self) -> None:
        """Read every outstanding reply, replaying transitions in order.

        The process analogue of the batched arbiter's round flush: sends
        are buffered through the timestamp, flushed together (all workers
        compute concurrently), and the scheduled drain applies the ordered
        results.  Inform result events succeed grouped by shard in
        first-submission order — exactly the order the in-process router's
        per-shard round flushes would have produced.
        """
        if self._draining or not self._pending:
            return
        with self._meter():
            self._draining = True
            try:
                self._flush_sends()
                shard_first: Dict[int, int] = {}
                succeeds: List = []
                while self._pending:
                    entry = self._pending.popleft()
                    self._pending_per_shard[entry.shard] -= 1
                    reply = self._read_reply(entry.shard)
                    entry.reply = reply
                    proxy = self.proxies[entry.shard]
                    for app, state in reply.get("tr", ()):
                        proxy._apply_transition(app, state)
                    if entry.kind == "inform":
                        dec = reply.get("dec")
                        if dec is not None and entry.app is not None:
                            proxy._last_decision[entry.app] = (
                                Action(dec[0]), float(dec[1]))
                        if entry.event is not None:
                            key = shard_first.setdefault(entry.shard,
                                                         len(shard_first))
                            succeeds.append(
                                (key, len(succeeds), entry.event,
                                 bool(reply.get("ok"))))
                    self._note_wake(entry.shard, reply.get("nw"))
                succeeds.sort(key=lambda item: (item[0], item[1]))
                for _, _, ev, ok in succeeds:
                    ev.succeed(ok)
            finally:
                self._draining = False

    def _direct(self, shard: int, msg: Dict[str, Any]) -> Dict[str, Any]:
        """Drained synchronous round trip (queries, perf)."""
        with self._meter():
            self.drain()
            self._send(shard, msg)
            self._flush_sends()
            reply = self._read_reply(shard)
            proxy = self.proxies[shard]
            for app, state in reply.get("tr", ()):
                proxy._apply_transition(app, state)
            self._note_wake(shard, reply.get("nw"))
            return reply

    def _fetch_log(self, shard: int) -> List[DecisionRecord]:
        with self._meter():
            self.drain()
            self._send(shard, {"op": "log"})
            self._flush_sends()
            records: List[DecisionRecord] = []
            while True:
                msg = self._read_reply(shard)
                records.extend(
                    DecisionRecord(
                        time=d["time"], app=d["app"],
                        action=Action(d["action"]),
                        active=list(d["active"]), waiting=list(d["waiting"]),
                        costs=dict(d["costs"]))
                    for d in msg.get("records", ()))
                if not msg.get("more"):
                    return records

    # -- virtual-clock wake timers -----------------------------------------
    def _note_wake(self, shard: int, nw: Optional[float]) -> None:
        """Arm a timer at the worker's next pending virtual-clock event.

        DELAY holds (and any other worker-internal timer) must fire even
        if no session talks to that shard meanwhile; the router pokes the
        worker with an ``advance`` op at the reported time.  A superseded
        timer (a drain re-armed earlier) is cancelled outright; a timer
        firing after its event was already resolved advances the worker
        clock harmlessly.
        """
        if nw is None:
            return
        armed = self._armed.get(shard)
        if armed is not None and armed <= nw:
            return
        old = self._wake_timers.pop(shard, None)
        if old is not None:
            old.cancel()
        self._armed[shard] = nw
        self._wake_timers[shard] = self.sim.call_at(
            nw, lambda: self._on_wake(shard, nw))

    def _on_wake(self, shard: int, when: float) -> None:
        self._wake_timers.pop(shard, None)
        if self.closed or self.broken or self.handles is None:
            return
        if self._armed.get(shard) != when:
            return
        self._armed[shard] = None
        with self._meter():
            self._send(shard, {"op": "advance", "t": self.sim.now})
            self._enqueue(_Pending(shard, "advance", None, None))
        self.drain()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("closed" if self.closed else
                 "broken" if self.broken else
                 "running" if self.handles is not None else "cold")
        return f"<ShardProcessPool nshards={self.nshards} {state}>"


class WorkerShardProxy:
    """The :class:`Arbiter` protocol surface for one remote shard.

    Mirrors the worker's per-app state from the ordered transition
    streams; authorization events and ``grant_latency`` in-flight
    bookkeeping replicate :class:`Arbiter`'s semantics exactly, so
    sessions (and the span-grant protocol) cannot tell a proxy from a
    local arbiter.  Queries drain outstanding replies first, making the
    mirror exact at observation points; descriptor-level queries round-trip
    to the worker.
    """

    def __init__(self, pool: ShardProcessPool, index: int, strategy,
                 batched: bool = True):
        self._pool = pool
        self.index = index
        self.sim = pool.sim
        self.strategy = strategy
        self.batched = bool(batched)
        self.grant_latency = pool.grant_latency
        self._state: Dict[str, AccessState] = {}
        self._auth_events: Dict[str, Event] = {}
        self._inflight: Dict[str, Event] = {}
        self._last_decision: Dict[str, tuple] = {}
        self._log_cache: Optional[List[DecisionRecord]] = None
        pool.proxies.append(self)

    # -- mirror maintenance -------------------------------------------------
    def _apply_transition(self, app: str, state_value: str) -> None:
        state = AccessState(state_value)
        if state is AccessState.IDLE:
            self._state.pop(app, None)
            self._inflight.pop(app, None)
            self._last_decision.pop(app, None)
            return
        self._state[app] = state
        if state is AccessState.ACTIVE:
            ev = self._auth_events.pop(app, None)
            if ev is not None and not ev.triggered:
                ev.succeed(None, delay=self.grant_latency)
                if self.grant_latency > 0:
                    self._inflight[app] = ev

                    def _clear(_processed, app=app, ev=ev):
                        if self._inflight.get(app) is ev:
                            del self._inflight[app]

                    ev.callbacks.append(_clear)
        elif state is AccessState.WAITING:
            ev = self._auth_events.get(app)
            if ev is None or ev.triggered:
                self._auth_events[app] = self.sim.event()

    # -- queries ------------------------------------------------------------
    def state_of(self, app: str) -> AccessState:
        self._pool.drain()
        return self._state.get(app, AccessState.IDLE)

    def is_authorized(self, app: str) -> bool:
        return self.state_of(app) is AccessState.ACTIVE

    def grant_in_flight(self, app: str) -> bool:
        self._pool.drain()
        ev = self._inflight.get(app)
        return ev is not None and not ev.processed

    def last_decision_for(self, app: str):
        self._pool.drain()
        return self._last_decision.get(app)

    def authorization_event(self, app: str) -> Event:
        self._pool.drain()
        inflight = self._inflight.get(app)
        if inflight is not None and not inflight.processed:
            return inflight
        if self._state.get(app) is AccessState.ACTIVE:
            ev = self.sim.event()
            ev.succeed(None)
            return ev
        ev = self._auth_events.get(app)
        if ev is None or ev.triggered:
            ev = self.sim.event()
            self._auth_events[app] = ev
        return ev

    def descriptor_of(self, app: str) -> Optional[AccessDescriptor]:
        reply = self._pool._direct(self.index,
                                   {"op": "desc", "t": self.sim.now,
                                    "app": app})
        data = reply.get("desc")
        return None if data is None else descriptor_from_dict(data)

    def _snapshot(self, key: str) -> List[AccessDescriptor]:
        reply = self._pool._direct(self.index,
                                   {"op": "snapshot", "t": self.sim.now})
        return [descriptor_from_dict(d) for d in reply.get(key, ())]

    def active_descriptors(self) -> List[AccessDescriptor]:
        return self._snapshot("active")

    def waiting_descriptors(self) -> List[AccessDescriptor]:
        return self._snapshot("waiting")

    def preempted_descriptors(self) -> List[AccessDescriptor]:
        return self._snapshot("preempted")

    @property
    def decision_log(self) -> List[DecisionRecord]:
        if self._log_cache is not None:
            return self._log_cache
        if self._pool.closed or self._pool.broken:
            return []
        if self._pool.handles is None:
            return []
        return self._pool._fetch_log(self.index)

    # -- protocol entry points ----------------------------------------------
    def submit_inform(self, descriptor: AccessDescriptor) -> Event:
        ev = self.sim.event()
        app = descriptor.app
        state = self._state.get(app)
        if state is not None and not self._pool.pending_for(self.index):
            # Continuation fast path: the mirror is exact for this shard
            # (no unread replies) and the app is not IDLE, so the worker's
            # answer is already known — ship the knowledge refresh
            # fire-and-forget, exactly the in-process "no pending round"
            # shortcut.
            self._pool.send_inform(self.index, descriptor, reply=False)
            ev.succeed(state is AccessState.ACTIVE)
            return ev
        self._pool.send_inform(self.index, descriptor, reply=True,
                               event=ev, app=app)
        return ev

    def on_inform(self, descriptor: AccessDescriptor) -> bool:
        pool = self._pool
        pool.drain()
        entry = pool.send_inform(self.index, descriptor, reply=True,
                                 event=None, app=descriptor.app)
        pool.drain()
        assert entry is not None and entry.reply is not None
        return bool(entry.reply.get("ok"))

    def on_release(self, app: str,
                   remaining_bytes: Optional[float] = None) -> None:
        self._pool.send_release(self.index, app, remaining_bytes)

    def submit_release(self, app: str,
                       remaining_bytes: Optional[float] = None) -> None:
        self._pool.send_release(self.index, app, remaining_bytes)

    def on_complete(self, app: str) -> None:
        self._pool.send_complete(self.index, app, withdraw=False)

    def withdraw(self, app: str) -> None:
        self._pool.send_complete(self.index, app, withdraw=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WorkerShardProxy shard={self.index}>"
