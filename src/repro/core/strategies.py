"""CALCioM scheduling strategies.

§III-A of the paper names four ways to handle a newly arriving I/O access
while others run: let them **interfere**, **serialize** behind the running
one (FCFS), **interrupt** the running one, or pick **dynamically** using a
machine-wide efficiency metric.  A strategy sees only exchanged
:class:`~repro.core.metrics.AccessDescriptor` information and returns a
:class:`Decision` for the arbiter to enforce.

The dynamic strategy implements the paper's §IV-D cost comparison exactly:
with equal core counts and B arriving dt after A, interrupting A wins iff
``dt < T_A(alone) - T_B(alone)`` — and the general weighted form
``N_A · T_B < N_B · (T_A - dt)`` otherwise.
"""

from __future__ import annotations

import inspect
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence

from .metrics import (
    AccessDescriptor, CpuSecondsWasted, EfficiencyMetric, WaitingTotals,
    make_metric,
)

__all__ = [
    "Action", "Decision", "Strategy", "InterfereStrategy", "FCFSStrategy",
    "InterruptStrategy", "DynamicStrategy", "make_strategy",
]


def _capture_totals(waiting) -> WaitingTotals:
    """Waiting-queue aggregates: O(1) from a tracking view, else a fold."""
    totals = getattr(waiting, "totals", None)
    return totals() if totals is not None else WaitingTotals.fold(waiting)


def _accepts_preempted(fn) -> bool:
    """Whether a decide/decide_batch signature takes the preempted view.

    The preempted queue is newer than the strategy contract, so it rides
    in as an *optional* keyword: strategies that declare ``preempted``
    (or ``**kwargs``) receive the live view, everyone else keeps the
    historical four-argument call.
    """
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):  # pragma: no cover - builtins/oddities
        return False
    for p in sig.parameters.values():
        if p.name == "preempted" or p.kind is p.VAR_KEYWORD:
            return True
    return False


#: Per-class cache of whether ``decide`` accepts the preempted view.
_DECIDE_PREEMPTED: Dict[type, bool] = {}


class Action(Enum):
    """What the arbiter should do with an arriving access."""

    GO = "go"                #: authorize immediately (share the file system)
    WAIT = "wait"            #: queue until running accesses complete
    INTERRUPT = "interrupt"  #: preempt running accesses, then authorize
    DELAY = "delay"          #: hold for a fixed time, then share (Fig 12)


@dataclass
class Decision:
    """A strategy's verdict for one arriving access."""

    action: Action
    #: Apps whose authorization to revoke when ``action == INTERRUPT``
    #: (default: every currently active one).
    preempt: Optional[List[str]] = None
    #: Hold time in seconds when ``action == DELAY``.
    delay: float = 0.0
    #: Predicted metric costs per option, for logging/EXPERIMENTS.md.
    costs: Dict[str, float] = field(default_factory=dict)


class Strategy(ABC):
    """Policy mapping (running accesses, incoming access) to a decision.

    Contract: ``active`` and ``waiting`` are *read-only views* over the
    arbiter's live indexes (:class:`~repro.core.metrics.DescriptorSetView`)
    — iterable, sized, truth-testable, but not lists and never to be
    mutated.  Views are the only contract; the one-release
    ``supports_views = False`` list-materialization escape hatch has been
    removed (declaring it is now a loud ``TypeError`` at class definition,
    so stragglers fail at import instead of silently changing behavior).

    Strategies that price deep preemption stacks can additionally declare
    a ``preempted`` keyword on :meth:`decide` (or :meth:`decide_batch`) to
    receive a read-only view of the preempted queue, in preemption order.
    Built-ins ignore it — their decisions are unchanged — but §IV-D-style
    cost models can use it to see the work an INTERRUPT would stack on.
    """

    name: str = "strategy"

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if cls.__dict__.get("supports_views") is False:
            raise TypeError(
                f"{cls.__name__} sets supports_views = False, but the "
                "list-materialization shim has been removed (it was "
                "deprecated for one release). Treat the active/waiting "
                "arguments as read-only iterables and drop the attribute."
            )

    @abstractmethod
    def decide(self, now: float, active: Sequence[AccessDescriptor],
               waiting: Sequence[AccessDescriptor],
               incoming: AccessDescriptor) -> Decision:
        """Decide what to do with ``incoming`` at time ``now``."""

    def decide_batch(self, now: float, active: Sequence[AccessDescriptor],
                     waiting: Sequence[AccessDescriptor],
                     incomings: Sequence[AccessDescriptor],
                     preempted: Sequence[AccessDescriptor] = (),
                     ) -> Iterable[Decision]:
        """Decide a whole :class:`~repro.core.arbiter.CoordinationRound`.

        Called once per batch of same-timestamp fresh informs, in arrival
        order.  The arbiter pulls decisions lazily and **applies each one
        before pulling the next**, so a generator implementation observing
        the live views sees the effects of its earlier decisions — which
        is exactly what makes the default (one :meth:`decide` per
        incoming) bit-identical to N independent unbatched calls.
        Override to share work across the batch; yield exactly one
        :class:`Decision` per incoming, in order.  ``preempted`` is the
        read-only preempted-queue view, forwarded to :meth:`decide` only
        when its signature asks for it.
        """
        cls = type(self)
        wants = _DECIDE_PREEMPTED.get(cls)
        if wants is None:
            wants = _DECIDE_PREEMPTED[cls] = _accepts_preempted(self.decide)
        if wants:
            for incoming in incomings:
                yield self.decide(now, active, waiting, incoming,
                                  preempted=preempted)
        else:
            for incoming in incomings:
                yield self.decide(now, active, waiting, incoming)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class InterfereStrategy(Strategy):
    """The uncoordinated baseline: everyone writes whenever they like."""

    name = "interfere"

    def decide(self, now, active, waiting, incoming) -> Decision:
        return Decision(Action.GO)


class FCFSStrategy(Strategy):
    """First-come-first-served serialization (§III-A.1).

    The second arriver waits for the first to finish; nobody is ever
    preempted.  Good when apps are alike; terrible for a small app stuck
    behind a big one (Fig 9b).
    """

    name = "fcfs"

    def decide(self, now, active, waiting, incoming) -> Decision:
        if active or waiting:
            return Decision(Action.WAIT)
        return Decision(Action.GO)

    def decide_batch(self, now, active, waiting, incomings, preempted=()):
        # Batch-aware: the machine's busyness is evaluated once per
        # coordination round.  The first incoming can only GO on an idle
        # machine, and its own admission (GO -> active, WAIT -> waiting)
        # makes the machine busy for every later incoming in the round —
        # exactly what N per-incoming re-checks of the live views decide.
        if type(self).decide is not FCFSStrategy.decide:
            # A subclass customized decide(): its per-incoming logic (extra
            # audit fields, tweaked policy) must keep running.
            yield from super().decide_batch(now, active, waiting, incomings,
                                            preempted=preempted)
            return
        busy = bool(active) or bool(waiting)
        for _ in incomings:
            if busy:
                yield Decision(Action.WAIT)
            else:
                busy = True
                yield Decision(Action.GO)


class InterruptStrategy(Strategy):
    """Always preempt the running access for the new arriver (§III-A.2).

    The mirror image of FCFS: great when a small app interrupts a big one,
    counterproductive between equals (Fig 9c).
    """

    name = "interrupt"

    def decide(self, now, active, waiting, incoming) -> Decision:
        if active:
            return Decision(Action.INTERRUPT)
        if waiting:
            # Nothing running (all preempted/queued): take a queue slot.
            return Decision(Action.WAIT)
        return Decision(Action.GO)


class DynamicStrategy(Strategy):
    """Choose FCFS vs interruption (vs interference) per arrival (§III-A.4).

    For each option the strategy predicts every involved application's
    I/O-phase time from exchanged information only, evaluates the
    efficiency metric, and picks the cheapest.

    Parameters
    ----------
    metric:
        The machine-wide efficiency metric (default: the paper's Fig 11
        CPU-seconds-wasted).
    consider_interference:
        Also evaluate the "just share" option, predicting proportional
        slowdown.  The paper's Fig 11 dynamic selector chooses between
        FCFS and interruption only; Fig 12 argues sharing/delaying can win
        when interference is weaker than proportional — enabling this flag
        is that extension.
    interference_estimator:
        Optional callable ``(active_descriptors, incoming) -> dict of
        predicted I/O times`` replacing the built-in estimator.
    capacity:
        The shared file system's aggregate bandwidth, B/s.  When set (the
        runtime injects it — a system-provided arbiter knows its machine),
        the built-in estimator water-fills predicted rates against it, with
        each application's standalone drain rate (``total_bytes/t_alone``,
        derived from exchanged info only) as its cap.  Without it, the
        estimator falls back to pessimistic pure-proportional stretching.
    price_preempted:
        Also charge the preempted queue into every option's cost.  The
        arbiter resumes preempted applications one at a time, ahead of the
        FIFO waiters (and an INTERRUPT's victims queue *behind* already-
        preempted apps), so a deep preemption stack is real deferred work
        the INTERRUPT option would push further out.  Off by default:
        decisions are bit-identical to the historical cost model whenever
        the flag is off or the preempted queue is empty.
    """

    name = "dynamic"

    def __init__(self, metric: EfficiencyMetric | str = None,
                 consider_interference: bool = False,
                 consider_delay: bool = False,
                 interference_estimator=None,
                 capacity: Optional[float] = None,
                 price_preempted: bool = False):
        self.metric = make_metric(metric) if metric is not None else CpuSecondsWasted()
        self.consider_interference = consider_interference
        self.consider_delay = consider_delay
        self.interference_estimator = interference_estimator
        self.capacity = capacity
        self.price_preempted = price_preempted

    def decide(self, now, active, waiting, incoming,
               preempted: Sequence[AccessDescriptor] = ()) -> Decision:
        return self._decide_one(now, active, waiting, incoming,
                                _capture_totals(waiting), preempted)

    def decide_batch(self, now, active, waiting, incomings, preempted=()):
        # Batch-aware: the waiting-queue aggregates are shared across the
        # round.  On a tracking view ``_capture_totals`` is O(1) and stays
        # current as the arbiter applies each decision (a WAIT/DELAY
        # extends the view's running fold); the one-off fold for plain
        # sequences is paid once per round, not once per incoming.
        if type(self).decide is not DynamicStrategy.decide:
            # A subclass customized decide(): preserve its logic.
            yield from super().decide_batch(now, active, waiting, incomings,
                                            preempted=preempted)
            return
        # Captured once per round: a tracking view's totals object is live
        # (the arbiter's WAIT applications extend it in place), and a
        # plain sequence's one-off fold stays valid because a round only
        # ever appends to the waiting queue.
        totals = _capture_totals(waiting)
        for incoming in incomings:
            yield self._decide_one(now, active, waiting, incoming, totals,
                                   preempted)

    def _decide_one(self, now, active, waiting, incoming,
                    totals: WaitingTotals,
                    preempted: Sequence[AccessDescriptor] = ()) -> Decision:
        if not active and not waiting:
            return Decision(Action.GO)
        waiting_part = self.metric.alone_cost(totals)
        if waiting_part is None:
            # Non-decomposable custom metric: full prediction dicts.
            return self._decide_full(now, active, waiting, incoming,
                                     preempted)
        combine = self.metric.combine
        actives = list(active)
        descriptors = {d.app: d for d in actives}
        descriptors[incoming.app] = incoming

        # Option 1 — FCFS: incoming runs after everything already admitted.
        # Every waiting app is predicted at its own t_alone under *all*
        # options, so the queue enters each cost as the same O(1)
        # ``waiting_part`` instead of an O(n) per-option fold.
        backlog = sum(d.remaining_t for d in actives) + totals.t_alone
        fcfs_times = {d.app: self._elapsed(d, now) + d.remaining_t
                      for d in actives}
        fcfs_times[incoming.app] = backlog + incoming.t_alone

        # Option 2 — interrupt: incoming runs now; actives pause and finish
        # after it (plus anything already queued keeps waiting).
        int_times = {d.app: (self._elapsed(d, now) + incoming.t_alone
                             + d.remaining_t)
                     for d in actives}
        int_times[incoming.app] = incoming.t_alone

        fcfs_pre, pre_stack = self._price_preempted(
            now, actives, incoming, preempted, descriptors,
            fcfs_times, int_times)

        costs = {
            "fcfs": combine(self.metric.cost(fcfs_times, descriptors),
                            waiting_part),
            "interrupt": combine(self.metric.cost(int_times, descriptors),
                                 waiting_part),
        }

        if self.consider_interference:
            share_times = self._interference_prediction(now, actives,
                                                        incoming)
            # The preempted stack stays queued whether or not the
            # incoming shares: price it exactly as under FCFS.
            share_times.update(fcfs_pre)
            costs["interfere"] = combine(
                self.metric.cost(share_times, descriptors), waiting_part)

        best_delay = 0.0
        if self.consider_delay and actives:
            horizon = max(d.remaining_t for d in actives)
            for frac in (0.25, 0.5, 0.75):
                delta = frac * horizon
                delay_times = self._delay_prediction(now, actives, incoming,
                                                     delta)
                delay_times.update(fcfs_pre)
                key = f"delay@{frac:.2f}"
                costs[key] = combine(
                    self.metric.cost(delay_times, descriptors), waiting_part)
                if costs[key] == min(costs.values()):
                    best_delay = delta

        return self._verdict(costs, best_delay)

    def _price_preempted(self, now, actives, incoming, preempted,
                         descriptors, fcfs_times, int_times):
        """Charge the preempted queue into the FCFS/interrupt predictions.

        Mirrors the arbiter's grant order: preempted applications resume
        one at a time (queue order) once the actives drain, ahead of FIFO
        waiters — and an INTERRUPT's victims join *behind* the existing
        stack, so under that option the stack resumes right after the
        incoming while the victims also eat the whole stack's remainder.
        Mutates ``fcfs_times``/``int_times`` in place and returns
        ``(fcfs_pre, pre_stack)`` — the FCFS-option times of the preempted
        apps (reused by interfere/delay pricing) and the stack's total
        remaining seconds.  No-ops (empty dict, 0.0) unless
        ``price_preempted`` is set and the queue is non-empty, keeping the
        historical decisions bit-identical.
        """
        if not self.price_preempted:
            return {}, 0.0
        pre = list(preempted)
        if not pre:
            return {}, 0.0
        backlog_active = sum(d.remaining_t for d in actives)
        fcfs_pre: Dict[str, float] = {}
        cum = 0.0
        for d in pre:
            descriptors[d.app] = d
            cum += d.remaining_t
            fcfs_pre[d.app] = self._elapsed(d, now) + backlog_active + cum
            int_times[d.app] = (self._elapsed(d, now) + incoming.t_alone
                                + cum)
        pre_stack = cum
        fcfs_times.update(fcfs_pre)
        fcfs_times[incoming.app] += pre_stack
        for d in actives:
            int_times[d.app] += pre_stack
        return fcfs_pre, pre_stack

    def _decide_full(self, now, active, waiting, incoming,
                     preempted: Sequence[AccessDescriptor] = ()) -> Decision:
        """The historical whole-population cost evaluation (O(n) per
        inform): kept for metrics that cannot decompose a waiting queue's
        contribution out of their cost."""
        involved = list(active) + list(waiting) + [incoming]
        descriptors = {d.app: d for d in involved}

        backlog = sum(d.remaining_t for d in active) + \
            sum(d.t_alone for d in waiting)
        fcfs_times = {}
        for d in active:
            fcfs_times[d.app] = self._elapsed(d, now) + d.remaining_t
        for d in waiting:
            # Waiting time so far is unknowable here without more state;
            # count their standalone time plus the backlog ahead of them.
            fcfs_times[d.app] = d.t_alone
        fcfs_times[incoming.app] = backlog + incoming.t_alone

        int_times = {}
        for d in active:
            int_times[d.app] = (self._elapsed(d, now) + incoming.t_alone
                                + d.remaining_t)
        for d in waiting:
            int_times[d.app] = d.t_alone
        int_times[incoming.app] = incoming.t_alone

        fcfs_pre, _ = self._price_preempted(
            now, list(active), incoming, preempted, descriptors,
            fcfs_times, int_times)

        costs = {
            "fcfs": self.metric.cost(fcfs_times, descriptors),
            "interrupt": self.metric.cost(int_times, descriptors),
        }

        if self.consider_interference:
            share_times = self._interference_prediction(now, active, incoming)
            for d in waiting:
                share_times[d.app] = d.t_alone
            share_times.update(fcfs_pre)
            costs["interfere"] = self.metric.cost(share_times, descriptors)

        best_delay = 0.0
        if self.consider_delay and active:
            horizon = max(d.remaining_t for d in active)
            for frac in (0.25, 0.5, 0.75):
                delta = frac * horizon
                delay_times = self._delay_prediction(now, active, incoming,
                                                     delta)
                for d in waiting:
                    delay_times[d.app] = d.t_alone
                delay_times.update(fcfs_pre)
                key = f"delay@{frac:.2f}"
                costs[key] = self.metric.cost(delay_times, descriptors)
                if costs[key] == min(costs.values()):
                    best_delay = delta

        return self._verdict(costs, best_delay)

    @staticmethod
    def _verdict(costs: Dict[str, float], best_delay: float) -> Decision:
        best = min(costs, key=costs.get)
        if best == "interrupt":
            return Decision(Action.INTERRUPT, costs=costs)
        if best == "interfere":
            return Decision(Action.GO, costs=costs)
        if best.startswith("delay@"):
            return Decision(Action.DELAY, delay=best_delay, costs=costs)
        return Decision(Action.WAIT, costs=costs)

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _elapsed(d: AccessDescriptor, now: float) -> float:
        return (now - d.access_started) if d.access_started is not None else 0.0

    def _interference_prediction(self, now, active, incoming) -> Dict[str, float]:
        """Estimate everyone's time if all overlap for their remainder."""
        if self.interference_estimator is not None:
            return self.interference_estimator(active, incoming)
        parts = list(active) + [incoming]
        rates = self._shared_rates(parts)
        times = {}
        for d in parts:
            drain = d.total_bytes / d.t_alone if d.t_alone > 0 else 0.0
            rate = rates[d.app]
            if rate <= 0 or drain <= 0:
                stretched = 0.0 if d.remaining_t == 0 else float("inf")
            else:
                stretched = d.remaining_t * drain / rate
            times[d.app] = self._elapsed(d, now) + stretched
        return times

    def _delay_prediction(self, now, active, incoming,
                          delta: float) -> Dict[str, float]:
        """Times if ``incoming`` idles ``delta`` seconds, then shares.

        The Fig 12 tradeoff: actives drain alone during the hold (shedding
        ``delta`` of standalone work), then whoever still has a remainder
        shares with the newcomer.
        """
        survivors = []
        times: Dict[str, float] = {}
        for d in active:
            if d.remaining_t <= delta:
                times[d.app] = self._elapsed(d, now) + d.remaining_t
            else:
                shadow = d.copy()
                if d.total_bytes > 0 and d.t_alone > 0:
                    drained = delta * d.total_bytes / d.t_alone
                    shadow.remaining_bytes = max(
                        0.0, shadow.remaining_bytes - drained)
                survivors.append((d, shadow))
        parts = [shadow for _, shadow in survivors] + [incoming]
        rates = self._shared_rates(parts)
        for original, shadow in survivors:
            drain = (original.total_bytes / original.t_alone
                     if original.t_alone > 0 else 0.0)
            rate = rates[original.app]
            stretched = (shadow.remaining_t * drain / rate
                         if rate > 0 and drain > 0 else shadow.remaining_t)
            times[original.app] = self._elapsed(original, now) + delta + stretched
        drain_in = (incoming.total_bytes / incoming.t_alone
                    if incoming.t_alone > 0 else 0.0)
        rate_in = rates[incoming.app]
        stretched_in = (incoming.remaining_t * drain_in / rate_in
                        if rate_in > 0 and drain_in > 0
                        else incoming.remaining_t)
        times[incoming.app] = delta + stretched_in
        return times

    def _shared_rates(self, parts: List[AccessDescriptor]) -> Dict[str, float]:
        """Weighted max-min share of ``capacity`` with per-app drain caps.

        Mirrors the fluid physics of the machine using only exchanged
        knowledge: weight = core count, cap = the standalone drain rate the
        application itself reported (bytes over estimated alone-time).
        """
        drains = {d.app: (d.total_bytes / d.t_alone if d.t_alone > 0 else 0.0)
                  for d in parts}
        if self.capacity is None:
            # No machine knowledge: pure proportional split of the largest
            # observed drain rate (a pessimistic overlap estimate).
            total_w = sum(d.nprocs for d in parts)
            peak = max(drains.values(), default=0.0)
            return {d.app: peak * d.nprocs / total_w for d in parts}
        rates: Dict[str, float] = {}
        residual = self.capacity
        unfixed = list(parts)
        while unfixed:
            total_w = sum(d.nprocs for d in unfixed)
            share = residual / total_w
            capped = [d for d in unfixed if drains[d.app] < d.nprocs * share]
            if not capped:
                for d in unfixed:
                    rates[d.app] = d.nprocs * share
                break
            for d in capped:
                rates[d.app] = drains[d.app]
                residual -= drains[d.app]
                unfixed.remove(d)
        return rates


_STRATEGIES = {
    "interfere": InterfereStrategy,
    "fcfs": FCFSStrategy,
    "interrupt": InterruptStrategy,
    "dynamic": DynamicStrategy,
}


def make_strategy(spec) -> Strategy:
    """Build a strategy from a name, class, or instance."""
    if isinstance(spec, Strategy):
        return spec
    if isinstance(spec, str):
        try:
            return _STRATEGIES[spec]()
        except KeyError:
            raise ValueError(
                f"unknown strategy {spec!r}; choose from {sorted(_STRATEGIES)}"
            ) from None
    if isinstance(spec, type) and issubclass(spec, Strategy):
        return spec()
    raise TypeError(f"cannot build a strategy from {spec!r}")
