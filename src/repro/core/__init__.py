"""CALCioM — the paper's contribution: cross-application I/O coordination.

Public surface:

* :class:`CalciomRuntime` — per-machine entry point; builds sessions.
* :class:`CalciomSession` — per-application coordinator implementing the
  paper's ``Prepare/Inform/Check/Wait/Release/Complete`` API and the ADIO
  guard protocol.
* Strategies: interfere / FCFS-serialize / interrupt / dynamic.
* Metrics: CPU-seconds-wasted, sum of interference factors, max slowdown.
* Sharding: :class:`ShardRouter` / :class:`ArbiterShard` — one arbiter per
  file-system partition with an ordered-lock cross-shard protocol, inline
  or with one worker process per shard (``workers="process"``).
"""

from .api import CalciomRuntime
from .arbiter import AccessState, Arbiter, CoordinationRound, DecisionRecord
from .metrics import (
    AccessDescriptor, CpuSecondsWasted, DescriptorSetView, EfficiencyMetric,
    MaxSlowdown, SumInterferenceFactors, TotalIOTime, WaitingTotals,
    make_metric,
)
from .registry import ApplicationRecord, ApplicationRegistry
from .session import CalciomSession
from .sharding import ArbiterShard, ShardRouter, ShardWorkerError
from .strategies import (
    Action, Decision, DynamicStrategy, FCFSStrategy, InterfereStrategy,
    InterruptStrategy, Strategy, make_strategy,
)

__all__ = [
    "CalciomRuntime", "CalciomSession",
    "Arbiter", "AccessState", "CoordinationRound", "DecisionRecord",
    "ArbiterShard", "ShardRouter", "ShardWorkerError",
    "ApplicationRegistry", "ApplicationRecord",
    "AccessDescriptor", "DescriptorSetView", "WaitingTotals",
    "EfficiencyMetric", "CpuSecondsWasted",
    "SumInterferenceFactors", "MaxSlowdown", "TotalIOTime", "make_metric",
    "Strategy", "InterfereStrategy", "FCFSStrategy", "InterruptStrategy",
    "DynamicStrategy", "Action", "Decision", "make_strategy",
]
