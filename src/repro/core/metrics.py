"""Machine-wide efficiency metrics.

The paper's central argument is that per-application "fairness" is the
wrong objective: scheduling decisions should optimize *a specified metric
of machine-wide efficiency* (§I, §III-A.4).  A metric here maps predicted
per-application I/O times to a scalar cost; strategies pick the option with
the lowest predicted cost.

Implemented metrics:

* :class:`CpuSecondsWasted` — f = Σ N_X · T_X, the paper's Fig 11 metric
  ("total number of CPU hours wasted in I/O phases").
* :class:`SumInterferenceFactors` — f = Σ T_X / T_X(alone), the §III-A.4
  example (avoids small apps being crushed by big ones).
* :class:`MaxSlowdown` — f = max T_X / T_X(alone), a fairness-flavoured
  alternative for the metric-choice ablation.
* :class:`TotalIOTime` — f = Σ T_X, size-blind (what a naive scheduler
  would optimize).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional

__all__ = [
    "AccessDescriptor", "DescriptorSetView", "EfficiencyMetric",
    "CpuSecondsWasted", "SumInterferenceFactors", "MaxSlowdown",
    "TotalIOTime", "make_metric",
]


@dataclass
class AccessDescriptor:
    """What CALCioM knows about one application's current/pending access.

    Every field is *exchanged information* (via ``Prepare``/``Inform``) or
    derived from it — never oracle simulator state.  That constraint is a
    design principle of the paper: CALCioM only provides the means by which
    applications communicate.
    """

    app: str                      #: application name
    nprocs: int                   #: cores behind the access
    total_bytes: float            #: bytes the access intends to move
    t_alone: float                #: estimated standalone duration, s
    remaining_bytes: float = 0.0  #: bytes not yet written
    access_started: Optional[float] = None  #: time the access began, if it has
    files: int = 1                #: files in the access
    rounds: int = 1               #: collective-buffering rounds

    def __post_init__(self) -> None:
        if self.remaining_bytes == 0.0:
            self.remaining_bytes = self.total_bytes

    @property
    def remaining_t(self) -> float:
        """Estimated standalone time to finish the remaining bytes."""
        if self.total_bytes <= 0:
            return 0.0
        return self.t_alone * (self.remaining_bytes / self.total_bytes)

    def copy(self) -> "AccessDescriptor":
        return AccessDescriptor(
            app=self.app, nprocs=self.nprocs, total_bytes=self.total_bytes,
            t_alone=self.t_alone, remaining_bytes=self.remaining_bytes,
            access_started=self.access_started, files=self.files,
            rounds=self.rounds,
        )


class DescriptorSetView:
    """Live, read-only view over one of the arbiter's app-name indexes.

    Strategies receive these instead of materialized descriptor lists: the
    arbiter no longer copies its state per decision, and truthiness/length
    checks (the whole of FCFS's work) are O(1).  The view is *live* — it
    always reflects the arbiter's current indexes, which is what makes the
    lazily-pulled :meth:`~repro.core.strategies.Strategy.decide_batch`
    protocol correct: a decision applied mid-batch is visible to the next
    ``decide`` call through the same view objects.

    Iteration yields :class:`AccessDescriptor`\\ s in the index's canonical
    order (first-decision order for actives, FIFO arrival order for
    waiters), matching what the old list-building arbiter produced.
    """

    __slots__ = ("_names", "_descriptors", "_sort_key")

    def __init__(self, names, descriptors: Mapping[str, AccessDescriptor],
                 sort_key: Optional[Callable[[str], int]] = None):
        self._names = names          #: live container of app names
        self._descriptors = descriptors
        self._sort_key = sort_key    #: None = container iteration order

    def _ordered_names(self) -> List[str]:
        if self._sort_key is None:
            return list(self._names)
        return sorted(self._names, key=self._sort_key)

    def names(self) -> List[str]:
        """App names in canonical order (a fresh list, safe to keep)."""
        return self._ordered_names()

    def __iter__(self) -> Iterator[AccessDescriptor]:
        descriptors = self._descriptors
        return (descriptors[name] for name in self._ordered_names())

    def __len__(self) -> int:
        return len(self._names)

    def __bool__(self) -> bool:
        return len(self._names) > 0

    def __getitem__(self, index):
        # O(k log k): views are made for iteration; indexing materializes.
        return list(self)[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DescriptorSetView {self._ordered_names()!r}>"


class EfficiencyMetric(ABC):
    """Scalar cost of a predicted outcome; lower is better."""

    name: str = "metric"

    @abstractmethod
    def cost(self, predicted_io_times: Dict[str, float],
             descriptors: Dict[str, AccessDescriptor]) -> float:
        """Cost of an option.

        Parameters
        ----------
        predicted_io_times:
            app -> predicted total I/O-phase time (including any waiting)
            under the option being evaluated.
        descriptors:
            app -> exchanged knowledge (for weights and t_alone baselines).
        """


class CpuSecondsWasted(EfficiencyMetric):
    """f = Σ N_X · T_X — CPU time not spent on science (paper Fig 11)."""

    name = "cpu-seconds-wasted"

    def cost(self, predicted_io_times, descriptors):
        return sum(descriptors[app].nprocs * t
                   for app, t in predicted_io_times.items())


class SumInterferenceFactors(EfficiencyMetric):
    """f = Σ T_X / T_X(alone) — §III-A.4's example objective."""

    name = "sum-interference-factors"

    def cost(self, predicted_io_times, descriptors):
        total = 0.0
        for app, t in predicted_io_times.items():
            t_alone = descriptors[app].t_alone
            total += t / t_alone if t_alone > 0 else 0.0
        return total


class MaxSlowdown(EfficiencyMetric):
    """f = max_X T_X / T_X(alone) — bounds the worst-treated application."""

    name = "max-slowdown"

    def cost(self, predicted_io_times, descriptors):
        worst = 0.0
        for app, t in predicted_io_times.items():
            t_alone = descriptors[app].t_alone
            if t_alone > 0:
                worst = max(worst, t / t_alone)
        return worst


class TotalIOTime(EfficiencyMetric):
    """f = Σ T_X — ignores application size entirely."""

    name = "total-io-time"

    def cost(self, predicted_io_times, descriptors):
        return sum(predicted_io_times.values())


_METRICS = {
    cls.name: cls
    for cls in (CpuSecondsWasted, SumInterferenceFactors, MaxSlowdown,
                TotalIOTime)
}


def make_metric(spec) -> EfficiencyMetric:
    """Build a metric from a name, class, or instance."""
    if isinstance(spec, EfficiencyMetric):
        return spec
    if isinstance(spec, str):
        try:
            return _METRICS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown metric {spec!r}; choose from {sorted(_METRICS)}"
            ) from None
    if isinstance(spec, type) and issubclass(spec, EfficiencyMetric):
        return spec()
    raise TypeError(f"cannot build a metric from {spec!r}")
