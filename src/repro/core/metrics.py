"""Machine-wide efficiency metrics.

The paper's central argument is that per-application "fairness" is the
wrong objective: scheduling decisions should optimize *a specified metric
of machine-wide efficiency* (§I, §III-A.4).  A metric here maps predicted
per-application I/O times to a scalar cost; strategies pick the option with
the lowest predicted cost.

Implemented metrics:

* :class:`CpuSecondsWasted` — f = Σ N_X · T_X, the paper's Fig 11 metric
  ("total number of CPU hours wasted in I/O phases").
* :class:`SumInterferenceFactors` — f = Σ T_X / T_X(alone), the §III-A.4
  example (avoids small apps being crushed by big ones).
* :class:`MaxSlowdown` — f = max T_X / T_X(alone), a fairness-flavoured
  alternative for the metric-choice ablation.
* :class:`TotalIOTime` — f = Σ T_X, size-blind (what a naive scheduler
  would optimize).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "AccessDescriptor", "DescriptorSetView", "WaitingTotals",
    "EfficiencyMetric", "CpuSecondsWasted", "SumInterferenceFactors",
    "MaxSlowdown", "TotalIOTime", "make_metric",
]


@dataclass
class AccessDescriptor:
    """What CALCioM knows about one application's current/pending access.

    Every field is *exchanged information* (via ``Prepare``/``Inform``) or
    derived from it — never oracle simulator state.  That constraint is a
    design principle of the paper: CALCioM only provides the means by which
    applications communicate.
    """

    app: str                      #: application name
    nprocs: int                   #: cores behind the access
    total_bytes: float            #: bytes the access intends to move
    t_alone: float                #: estimated standalone duration, s
    remaining_bytes: float = 0.0  #: bytes not yet written
    access_started: Optional[float] = None  #: time the access began, if it has
    files: int = 1                #: files in the access
    rounds: int = 1               #: collective-buffering rounds
    #: File-system partitions the access targets (exchanged knowledge like
    #: everything else here).  The :class:`~repro.core.sharding.ShardRouter`
    #: routes Inform/Release to the arbiter shard(s) owning these; on
    #: unpartitioned machines every access targets partition 0.
    partitions: Tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if self.remaining_bytes == 0.0:
            self.remaining_bytes = self.total_bytes

    @property
    def remaining_t(self) -> float:
        """Estimated standalone time to finish the remaining bytes."""
        if self.total_bytes <= 0:
            return 0.0
        return self.t_alone * (self.remaining_bytes / self.total_bytes)

    def copy(self) -> "AccessDescriptor":
        return AccessDescriptor(
            app=self.app, nprocs=self.nprocs, total_bytes=self.total_bytes,
            t_alone=self.t_alone, remaining_bytes=self.remaining_bytes,
            access_started=self.access_started, files=self.files,
            rounds=self.rounds, partitions=self.partitions,
        )


class DescriptorSetView:
    """Live, read-only view over one of the arbiter's app-name indexes.

    Strategies receive these instead of materialized descriptor lists: the
    arbiter no longer copies its state per decision, and truthiness/length
    checks (the whole of FCFS's work) are O(1).  The view is *live* — it
    always reflects the arbiter's current indexes, which is what makes the
    lazily-pulled :meth:`~repro.core.strategies.Strategy.decide_batch`
    protocol correct: a decision applied mid-batch is visible to the next
    ``decide`` call through the same view objects.

    Iteration yields :class:`AccessDescriptor`\\ s in the index's canonical
    order (first-decision order for actives, FIFO arrival order for
    waiters), matching what the old list-building arbiter produced.

    Running aggregates
    ------------------
    With ``track_totals=True`` the view additionally maintains the
    :class:`WaitingTotals` deep-backlog strategies need (Σ ``t_alone``,
    Σ ``nprocs * t_alone``, count of positive ``t_alone``) so a decision
    under an n-deep waiting queue costs O(1) instead of O(n).  The owner
    of the underlying index reports mutations through :meth:`note_append`
    / :meth:`note_remove`.  Exactness discipline: appends *extend* the
    cached left-to-right float fold (bit-identical to re-summing the
    grown queue in FIFO order), while any removal drops the cache so the
    next read recomputes a fresh fold — the cached values are therefore
    always bit-identical to ``sum(... for d in view)``, which is what
    keeps indexed-arbiter decision costs equal to the unbatched oracle's.
    """

    __slots__ = ("_names", "_descriptors", "_sort_key", "_totals")

    def __init__(self, names, descriptors: Mapping[str, AccessDescriptor],
                 sort_key: Optional[Callable[[str], int]] = None,
                 track_totals: bool = False):
        self._names = names          #: live container of app names
        self._descriptors = descriptors
        self._sort_key = sort_key    #: None = container iteration order
        self._totals: Optional["WaitingTotals"] = None
        if track_totals:
            self._totals = WaitingTotals()
            self._totals.valid = False

    def _ordered_names(self) -> List[str]:
        if self._sort_key is None:
            return list(self._names)
        return sorted(self._names, key=self._sort_key)

    def names(self) -> List[str]:
        """App names in canonical order (a fresh list, safe to keep)."""
        return self._ordered_names()

    def __iter__(self) -> Iterator[AccessDescriptor]:
        descriptors = self._descriptors
        return (descriptors[name] for name in self._ordered_names())

    def __len__(self) -> int:
        return len(self._names)

    def __bool__(self) -> bool:
        return len(self._names) > 0

    def __getitem__(self, index):
        # O(k log k): views are made for iteration; indexing materializes.
        return list(self)[index]

    # -- running aggregates (track_totals=True views) ----------------------
    def note_append(self, descriptor: AccessDescriptor) -> None:
        """The underlying index appended ``descriptor``'s app at the back."""
        totals = self._totals
        if totals is not None and totals.valid:
            totals.add(descriptor)

    def note_remove(self) -> None:
        """The underlying index removed an app (any position): drop cache."""
        if self._totals is not None:
            self._totals.valid = False

    def totals(self) -> "WaitingTotals":
        """Current :class:`WaitingTotals` — O(1) when cached, else a fresh
        FIFO-order fold over the view (then cached if tracking)."""
        totals = self._totals
        if totals is not None and totals.valid:
            return totals
        fresh = WaitingTotals.fold(self)
        if totals is not None:
            self._totals = fresh
        return fresh

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DescriptorSetView {self._ordered_names()!r}>"


@dataclass
class WaitingTotals:
    """Backlog aggregates of a waiting queue, in FIFO fold order.

    Every waiting application is predicted to run for its own ``t_alone``
    under *any* option a strategy evaluates (it is already queued; the
    option only reorders actives and the incoming access), so the queue's
    contribution to backlog and to every decomposable metric reduces to
    these three numbers.  ``fold`` computes them left-to-right exactly as
    the historical per-decision ``sum(...)`` scans did, which is what lets
    cached and fresh values compare bit-identical.
    """

    t_alone: float = 0.0         #: Σ t_alone over the queue
    nprocs_t_alone: float = 0.0  #: Σ nprocs * t_alone (CPU-seconds weight)
    positive: int = 0            #: queue members with t_alone > 0
    count: int = 0               #: queue length
    valid: bool = field(default=True, compare=False)

    @classmethod
    def fold(cls, waiting) -> "WaitingTotals":
        totals = cls()
        for d in waiting:
            totals.add(d)
        return totals

    def add(self, d: AccessDescriptor) -> None:
        """Extend the fold with one descriptor appended at the back."""
        self.t_alone += d.t_alone
        self.nprocs_t_alone += d.nprocs * d.t_alone
        if d.t_alone > 0:
            self.positive += 1
        self.count += 1


class EfficiencyMetric(ABC):
    """Scalar cost of a predicted outcome; lower is better.

    Decomposition contract (optional, O(1) deep-backlog support)
    -------------------------------------------------------------
    Waiting applications are predicted at their own ``t_alone`` under every
    option, so metrics whose cost splits as ``combine(cost(rest),
    waiting_part)`` can answer :meth:`alone_cost` from a queue's
    :class:`WaitingTotals` instead of folding the whole queue per option.
    The built-ins all do; custom metrics inherit the ``None`` default and
    strategies fall back to the full per-app prediction dicts.
    """

    name: str = "metric"

    @abstractmethod
    def cost(self, predicted_io_times: Dict[str, float],
             descriptors: Dict[str, AccessDescriptor]) -> float:
        """Cost of an option.

        Parameters
        ----------
        predicted_io_times:
            app -> predicted total I/O-phase time (including any waiting)
            under the option being evaluated.
        descriptors:
            app -> exchanged knowledge (for weights and t_alone baselines).
        """

    def alone_cost(self, totals: WaitingTotals) -> Optional[float]:
        """Cost contribution of apps predicted at their own ``t_alone``,
        from queue aggregates alone — or ``None`` if this metric cannot
        decompose (strategies then fall back to full prediction dicts)."""
        return None

    def combine(self, a: float, b: float) -> float:
        """Fold two disjoint cost contributions (sum-like by default)."""
        return a + b


class CpuSecondsWasted(EfficiencyMetric):
    """f = Σ N_X · T_X — CPU time not spent on science (paper Fig 11)."""

    name = "cpu-seconds-wasted"

    def cost(self, predicted_io_times, descriptors):
        return sum(descriptors[app].nprocs * t
                   for app, t in predicted_io_times.items())

    def alone_cost(self, totals):
        return totals.nprocs_t_alone


class SumInterferenceFactors(EfficiencyMetric):
    """f = Σ T_X / T_X(alone) — §III-A.4's example objective."""

    name = "sum-interference-factors"

    def cost(self, predicted_io_times, descriptors):
        total = 0.0
        for app, t in predicted_io_times.items():
            t_alone = descriptors[app].t_alone
            total += t / t_alone if t_alone > 0 else 0.0
        return total

    def alone_cost(self, totals):
        # Each waiting app contributes t_alone / t_alone = 1 (when defined).
        return float(totals.positive)


class MaxSlowdown(EfficiencyMetric):
    """f = max_X T_X / T_X(alone) — bounds the worst-treated application."""

    name = "max-slowdown"

    def cost(self, predicted_io_times, descriptors):
        worst = 0.0
        for app, t in predicted_io_times.items():
            t_alone = descriptors[app].t_alone
            if t_alone > 0:
                worst = max(worst, t / t_alone)
        return worst

    def alone_cost(self, totals):
        return 1.0 if totals.positive else 0.0

    def combine(self, a, b):
        return max(a, b)


class TotalIOTime(EfficiencyMetric):
    """f = Σ T_X — ignores application size entirely."""

    name = "total-io-time"

    def cost(self, predicted_io_times, descriptors):
        return sum(predicted_io_times.values())

    def alone_cost(self, totals):
        return totals.t_alone


_METRICS = {
    cls.name: cls
    for cls in (CpuSecondsWasted, SumInterferenceFactors, MaxSlowdown,
                TotalIOTime)
}


def make_metric(spec) -> EfficiencyMetric:
    """Build a metric from a name, class, or instance."""
    if isinstance(spec, EfficiencyMetric):
        return spec
    if isinstance(spec, str):
        try:
            return _METRICS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown metric {spec!r}; choose from {sorted(_METRICS)}"
            ) from None
    if isinstance(spec, type) and issubclass(spec, EfficiencyMetric):
        return spec()
    raise TypeError(f"cannot build a metric from {spec!r}")
