"""Workload traces: SWF parsing, synthetic Intrepid generation, Fig 1 stats."""

from .analysis import (
    ConcurrencyDistribution, SizeDistribution, concurrency_distribution,
    job_size_distribution,
)
from .probability import interference_probability_curve, prob_concurrent_io
from .swf import SWFJob, SWFTrace, format_swf, parse_swf
from .synth import (
    INTREPID_CORES, IntrepidModel, JobIOModel, generate_intrepid_like,
)

__all__ = [
    "SWFJob", "SWFTrace", "parse_swf", "format_swf",
    "IntrepidModel", "JobIOModel", "generate_intrepid_like", "INTREPID_CORES",
    "SizeDistribution", "job_size_distribution",
    "ConcurrencyDistribution", "concurrency_distribution",
    "prob_concurrent_io", "interference_probability_curve",
]
