"""§II-B: the probability that another application is doing I/O.

The paper derives a lower bound on the probability of interference:

    P(another is doing I/O) = 1 - Σ_n P(X = n) · (1 - E[µ])^n

where X is the number of concurrently running applications and µ the
fraction of time an application spends in I/O.  With the Intrepid
concurrency distribution and E[µ] as small as 5%, the paper computes 64% —
"making cross-application interference frequent enough to motivate our
research".

Note the paper's convention: X counts the *other* concurrently running
applications observed alongside yours (Fig 1b's distribution is used
as-is), and independence between X and µ is assumed (optimistically).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from .analysis import ConcurrencyDistribution

__all__ = ["prob_concurrent_io", "interference_probability_curve"]


def prob_concurrent_io(concurrency, mean_io_fraction: float) -> float:
    """P(at least one other application is doing I/O).

    Parameters
    ----------
    concurrency:
        A :class:`~repro.traces.analysis.ConcurrencyDistribution` or a
        mapping {n: P(X = n)}.
    mean_io_fraction:
        E[µ] — the average fraction of time an application spends in I/O.
    """
    if not 0.0 <= mean_io_fraction <= 1.0:
        raise ValueError(f"mean_io_fraction must be in [0, 1], got {mean_io_fraction}")
    if isinstance(concurrency, ConcurrencyDistribution):
        pmf: Mapping[int, float] = concurrency.pmf()
    else:
        pmf = concurrency
    total = sum(pmf.values())
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"concurrency pmf must sum to 1 (got {total})")
    none_doing = sum(p * (1.0 - mean_io_fraction) ** n for n, p in pmf.items())
    return 1.0 - none_doing


def interference_probability_curve(concurrency, io_fractions) -> np.ndarray:
    """Vectorized :func:`prob_concurrent_io` over many E[µ] values."""
    return np.array([
        prob_concurrent_io(concurrency, float(mu)) for mu in io_fractions
    ])
