"""Standard Workload Format (SWF) parsing and writing.

The paper's Figure 1 is computed from ``ANL-Intrepid-2009-1.swf`` of the
Parallel Workload Archive.  SWF is a line-oriented format: comment/header
lines start with ``;``, data lines carry 18 whitespace-separated fields per
job (Feitelson's standard).  We parse the fields the analyses need and
carry the rest opaquely, and we can write traces back out — the synthetic
generator emits SWF so the analysis code has a single input path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Union

__all__ = ["SWFJob", "SWFTrace", "parse_swf", "format_swf"]

#: SWF field indices (0-based), per the standard.
_FIELDS = 18


@dataclass(frozen=True)
class SWFJob:
    """One job record (the subset of SWF fields the analyses use)."""

    job_id: int
    submit_time: float      #: seconds since trace start
    wait_time: float        #: queueing delay, s (-1 if unknown)
    run_time: float         #: execution time, s (-1 if unknown)
    allocated_procs: int    #: processors actually allocated (-1 if unknown)
    requested_procs: int = -1
    requested_time: float = -1.0
    status: int = -1
    user_id: int = -1
    group_id: int = -1

    @property
    def start_time(self) -> float:
        """Dispatch time: submit + wait."""
        return self.submit_time + max(0.0, self.wait_time)

    @property
    def end_time(self) -> float:
        return self.start_time + max(0.0, self.run_time)

    @property
    def valid(self) -> bool:
        """Usable for size/concurrency statistics."""
        return self.allocated_procs > 0 and self.run_time > 0

    def to_swf_line(self) -> str:
        """This job as a standard 18-field SWF data line."""
        fields = [-1] * _FIELDS
        fields[0] = self.job_id
        fields[1] = int(self.submit_time)
        fields[2] = int(self.wait_time)
        fields[3] = int(self.run_time)
        fields[4] = self.allocated_procs
        fields[7] = self.requested_procs
        fields[8] = int(self.requested_time)
        fields[10] = self.status
        fields[11] = self.user_id
        fields[12] = self.group_id
        return " ".join(str(f) for f in fields)


class SWFTrace:
    """A parsed workload trace: header comments plus job records."""

    def __init__(self, jobs: Sequence[SWFJob], header: Optional[List[str]] = None):
        self.jobs = list(jobs)
        self.header = list(header or [])

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[SWFJob]:
        return iter(self.jobs)

    def valid_jobs(self) -> List[SWFJob]:
        """Jobs usable for statistics (positive size and runtime)."""
        return [j for j in self.jobs if j.valid]

    @property
    def makespan(self) -> float:
        """Span from first submit to last completion, seconds."""
        jobs = self.valid_jobs()
        if not jobs:
            return 0.0
        return max(j.end_time for j in jobs) - min(j.submit_time for j in jobs)


def parse_swf(source: Union[str, Iterable[str]]) -> SWFTrace:
    """Parse SWF text (a string with newlines, or an iterable of lines)."""
    if isinstance(source, str):
        lines: Iterable[str] = source.splitlines()
    else:
        lines = source
    header: List[str] = []
    jobs: List[SWFJob] = []
    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        if line.startswith(";"):
            header.append(line)
            continue
        parts = line.split()
        if len(parts) < 5:
            raise ValueError(f"malformed SWF line (need >= 5 fields): {raw!r}")
        def fld(i: int, default: float = -1.0) -> float:
            return float(parts[i]) if i < len(parts) else default
        jobs.append(SWFJob(
            job_id=int(fld(0)),
            submit_time=fld(1),
            wait_time=fld(2),
            run_time=fld(3),
            allocated_procs=int(fld(4)),
            requested_procs=int(fld(7)),
            requested_time=fld(8),
            status=int(fld(10)),
            user_id=int(fld(11)),
            group_id=int(fld(12)),
        ))
    return SWFTrace(jobs, header)


def format_swf(trace: SWFTrace) -> str:
    """Serialize a trace to SWF text."""
    out: List[str] = []
    out.extend(trace.header)
    out.extend(job.to_swf_line() for job in trace.jobs)
    return "\n".join(out) + "\n"
