"""Workload-trace statistics: the paper's Figure 1 quantities.

* :func:`job_size_distribution` — Fig 1a: histogram and CDF of job sizes,
  optionally weighted by job duration ("this assertion remains true when
  weighing the jobs by their duration").
* :func:`concurrency_distribution` — Fig 1b: the time-weighted distribution
  of the number of simultaneously running jobs, i.e. for each n, the
  proportion of total machine time during which exactly n jobs ran.

Both are exact sweep-line computations over the dispatched trace (numpy
event sort; no sampling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .swf import SWFTrace

__all__ = [
    "SizeDistribution", "job_size_distribution",
    "ConcurrencyDistribution", "concurrency_distribution",
]


@dataclass(frozen=True)
class SizeDistribution:
    """Job-size histogram over given bin edges (Fig 1a)."""

    bins: np.ndarray       #: size values (distinct core counts)
    fraction: np.ndarray   #: fraction of jobs (or of job-time) per bin
    cdf: np.ndarray        #: cumulative fraction

    def fraction_at_or_below(self, cores: int) -> float:
        """CDF evaluated at ``cores``."""
        idx = np.searchsorted(self.bins, cores, side="right") - 1
        return float(self.cdf[idx]) if idx >= 0 else 0.0

    def median_size(self) -> int:
        """Smallest size with CDF >= 0.5."""
        idx = int(np.searchsorted(self.cdf, 0.5, side="left"))
        return int(self.bins[min(idx, len(self.bins) - 1)])


def job_size_distribution(trace: SWFTrace,
                          weight_by_duration: bool = False) -> SizeDistribution:
    """Distribution of job sizes, by count or by accumulated runtime."""
    jobs = trace.valid_jobs()
    if not jobs:
        raise ValueError("trace has no valid jobs")
    sizes = np.array([j.allocated_procs for j in jobs], dtype=float)
    weights = (np.array([j.run_time for j in jobs], dtype=float)
               if weight_by_duration else np.ones_like(sizes))
    bins = np.unique(sizes)
    totals = np.zeros(len(bins))
    idx = np.searchsorted(bins, sizes)
    np.add.at(totals, idx, weights)
    fraction = totals / totals.sum()
    return SizeDistribution(bins=bins.astype(int), fraction=fraction,
                            cdf=np.cumsum(fraction))


@dataclass(frozen=True)
class ConcurrencyDistribution:
    """Time-weighted distribution of the number of concurrent jobs (Fig 1b)."""

    counts: np.ndarray       #: concurrency levels n (0, 1, 2, ...)
    proportion: np.ndarray   #: fraction of total time at each level

    def pmf(self) -> Dict[int, float]:
        """{n: P(X = n)} as a plain dict."""
        return {int(n): float(p) for n, p in zip(self.counts, self.proportion)}

    def mean(self) -> float:
        """Time-averaged number of concurrent jobs."""
        return float(np.sum(self.counts * self.proportion))

    def mode(self) -> int:
        """Most common concurrency level (by time)."""
        return int(self.counts[int(np.argmax(self.proportion))])


def concurrency_distribution(trace: SWFTrace,
                             t0: Optional[float] = None,
                             t1: Optional[float] = None
                             ) -> ConcurrencyDistribution:
    """Sweep-line computation of P(X = n) over [t0, t1].

    Defaults to the span between the first job start and last job end
    (avoiding the cold-start/drain artifacts at the trace edges would bias
    the distribution toward low counts; the paper's figure covers the full
    8 months, so we default to the same).
    """
    jobs = trace.valid_jobs()
    if not jobs:
        raise ValueError("trace has no valid jobs")
    starts = np.array([j.start_time for j in jobs])
    ends = np.array([j.end_time for j in jobs])
    lo = min(starts) if t0 is None else t0
    hi = max(ends) if t1 is None else t1
    if hi <= lo:
        raise ValueError("analysis window is empty")
    # Event sweep: +1 at clipped starts, -1 at clipped ends.
    starts = np.clip(starts, lo, hi)
    ends = np.clip(ends, lo, hi)
    times = np.concatenate([starts, ends])
    deltas = np.concatenate([np.ones(len(starts)), -np.ones(len(ends))])
    order = np.argsort(times, kind="stable")
    times, deltas = times[order], deltas[order]
    # Concurrency level between consecutive events.
    levels = np.cumsum(deltas)
    durations = np.diff(np.concatenate([times, [hi]]))
    # Prepend the interval [lo, first event) at level 0.
    lead = times[0] - lo if len(times) else hi - lo
    levels = np.concatenate([[0], levels])
    durations = np.concatenate([[lead], durations])
    keep = durations > 0
    levels, durations = levels[keep].astype(int), durations[keep]
    max_level = int(levels.max()) if len(levels) else 0
    totals = np.zeros(max_level + 1)
    np.add.at(totals, levels, durations)
    proportion = totals / totals.sum()
    return ConcurrencyDistribution(
        counts=np.arange(max_level + 1), proportion=proportion
    )
