"""Synthetic Intrepid-2009-like workload generation.

The actual ``ANL-Intrepid-2009-1.swf`` (8 months of Intrepid's Cobalt
scheduler logs, Jan-Sep 2009) cannot be redistributed here, so we generate
a statistically matched stand-in:

* **Job sizes** are powers of two from 256 to 131072 cores (Intrepid
  allocates full partitions), with marginals fitted to the paper's Fig 1a —
  in particular its headline: *half the jobs run on <= 2048 cores*, and the
  same holds when weighting jobs by duration.
* **Runtimes** are lognormal (the classic Feitelson shape), mildly
  correlated with size.
* **Arrivals** are Poisson at a rate fitted so that a capacity-constrained
  backfilling dispatch yields the Fig 1b concurrency distribution (bulk of
  machine time spent with ~5-20 simultaneous jobs, time-averaged mean near
  the value that makes the paper's 64%% interference probability come out).

Dispatch is a space-sharing simulation of the 163840-core machine in the
aggressive-backfill limit: a job starts as soon as enough cores are free.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..simcore.rng import ensure_rng
from .swf import SWFJob, SWFTrace

__all__ = ["IntrepidModel", "JobIOModel", "generate_intrepid_like"]

#: Intrepid's size: 40 racks x 4096 cores.
INTREPID_CORES = 163840

#: (cores, probability) fitted to the paper's Fig 1a histogram.  CDF at
#: 2048 cores = 0.52 — "half the jobs on <= 2048 cores".
_SIZE_DISTRIBUTION: Tuple[Tuple[int, float], ...] = (
    (256, 0.11),
    (512, 0.14),
    (1024, 0.12),
    (2048, 0.15),
    (4096, 0.21),
    (8192, 0.13),
    (16384, 0.09),
    (32768, 0.03),
    (65536, 0.015),
    (131072, 0.005),
)


@dataclass(frozen=True)
class IntrepidModel:
    """Tunable parameters of the synthetic workload."""

    machine_cores: int = INTREPID_CORES
    duration_days: float = 240.0          #: ~8 months
    jobs_per_hour: float = 14.0           #: ~80k jobs over the span
    runtime_median_s: float = 2400.0      #: median job runtime
    runtime_sigma: float = 1.1            #: lognormal shape
    size_runtime_coupling: float = 0.05   #: larger jobs run slightly longer

    @property
    def njobs_expected(self) -> float:
        return self.jobs_per_hour * 24 * self.duration_days


@dataclass(frozen=True)
class JobIOModel:
    """Fig 1-style per-job I/O behavior distributions for trace replay.

    The paper characterizes Intrepid's workload by Fig 1's size and
    concurrency marginals, and its §II experiments span the two access
    shapes real applications exhibit: contiguous checkpoint-style dumps
    and strided multi-variable writes with blocks around the
    collective-buffering sweet spot (hundreds of KB to a few MB).  Trace
    replay used to give *every* job one uniform contiguous pattern; this
    model instead samples, per job,

    * a **pattern shape** — strided with probability ``strided_fraction``
      (block size drawn from the ``block_choices`` the sampled volume can
      hold at least twice, skewed small like Fig 1a's many-small-jobs
      marginal), contiguous otherwise — including when the volume is too
      small for any block, so rounding to whole blocks never inflates a
      sampled volume beyond its clip range;
    * a **per-process volume** — lognormal around
      ``median_bytes_per_process`` (sigma ``volume_sigma``), mildly
      coupled to job size the way runtimes are (bigger jobs dump somewhat
      more state per core), clipped to ``[min_bytes, max_bytes]``.

    Sampling is deterministic per ``(seed, job_id)`` so a replay plan is a
    pure function of the trace window, independent of job ordering.
    """

    median_bytes_per_process: float = 4_000_000.0
    volume_sigma: float = 0.85
    size_volume_coupling: float = 0.08
    strided_fraction: float = 0.55
    block_choices: Tuple[int, ...] = (
        256_000, 512_000, 1_000_000, 2_000_000, 4_000_000)
    #: Small blocks dominate, mirroring Fig 1a's skew toward small jobs.
    block_weights: Tuple[float, ...] = (0.3, 0.25, 0.2, 0.15, 0.1)
    min_bytes: float = 64_000.0
    max_bytes: float = 64_000_000.0

    def sample_volume(self, rng: np.random.Generator, nprocs: int) -> float:
        """Per-process bytes for one job (before pattern rounding)."""
        coupling = self.size_volume_coupling * math.log2(max(1, nprocs))
        raw = rng.lognormal(mean=0.0, sigma=self.volume_sigma)
        volume = self.median_bytes_per_process * (2.0 ** coupling) * raw
        return float(min(self.max_bytes, max(self.min_bytes, volume)))

    def sample(self, rng: np.random.Generator, nprocs: int):
        """Sample ``(pattern, bytes_per_process)`` for one job.

        Imports the pattern classes lazily so :mod:`repro.traces` keeps no
        module-level dependency on :mod:`repro.mpisim`.
        """
        from ..mpisim import Contiguous, Strided

        volume = self.sample_volume(rng, nprocs)
        if rng.uniform() < self.strided_fraction:
            # Only blocks the sampled volume can hold at least twice are
            # eligible, so rounding to whole blocks never inflates a small
            # volume past its clip range; too-small volumes fall back to a
            # contiguous write (one small dump *is* contiguous in practice).
            eligible = [(b, w) for b, w in
                        zip(self.block_choices, self.block_weights)
                        if 2 * b <= volume]
            if eligible:
                blocks = np.asarray([b for b, _ in eligible])
                weights = np.asarray([w for _, w in eligible], dtype=float)
                block = int(rng.choice(blocks, p=weights / weights.sum()))
                nblocks = int(round(volume / block))
                return (Strided(block_size=block, nblocks=nblocks),
                        block * nblocks)
        size = max(1, int(round(volume)))
        return Contiguous(block_size=size), size


def _sample_sizes(rng: np.random.Generator, n: int) -> np.ndarray:
    sizes = np.array([s for s, _ in _SIZE_DISTRIBUTION])
    probs = np.array([p for _, p in _SIZE_DISTRIBUTION])
    probs = probs / probs.sum()
    return rng.choice(sizes, size=n, p=probs)


def _sample_runtimes(rng: np.random.Generator, sizes: np.ndarray,
                     model: IntrepidModel) -> np.ndarray:
    mu = np.log(model.runtime_median_s)
    coupling = model.size_runtime_coupling * np.log2(
        sizes / sizes.min()
    )
    raw = rng.lognormal(mean=0.0, sigma=model.runtime_sigma, size=len(sizes))
    return np.maximum(60.0, np.exp(mu + coupling) * raw)


def _dispatch(submit: np.ndarray, sizes: np.ndarray,
              runtimes: np.ndarray, capacity: int) -> np.ndarray:
    """Start times under first-fit backfilling on a ``capacity``-core machine.

    An event-driven queue simulation: at every submission or completion,
    scan the wait queue in order and start every job that currently fits
    (first-fit backfill — the aggressive limit of Cobalt's scheduler).
    Strict FCFS would let one 131072-core job drain the whole machine and
    skew the Fig 1b concurrency distribution toward low counts in a way
    the real trace does not show.  Decisions are made only at the current
    instant (no future reservations), so the free-core ledger is exact.
    """
    import heapq

    n = len(submit)
    order = np.argsort(submit, kind="stable")
    starts = np.empty_like(submit)
    completions: List[Tuple[float, int]] = []  # heap of (end_time, cores)
    queue: List[int] = []
    free = int(capacity)
    i = 0
    while i < n or queue or completions:
        next_submit = submit[order[i]] if i < n else math.inf
        next_complete = completions[0][0] if completions else math.inf
        if next_submit <= next_complete:
            t = next_submit
            queue.append(int(order[i]))
            i += 1
            # Batch all submissions at the same instant.
            while i < n and submit[order[i]] == t:
                queue.append(int(order[i]))
                i += 1
        else:
            t, cores = heapq.heappop(completions)
            free += cores
            while completions and completions[0][0] == t:
                free += heapq.heappop(completions)[1]
        still_waiting: List[int] = []
        for idx in queue:
            need = int(sizes[idx])
            if need <= free:
                free -= need
                starts[idx] = t
                heapq.heappush(completions, (float(t + runtimes[idx]), need))
            else:
                still_waiting.append(idx)
        queue = still_waiting
    return starts


def generate_intrepid_like(model: Optional[IntrepidModel] = None,
                           seed: int = 2014,
                           njobs: Optional[int] = None) -> SWFTrace:
    """Generate the synthetic 8-month Intrepid-like SWF trace.

    ``njobs`` overrides the job count (useful for fast tests); the default
    draws a Poisson count matching the model's arrival rate.
    """
    model = model or IntrepidModel()
    rng = ensure_rng(seed)
    span = model.duration_days * 86400.0
    if njobs is None:
        njobs = int(rng.poisson(model.njobs_expected))
    # SWF carries integer seconds; integral times also keep the dispatch
    # ledger exact under the submit/wait/runtime decomposition of SWFJob.
    submit = np.sort(np.round(rng.uniform(0.0, span, size=njobs)))
    sizes = _sample_sizes(rng, njobs)
    runtimes = np.round(_sample_runtimes(rng, sizes, model))
    starts = _dispatch(submit, sizes, runtimes, model.machine_cores)
    jobs = [
        SWFJob(
            job_id=i + 1,
            submit_time=float(submit[i]),
            wait_time=float(starts[i] - submit[i]),
            run_time=float(runtimes[i]),
            allocated_procs=int(sizes[i]),
            requested_procs=int(sizes[i]),
            requested_time=float(runtimes[i] * 1.5),
            status=1,
        )
        for i in range(njobs)
    ]
    header = [
        "; Synthetic Intrepid-2009-like trace (CALCioM reproduction)",
        f"; MaxProcs: {model.machine_cores}",
        f"; UnixStartTime: 0",
        f"; Jobs: {njobs}",
    ]
    return SWFTrace(jobs, header)
