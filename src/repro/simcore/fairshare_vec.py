"""Structure-of-arrays backend for ``FlowNetwork(vectorized=True)``.

The incremental allocator of :mod:`.fairshare` prices a dirty component
one Python flow at a time.  At 10^4 flows per component that inner loop —
not the algorithm — is the cost: every fill step scans ``link_flows``
dicts, every ``sync()`` walks flow objects, every refill rebuilds the
component by BFS.  This module keeps each live component's state as
contiguous numpy arrays instead and vectorizes the three hot paths:

* **Progressive max-min filling** — whole fill steps become masked array
  reductions.  Per-link unfixed-weight sums use ``np.bincount`` over a
  CSR-style (flow, link) entry list: bincount accumulates sequentially in
  input order, which reproduces the scalar loop's left-to-right
  ``sum(f.weight ...)`` *exactly* (pairwise ``np.sum``/``reduceat`` would
  not), so link shares — and therefore bottleneck choices — match the
  scalar scan bit for bit.  Cap-bottlenecked flows are fixed in batches:
  max-min link shares are non-decreasing as smaller-share flows fix
  (``(r - w_f*s)/(w - w_f) >= r/w`` whenever ``s <= r/w``), so every
  unfixed flow whose cap share is strictly below the current minimum link
  share fixes before any link saturates, in one vector step.
* **Lazy residual integration** — ``sync()`` is one fused
  ``remaining -= rates * dt`` + clamp per component, not a per-flow walk.
* **Horizon recomputation** — one ``remaining / rates`` division and an
  argmin feed the wake index; completions inside a state are holes in an
  ``alive`` mask, not array rebuilds.

Equivalence contract (enforced by ``tests/test_fairshare_vectorized.py``
and the hyperscale benchmark): completion *ordering* and the event
sequence are always identical to ``allocator="incremental"``; rates and
completion times are exact-equal where the scan order is deterministic
(single-link paths, cap-bound flows, the common figure workloads) and
ulp-bounded otherwise (multi-link residual subtraction is batched here
but sequential in the scalar loop, so the last bits of a shared residual
can differ).

Component merge/split are array concatenation/partition with index
remapping: a rebuild gathers ``remaining`` from each flow's previous
state, marks the moved rows dead in place (a split's far side keeps
completing out of its old arrays — rates there are still valid precisely
because that side was *not* refilled), and installs the fresh state as
the component's ``vec``.  A newly started flow whose links all live in
one current state queues for an in-place array append (no repack of the
existing rows); other membership changes — resumes included, which
re-enter mid-array in ``_seq`` order — mark the state stale, forcing the
next refill through the BFS.  Completions, pauses, cancels and capacity
changes are O(1) in-place edits, so the steady-state refill never walks
the graph at all.
"""

from __future__ import annotations

import heapq
import math
from itertools import count
from typing import Dict, List, Optional, Set, TYPE_CHECKING

import numpy as np

from .fairshare import _EPS_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .fairshare import FluidFlow, FluidLink, FlowNetwork, _Component

__all__ = ["VecEngine", "VecState"]

#: Wake-index compaction trigger (mirrors the scalar pool's policy).
_COMPACT_MIN = 64


class VecState:
    """Structure-of-arrays snapshot of one live component.

    Row ``i`` of every per-flow array describes ``flows[i]``; the rows are
    in registration (``_seq``) order, which is the order the scalar fill
    iterates — the tie-break order every equivalence argument leans on.
    ``entry_flow``/``entry_link``/``entry_w`` list the (flow, link)
    incidence pairs flow-major (CSR over flows); ``lk_indptr``/``lk_flows``
    is the transposed view (per-link flow lists, seq-ordered).
    """

    __slots__ = (
        "comp", "flows", "n", "weights", "caps", "cap_shares", "remaining",
        "rates", "alive", "horizons", "synced", "links", "link_rows",
        "capacities", "entry_flow", "entry_link", "entry_w", "lk_indptr",
        "lk_flows", "stale", "retired", "wake_gen", "_seq", "next_wake",
        "pending",
    )

    def __init__(self) -> None:
        self.stale = False
        self.retired = False
        self.wake_gen = 0
        self.next_wake = math.inf
        self.pending: List["FluidFlow"] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "stale " if self.stale else ""
        return (f"<VecState #{self._seq} {tag}n={self.n} "
                f"alive={int(self.alive.sum())}>")


class VecEngine:
    """Array-side twin of one :class:`~.fairshare.FlowNetwork`.

    Owns the per-component :class:`VecState` objects and the wake index (a
    heap of ``(next_wake, state_seq, wake_gen, state)`` entries with lazy
    generation-based invalidation, exactly the scalar pool's scheme but
    keyed by states so a split's leftover arrays keep their own wakes).
    """

    def __init__(self, net: "FlowNetwork") -> None:
        self.net = net
        self._index: List[tuple] = []
        self._seq = count()
        self.nstates = 0

    # -- event hooks (O(1) each; called from FlowNetwork mutators) ----------
    def touch(self, links, flow: Optional["FluidFlow"] = None) -> None:
        """A membership change hit these links.

        When the change is one added flow whose links all live in a single
        current (non-stale) state, the flow is queued on that state's
        ``pending`` list and materialized by array concatenation at the
        next refill — the common steady-state arrival needs no BFS and no
        repack of the existing rows.  Any other shape (links spanning
        several states, a link the state has never seen, no flow context)
        marks the involved states stale, forcing the next refill through
        the BFS rebuild.
        """
        if flow is not None:
            target: Optional[VecState] = None
            for link in links:
                comp = link._comp
                st = (comp.vec
                      if comp is not None and comp.alive else None)
                if (st is None or st.retired or st.stale
                        or link not in st.link_rows):
                    target = None
                    break
                if target is None:
                    target = st
                elif st is not target:
                    target = None
                    break
            if target is not None:
                target.pending.append(flow)
                return
        for link in links:
            comp = link._comp
            if comp is not None:
                st = comp.vec
                if st is not None:
                    st.stale = True

    def capacity_changed(self, link: "FluidLink") -> None:
        """Patch one capacity row in place (no rebuild needed: membership
        is unchanged, only the fill inputs moved)."""
        comp = link._comp
        if comp is not None:
            st = comp.vec
            if st is not None:
                row = st.link_rows.get(link)
                if row is not None:
                    st.capacities[row] = link.capacity

    def drop(self, f: "FluidFlow") -> None:
        """Detach a finished/paused/cancelled flow: its row becomes a hole."""
        st = f._vec
        if st is None:
            return
        i = f._vidx
        st.alive[i] = False
        st.rates[i] = 0.0
        f._vec = None
        f._vidx = -1

    # -- progress integration ----------------------------------------------
    def _sync_state(self, st: VecState, now: float) -> None:
        dt = now - st.synced
        if dt > 0:
            # Dead rows have rate 0; alive infinite-rate rows clamp to 0.
            rem = st.remaining
            np.multiply(st.rates, dt, out=self._scratch(st))
            np.subtract(rem, self._scratch(st), out=rem)
            np.maximum(rem, 0.0, out=rem)
        st.synced = now

    def _scratch(self, st: VecState):
        # A throwaway buffer the size of the state (allocation is cheap
        # relative to the fused ops; keeping this a method makes the two
        # uses above share one allocation per sync).
        buf = getattr(self, "_buf", None)
        if buf is None or buf.shape[0] < st.n:
            buf = np.empty(st.n)
            self._buf = buf
        return buf[:st.n]

    def sync_flow(self, f: "FluidFlow", now: float) -> None:
        """Scalar `_sync_flow` delegate for one array-managed flow."""
        st = f._vec
        self._sync_state(st, now)
        f.remaining = float(st.remaining[f._vidx])
        f._synced = now

    def sync_all(self, now: float) -> None:
        """Whole-network ``sync()``: one fused update per state, then write
        the banked progress back onto the flow objects."""
        seen: Dict[int, VecState] = {}
        for f in self.net._flows:
            st = f._vec
            if st is None:
                # Paused (rate 0) or not-yet-priced flows: the scalar rule.
                dt = now - f._synced
                if dt > 0 and not f.paused and f.rate > 0:
                    f.remaining = max(0.0, f.remaining - f.rate * dt)
                f._synced = now
            else:
                seen.setdefault(id(st), st)
        for st in seen.values():
            self._sync_state(st, now)
            rem = st.remaining
            flows = st.flows
            for i in np.flatnonzero(st.alive).tolist():
                fl = flows[i]
                fl.remaining = rem[i]
                fl._synced = now

    # -- reallocation -------------------------------------------------------
    def reallocate(self, seeds: List["FluidLink"], now: float) -> None:
        """Refill every dirty region: in place when the seed's component
        has a current (non-stale) state, via BFS rebuild otherwise."""
        net = self.net
        consumed: Optional[Set["FluidLink"]] = None
        done: Set[int] = set()
        for link in seeds:
            if consumed is not None and link in consumed:
                continue
            comp = link._comp
            st = comp.vec if (comp is not None and comp.alive) else None
            if st is not None and not st.stale and link in st.link_rows:
                if id(st) not in done:
                    done.add(id(st))
                    if st.pending:
                        self._append(st, now)
                    self._refill(comp, st, now)
                continue
            if consumed is None:
                consumed = set()
            consumed.add(link)
            for flows, links in net._components([link]):
                consumed |= links
                new_st = self._rebuild(flows, links, now)
                done.add(id(new_st))

    def _append(self, st: VecState, now: float) -> None:
        """Materialize the state's pending arrivals as appended rows.

        Only brand-new flows ever ride this path (resumes repack via the
        stale rebuild): a new flow holds the highest ``_seq`` in the
        component, so appending its row last preserves registration order
        — the scalar fill's scan order — which keeps the bincount weight
        sums, and therefore every bottleneck choice, bit-identical to a
        rebuild.
        Rows already claimed by a rebuild (``_vec`` set), cancelled, or
        paused since registration are skipped; the same-turn reallocate
        that follows every mutation guarantees the list never carries
        across events.
        """
        pend = [f for f in st.pending
                if f._vec is None and not f.paused and f in self.net._flows]
        st.pending = []
        if not pend:
            return
        self._sync_state(st, now)
        n0 = st.n
        m = len(pend)
        weights = np.empty(m)
        caps = np.full(m, math.inf)
        remaining = np.empty(m)
        entry_flow: List[int] = []
        entry_link: List[int] = []
        link_rows = st.link_rows
        for j, f in enumerate(pend):
            weights[j] = f.weight
            if f.cap is not None:
                caps[j] = f.cap
            remaining[j] = f.remaining
            i = n0 + j
            f._vec = st
            f._vidx = i
            f._synced = now
            for link in f.path:
                entry_flow.append(i)
                entry_link.append(link_rows[link])
        st.flows.extend(pend)
        st.n = n0 + m
        st.weights = np.concatenate((st.weights, weights))
        st.caps = np.concatenate((st.caps, caps))
        with np.errstate(invalid="ignore"):
            st.cap_shares = st.caps / st.weights
        st.remaining = np.concatenate((st.remaining, remaining))
        st.rates = np.concatenate((st.rates, np.zeros(m)))
        st.alive = np.concatenate((st.alive, np.ones(m, dtype=bool)))
        st.horizons = np.concatenate((st.horizons, np.full(m, math.inf)))
        ef = np.concatenate((st.entry_flow,
                             np.asarray(entry_flow, dtype=np.intp)))
        el = np.concatenate((st.entry_link,
                             np.asarray(entry_link, dtype=np.intp)))
        st.entry_flow = ef
        st.entry_link = el
        st.entry_w = st.weights[ef]
        order = np.argsort(el, kind="stable")
        st.lk_flows = ef[order]
        counts = np.bincount(el, minlength=len(st.links))
        st.lk_indptr = np.concatenate(([0], np.cumsum(counts)))
        if self.net.perf is not None:
            self.net.perf.bump("vec_appends")
            self.net.perf.bump("vec_append_flows", m)

    def _rebuild(self, flows: List["FluidFlow"], links: Set["FluidLink"],
                 now: float) -> VecState:
        """Merge/split: gather rows from the previous states into a fresh
        contiguous state for this (BFS-derived) membership."""
        net = self.net
        comp = net._resolve_component(links)
        comp.fill_slots.clear()  # scalar replay cache is meaningless here
        n = len(flows)
        weights = np.empty(n)
        caps = np.full(n, math.inf)
        remaining = np.empty(n)
        rates = np.zeros(n)
        entry_flow: List[int] = []
        entry_link: List[int] = []
        link_rows: Dict["FluidLink", int] = {}
        link_list: List["FluidLink"] = []
        for i, f in enumerate(flows):
            old = f._vec
            if old is not None:
                # First touch syncs the whole donor state; repeats no-op.
                self._sync_state(old, now)
                remaining[i] = old.remaining[f._vidx]
                rates[i] = old.rates[f._vidx]
                # The moved row dies in place: the donor keeps serving only
                # its genuine remainder (whose rates stay valid because that
                # side is exactly the part not being refilled).
                old.alive[f._vidx] = False
                old.rates[f._vidx] = 0.0
            else:
                remaining[i] = f.remaining
                rates[i] = f.rate
            weights[i] = f.weight
            if f.cap is not None:
                caps[i] = f.cap
            for link in f.path:
                row = link_rows.get(link)
                if row is None:
                    row = len(link_list)
                    link_rows[link] = row
                    link_list.append(link)
                entry_flow.append(i)
                entry_link.append(row)
        st = VecState()
        st.comp = comp
        st.flows = list(flows)
        st.n = n
        st.weights = weights
        st.caps = caps
        with np.errstate(invalid="ignore"):
            st.cap_shares = caps / weights
        st.remaining = remaining
        st.rates = rates
        st.alive = np.ones(n, dtype=bool)
        st.horizons = np.full(n, math.inf)
        st.synced = now
        st.links = link_list
        st.link_rows = link_rows
        st.capacities = np.array([lk.capacity for lk in link_list])
        ef = np.asarray(entry_flow, dtype=np.intp)
        el = np.asarray(entry_link, dtype=np.intp)
        st.entry_flow = ef
        st.entry_link = el
        st.entry_w = weights[ef]
        order = np.argsort(el, kind="stable")
        st.lk_flows = ef[order]
        counts = np.bincount(el, minlength=len(link_list))
        st.lk_indptr = np.concatenate(([0], np.cumsum(counts)))
        st._seq = next(self._seq)
        for i, f in enumerate(flows):
            f._vec = st
            f._vidx = i
        comp.vec = st
        self.nstates += 1
        if net.perf is not None:
            net.perf.bump("vec_rebuilds")
            net.perf.bump("vec_rebuild_flows", n)
        self._refill(comp, st, now)
        return st

    def _refill(self, comp: "_Component", st: VecState, now: float) -> None:
        """Sync, complete, re-price and re-arm one state in place."""
        net = self.net
        perf = net.perf
        self._sync_state(st, now)
        alive = st.alive
        finished = alive & (st.remaining <= _EPS_BYTES)
        if finished.any():
            flows = st.flows
            for i in np.flatnonzero(finished).tolist():
                net._finish_flow(flows[i], now)  # drop() punches the hole
        if perf is not None:
            perf.bump("components_refilled")
            perf.bump("vec_refills")
        nalive = int(alive.sum())
        if nalive == 0:
            self._retire(comp, st)
            return
        if perf is not None:
            perf.bump("rate_recomputations")
            perf.bump("flows_touched", nalive)
        prev = st.rates.copy()
        steps, cap_batches = self._fill(st)
        if perf is not None:
            perf.bump("vec_fill_steps", steps)
            perf.bump("vec_cap_batches", cap_batches)
        rates = st.rates
        with np.errstate(divide="ignore", invalid="ignore"):
            st.horizons = np.where(alive & (rates > 0),
                                   now + st.remaining / rates, math.inf)
        nw = float(st.horizons.min())
        st.next_wake = nw
        st.wake_gen += 1
        if math.isfinite(nw):
            heapq.heappush(self._index, (nw, st._seq, st.wake_gen, st))
        # Rates live in the arrays, but link_rate()/observers/monitors read
        # flow objects — write back only the rows that actually moved.
        changed = np.flatnonzero(rates != prev)
        if changed.size:
            flows = st.flows
            for i, r in zip(changed.tolist(), rates[changed].tolist()):
                flows[i].rate = r
            if perf is not None:
                perf.bump("vec_rate_writebacks", changed.size)

    def _fill(self, st: VecState):
        """Vectorized progressive filling over the state's alive rows.

        Returns ``(steps, cap_batches)``.  Matches the scalar scan's
        choices: ``argmin`` takes the first strict minimum (the scalar
        ``<`` scan's tie-break, with links in first-encounter order), caps
        lose ties against links (strict ``<``), and per-link weight sums
        are bincount-exact against the scalar left-to-right sum.
        """
        alive = st.alive
        unfixed = alive.copy()
        n_unfixed = int(unfixed.sum())
        residual = st.capacities.copy()
        rates = st.rates
        weights = st.weights
        cap_shares = st.cap_shares
        entry_flow = st.entry_flow
        entry_link = st.entry_link
        entry_w = st.entry_w
        nlinks = len(st.links)
        steps = 0
        cap_batches = 0
        while n_unfixed:
            steps += 1
            active_w = np.where(unfixed[entry_flow], entry_w, 0.0)
            wsum = np.bincount(entry_link, weights=active_w,
                               minlength=nlinks)
            with np.errstate(divide="ignore", invalid="ignore"):
                shares = np.where(wsum > 0.0, residual / wsum, math.inf)
            li = int(np.argmin(shares))
            link_share = float(shares[li])
            masked_caps = np.where(unfixed, cap_shares, math.inf)
            cap_min = float(masked_caps.min())
            if math.isinf(link_share) and math.isinf(cap_min):
                rates[unfixed] = math.inf
                break
            if cap_min < link_share:
                # Batch-fix every cap strictly below the current minimum
                # link share: link shares only grow as these fix, so the
                # scalar loop fixes exactly this set (one per step) before
                # any link saturates — same rates, same residual deltas.
                newly = unfixed & (cap_shares < link_share)
                idx = np.flatnonzero(newly)
                rates[idx] = weights[idx] * cap_shares[idx]
                cap_batches += 1
            else:
                lo = st.lk_indptr[li]
                hi = st.lk_indptr[li + 1]
                members = st.lk_flows[lo:hi]
                idx = members[unfixed[members]]
                share = residual[li] / wsum[li]
                rates[idx] = weights[idx] * share
                newly = np.zeros(st.n, dtype=bool)
                newly[idx] = True
            unfixed[idx] = False
            n_unfixed -= idx.size
            if n_unfixed:
                fixed_rate = np.where(newly[entry_flow],
                                      rates[entry_flow], 0.0)
                delta = np.bincount(entry_link, weights=fixed_rate,
                                    minlength=nlinks)
                residual = np.maximum(residual - delta, 0.0)
        return steps, cap_batches

    # -- wake machinery -----------------------------------------------------
    def next_horizon(self) -> Optional[float]:
        """Earliest live horizon across all states (the scalar pool's
        contract), with lazy stale-entry pops and bulk compaction."""
        index = self._index
        perf = self.net.perf
        if len(index) > _COMPACT_MIN and len(index) > 4 * max(1, self.nstates):
            live = [e for e in index if e[2] == e[3].wake_gen]
            index[:] = live
            heapq.heapify(index)
            if perf is not None:
                perf.bump("wake_compactions")
        while index:
            when, _, gen, st = index[0]
            if gen != st.wake_gen:
                heapq.heappop(index)
                if perf is not None:
                    perf.bump("wake_stale_pops")
                continue
            return when
        return None

    def on_wake(self, now: float) -> bool:
        """Collect and handle every due flow across due states.

        Due flows are sorted globally by ``(horizon, flow_seq)`` — the
        scalar pool's exact completion order — then finished (or marked
        dirty for the float-residue re-price).  Returns True when any flow
        was due (the caller reallocates), False otherwise.
        """
        net = self.net
        perf = net.perf
        index = self._index
        due: List[tuple] = []
        touched: List[VecState] = []
        while index and index[0][0] <= now:
            _, _, gen, st = heapq.heappop(index)
            if gen != st.wake_gen:
                if perf is not None:
                    perf.bump("wake_stale_pops")
                continue
            touched.append(st)
            self._sync_state(st, now)
            mask = st.alive & (st.horizons <= now)
            flows = st.flows
            h = st.horizons
            for i in np.flatnonzero(mask).tolist():
                f = flows[i]
                due.append((h[i], f._seq, f))
        due.sort()
        for _, _, f in due:
            net._mark_dirty(f.path)
            st = f._vec
            if st is None:
                continue  # finished by an earlier due flow's side effects
            if st.remaining[f._vidx] <= _EPS_BYTES:
                net._finish_flow(f, now)
            # else: float residue — the refill re-prices and re-arms it.
        for st in touched:
            st.wake_gen += 1
            if st.alive.any():
                nw = float(np.min(st.horizons[st.alive]))
                st.next_wake = nw
                if math.isfinite(nw):
                    heapq.heappush(index, (nw, st._seq, st.wake_gen, st))
            else:
                self._retire(st.comp, st)
        return bool(due)

    def _retire(self, comp: Optional["_Component"], st: VecState) -> None:
        """Drop a drained state (and its component when it owned it)."""
        if st.retired:
            return
        st.retired = True
        st.wake_gen += 1  # invalidates every index entry wholesale
        st.next_wake = math.inf
        self.nstates -= 1
        if comp is not None and comp.vec is st:
            comp.vec = None
            if comp.alive:
                comp.alive = False
                self.net._ncomps -= 1
