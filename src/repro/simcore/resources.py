"""Countable resources and object stores for simulated processes.

These are the classic SimPy-style coordination primitives.  The CALCioM
layer uses them for token passing (an application "holding the file system"
under FCFS serialization is a :class:`Resource` holder), and the storage
server schedulers use :class:`Store` as their request queues.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, List

from .engine import Simulator
from .errors import SimulationError
from .events import Event

__all__ = ["Resource", "Request", "Store"]


class Request(Event):
    """Pending claim on a :class:`Resource`; triggers when granted."""

    __slots__ = ("resource", "priority", "_key")

    def __init__(self, resource: "Resource", priority: float):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority

    def cancel(self) -> None:
        """Withdraw the claim (no-op if already granted — release instead)."""
        self.resource._cancel(self)


class Resource:
    """A resource with ``capacity`` slots, granted in priority-then-FIFO order.

    Usage from a process::

        req = res.request()
        yield req
        try:
            ...  # critical section
        finally:
            res.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._holders: List[Request] = []
        self._waiting: List = []  # heap of (priority, seq, request)
        self._seq = count()

    @property
    def in_use(self) -> int:
        """Number of granted slots."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of ungranted requests."""
        return len(self._waiting)

    def request(self, priority: float = 0.0) -> Request:
        """Claim a slot; lower ``priority`` values are served first."""
        req = Request(self, priority)
        heapq.heappush(self._waiting, (priority, next(self._seq), req))
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a granted slot."""
        try:
            self._holders.remove(request)
        except ValueError:
            raise SimulationError(
                f"release() of a request that does not hold {self.name!r}"
            ) from None
        self._grant()

    def _cancel(self, request: Request) -> None:
        self._waiting = [(p, s, r) for (p, s, r) in self._waiting if r is not request]
        heapq.heapify(self._waiting)
        self._grant()

    def _grant(self) -> None:
        while self._waiting and len(self._holders) < self.capacity:
            _, _, req = heapq.heappop(self._waiting)
            if req.triggered:  # cancelled after triggering is impossible; safety
                continue
            self._holders.append(req)
            req.succeed(req)


class Store:
    """Unbounded FIFO queue of items with blocking ``get``.

    ``put`` never blocks (queues are unbounded: simulated messages are cheap
    and the paper's coordinators consume promptly).  ``get`` returns an event
    that triggers with the oldest item.
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: List[Any] = []
        self._getters: List[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append an item, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.pop(0).succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that triggers with the next item (immediately if available)."""
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.pop(0))
        else:
            self._getters.append(ev)
        return ev

    def peek_all(self) -> List[Any]:
        """Non-destructive snapshot of queued items."""
        return list(self._items)
