"""Generator-based simulated processes.

A process wraps a Python generator.  Each ``yield``ed :class:`Event` suspends
the process until the event triggers; the event's value is sent back into the
generator (or its exception thrown in).  A process is itself an event that
triggers when the generator returns (value = return value) or raises.

Interrupts
----------
:meth:`Process.interrupt` throws :class:`~repro.simcore.errors.Interrupt`
into the generator at the current simulation time, detaching it from whatever
event it was waiting on.  The process may re-wait on that event afterwards
(its reference is available as :attr:`Process.target` before the interrupt).
This is the low-level mechanism behind CALCioM's interruption strategy.

The detached event is deliberately *not* cancelled: the interrupted process
(or anyone else holding a reference) may still re-wait on it, pass it to
``run(until=...)``, or compose it into a condition.  Its later dispatch with
an emptied callback list is a cheap no-op under the batch dispatcher —
cancellation is reserved for timers the canceller exclusively owns (see
:meth:`~repro.simcore.engine.Timer.cancel`).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .errors import Interrupt, SimulationError
from .events import Event, PENDING

__all__ = ["Process"]


class Process(Event):
    """An event that wraps a running generator.

    Do not instantiate directly — use :meth:`Simulator.process`.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, sim, generator: Generator[Event, Any, Any],
                 name: Optional[str] = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process body must be a generator, got {generator!r}"
            )
        super().__init__(sim)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off the generator via an immediately-scheduled event so that
        # process bodies never run synchronously inside the caller.
        start = Event(sim)
        start._ok = True
        start._value = None
        sim._schedule(start, 0.0)
        start.callbacks.append(self._resume)
        self._target = start

    # -- inspection ---------------------------------------------------------
    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for (None if running)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    # -- interruption ---------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Raises :class:`SimulationError` if the process already finished, or
        if the process attempts to interrupt itself (which would corrupt the
        generator stack).
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from the pending target so a later trigger doesn't resume us.
        if self._target is not None and not self._target.processed:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        ev = Event(self.sim)
        ev._ok = False
        ev._value = Interrupt(cause)
        ev._defused = True  # the throw below is the handling
        self.sim._schedule(ev, 0.0)
        ev.callbacks.append(self._resume)
        self._target = ev

    # -- engine plumbing ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        sim = self.sim
        sim._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The waiter handles the exception by receiving it.
                    event.defuse()
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                self._target = None
                sim._active_process = None
                self.succeed(exc.value)
                return
            except BaseException as exc:
                self._target = None
                sim._active_process = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                sim._active_process = None
                err = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                self._target = None
                try:
                    self._generator.throw(err)
                except BaseException as exc:
                    self.fail(exc)
                    return
                raise err
            if next_event.sim is not sim:
                raise SimulationError("yielded an event from a different simulator")

            if next_event.processed:
                # Already done: loop immediately with its outcome.
                event = next_event
                continue
            next_event.callbacks.append(self._resume)
            self._target = next_event
            sim._active_process = None
            return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"
