"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence at a point in simulated time.
Processes (generators) ``yield`` events to suspend until they trigger; the
event's *value* (or exception) is delivered back into the generator.

The design follows SimPy's proven model — events carry callbacks, succeed or
fail exactly once, and failures must be "defused" by a waiter or they abort
the simulation — but is implemented from scratch and trimmed to what the
CALCioM reproduction needs.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from .errors import SimulationError

__all__ = ["PENDING", "Event", "Timeout", "Condition", "AllOf", "AnyOf"]


class _Pending:
    """Sentinel for 'event has not triggered yet'."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


PENDING = _Pending()


class Event:
    """A one-shot occurrence in simulated time.

    Events move through three states:

    1. *pending* — created, not yet scheduled;
    2. *triggered* — :meth:`succeed`/:meth:`fail` called, sitting in the
       event queue;
    3. *processed* — popped from the queue, callbacks executed.

    Attributes
    ----------
    callbacks:
        List of ``fn(event)`` called when the event is processed.  ``None``
        once processed (appending afterwards is an error).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None while pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel won't re-raise it."""
        self._defused = True

    @property
    def defused(self) -> bool:
        return self._defused

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``.

        ``delay`` schedules processing that many simulated seconds in the
        future (callbacks of an event always run via the event queue, never
        synchronously).
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed with ``exception``.

        Waiters receive the exception thrown into them; if no waiter defuses
        it the simulation run aborts with the exception.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(
                f"fail() needs an exception instance, got {exception!r}"
            )
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (processed) event.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    # -- composition -------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.sim, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """Event that triggers after a fixed delay.

    Created via :meth:`Simulator.timeout`; triggers with ``value``.
    """

    __slots__ = ("delay",)

    def __init__(self, sim, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(
                f"negative timeout delay {delay!r} targets "
                f"t={sim.now + delay} (now={sim.now})"
            )
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay)

    def cancel(self) -> bool:
        """Deadmark the timeout so it never fires its callbacks.

        Returns True if the timeout was still queued, False if it already
        processed (or was already cancelled).  The queue entry is skipped
        lazily at dispatch — same contract as
        :meth:`~repro.simcore.engine.Timer.cancel`.  A cancelled timeout
        never reaches the *processed* state, so anything waiting on it
        waits forever; cancel only timeouts you own exclusively.
        """
        return self.sim._cancel_event(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeout delay={self.delay} at {hex(id(self))}>"


class Condition(Event):
    """Event that triggers when ``evaluate(events, n_done)`` returns True.

    The condition's value is a dict mapping each *triggered* constituent
    event to its value, in constituent order.  A failing constituent fails
    the whole condition immediately.
    """

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(self, sim, evaluate: Callable[[list, int], bool],
                 events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
        if self._evaluate(self._events, 0) and not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        # An empty event list with a satisfiable predicate (AllOf([])) is
        # handled above; AnyOf([]) can never trigger, matching SimPy.

    def _collect_values(self) -> dict:
        # Only *processed* events count: a Timeout is "triggered" from birth
        # (its value is fixed at creation) but has not yet occurred.
        return {ev: ev._value for ev in self._events if ev.processed and ev._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @property
    def events(self) -> tuple:
        return tuple(self._events)


class AllOf(Condition):
    """Triggers once *all* constituent events have triggered."""

    __slots__ = ()

    def __init__(self, sim, events: Iterable[Event]):
        super().__init__(sim, lambda evs, n: n >= len(evs), events)


class AnyOf(Condition):
    """Triggers once *any* constituent event has triggered."""

    __slots__ = ()

    def __init__(self, sim, events: Iterable[Event]):
        super().__init__(sim, lambda evs, n: n >= 1, events)
